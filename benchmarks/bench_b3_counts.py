"""B3 — repeated-experiment sampling (the paper's ``counts`` workflow,
Section 5.2).

Benchmarks ``counts(shots)`` against the number of shots and the number
of measurement branches, and verifies the sampler's statistics.
"""

import numpy as np
import pytest

from repro.circuit import Measurement, QCircuit
from repro.gates import Hadamard


def uniform_circuit(nb_qubits):
    """H on every qubit + full measurement: 2^n equiprobable branches."""
    c = QCircuit(nb_qubits)
    for q in range(nb_qubits):
        c.push_back(Hadamard(q))
    for q in range(nb_qubits):
        c.push_back(Measurement(q))
    return c


@pytest.mark.parametrize("shots", [100, 10_000, 1_000_000])
def test_b3_shots_scaling(benchmark, shots):
    benchmark.group = "B3 shots"
    sim = uniform_circuit(1).simulate("0")
    counts = benchmark(lambda: sim.counts(shots, seed=1))
    assert counts.sum() == shots


@pytest.mark.parametrize("nb_qubits", [1, 4, 8])
def test_b3_branch_scaling(benchmark, nb_qubits):
    benchmark.group = "B3 branches"
    sim = uniform_circuit(nb_qubits).simulate("0" * nb_qubits)
    assert sim.nbBranches == 1 << nb_qubits
    counts = benchmark(lambda: sim.counts(100_000, seed=1))
    assert counts.sum() == 100_000


def test_b3_rows(benchmark):
    """Sampler statistics: empirical frequencies converge to branch
    probabilities at the expected 1/sqrt(shots) rate."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("B3 | shots max|freq - p|  bound 3/sqrt(shots)")
    sim = uniform_circuit(2).simulate("00")
    for shots in (100, 10_000, 1_000_000):
        counts = sim.counts(shots, seed=2)
        err = np.max(np.abs(counts / shots - 0.25))
        bound = 3.0 / np.sqrt(shots)
        print(f"B3 | {shots:>8d} {err:.5f} {bound:.5f}")
        assert err < bound


def test_b3_counts_dict(benchmark):
    sim = uniform_circuit(10).simulate("0" * 10)
    d = benchmark(lambda: sim.counts_dict(10_000, seed=3))
    assert sum(d.values()) == 10_000
