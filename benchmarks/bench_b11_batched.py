"""B11 — batched trajectory engine throughput (serial vs batched vs
multi-worker shots/sec).

The B4 noise workload (measured Bell pair under 1% depolarizing noise)
sampled three ways:

* **serial** — the historical per-shot Python loop over
  :func:`run_trajectory` (one plan replay per shot),
* **batched** — :func:`run_trajectories_batched` in-process
  (one ``(B, 2^n)`` array per batch, every plan step applied once
  across the batch),
* **workers** — the same batched engine fanned out over a process
  pool.

Emits ``BENCH_batch.json`` with shots/sec per mode at 1k and 10k
shots, the batched/serial speedups, and a seed-reproducibility check
across worker counts.  Run directly (``python
benchmarks/bench_b11_batched.py``) or through pytest-benchmark; the
``BENCH_B11_SHOTS`` environment variable shrinks the shot grid for CI
smoke runs.
"""

import os

import numpy as np

try:
    from benchmarks.harness import emit_json, timed_run
except ImportError:  # direct execution: python benchmarks/bench_b11_...
    from harness import emit_json, timed_run
from repro.circuit import Measurement, QCircuit
from repro.gates import CNOT, Hadamard
from repro.noise import (
    Depolarizing,
    NoiseModel,
    run_trajectories_batched,
    run_trajectory,
)
from repro.simulation import SimulationOptions

#: Worker fan-out benchmarked (and used for the invariance check).
WORKERS = 4


def b4_workload():
    """The B4 noise workload: measured Bell pair, 1% depolarizing."""
    c = QCircuit(2)
    c.push_back(Hadamard(0))
    c.push_back(CNOT(0, 1))
    c.push_back(Measurement(0))
    c.push_back(Measurement(1))
    return c, NoiseModel(gate_noise=Depolarizing(0.01))


def serial_counts(circuit, noise, shots, seed):
    """The pre-batching implementation: one plan replay per shot."""
    rng = np.random.default_rng(seed)
    counts = {}
    for _ in range(int(shots)):
        r = run_trajectory(circuit, noise, rng=rng).result
        counts[r] = counts.get(r, 0) + 1
    return counts


def batched_counts(circuit, noise, shots, seed, max_workers=1):
    opts = SimulationOptions(max_workers=max_workers)
    return run_trajectories_batched(
        circuit, noise, shots=shots, seed=seed, options=opts
    ).counts


def run_grid(shot_grid, repeats=3):
    """Benchmark all three modes over the shot grid; returns the
    ``BENCH_batch.json`` payload."""
    circuit, noise = b4_workload()
    rows = []
    for shots in shot_grid:
        serial = timed_run(
            lambda: serial_counts(circuit, noise, shots, seed=1),
            repeats=repeats,
        )
        batched = timed_run(
            lambda: batched_counts(circuit, noise, shots, seed=1),
            repeats=repeats,
        )
        fanned = timed_run(
            lambda: batched_counts(
                circuit, noise, shots, seed=1, max_workers=WORKERS
            ),
            repeats=repeats,
        )
        assert serial.value == batched.value == fanned.value
        row = {
            "shots": shots,
            "serial_shots_per_sec": shots / serial.best,
            "batched_shots_per_sec": shots / batched.best,
            "workers_shots_per_sec": shots / fanned.best,
            "batched_speedup": serial.best / batched.best,
            "workers_speedup": serial.best / fanned.best,
            **serial.as_dict("serial_"),
            **batched.as_dict("batched_"),
            **fanned.as_dict(f"workers{WORKERS}_"),
        }
        rows.append(row)
        print(
            f"B11 | shots={shots:>6} "
            f"serial={row['serial_shots_per_sec']:>9.0f}/s "
            f"batched={row['batched_shots_per_sec']:>9.0f}/s "
            f"({row['batched_speedup']:.1f}x) "
            f"workers={row['workers_shots_per_sec']:>9.0f}/s "
            f"({row['workers_speedup']:.1f}x)"
        )
    reproducible = (
        batched_counts(circuit, noise, shot_grid[0], seed=1)
        == batched_counts(
            circuit, noise, shot_grid[0], seed=1, max_workers=WORKERS
        )
    )
    return {
        "workload": "b4_bell_depolarizing_0.01",
        "workers": WORKERS,
        "seed_reproducible_across_workers": reproducible,
        "rows": rows,
    }


def _shot_grid():
    env = os.environ.get("BENCH_B11_SHOTS")
    if env:
        return [int(s) for s in env.split(",")]
    return [1000, 10000]


def test_b11_batched_throughput(benchmark):
    circuit, noise = b4_workload()
    shots = _shot_grid()[0]
    counts = benchmark(
        lambda: batched_counts(circuit, noise, shots, seed=1)
    )
    assert sum(counts.values()) == shots


def test_b11_emit_json():
    payload = run_grid(_shot_grid())
    path = emit_json("batch", payload)
    print(f"B11 | wrote {path}")
    assert payload["seed_reproducible_across_workers"]


if __name__ == "__main__":
    payload = run_grid(_shot_grid())
    path = emit_json("batch", payload)
    print(f"wrote {path}")
