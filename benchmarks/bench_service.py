"""Service gateway throughput/latency under concurrent clients.

Boots the full stack — stdlib HTTP server, ASGI adapter, gateway,
worker pool, shared executor — in-process via
:func:`repro.serve.start_in_thread`, then drives it with ``CLIENTS``
concurrent keep-alive HTTP clients, each posting ``REQUESTS`` seeded
sampling requests for the same 10-qubit circuit.  Per-request seeds
differ, so every request bypasses the result cache and executes for
real; the circuit signature is shared, so all of them ride one
compiled plan (the coalescing the service tests pin down).

Emits ``BENCH_service.json`` with requests/second, p50/p99 latency
(milliseconds) and the ok fraction at ``CLIENTS`` concurrency — the
``ok_fraction`` (ratio) and ``rps`` (absolute) metrics are gated by
``tools/bench_regress.py``.  Environment overrides:
``BENCH_SERVICE_CLIENTS``, ``BENCH_SERVICE_REQUESTS``.  Run directly
(``python benchmarks/bench_service.py``) or through pytest.
"""

import http.client
import json
import os
import threading
from time import perf_counter

try:
    from benchmarks.harness import emit_json
except ImportError:  # direct execution from the benchmarks/ directory
    from harness import emit_json

from repro import Measurement
from repro.circuit import QCircuit
from repro.gates import CNOT, RotationY
from repro.io import circuit_to_dict
from repro.serve import ServiceConfig, start_in_thread
from repro.simulation import plan_cache_info

#: Concurrent clients (the acceptance floor is >= 4).
CLIENTS = int(os.environ.get("BENCH_SERVICE_CLIENTS", "4"))
#: Requests per client.
REQUESTS = int(os.environ.get("BENCH_SERVICE_REQUESTS", "25"))
N_QUBITS = 10
N_LAYERS = 4


def _workload_circuit():
    """A 10-qubit entangling workload ending in one measurement."""
    circuit = QCircuit(N_QUBITS)
    for layer in range(N_LAYERS):
        for q in range(N_QUBITS):
            circuit.push_back(RotationY(q, 0.1 * (layer + 1) + 0.01 * q))
        for q in range(N_QUBITS - 1):
            circuit.push_back(CNOT(q, q + 1))
    circuit.push_back(Measurement(0))
    return circuit


def _client(host, port, circuit_dict, client_id, nrequests, latencies,
            failures, barrier):
    """One load-generator thread: keep-alive connection, seeded posts."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    barrier.wait()
    for i in range(nrequests):
        body = json.dumps({
            "circuit": {"json": circuit_dict},
            "shots": 256,
            # distinct seeds -> distinct cache keys -> real execution
            "seed": client_id * 100_000 + i,
        })
        t0 = perf_counter()
        try:
            conn.request("POST", "/v1/simulate", body)
            resp = conn.getresponse()
            resp.read()
            ok = resp.status == 200
        except (OSError, http.client.HTTPException):
            ok = False
            conn.close()
            conn = http.client.HTTPConnection(host, port, timeout=30)
        latencies.append(perf_counter() - t0)
        if not ok:
            failures.append((client_id, i))
    conn.close()


def _percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]


def run_load(clients=CLIENTS, nrequests=REQUESTS):
    """Drive the service with ``clients`` concurrent clients; returns
    the ``BENCH_service.json`` payload."""
    circuit_dict = circuit_to_dict(_workload_circuit())
    config = ServiceConfig(port=0, workers=clients, queue_size=256)
    latencies: list = []
    failures: list = []
    barrier = threading.Barrier(clients + 1)
    cache_before = plan_cache_info()

    with start_in_thread(config) as handle:
        threads = [
            threading.Thread(
                target=_client,
                args=(handle.host, handle.port, circuit_dict, c,
                      nrequests, latencies, failures, barrier),
            )
            for c in range(clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = perf_counter()
        for t in threads:
            t.join()
        wall = perf_counter() - t0
        gateway_metrics = {
            "timeouts": handle.gateway.metrics.counter(
                "repro_service_timeouts_total", ""
            ).total(),
            "throttles": handle.gateway.metrics.counter(
                "repro_service_throttles_total", ""
            ).total(),
        }

    cache_after = plan_cache_info()
    total = clients * nrequests
    ok = total - len(failures)
    ordered = sorted(latencies)
    return {
        "clients": clients,
        "requests_per_client": nrequests,
        "requests_total": total,
        "ok_fraction": ok / total,
        "wall_seconds": wall,
        "rps": ok / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "mean_ms": (sum(latencies) / len(latencies)) * 1e3,
        "plan_cache_misses": (
            cache_after["misses"] - cache_before["misses"]
        ),
        "service": gateway_metrics,
        "qubits": N_QUBITS,
        "shots_per_request": 256,
    }


def test_service_throughput_emit_json():
    """Load-test the gateway and emit ``BENCH_service.json``."""
    payload = run_load()
    path = emit_json("service", payload)
    print(
        f"BENCH-service | {payload['rps']:.1f} req/s at "
        f"{payload['clients']} clients, p50 {payload['p50_ms']:.1f} ms, "
        f"p99 {payload['p99_ms']:.1f} ms | wrote {path}"
    )
    assert payload["clients"] >= 4
    assert payload["ok_fraction"] == 1.0
    # signature-equal workload: the whole run costs at most one compile
    assert payload["plan_cache_misses"] <= 1


if __name__ == "__main__":
    payload = run_load()
    path = emit_json("service", payload)
    print(
        f"{payload['rps']:.1f} req/s at {payload['clients']} clients | "
        f"p50 {payload['p50_ms']:.1f} ms p99 {payload['p99_ms']:.1f} ms "
        f"| wrote {path}"
    )
