"""E4 — Grover's algorithm (paper Section 5.3).

Regenerates the paper's row — outcome '11' with probability 1.0000 —
and benchmarks the paper circuit plus the general-n generator, whose
success probability series demonstrates the O(sqrt(N)) scaling.
"""

import numpy as np
import pytest

from repro.algorithms import (
    grover_search,
    optimal_iterations,
    paper_grover_circuit,
)


def test_e4_rows(benchmark):
    sim = benchmark.pedantic(
        lambda: paper_grover_circuit().simulate("00"),
        rounds=1,
        iterations=1,
    )
    assert sim.results == ["11"]
    np.testing.assert_allclose(sim.probabilities, [1.0])
    print()
    print("E4 Grover | paper 2-qubit case: result "
          f"{sim.results[0]!r} probability {sim.probabilities[0]:.4f}")
    print("E4 Grover | n marked iterations success")
    for marked in ("11", "101", "1011", "11010", "110101"):
        r = grover_search(marked)
        print(
            f"E4 Grover | {len(marked)} |{marked}> {r.iterations} "
            f"{r.probability:.4f}"
        )
        assert r.found == marked


def test_e4_paper_circuit(benchmark):
    circuit = paper_grover_circuit()
    sim = benchmark(lambda: circuit.simulate("00"))
    assert sim.results == ["11"]


@pytest.mark.parametrize("n", [4, 6, 8, 10])
def test_e4_scaling(benchmark, n):
    marked = format((1 << n) - 3, f"0{n}b")
    r = benchmark(lambda: grover_search(marked))
    assert r.found == marked
    assert r.iterations == optimal_iterations(n)
