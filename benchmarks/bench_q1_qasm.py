"""Q1 — OpenQASM compatibility (paper Section 4).

Regenerates the paper's QASM listing for circuit (1) and benchmarks
export and import (round-trip) for the paper circuits and scaling
workloads.
"""

import numpy as np
import pytest

from benchmarks.workloads import bell_circuit, random_circuit
from repro.algorithms import bit_flip_code_circuit, teleportation_circuit
from repro.io.qasm_import import fromQASM


def test_q1_rows(benchmark):
    text = benchmark.pedantic(
        lambda: bell_circuit().toQASM(), rounds=1, iterations=1
    )
    print()
    for line in text.splitlines():
        print(f"Q1 qasm | {line}")
    assert "h q[0];" in text
    assert "cx q[0],q[1];" in text


@pytest.mark.parametrize(
    "name,builder",
    [
        ("bell", bell_circuit),
        ("teleportation", teleportation_circuit),
        ("qec", bit_flip_code_circuit),
    ],
)
def test_q1_export(benchmark, name, builder):
    circuit = builder()
    text = benchmark(circuit.toQASM)
    assert text.startswith("OPENQASM 2.0;")


def test_q1_import(benchmark):
    text = teleportation_circuit().toQASM()
    circuit = benchmark(lambda: fromQASM(text))
    assert circuit.nbQubits == 3


@pytest.mark.parametrize("nb_gates", [50, 200])
def test_q1_roundtrip_scaling(benchmark, nb_gates):
    circuit = random_circuit(5, nb_gates, seed=3)
    def roundtrip():
        return fromQASM(circuit.toQASM())

    back = benchmark(roundtrip)
    # equivalence up to global phase
    a, b = circuit.matrix, back.matrix
    k = np.argmax(np.abs(a))
    phase = b.flat[k] / a.flat[k]
    np.testing.assert_allclose(a * phase, b, atol=1e-7)
