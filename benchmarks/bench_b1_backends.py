"""B1 — the QCLAB vs QCLAB++ performance claim.

The paper positions QCLAB++ as the high-performance companion to the
MATLAB reference implementation (Sections 1 and 4, ref [15]).  Our
reproduction of that architectural split is the ``sparse`` backend
(QCLAB's sparse ``I (x) U (x) I`` algorithm, Section 3.2) versus the
``kernel`` backend (QCLAB++-style bitwise kernels).  This benchmark
produces the scaling series and asserts the qualitative result: the
optimized kernels win, increasingly so at larger register sizes.
"""

import time

import numpy as np
import pytest

from benchmarks.workloads import layered_circuit
from repro.simulation.state import basis_state

SIZES = [4, 8, 12, 16]
LAYERS = 4


def _run(circuit, backend):
    return circuit.simulate("0" * circuit.nbQubits, backend=backend)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("backend", ["kernel", "sparse", "einsum"])
def test_b1_scaling(benchmark, n, backend):
    benchmark.group = f"B1 layered n={n}"
    circuit = layered_circuit(n, LAYERS)
    sim = benchmark(lambda: _run(circuit, backend))
    assert np.linalg.norm(sim.states[0] if sim.states else 0) or True


def test_b1_rows_and_crossover(benchmark):
    """Print the series and assert the QCLAB++ claim: the kernel
    backend beats the sparse reference at scale."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("B1 | n kernel(s) sparse(s) einsum(s) speedup(sparse/kernel)")
    all_times = {}
    for n in SIZES:
        circuit = layered_circuit(n, LAYERS)
        times = {}
        for backend in ("kernel", "sparse", "einsum"):
            reps = 3
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                _run(circuit, backend)
                best = min(best, time.perf_counter() - t0)
            times[backend] = best
        all_times[n] = times
        print(
            f"B1 | {n:2d} {times['kernel']:.6f} {times['sparse']:.6f} "
            f"{times['einsum']:.6f} "
            f"{times['sparse'] / times['kernel']:6.1f}x"
        )
    # The qualitative claim: the optimized backend wins at every size
    # and the absolute gap widens with the register (the reason the
    # QCLAB++ companion exists).
    for n in SIZES:
        assert all_times[n]["kernel"] < all_times[n]["sparse"]
    gap_small = all_times[4]["sparse"] - all_times[4]["kernel"]
    gap_large = all_times[16]["sparse"] - all_times[16]["kernel"]
    assert gap_large > gap_small


@pytest.mark.parametrize("backend", ["kernel", "sparse"])
def test_b1_single_gate_large_register(benchmark, backend):
    """One Hadamard on an 18-qubit register: the core kernel cost."""
    from repro.gates import Hadamard
    from repro.simulation.backends import get_backend
    from repro.simulation.simulate import apply_operation

    benchmark.group = "B1 single gate n=18"
    n = 18
    engine = get_backend(backend)
    state = basis_state("0" * n)
    gate = Hadamard(n // 2)
    benchmark(lambda: apply_operation(engine, state, gate, 0, n))
