"""B6 — circuit optimization passes (ablation of the stable-fusion
design choice the toolbox's QAngle/QRotation machinery enables).

Regenerates the gate-count-reduction series and benchmarks each pass.
"""

import numpy as np
import pytest

from benchmarks.workloads import random_circuit
from repro.circuit import QCircuit
from repro.gates import Hadamard, RotationZ
from repro.transforms import (
    cancel_inverses,
    flatten,
    fuse_rotations,
    optimize,
)


def redundant_circuit(nb_qubits, repeats, seed=0):
    """Random circuit followed by pieces of its own inverse: rich in
    fusable/cancellable structure."""
    rng = np.random.default_rng(seed)
    c = QCircuit(nb_qubits)
    for _ in range(repeats):
        q = int(rng.integers(0, nb_qubits))
        c.push_back(RotationZ(q, float(rng.normal())))
        c.push_back(RotationZ(q, float(rng.normal())))
        c.push_back(Hadamard(q))
        c.push_back(Hadamard(q))
    return c


def test_b6_rows(benchmark):
    benchmark.pedantic(
        lambda: optimize(redundant_circuit(4, 20)), rounds=1, iterations=1
    )
    print()
    print("B6 | circuit gates-before gates-after")
    for label, circuit in (
        ("redundant", redundant_circuit(4, 20)),
        ("random", random_circuit(4, 60, seed=1)),
    ):
        out = optimize(circuit)
        print(f"B6 | {label} {circuit.nbGates} {out.nbGates}")
        assert out.nbGates <= circuit.nbGates
    # the redundant circuit reduces to at most one fused RZ per qubit
    assert optimize(redundant_circuit(4, 20)).nbGates <= 4


@pytest.mark.parametrize("nb_gates", [50, 200])
def test_b6_optimize(benchmark, nb_gates):
    benchmark.group = "B6 optimize"
    circuit = random_circuit(5, nb_gates, seed=2)
    reference = circuit.matrix
    out = benchmark(lambda: optimize(circuit))
    np.testing.assert_allclose(out.matrix, reference, atol=1e-10)


def test_b6_fuse_rotations(benchmark):
    circuit = redundant_circuit(4, 30)
    out = benchmark(lambda: fuse_rotations(circuit))
    assert out.nbGates < circuit.nbGates


def test_b6_cancel_inverses(benchmark):
    circuit = redundant_circuit(4, 30)
    out = benchmark(lambda: cancel_inverses(circuit))
    assert out.nbGates < circuit.nbGates


def test_b6_flatten(benchmark):
    circuit = random_circuit(5, 100, seed=3)
    out = benchmark(lambda: flatten(circuit))
    assert len(out) == 100
