"""E3 — quantum state tomography (paper Section 5.2).

Regenerates the paper's rows: seeded X-basis counts (paper: 471/529
with MATLAB's rng(1)), the S coefficients, the reconstructed density
matrix and the trace distance; benchmarks the counts workflow and the
full reconstruction.
"""

import numpy as np
import pytest

from benchmarks.workloads import V_PAPER
from repro.algorithms import single_qubit_tomography
from repro.circuit import Measurement, QCircuit


def test_e3_rows(benchmark):
    result = benchmark.pedantic(
        lambda: single_qubit_tomography(V_PAPER, shots=1000, seed=1),
        rounds=1,
        iterations=1,
    )
    print()
    counts = result.counts["x"]
    print(f"E3 tomography | counts_x = [{counts[0]}, {counts[1]}] "
          "(paper @ rng(1): [471, 529])")
    s = result.s
    print(f"E3 tomography | S = [{s[0]:.3f}, {s[1]:.3f}, {s[2]:.3f}, "
          f"{s[3]:.3f}] (paper: [1, -0.058, 1, -0.012])")
    print(f"E3 tomography | trace distance = {result.distance:.4f} "
          "(paper: 0.006)")
    assert result.s[0] == pytest.approx(1.0)
    assert result.s[2] == pytest.approx(1.0)
    assert result.distance < 0.06


@pytest.mark.parametrize("shots", [100, 1000, 10_000])
def test_e3_counts(benchmark, shots):
    meas_x = QCircuit(1)
    meas_x.push_back(Measurement(0, "x"))
    res_x = meas_x.simulate(V_PAPER)
    counts = benchmark(lambda: res_x.counts(shots, seed=1))
    assert counts.sum() == shots


def test_e3_full_reconstruction(benchmark):
    result = benchmark(
        lambda: single_qubit_tomography(V_PAPER, shots=1000, seed=1)
    )
    assert result.distance < 0.06


def test_e3_pauli_tomography_two_qubits(benchmark):
    from repro.algorithms import pauli_tomography

    bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
    result = benchmark(
        lambda: pauli_tomography(bell, shots=1000, seed=5)
    )
    assert result.distance < 0.1
