"""Conformance harness throughput — circuits oracled per second.

Times a fixed conformance sweep (the same circuit distribution the CI
smoke job uses) and records oracle throughput to
``BENCH_conformance.json``: circuits fully cross-checked per second,
seeds per minute, and the check-group count, so regressions in the
oracle's own cost (each new engine multiplies the differential
surface) show up next to the simulator benchmarks.

Run directly (``python benchmarks/bench_conformance.py``) or through
pytest.
"""

import sys
from pathlib import Path

SEEDS = 25


def _run():
    from repro.conformance import (
        GeneratorConfig,
        OracleConfig,
        run_conformance,
    )

    return run_conformance(
        seeds=SEEDS,
        generator=GeneratorConfig(max_qubits=4, max_ops=16),
        oracle=OracleConfig(trajectory_shots=8, sampling_shots=128),
    )


def test_conformance_throughput():
    """Time the sweep and emit ``BENCH_conformance.json``."""
    try:
        from benchmarks.harness import emit_json, timed_run
    except ImportError:  # run directly from the benchmarks/ directory
        from harness import emit_json, timed_run  # type: ignore

    reports = []
    timed = timed_run(lambda: reports.append(_run()), repeats=3, warmup=1)
    report = reports[-1]
    assert report.ok, report.summary()

    seconds = timed.median
    payload = {
        "workload": {
            "seeds": SEEDS,
            "max_qubits": 4,
            "max_ops": 16,
            "trajectory_shots": 8,
            "sampling_shots": 128,
        },
        "nb_circuits": report.nb_circuits,
        "nb_check_groups": report.nb_checks,
        "median_seconds": seconds,
        "circuits_per_second": report.nb_circuits / seconds,
        "seeds_per_minute": 60.0 * SEEDS / seconds,
        "timings": timed.as_dict(),
    }
    emit_json("conformance", payload)
    print(
        f"conformance throughput: "
        f"{payload['circuits_per_second']:.1f} circuits/s "
        f"({payload['seeds_per_minute']:.0f} seeds/min)"
    )


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "src")
    )
    test_conformance_throughput()
