"""E1 — the paper's running example (circuit (1), Sections 2-3).

Regenerates the printed rows: results {'00','11'} with probabilities
0.5/0.5, and benchmarks circuit construction + simulation.
"""

import numpy as np
import pytest

from benchmarks.workloads import bell_circuit


def _check(sim):
    assert sim.results == ["00", "11"]
    np.testing.assert_allclose(sim.probabilities, [0.5, 0.5])


def test_e1_rows(benchmark):
    """Regenerate the paper's reported rows."""
    sim = benchmark.pedantic(
        lambda: bell_circuit().simulate("00"), rounds=1, iterations=1
    )
    _check(sim)
    print()
    print("E1 circuit (1) | result probability")
    for result, p in zip(sim.results, sim.probabilities):
        print(f"E1 circuit (1) | {result!r:>4} {p:.4f}")


@pytest.mark.parametrize("backend", ["kernel", "sparse", "einsum"])
def test_e1_simulate(benchmark, backend):
    circuit = bell_circuit()
    sim = benchmark(lambda: circuit.simulate("00", backend=backend))
    _check(sim)


def test_e1_construction(benchmark):
    circuit = benchmark(bell_circuit)
    assert len(circuit) == 4


def test_e1_vector_start(benchmark):
    circuit = bell_circuit()
    start = np.array([1, 0, 0, 0], dtype=complex)
    sim = benchmark(lambda: circuit.simulate(start))
    _check(sim)
