"""Parametric sweeps — bind() and sweep() vs recompile-per-point.

Measures the three ways to evaluate one ansatz over many parameter
points:

* **recompiled** — rebuild the circuit with concrete angles at every
  point (the historical idiom; every point recompiles the plan);
* **bound** — build the ansatz once over symbolic ``Parameter`` slots,
  then ``bind(values).simulate()`` per point (every point is a plan
  cache hit; only the parametric kernel tables are refilled);
* **swept** — one vectorized ``sweep(matrix)`` call executing a
  ``(P, 2^n)`` parameter-batched pass per plan step.

Also times the VQE energy sweep (`h2_hamiltonian` over the
hardware-efficient ansatz, the `bench_b7` workload) three ways —
recompile-per-point, per-point ``bind()``, and the vectorized
bind-path ``sweep()`` with batched expectations — and asserts the
bind path (compile once, bind every point) is at least 10x faster
than recompile-per-point.  Emits ``BENCH_sweep.json``; the point
count is overridable via ``BENCH_SWEEP_POINTS``.
"""

import os

import numpy as np
import pytest

from repro import Parameter
from repro.algorithms import h2_hamiltonian, hardware_efficient_ansatz
from repro.simulation import clear_plan_cache
from repro.simulation.state import basis_state

NB_QUBITS = 4
LAYERS = 2


def _points(default=100):
    return int(os.environ.get("BENCH_SWEEP_POINTS", str(default)))


def test_param_sweep(benchmark):
    """points/sec of recompiled vs bound vs vectorized sweep; emits
    ``BENCH_sweep.json``."""
    try:
        from benchmarks.harness import emit_json, timed_run
    except ImportError:  # run directly from the benchmarks/ directory
        from harness import emit_json, timed_run

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    nb_points = _points()
    rng = np.random.default_rng(0)
    nb_params = NB_QUBITS * (LAYERS + 1)
    matrix = rng.uniform(-np.pi, np.pi, size=(nb_points, nb_params))
    start = "0" * NB_QUBITS

    ansatz = hardware_efficient_ansatz(NB_QUBITS, LAYERS)
    thetas = ansatz.parameters

    def recompiled():
        # drop cached plans so every repeat really recompiles per point
        clear_plan_cache()
        return np.stack([
            hardware_efficient_ansatz(NB_QUBITS, LAYERS, row)
            .simulate(start).states[0]
            for row in matrix
        ])

    def bound():
        return np.stack([
            ansatz.bind(dict(zip(thetas, row))).simulate(start).states[0]
            for row in matrix
        ])

    def swept():
        return ansatz.sweep(matrix).states

    clear_plan_cache()
    t_recompiled = timed_run(recompiled, repeats=3)
    t_bound = timed_run(bound, repeats=3)
    t_swept = timed_run(swept, repeats=3)

    # all three paths must agree before their timings mean anything
    assert np.allclose(t_recompiled.value, t_bound.value, atol=1e-10)
    assert np.allclose(t_recompiled.value, t_swept.value, atol=1e-10)

    recompiled_pps = nb_points / t_recompiled.best
    bound_pps = nb_points / t_bound.best
    swept_pps = nb_points / t_swept.best

    # -- the VQE energy loop, both ways ------------------------------------
    h = h2_hamiltonian()
    zero = basis_state("00")
    vqe_matrix = rng.uniform(-np.pi, np.pi, size=(nb_points, 4))
    vqe_ansatz = hardware_efficient_ansatz(2, 1)
    vqe_thetas = vqe_ansatz.parameters

    def vqe_legacy():
        clear_plan_cache()
        return [
            h.expectation(
                hardware_efficient_ansatz(2, 1, row)
                .simulate(zero).states[0]
            )
            for row in vqe_matrix
        ]

    def vqe_bound():
        return [
            h.expectation(
                vqe_ansatz.bind(dict(zip(vqe_thetas, row)))
                .simulate(zero).states[0]
            )
            for row in vqe_matrix
        ]

    def vqe_swept():
        return h.expectations(vqe_ansatz.sweep(vqe_matrix).states)

    clear_plan_cache()
    t_vqe_legacy = timed_run(vqe_legacy, repeats=3)
    t_vqe_bound = timed_run(vqe_bound, repeats=3)
    t_vqe_swept = timed_run(vqe_swept, repeats=3)
    assert np.allclose(t_vqe_legacy.value, t_vqe_bound.value)
    assert np.allclose(t_vqe_legacy.value, t_vqe_swept.value)
    vqe_bind_speedup = t_vqe_legacy.best / t_vqe_bound.best
    vqe_speedup = t_vqe_legacy.best / t_vqe_swept.best

    print()
    print(f"SWEEP | {NB_QUBITS}q/{LAYERS}-layer ansatz, "
          f"{nb_points} points, {nb_params} parameters")
    print(f"SWEEP | recompiled {recompiled_pps:9.0f} points/s")
    print(f"SWEEP | bound      {bound_pps:9.0f} points/s "
          f"({bound_pps / recompiled_pps:.1f}x)")
    print(f"SWEEP | swept      {swept_pps:9.0f} points/s "
          f"({swept_pps / recompiled_pps:.1f}x)")
    print(f"SWEEP | VQE energy sweep: {vqe_bind_speedup:.1f}x "
          f"point-by-point bind, {vqe_speedup:.1f}x vectorized "
          "sweep vs recompile")

    # the acceptance criterion: the bind path (compile once, bind every
    # point — vectorized via sweep()) at least 10x recompile-per-point
    # on the VQE energy sweep
    assert vqe_speedup >= 10.0, (
        f"bind path only {vqe_speedup:.1f}x faster than recompile"
    )
    assert bound_pps > recompiled_pps

    emit_json("sweep", {
        "workload": {
            "nb_qubits": NB_QUBITS,
            "layers": LAYERS,
            "nb_parameters": nb_params,
            "nb_points": nb_points,
        },
        "recompiled_points_per_s": recompiled_pps,
        "bound_points_per_s": bound_pps,
        "swept_points_per_s": swept_pps,
        "speedup_bound_vs_recompiled": bound_pps / recompiled_pps,
        "speedup_swept_vs_recompiled": swept_pps / recompiled_pps,
        "recompiled": t_recompiled.as_dict("recompiled_"),
        "bound": t_bound.as_dict("bound_"),
        "swept": t_swept.as_dict("swept_"),
        "vqe_energy_loop": {
            "nb_points": nb_points,
            "legacy": t_vqe_legacy.as_dict("legacy_"),
            "bound": t_vqe_bound.as_dict("bound_"),
            "swept": t_vqe_swept.as_dict("swept_"),
            "speedup_bind_per_point": vqe_bind_speedup,
            "speedup": vqe_speedup,
        },
    })


@pytest.mark.parametrize("mode", ["recompiled", "bound", "swept"])
def test_param_point(benchmark, mode):
    """Per-point cost of each evaluation path (16-point chunks)."""
    benchmark.group = "param sweep modes"
    rng = np.random.default_rng(1)
    matrix = rng.uniform(-np.pi, np.pi,
                         size=(16, NB_QUBITS * (LAYERS + 1)))
    start = "0" * NB_QUBITS
    ansatz = hardware_efficient_ansatz(NB_QUBITS, LAYERS)
    thetas = ansatz.parameters

    if mode == "recompiled":
        fn = lambda: [
            hardware_efficient_ansatz(NB_QUBITS, LAYERS, row)
            .simulate(start).states[0] for row in matrix
        ]
    elif mode == "bound":
        fn = lambda: [
            ansatz.bind(dict(zip(thetas, row))).simulate(start).states[0]
            for row in matrix
        ]
    else:
        fn = lambda: ansatz.sweep(matrix).states

    out = benchmark(fn)
    assert len(out) == 16
