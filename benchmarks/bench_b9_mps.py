"""B9 — MPS vs state-vector scaling on low-entanglement circuits.

The fourth engine's claim: bounded-entanglement circuits cost
``O(n chi^3)`` per gate instead of ``O(2^n)``.  Regenerates the
scaling rows (GHZ chains to 100 qubits, where the dense state cannot
exist) and benchmarks gate application and sampling.
"""

import time

import numpy as np
import pytest

from repro.circuit import Measurement, QCircuit
from repro.gates import CNOT, CZ, Hadamard, RotationY
from repro.simulation.mps import MPSState, mps_counts, simulate_mps


def ghz(n, measure=False):
    c = QCircuit(n)
    c.push_back(Hadamard(0))
    for q in range(n - 1):
        c.push_back(CNOT(q, q + 1))
    if measure:
        for q in range(n):
            c.push_back(Measurement(q))
    return c


def brickwork(n, layers, theta=0.3):
    c = QCircuit(n)
    for layer in range(layers):
        for q in range(n):
            c.push_back(RotationY(q, theta))
        for q in range(layer % 2, n - 1, 2):
            c.push_back(CZ(q, q + 1))
    return c


def test_b9_rows(benchmark):
    benchmark.pedantic(
        lambda: simulate_mps(ghz(50)), rounds=1, iterations=1
    )
    print()
    print("B9 | n mps(s) statevector(s) max-bond")
    for n in (8, 12, 16):
        c = ghz(n)
        t0 = time.perf_counter()
        _, state = simulate_mps(c)
        t_mps = time.perf_counter() - t0
        t0 = time.perf_counter()
        c.simulate("0" * n)
        t_sv = time.perf_counter() - t0
        print(f"B9 | {n:3d} {t_mps:.5f} {t_sv:.5f} {state.max_bond_seen}")
    for n in (50, 100):
        t0 = time.perf_counter()
        _, state = simulate_mps(ghz(n))
        t_mps = time.perf_counter() - t0
        print(f"B9 | {n:3d} {t_mps:.5f} (infeasible) "
              f"{state.max_bond_seen}")
        assert abs(state.amplitude("1" * n)) ** 2 == pytest.approx(
            0.5, abs=1e-9
        )
    # truncation fidelity on a weakly entangling brickwork circuit
    c = brickwork(10, 4)
    _, exact = simulate_mps(c)
    for chi in (2, 4, 8):
        _, capped = simulate_mps(c, chi_max=chi)
        overlap = 0.0
        # fidelity via sampled amplitudes on computational basis would be
        # noisy; contract both to vectors instead (n = 10 is fine)
        a = exact.to_statevector()
        b = capped.to_statevector()
        overlap = abs(np.vdot(a, b)) ** 2
        print(f"B9 | chi={chi} brickwork fidelity {overlap:.6f}")
        if chi >= 8:
            assert overlap > 0.999


@pytest.mark.parametrize("n", [10, 30, 60])
def test_b9_ghz_build(benchmark, n):
    benchmark.group = "B9 GHZ build"
    circuit = ghz(n)
    _, state = benchmark(lambda: simulate_mps(circuit))
    assert state.max_bond_seen == 2


@pytest.mark.parametrize("chi", [4, 16])
def test_b9_brickwork_capped(benchmark, chi):
    benchmark.group = "B9 brickwork"
    circuit = brickwork(16, 4)
    _, state = benchmark(
        lambda: simulate_mps(circuit, chi_max=chi)
    )
    assert state.max_bond_seen <= chi


def test_b9_sampling(benchmark):
    circuit = ghz(20, measure=True)
    counts = benchmark.pedantic(
        lambda: mps_counts(circuit, shots=50, seed=0),
        rounds=1,
        iterations=1,
    )
    assert set(counts) <= {"0" * 20, "1" * 20}
