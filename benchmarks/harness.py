"""Shared benchmark harness: warmup, repeated timing, JSON emission.

Every ``BENCH_*.json`` emitter used to hand-roll its own
``perf_counter`` loop and ``json.dumps`` block.  This module gives the
benches one vocabulary:

``timed_run(fn, repeats=5, warmup=1)``
    Call ``fn`` ``warmup`` times untimed, then ``repeats`` times timed;
    returns a :class:`TimedRuns` with best / median / mean seconds and
    the last return value.

``emit_json(name, payload)``
    Write a payload to ``<repo root>/BENCH_<name>.json`` (or a full
    filename), pretty-printed with a trailing newline, and return the
    path.

The harness composes with :mod:`repro.observability`: pass
``instrumented=True`` to ``timed_run`` to run the timed region inside
an ``instrument()`` block and get the profile back alongside the
timings.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, List, Optional

__all__ = [
    "TimedRuns",
    "timed_run",
    "emit_json",
    "machine_info",
    "repo_root",
    "SCHEMA_VERSION",
]


@dataclass
class TimedRuns:
    """Timings of repeated calls, plus the last call's return value."""

    seconds: List[float] = field(default_factory=list)
    value: Any = None
    #: Per-run profile reports when ``instrumented=True`` was used.
    report: Any = None

    @property
    def best(self) -> float:
        """Fastest run (the usual benchmark headline number)."""
        return min(self.seconds)

    @property
    def median(self) -> float:
        """Median run — robust to one-off jitter."""
        return statistics.median(self.seconds)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the runs."""
        return statistics.fmean(self.seconds)

    def as_dict(self, prefix: str = "") -> dict:
        """``{prefix}best/median/mean_seconds`` keys for JSON payloads."""
        return {
            f"{prefix}best_seconds": self.best,
            f"{prefix}median_seconds": self.median,
            f"{prefix}mean_seconds": self.mean,
            f"{prefix}repeats": len(self.seconds),
        }


def timed_run(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
    instrumented: bool = False,
) -> TimedRuns:
    """Time ``fn()`` over ``repeats`` calls after ``warmup`` untimed
    calls.

    With ``instrumented=True`` the timed calls run inside one
    :func:`repro.observability.instrument` block and ``result.report``
    carries the accumulated :class:`~repro.observability.ProfileReport`
    (tracing adds overhead — don't compare instrumented timings against
    uninstrumented ones).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    result = TimedRuns()

    def measure():
        for _ in range(int(warmup)):
            fn()
        for _ in range(int(repeats)):
            t0 = perf_counter()
            result.value = fn()
            result.seconds.append(perf_counter() - t0)

    if instrumented:
        from repro.observability import instrument

        with instrument() as inst:
            measure()
        result.report = inst.report()
    else:
        measure()
    return result


def repo_root() -> Path:
    """The repository root (parent of ``benchmarks/``)."""
    return Path(__file__).resolve().parent.parent


#: Version of the ``meta`` block stamped into every ``BENCH_*.json``.
SCHEMA_VERSION = 1


def machine_info() -> dict:
    """The machine fingerprint stamped into benchmark payloads.

    ``tools/bench_regress.py`` compares it against the committed
    baseline's fingerprint: absolute timings measured on a different
    machine get a widened tolerance band, machine-independent ratios
    (speedups) are enforced as-is.
    """
    import os
    import platform

    import numpy as np

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def emit_json(name: str, payload: dict, root: Optional[Path] = None) -> Path:
    """Write ``payload`` as ``BENCH_<name>.json`` at the repo root.

    ``name`` may also be a full ``*.json`` filename; returns the path
    written.  A ``meta`` block — schema version, UTC timestamp and the
    :func:`machine_info` fingerprint — is stamped into a copy of the
    payload (an existing ``meta`` key is preserved), so every emitted
    benchmark records where and when it was measured.
    """
    from datetime import datetime, timezone

    filename = name if name.endswith(".json") else f"BENCH_{name}.json"
    out = (root or repo_root()) / filename
    stamped = dict(payload)
    stamped.setdefault(
        "meta",
        {
            "schema_version": SCHEMA_VERSION,
            "emitted_at": datetime.now(timezone.utc).isoformat(),
            "machine": machine_info(),
        },
    )
    out.write_text(json.dumps(stamped, indent=2) + "\n")
    return out
