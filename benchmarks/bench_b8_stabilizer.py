"""B8 — stabilizer vs state-vector scaling (the Pauli-frame remark of
the paper's QEC footnote, made quantitative).

Clifford circuits simulate in polynomial time on the CHP tableau while
the state-vector engines scale exponentially; this bench regenerates
the crossover series and benchmarks both engines on the same circuits.
"""

import time

import numpy as np
import pytest

from repro.circuit import Measurement, QCircuit
from repro.gates import CNOT, Hadamard
from repro.simulation.stabilizer import (
    simulate_stabilizer,
    stabilizer_counts,
)


def ghz_measured(n):
    c = QCircuit(n)
    c.push_back(Hadamard(0))
    for q in range(n - 1):
        c.push_back(CNOT(q, q + 1))
    for q in range(n):
        c.push_back(Measurement(q))
    return c


def test_b8_rows(benchmark):
    benchmark.pedantic(
        lambda: simulate_stabilizer(ghz_measured(50), rng=0),
        rounds=1,
        iterations=1,
    )
    print()
    print("B8 | n stabilizer(s) statevector(s)")
    for n in (4, 8, 12, 16):
        c = ghz_measured(n)
        t0 = time.perf_counter()
        simulate_stabilizer(c, rng=0)
        t_stab = time.perf_counter() - t0
        t0 = time.perf_counter()
        c.simulate("0" * n)
        t_sv = time.perf_counter() - t0
        print(f"B8 | {n:3d} {t_stab:.5f} {t_sv:.5f}")
    for n in (50, 100, 200):
        c = ghz_measured(n)
        t0 = time.perf_counter()
        result, _ = simulate_stabilizer(c, rng=0)
        t_stab = time.perf_counter() - t0
        print(f"B8 | {n:3d} {t_stab:.5f} (statevector infeasible)")
        assert result in ("0" * n, "1" * n)


@pytest.mark.parametrize("n", [8, 16, 50, 100])
def test_b8_stabilizer_shot(benchmark, n):
    benchmark.group = "B8 stabilizer shot"
    circuit = ghz_measured(n)
    rng = np.random.default_rng(1)
    result, _ = benchmark(lambda: simulate_stabilizer(circuit, rng=rng))
    assert len(result) == n


@pytest.mark.parametrize("n", [8, 16])
def test_b8_statevector_shot(benchmark, n):
    benchmark.group = "B8 statevector shot"
    circuit = ghz_measured(n)
    sim = benchmark(lambda: circuit.simulate("0" * n))
    assert sim.nbBranches == 2


def test_b8_counts(benchmark):
    circuit = ghz_measured(10)
    counts = benchmark.pedantic(
        lambda: stabilizer_counts(circuit, shots=200, seed=2),
        rounds=1,
        iterations=1,
    )
    assert sum(counts.values()) == 200
