"""Kernel acceleration tier: ``strided`` (and ``jit``) vs ``kernel``.

The BENCH_plan workload — the deep 1q-heavy 12-qubit circuit of
``bench_b2_gate_apply`` — executed through a warm compiled plan on
each statevector backend of the acceleration tier:

* **kernel** — the reference gather/einsum backend (Level 0),
* **strided** — the pure-NumPy strided backend (Level 1, always on):
  precomputed kron-GEMM / broadcast-matmul tables executed into the
  dispatch loop's double-buffered scratch pair,
* **jit** — the numba backend (Level 2), timed only when numba is
  installed (``pip install .[accel]``).

Emits ``BENCH_kernel.json`` with per-backend planned wall times and
the ``speedup_strided_vs_kernel`` ratio gated by
``tools/bench_regress.py`` (acceptance floor: >= 2x).  Run directly
(``python benchmarks/bench_kernel.py``) or through pytest.
"""

import numpy as np

try:
    from benchmarks.bench_b2_gate_apply import _layered_1q_circuit
    from benchmarks.harness import emit_json, timed_run
except ImportError:  # direct execution from the benchmarks/ directory
    from bench_b2_gate_apply import _layered_1q_circuit
    from harness import emit_json, timed_run
from repro.simulation import (
    HAVE_NUMBA,
    SimulationOptions,
    clear_plan_cache,
    simulate,
)
from repro.simulation.plan import get_plan

#: The BENCH_plan workload shape (12 qubits, 12 RX/RZ+CZ layers).
N_QUBITS = 12
N_LAYERS = 12
REPEATS = 7


def _backends():
    names = ["kernel", "strided"]
    if HAVE_NUMBA:
        names.append("jit")
    return names


def run_tier(repeats=REPEATS):
    """Time the planned workload per backend; returns the
    ``BENCH_kernel.json`` payload."""
    circuit = _layered_1q_circuit(N_QUBITS, N_LAYERS)
    start = "0" * N_QUBITS
    clear_plan_cache()
    results = {}
    states = {}
    for name in _backends():
        # pay compilation (and any JIT warm-up) outside the timed region
        get_plan(circuit, name)
        opts = SimulationOptions(backend=name)
        runs = timed_run(
            lambda: simulate(circuit, start, options=opts),
            repeats=repeats,
            warmup=1,
        )
        results[name] = runs
        states[name] = runs.value.states[0]
        print(
            f"BENCH-kernel | {name:>8}: {runs.best * 1e3:7.3f} ms best "
            f"({runs.median * 1e3:.3f} ms median)"
        )
    for name in _backends()[1:]:
        assert (
            np.abs(states[name] - states["kernel"]).max() <= 1e-10
        ), f"{name} diverged from kernel"
    payload = {
        "benchmark": "kernel-tier",
        "workload": f"layered_1q_{N_QUBITS}q_{N_LAYERS}l",
        "nb_qubits": N_QUBITS,
        "backends": _backends(),
        "speedup_strided_vs_kernel": (
            results["kernel"].best / results["strided"].best
        ),
    }
    for name, runs in results.items():
        payload[f"{name}_planned_seconds"] = runs.best
        payload.update(runs.as_dict(f"{name}_"))
    if HAVE_NUMBA:
        payload["speedup_jit_vs_kernel"] = (
            results["kernel"].best / results["jit"].best
        )
    return payload


def test_kernel_tier_emit_json():
    payload = run_tier()
    path = emit_json("kernel", payload)
    print(f"BENCH-kernel | wrote {path}")
    # Level 1 acceptance floor: pure NumPy strided >= 2x kernel
    assert payload["speedup_strided_vs_kernel"] >= 2.0


if __name__ == "__main__":
    payload = run_tier()
    path = emit_json("kernel", payload)
    print(
        f"strided speedup {payload['speedup_strided_vs_kernel']:.2f}x | "
        f"wrote {path}"
    )
