"""E2 — quantum teleportation (paper Section 5.1).

Regenerates the printed rows: four outcomes with probability 0.25 and
the reduced receiver state (0.7071, 0.7071i), and benchmarks the
protocol end to end.
"""

import numpy as np
import pytest

from benchmarks.workloads import V_PAPER
from repro.algorithms import teleport, teleportation_circuit
from repro.simulation.reduced import reducedStatevector


def test_e2_rows(benchmark):
    r = benchmark.pedantic(
        lambda: teleport(V_PAPER), rounds=1, iterations=1
    )
    assert r.results == ["00", "01", "10", "11"]
    np.testing.assert_allclose(r.probabilities, [0.25] * 4)
    np.testing.assert_allclose(r.received[0], [0.7071, 0.7071j], atol=5e-5)
    print()
    print("E2 teleportation | result probability received(q2)")
    for res, p, rec in zip(r.results, r.probabilities, r.received):
        print(
            f"E2 teleportation | {res!r} {p:.4f} "
            f"[{rec[0]:.4f}, {rec[1]:.4f}]"
        )


@pytest.mark.parametrize("backend", ["kernel", "sparse"])
def test_e2_full_protocol(benchmark, backend):
    r = benchmark(lambda: teleport(V_PAPER, backend=backend))
    assert r.worst_error < 1e-12


def test_e2_simulation_only(benchmark):
    qtc = teleportation_circuit()
    bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
    initial = np.kron(V_PAPER, bell)
    sim = benchmark(lambda: qtc.simulate(initial))
    assert sim.nbBranches == 4


def test_e2_reduced_statevector(benchmark):
    sim = teleportation_circuit().simulate(
        np.kron(V_PAPER, np.array([1, 0, 0, 1]) / np.sqrt(2))
    )
    out = benchmark(
        lambda: reducedStatevector(sim.states[0], [0, 1], sim.results[0])
    )
    np.testing.assert_allclose(out, V_PAPER, atol=1e-12)
