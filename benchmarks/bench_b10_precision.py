"""B10 — working-precision ablation (QCLAB++'s template parameter T).

QCLAB++ instantiates its kernels for float and double; our dtype
parameter mirrors that.  This bench measures the complex64 vs
complex128 split on the optimized backend and checks that single
precision stays accurate at the expected 1e-6 scale.
"""

import numpy as np
import pytest

from benchmarks.workloads import layered_circuit
from repro.algorithms import teleportation_circuit


def test_b10_rows(benchmark):
    benchmark.pedantic(
        lambda: layered_circuit(12, 4).simulate(
            "0" * 12, dtype=np.complex64
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("B10 | precision check: teleportation in complex64")
    qtc = teleportation_circuit()
    v = np.array([1 / np.sqrt(2), 1j / np.sqrt(2)], dtype=np.complex64)
    bell = (np.array([1, 0, 0, 1]) / np.sqrt(2)).astype(np.complex64)
    init = np.kron(v, bell)
    s32 = qtc.simulate(init, dtype=np.complex64)
    init64 = init.astype(np.complex128)
    init64 /= np.linalg.norm(init64)
    s64 = qtc.simulate(init64)
    worst = max(
        np.abs(a.astype(np.complex128) - b).max()
        for a, b in zip(s32.states, s64.states)
    )
    print(f"B10 | max |complex64 - complex128| deviation: {worst:.2e}")
    assert worst < 1e-6
    for state in s32.states:
        assert state.dtype == np.complex64


@pytest.mark.parametrize("dtype", [np.complex64, np.complex128],
                         ids=["complex64", "complex128"])
@pytest.mark.parametrize("n", [10, 14])
def test_b10_simulate(benchmark, dtype, n):
    benchmark.group = f"B10 n={n}"
    circuit = layered_circuit(n, 4)
    sim = benchmark(
        lambda: circuit.simulate("0" * n, dtype=dtype)
    )
    assert sim.states[0].dtype == dtype
