"""B5 — FABLE block encodings (ablation over the compression
threshold; paper refs [6, 7]).

Regenerates the accuracy-vs-compression series and benchmarks circuit
synthesis and verification.
"""

import numpy as np
import pytest

from repro.compilers import block_encoding_block, fable


def _matrix(n, kind, seed=0):
    rng = np.random.default_rng(seed)
    if kind == "random":
        return rng.uniform(-1, 1, size=(1 << n, 1 << n))
    if kind == "lowrank":
        u = np.linspace(0.1, 0.9, 1 << n)
        return np.outer(u, u[::-1])
    return np.full((1 << n, 1 << n), 0.5)


def test_b5_rows(benchmark):
    benchmark.pedantic(
        lambda: fable(_matrix(2, "random")), rounds=1, iterations=1
    )
    print()
    print("B5 | matrix threshold rotations error")
    for kind in ("random", "lowrank", "constant"):
        a = _matrix(3, kind)
        for threshold in (0.0, 0.01, 0.1):
            res = fable(a, threshold=threshold)
            err = np.abs(block_encoding_block(res) - a).max()
            print(
                f"B5 | {kind:>8} {threshold:<5g} "
                f"{res.rotations_kept:>3}/{res.rotations_total:<3} "
                f"{err:.2e}"
            )
            if threshold == 0.0:
                assert err < 1e-10


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_b5_synthesis(benchmark, n):
    benchmark.group = "B5 synthesis"
    a = _matrix(n, "random", seed=n)
    res = benchmark(lambda: fable(a))
    assert res.circuit.nbQubits == 2 * n + 1


@pytest.mark.parametrize("threshold", [0.0, 0.01, 0.1])
def test_b5_compressed_synthesis(benchmark, threshold):
    benchmark.group = "B5 compression"
    a = _matrix(3, "lowrank")
    res = benchmark(lambda: fable(a, threshold=threshold))
    assert res.rotations_kept <= res.rotations_total


def test_b5_verification(benchmark):
    a = _matrix(2, "random", seed=11)
    res = fable(a)
    block = benchmark(lambda: block_encoding_block(res))
    np.testing.assert_allclose(block, a, atol=1e-11)
