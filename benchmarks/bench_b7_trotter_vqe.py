"""B7 — Trotter evolution error scaling and the VQE workflow
(variational + time-evolution extensions; the F3C-adjacent workloads of
paper refs [5, 6]).
"""

import numpy as np
import pytest
import scipy.linalg

from repro.algorithms import (
    h2_hamiltonian,
    hardware_efficient_ansatz,
    trotter_circuit,
    vqe_minimize,
)
from repro.simulation.observables import PauliSum

TFIM = PauliSum(
    [(-1.0, "zzi"), (-1.0, "izz"), (-0.7, "xii"), (-0.7, "ixi"),
     (-0.7, "iix")]
)


def test_b7_rows(benchmark):
    benchmark.pedantic(
        lambda: trotter_circuit(TFIM, 0.8, 4, 2).matrix,
        rounds=1,
        iterations=1,
    )
    print()
    u_exact = scipy.linalg.expm(-1j * TFIM.matrix() * 0.8)
    print("B7 | steps order1-err order2-err")
    prev1 = prev2 = None
    for steps in (1, 2, 4, 8):
        e1 = np.abs(
            trotter_circuit(TFIM, 0.8, steps, 1).matrix - u_exact
        ).max()
        e2 = np.abs(
            trotter_circuit(TFIM, 0.8, steps, 2).matrix - u_exact
        ).max()
        print(f"B7 | {steps} {e1:.5f} {e2:.5f}")
        if prev1 is not None:
            assert e1 < prev1 and e2 < prev2
        prev1, prev2 = e1, e2
    vqe = vqe_minimize(h2_hamiltonian(), layers=1, seed=0)
    print(f"B7 | VQE H2: energy {vqe.energy:.6f} exact {vqe.exact:.6f} "
          f"({vqe.evaluations} evaluations)")
    assert abs(vqe.energy - vqe.exact) < 1e-3


@pytest.mark.parametrize("steps", [1, 4, 16])
def test_b7_trotter_build(benchmark, steps):
    benchmark.group = "B7 trotter build"
    c = benchmark(lambda: trotter_circuit(TFIM, 0.8, steps, 2))
    assert c.nbQubits == 3


@pytest.mark.parametrize("steps", [1, 4])
def test_b7_trotter_simulate(benchmark, steps):
    benchmark.group = "B7 trotter simulate"
    circuit = trotter_circuit(TFIM, 0.8, steps, 2)
    sim = benchmark(lambda: circuit.simulate("000"))
    assert np.linalg.norm(sim.states[0]) == pytest.approx(1.0)


def test_b7_energy_evaluation(benchmark):
    h = h2_hamiltonian()
    params = np.full(4, 0.3)
    from repro.simulation.state import basis_state

    zero = basis_state("00")

    def energy():
        circuit = hardware_efficient_ansatz(2, 1, params)
        state = circuit.simulate(zero).states[0]
        return h.expectation(state)

    value = benchmark(energy)
    assert np.isfinite(value)


def test_b7_vqe_full(benchmark):
    result = benchmark.pedantic(
        lambda: vqe_minimize(h2_hamiltonian(), layers=1, seed=3,
                             restarts=1),
        rounds=1,
        iterations=1,
    )
    assert result.energy <= result.exact + 0.1
