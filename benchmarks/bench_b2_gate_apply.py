"""B2 — per-gate-class application cost (paper Section 3.2).

Benchmarks the apply kernels for every structural gate class the paper
implements: plain one-qubit, diagonal, controlled, multi-controlled,
SWAP and two-qubit rotations — on both the optimized and reference
backends.
"""

import numpy as np
import pytest

from repro.gates import (
    CNOT,
    CPhase,
    CZ,
    Hadamard,
    MCX,
    PauliZ,
    RotationX,
    RotationZ,
    RotationZZ,
    SWAP,
)
from repro.simulation.backends import get_backend
from repro.simulation.simulate import apply_operation
from repro.simulation.state import random_state

N = 14

GATES = {
    "h-1q": Hadamard(7),
    "rx-1q": RotationX(7, 0.5),
    "z-diagonal": PauliZ(7),
    "rz-diagonal": RotationZ(7, 0.5),
    "cnot-adjacent": CNOT(6, 7),
    "cnot-distant": CNOT(0, 13),
    "cz-diagonal": CZ(3, 10),
    "cphase": CPhase(2, 11, 0.3),
    "swap": SWAP(4, 9),
    "rzz": RotationZZ(5, 8, 0.7),
    "mcx-2ctrl": MCX([2, 7], 12),
    "mcx-4ctrl": MCX([1, 4, 8, 11], 6),
}


@pytest.mark.parametrize("name", list(GATES), ids=list(GATES))
@pytest.mark.parametrize("backend", ["kernel", "sparse"])
def test_b2_apply(benchmark, name, backend):
    benchmark.group = f"B2 {name}"
    gate = GATES[name]
    engine = get_backend(backend)
    state = random_state(N, rng=0)
    out = benchmark(
        lambda: apply_operation(engine, state.copy(), gate, 0, N)
    )
    assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-9)


def test_b2_rows(benchmark):
    """Correctness of every benchmarked gate against the dense
    reference on a smaller register."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("B2 | gate backends-agree")
    n = 8
    state = random_state(n, rng=1)
    small = {
        name: gate
        for name, gate in GATES.items()
        if max(gate.qubits) < n
    }
    for name, gate in small.items():
        outs = [
            apply_operation(get_backend(b), state.copy(), gate, 0, n)
            for b in ("kernel", "sparse", "einsum")
        ]
        agree = np.allclose(outs[0], outs[1], atol=1e-12) and np.allclose(
            outs[0], outs[2], atol=1e-12
        )
        print(f"B2 | {name} {agree}")
        assert agree


def _layered_1q_circuit(n, layers):
    """Deep 1q-heavy workload: alternating RY/RZ layers with a CZ
    ladder every few layers to keep it non-trivial."""
    from repro.circuit import QCircuit

    c = QCircuit(n)
    for layer in range(layers):
        for q in range(n):
            c.push_back(RotationX(q, 0.1 * (layer + 1) + 0.01 * q))
        for q in range(n):
            c.push_back(RotationZ(q, 0.2 * (layer + 1) - 0.01 * q))
        if layer % 4 == 3:
            for q in range(0, n - 1, 2):
                c.push_back(CZ(q, q + 1))
    return c


def test_b2_plan_vs_unplanned(benchmark):
    """Planned-vs-unplanned execution on a deep 1q-heavy circuit
    (paper Section 3.2 workload shape); emits ``BENCH_plan.json``."""
    from repro.simulation import SimulationOptions, clear_plan_cache, simulate
    from repro.simulation.plan import get_plan

    try:
        from benchmarks.harness import emit_json, timed_run
    except ImportError:  # run directly from the benchmarks/ directory
        from harness import emit_json, timed_run

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    n, layers, reps = 12, 12, 5
    circuit = _layered_1q_circuit(n, layers)
    start = "0" * n

    clear_plan_cache()
    unplanned = timed_run(
        lambda: simulate(
            circuit, start, options=SimulationOptions(compile=False)
        ),
        repeats=reps,
        warmup=0,
    )
    get_plan(circuit)  # pay compilation outside the timed region
    planned = timed_run(
        lambda: simulate(circuit, start, options=SimulationOptions()),
        repeats=reps,
        warmup=0,
    )
    assert np.allclose(
        planned.value.states[0], unplanned.value.states[0], atol=1e-12
    )

    plan, stats = get_plan(circuit)
    payload = {
        "benchmark": "B2-plan",
        "nb_qubits": n,
        "nb_source_gates": stats.nb_source_ops,
        "nb_plan_steps": stats.nb_steps,
        "nb_fused_1q": stats.nb_fused_1q,
        "nb_diag_merged": stats.nb_diag_merged,
        "unplanned_seconds": unplanned.best,
        "planned_seconds": planned.best,
        "speedup": unplanned.best / planned.best,
    }
    emit_json("plan", payload)
    print()
    print(
        f"B2-plan | {stats.nb_source_ops} gates -> {stats.nb_steps} "
        f"steps | planned {planned.best * 1e3:.2f} ms vs unplanned "
        f"{unplanned.best * 1e3:.2f} ms | speedup "
        f"{payload['speedup']:.2f}x"
    )
    assert payload["speedup"] >= 1.5
