"""B4 — noisy trajectories and the repetition-code threshold curve
(ablation: what the paper's deterministic QEC example becomes under
stochastic noise).

Regenerates the logical-error series against the exact formula
``p_L = 3 p^2 - 2 p^3`` and benchmarks trajectory throughput.
"""

import numpy as np
import pytest

from repro.circuit import Measurement, QCircuit
from repro.gates import CNOT, Hadamard
from repro.noise import (
    BitFlip,
    Depolarizing,
    NoiseModel,
    noisy_counts,
    repetition_code_logical_error_rate,
    run_trajectory,
    theoretical_logical_error_rate,
)


def bell_measured():
    c = QCircuit(2)
    c.push_back(Hadamard(0))
    c.push_back(CNOT(0, 1))
    c.push_back(Measurement(0))
    c.push_back(Measurement(1))
    return c


def test_b4_rows(benchmark):
    benchmark.pedantic(
        lambda: repetition_code_logical_error_rate(0.1, shots=200, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print("B4 | p measured theory(3p^2-2p^3)")
    for p in (0.02, 0.05, 0.1, 0.2, 0.3):
        measured = repetition_code_logical_error_rate(
            p, shots=2000, seed=4
        )
        theory = theoretical_logical_error_rate(p)
        print(f"B4 | {p:<5g} {measured:.4f} {theory:.4f}")
        sigma = 3 * np.sqrt(max(theory, 1e-4) * (1 - theory) / 2000)
        assert abs(measured - theory) < sigma + 5e-3


def test_b4_single_trajectory(benchmark):
    circuit = bell_measured()
    noise = NoiseModel(gate_noise=Depolarizing(0.01))
    rng = np.random.default_rng(0)
    result = benchmark(lambda: run_trajectory(circuit, noise, rng=rng))
    assert len(result.result) == 2


@pytest.mark.parametrize("shots", [10, 100])
def test_b4_noisy_counts(benchmark, shots):
    circuit = bell_measured()
    noise = NoiseModel(gate_noise=BitFlip(0.02))
    counts = benchmark(
        lambda: noisy_counts(circuit, noise, shots=shots, seed=1)
    )
    assert sum(counts.values()) == shots


def test_b4_logical_error_point(benchmark):
    rate = benchmark.pedantic(
        lambda: repetition_code_logical_error_rate(
            0.1, shots=500, seed=6
        ),
        rounds=1,
        iterations=1,
    )
    assert 0.0 <= rate < 0.2
