"""F1 — the paper's circuit figures.

Every diagram in the paper ((1), (3), (4), (5), (6)-(7) encode/QEC) is
regenerated in both output formats (command-window drawing and
quantikz LaTeX) and the rendering cost is benchmarked.
"""

import pytest

from benchmarks.workloads import bell_circuit
from repro.algorithms import (
    bit_flip_code_circuit,
    paper_diffuser,
    paper_grover_circuit,
    paper_oracle,
    teleportation_circuit,
)

FIGURES = {
    "circuit-1-bell": bell_circuit,
    "circuit-2-teleportation": teleportation_circuit,
    "circuit-3-grover": paper_grover_circuit,
    "circuit-4-oracle": paper_oracle,
    "circuit-5-diffuser": paper_diffuser,
    "circuit-7-qec": bit_flip_code_circuit,
}


def test_f1_rows(benchmark):
    benchmark.pedantic(
        lambda: [b().draw() for b in FIGURES.values()],
        rounds=1,
        iterations=1,
    )
    print()
    for name, builder in FIGURES.items():
        c = builder()
        text = c.draw()
        tex = c.toTex()
        print(f"F1 {name}: {c.nbQubits} qubits, "
              f"{len(text.splitlines())} text rows, "
              f"{len(tex)} LaTeX chars")
        assert text.strip()
        assert "\\begin{quantikz}" in tex


@pytest.mark.parametrize("name", list(FIGURES), ids=list(FIGURES))
def test_f1_draw(benchmark, name):
    circuit = FIGURES[name]()
    text = benchmark(circuit.draw)
    assert "q0:" in text


@pytest.mark.parametrize("name", list(FIGURES), ids=list(FIGURES))
def test_f1_totex(benchmark, name):
    circuit = FIGURES[name]()
    tex = benchmark(circuit.toTex)
    assert tex.count("\\begin{") == tex.count("\\end{")
