"""IR — canonical-lowering and pass-pipeline cost.

Compares the one IR lowering path against an inline reimplementation of
the legacy ``plan._flattened`` tree walk it replaced, on a deep nested
workload, and measures the pass-pipeline cost with and without the
per-circuit caches; emits ``BENCH_ir.json``.
"""

import pytest

from repro.circuit import Barrier, QCircuit
from repro.gates import CZ, Hadamard, RotationX, RotationZ


def _legacy_flattened(circuit):
    """The pre-IR ``plan._flattened`` walk, uncached (what every
    consumer effectively paid per call before revision caching)."""
    flat = []

    def walk(c, base):
        off = base + c.offset
        for op in c:
            if isinstance(op, QCircuit):
                walk(op, off)
            else:
                flat.append((op, off))

    walk(circuit, 0)
    return tuple(flat)


def _nested_workload(width, depth, layers):
    """``depth`` levels of nested sub-circuits, each holding rotation
    layers — heavy on offset accumulation, the walkers' hot path."""
    def level(d):
        c = QCircuit(width - d, 1 if d else 0)
        for layer in range(layers):
            for q in range(width - d):
                c.push_back(RotationX(q, 0.1 * (layer + 1) + 0.01 * q))
                c.push_back(RotationZ(q, 0.2 - 0.01 * q))
            for q in range(0, width - d - 1, 2):
                c.push_back(CZ(q, q + 1))
        c.push_back(Barrier(list(range(width - d))))
        if d + 1 < depth:
            c.push_back(level(d + 1))
        for q in range(width - d):
            c.push_back(Hadamard(q))
        return c

    return level(0)


def test_ir_lowering(benchmark):
    """Lowering + pipeline cost vs the legacy walk; emits
    ``BENCH_ir.json``."""
    from repro.ir import PassManager, clear_lowering_cache, lower

    try:
        from benchmarks.harness import emit_json, timed_run
    except ImportError:  # run directly from the benchmarks/ directory
        from harness import emit_json, timed_run

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    circuit = _nested_workload(width=10, depth=6, layers=4)
    reps = 20

    legacy = timed_run(lambda: _legacy_flattened(circuit), repeats=reps)

    def cold_lower():
        clear_lowering_cache(circuit)
        return lower(circuit)

    cold = timed_run(cold_lower, repeats=reps)
    lower(circuit)  # prime
    cached = timed_run(lambda: lower(circuit), repeats=reps)

    nb_ops = len(lower(circuit))
    assert nb_ops == len(_legacy_flattened(circuit))

    manager = PassManager(["fuse_rotations", "cancel_inverses"])

    def cold_pipeline():
        clear_lowering_cache(circuit)
        circuit._ir_pipeline_cache = None
        return manager.run_on(circuit)

    pipe_cold = timed_run(cold_pipeline, repeats=reps)
    manager.run_on(circuit)  # prime
    pipe_cached = timed_run(lambda: manager.run_on(circuit), repeats=reps)
    nb_after = len(manager.run_on(circuit))

    payload = {
        "benchmark": "IR-lowering",
        "nb_ops": nb_ops,
        "nb_ops_after_pipeline": nb_after,
        "legacy_flattened_seconds": legacy.best,
        "lower_cold_seconds": cold.best,
        "lower_cached_seconds": cached.best,
        "pipeline_cold_seconds": pipe_cold.best,
        "pipeline_cached_seconds": pipe_cached.best,
        "cached_speedup_vs_legacy": legacy.best / cached.best,
    }
    emit_json("ir", payload)
    print()
    print(
        f"IR | {nb_ops} ops | legacy {legacy.best * 1e3:.2f} ms | "
        f"lower cold {cold.best * 1e3:.2f} ms, cached "
        f"{cached.best * 1e6:.1f} us | pipeline cold "
        f"{pipe_cold.best * 1e3:.2f} ms, cached "
        f"{pipe_cached.best * 1e3:.2f} ms"
    )
    # the revision-cached lowering must beat re-walking the tree
    assert cached.best < legacy.best
    # a pipeline cache hit must beat re-running the passes
    assert pipe_cached.best < pipe_cold.best


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
