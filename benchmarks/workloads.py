"""Shared workload generators for the benchmark harness.

Each experiment in DESIGN.md's index pulls its circuits from here so
that benchmarks and correctness assertions always exercise identical
workloads.
"""

from __future__ import annotations

import numpy as np

from repro.circuit import Measurement, QCircuit
from repro.gates import (
    CNOT,
    CPhase,
    CZ,
    Hadamard,
    MCX,
    RotationX,
    RotationZ,
    SWAP,
)

__all__ = [
    "bell_circuit",
    "random_circuit",
    "ghz_circuit",
    "layered_circuit",
    "nested_circuit",
    "V_PAPER",
]

#: The paper's running example state (1/sqrt(2), i/sqrt(2)).
V_PAPER = np.array([1 / np.sqrt(2), 1j / np.sqrt(2)])


def bell_circuit(measure: bool = True) -> QCircuit:
    """The paper's circuit (1)."""
    c = QCircuit(2)
    c.push_back(Hadamard(0))
    c.push_back(CNOT(0, 1))
    if measure:
        c.push_back(Measurement(0))
        c.push_back(Measurement(1))
    return c


def ghz_circuit(nb_qubits: int, measure: bool = False) -> QCircuit:
    """H + CNOT chain preparing an n-qubit GHZ state."""
    c = QCircuit(nb_qubits)
    c.push_back(Hadamard(0))
    for q in range(nb_qubits - 1):
        c.push_back(CNOT(q, q + 1))
    if measure:
        for q in range(nb_qubits):
            c.push_back(Measurement(q))
    return c


def random_circuit(
    nb_qubits: int, nb_gates: int, seed: int = 0
) -> QCircuit:
    """A reproducible random circuit mixing all gate families."""
    rng = np.random.default_rng(seed)
    c = QCircuit(nb_qubits)
    for _ in range(nb_gates):
        roll = int(rng.integers(0, 7))
        q = int(rng.integers(0, nb_qubits))
        t = int((q + 1 + rng.integers(0, max(1, nb_qubits - 1))) % nb_qubits)
        if roll == 0:
            c.push_back(Hadamard(q))
        elif roll == 1:
            c.push_back(RotationX(q, float(rng.normal())))
        elif roll == 2:
            c.push_back(RotationZ(q, float(rng.normal())))
        elif roll == 3 and nb_qubits > 1:
            c.push_back(CNOT(q, t))
        elif roll == 4 and nb_qubits > 1:
            c.push_back(CPhase(q, t, float(rng.normal())))
        elif roll == 5 and nb_qubits > 1:
            c.push_back(SWAP(q, t))
        elif nb_qubits > 2:
            u = int((t + 1 + rng.integers(0, max(1, nb_qubits - 2)))
                    % nb_qubits)
            if u not in (q, t):
                c.push_back(MCX([q, t], u))
            else:
                c.push_back(Hadamard(q))
        else:
            c.push_back(Hadamard(q))
    return c


def nested_circuit(measure: bool = True) -> QCircuit:
    """Grover-style modular circuit exercising nesting, blocks, offsets,
    barriers and resets — the hard cases for circuit-tree lowering."""
    from repro.circuit import Barrier, Reset
    from repro.gates import PauliX, PauliZ

    inner = QCircuit(2)
    inner.push_back(Hadamard(0))
    inner.push_back(CNOT(0, 1))

    block = QCircuit(2, 1)  # offset 1 inside its parent
    block.push_back(PauliZ(0))
    block.push_back(CPhase(0, 1, 0.25))
    block.asBlock("oracle")

    deep = QCircuit(3)
    deep.push_back(inner)  # non-block nested circuit
    deep.push_back(Barrier([0, 1, 2]))
    deep.push_back(block)  # block nested circuit at offset 1

    c = QCircuit(5)
    c.push_back(PauliX(4))
    sub = deep
    sub.offset = 1  # the whole group sits one qubit up
    c.push_back(sub)
    c.push_back(Reset(0))
    c.push_back(SWAP(0, 4))
    if measure:
        c.push_back(Measurement(1))
        c.push_back(Measurement(2))
    return c


def layered_circuit(nb_qubits: int, nb_layers: int) -> QCircuit:
    """Brickwork layers of H + CZ, a standard scaling workload."""
    c = QCircuit(nb_qubits)
    for layer in range(nb_layers):
        for q in range(nb_qubits):
            c.push_back(Hadamard(q))
        start = layer % 2
        for q in range(start, nb_qubits - 1, 2):
            c.push_back(CZ(q, q + 1))
    return c
