"""E5 — quantum error correction (paper Section 5.4).

Regenerates the paper's row — syndrome '11' for an error on q0, state
restored — plus the full syndrome table, and benchmarks the repetition
codes and the 9-qubit Shor code extension.
"""

import pytest

from benchmarks.workloads import V_PAPER
from repro.algorithms import (
    run_bit_flip_demo,
    run_phase_flip_demo,
    run_shor_code_demo,
)


def test_e5_rows(benchmark):
    benchmark.pedantic(
        lambda: run_bit_flip_demo(V_PAPER, error_qubit=0),
        rounds=1,
        iterations=1,
    )
    print()
    print("E5 QEC | error syndrome corrected")
    for e in (None, 0, 1, 2):
        r = run_bit_flip_demo(V_PAPER, error_qubit=e)
        print(f"E5 QEC | X@{e!s:>4} {r.syndrome!r} {r.corrected}")
        assert r.corrected
    r = run_bit_flip_demo(V_PAPER, error_qubit=0)
    assert r.syndrome == "11"  # the paper's printed syndrome


@pytest.mark.parametrize("error_qubit", [None, 0, 1, 2])
def test_e5_bit_flip(benchmark, error_qubit):
    r = benchmark(lambda: run_bit_flip_demo(V_PAPER, error_qubit))
    assert r.corrected


def test_e5_phase_flip(benchmark):
    r = benchmark(lambda: run_phase_flip_demo(V_PAPER, 1))
    assert r.corrected


@pytest.mark.parametrize("error", ["x", "y", "z"])
def test_e5_shor_code(benchmark, error):
    r = benchmark(lambda: run_shor_code_demo(V_PAPER, error, 4))
    assert r.corrected
