#!/usr/bin/env python
"""Continuous benchmark-regression gate.

Compares freshly emitted ``BENCH_*.json`` payloads against the
committed baselines under ``benchmarks/baselines/`` and fails (exit
code 1) when any gated metric regresses beyond the tolerance band.

Metrics are addressed by dot-path into the payload (list indices are
integers, negatives allowed: ``rows.-1.batched_shots_per_sec`` is the
last row's throughput) and classified two ways:

``ratio``
    Machine-independent speedups (planned vs unplanned, swept vs
    recompiled).  Enforced at the base ``--tolerance`` everywhere —
    a 4x speedup should hold on any machine.
``absolute``
    Wall-clock timings and throughputs.  When the current payload's
    machine fingerprint (the ``meta.machine`` block stamped by
    ``benchmarks.harness.emit_json``) differs from the baseline's,
    the tolerance is widened by ``--machine-slack`` — unless
    ``--strict-machine`` insists on the base band.

Usage::

    python tools/bench_regress.py                      # gate, exit 0/1
    python tools/bench_regress.py --tolerance 0.25     # 25% band (default)
    python tools/bench_regress.py --update-history     # append history.jsonl
    python tools/bench_regress.py --json               # machine-readable

Exit codes: 0 all metrics within band, 1 at least one regression,
2 missing/invalid files.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional

REPO = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO / "benchmarks" / "baselines"
HISTORY = BASELINE_DIR / "history.jsonl"

#: Default relative tolerance band (25%).
DEFAULT_TOLERANCE = 0.25
#: Tolerance multiplier for ``absolute`` metrics measured on a
#: different machine than the baseline.
DEFAULT_MACHINE_SLACK = 4.0


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: where it lives and how to judge it.

    ``path`` is the dot-path into the payload; ``higher_is_better``
    orients the band; ``kind`` is ``"ratio"`` (machine-independent)
    or ``"absolute"`` (machine-dependent, slack-widened off-machine).
    """

    path: str
    higher_is_better: bool
    kind: str = "ratio"


#: The gated metrics per benchmark file (without the BENCH_ prefix).
SPECS = {
    "plan": [
        MetricSpec("speedup", higher_is_better=True, kind="ratio"),
        MetricSpec(
            "planned_seconds", higher_is_better=False, kind="absolute"
        ),
    ],
    "ir": [
        MetricSpec(
            "cached_speedup_vs_legacy", higher_is_better=True,
            kind="ratio",
        ),
        MetricSpec(
            "pipeline_cached_seconds", higher_is_better=False,
            kind="absolute",
        ),
    ],
    "batch": [
        MetricSpec(
            "rows.-1.batched_speedup", higher_is_better=True,
            kind="ratio",
        ),
        MetricSpec(
            "rows.-1.batched_shots_per_sec", higher_is_better=True,
            kind="absolute",
        ),
    ],
    "sweep": [
        MetricSpec(
            "speedup_swept_vs_recompiled", higher_is_better=True,
            kind="ratio",
        ),
        MetricSpec(
            "swept_points_per_s", higher_is_better=True,
            kind="absolute",
        ),
    ],
    "kernel": [
        MetricSpec(
            "speedup_strided_vs_kernel", higher_is_better=True,
            kind="ratio",
        ),
        MetricSpec(
            "strided_planned_seconds", higher_is_better=False,
            kind="absolute",
        ),
    ],
    "service": [
        # every request must succeed — a dropped request is a
        # functional regression, not a timing one
        MetricSpec("ok_fraction", higher_is_better=True, kind="ratio"),
        MetricSpec("rps", higher_is_better=True, kind="absolute"),
    ],
    "conformance": [
        # check-group count is a coverage floor, not a timing: the
        # sweep must keep cross-checking at least as many groups as
        # the baseline did on any machine
        MetricSpec(
            "nb_check_groups", higher_is_better=True, kind="ratio"
        ),
        MetricSpec(
            "circuits_per_second", higher_is_better=True,
            kind="absolute",
        ),
    ],
}


def extract(payload: dict, path: str):
    """Resolve a dot-path (``rows.-1.speedup``) into a payload.

    Integer segments index lists (negatives count from the end);
    everything else is a dict key.  Raises ``KeyError`` with the full
    path on a miss.
    """
    node = payload
    for seg in path.split("."):
        try:
            if isinstance(node, list):
                node = node[int(seg)]
            else:
                node = node[seg]
        except (KeyError, IndexError, ValueError, TypeError):
            raise KeyError(f"no value at {path!r} (failed at {seg!r})")
    return node


def same_machine(current: dict, baseline: dict) -> bool:
    """Whether two payloads carry identical machine fingerprints.

    Unstamped payloads (no ``meta.machine``) compare as *different*
    machines, so absolute metrics get the forgiving band.
    """
    cur = (current.get("meta") or {}).get("machine")
    base = (baseline.get("meta") or {}).get("machine")
    return cur is not None and cur == base


def check_metric(
    spec: MetricSpec,
    current: dict,
    baseline: dict,
    tolerance: float,
    machine_slack: float,
    strict_machine: bool,
) -> dict:
    """Judge one metric; returns a result row (``ok`` + context)."""
    cur = float(extract(current, spec.path))
    base = float(extract(baseline, spec.path))
    tol = tolerance
    off_machine = not same_machine(current, baseline)
    if spec.kind == "absolute" and off_machine and not strict_machine:
        tol = tolerance * machine_slack
    if base == 0.0:
        ok, ratio = True, float("nan")
    elif spec.higher_is_better:
        ratio = cur / base
        ok = ratio >= 1.0 - tol
    else:
        ratio = cur / base
        ok = ratio <= 1.0 + tol
    return {
        "path": spec.path,
        "kind": spec.kind,
        "higher_is_better": spec.higher_is_better,
        "current": cur,
        "baseline": base,
        "ratio": ratio,
        "tolerance": tol,
        "off_machine": off_machine,
        "ok": ok,
    }


def check_file(
    name: str,
    current_dir: Path,
    baseline_dir: Path,
    tolerance: float,
    machine_slack: float,
    strict_machine: bool,
) -> Optional[dict]:
    """Gate one benchmark file; ``None`` when either side is absent."""
    cur_path = current_dir / f"BENCH_{name}.json"
    base_path = baseline_dir / f"BENCH_{name}.json"
    if not cur_path.exists() or not base_path.exists():
        return None
    current = json.loads(cur_path.read_text())
    baseline = json.loads(base_path.read_text())
    rows = [
        check_metric(
            spec, current, baseline, tolerance, machine_slack,
            strict_machine,
        )
        for spec in SPECS[name]
    ]
    return {
        "benchmark": name,
        "ok": all(r["ok"] for r in rows),
        "metrics": rows,
    }


def render(results: List[dict]) -> str:
    """The human-readable verdict table."""
    lines = []
    for res in results:
        verdict = "ok  " if res["ok"] else "FAIL"
        lines.append(f"{verdict} BENCH_{res['benchmark']}.json")
        for m in res["metrics"]:
            arrow = "^" if m["higher_is_better"] else "v"
            flag = "" if m["ok"] else "  <-- REGRESSION"
            machine = " (off-machine band)" if (
                m["off_machine"] and m["kind"] == "absolute"
            ) else ""
            lines.append(
                f"     {m['path']} [{m['kind']}{arrow}] "
                f"{m['current']:.6g} vs baseline {m['baseline']:.6g} "
                f"(x{m['ratio']:.3f}, tol {m['tolerance']:.0%}"
                f"{machine}){flag}"
            )
    return "\n".join(lines)


def append_history(results: List[dict], history: Path) -> None:
    """Append one JSONL row per run to the history file."""
    history.parent.mkdir(parents=True, exist_ok=True)
    row = {
        "checked_at": datetime.now(timezone.utc).isoformat(),
        "ok": all(r["ok"] for r in results),
        "benchmarks": {
            r["benchmark"]: {
                m["path"]: m["current"] for m in r["metrics"]
            }
            for r in results
        },
    }
    with history.open("a") as fh:
        fh.write(json.dumps(row) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="bench_regress",
        description=(
            "Compare fresh BENCH_*.json files against committed "
            "baselines; exit 1 on regression."
        ),
    )
    parser.add_argument(
        "--current-dir", type=Path, default=REPO,
        help="directory holding the fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=BASELINE_DIR,
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative tolerance band (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--machine-slack", type=float, default=DEFAULT_MACHINE_SLACK,
        help="tolerance multiplier for absolute metrics measured on "
             "a different machine than the baseline",
    )
    parser.add_argument(
        "--strict-machine", action="store_true",
        help="never widen the band for cross-machine comparisons",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=sorted(SPECS),
        help="benchmark names to gate (default: all known)",
    )
    parser.add_argument(
        "--update-history", action="store_true",
        help="append this run's metrics to benchmarks/baselines/"
             "history.jsonl",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)

    unknown = [b for b in args.benchmarks if b not in SPECS]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}")
        return 2

    results = []
    missing = []
    for name in args.benchmarks:
        res = check_file(
            name, args.current_dir, args.baseline_dir,
            args.tolerance, args.machine_slack, args.strict_machine,
        )
        if res is None:
            missing.append(name)
        else:
            results.append(res)
    if not results:
        print(
            "no benchmark pairs found (missing: "
            + ", ".join(missing) + ")"
        )
        return 2

    if args.update_history:
        append_history(results, HISTORY)

    ok = all(r["ok"] for r in results)
    if args.json:
        print(json.dumps({"ok": ok, "results": results}, indent=2))
    else:
        print(render(results))
        if missing:
            print("skipped (no pair): " + ", ".join(missing))
        print("verdict:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
