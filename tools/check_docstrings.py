#!/usr/bin/env python
"""Docstring-coverage gate for the public API under ``src/repro``.

Walks every module, collects public objects (modules, classes,
functions, methods whose names do not start with ``_``), and fails
when any of them lacks a docstring — unless it is listed in the
baseline allowlist (``tools/docstring_baseline.txt``), which records
the legacy debt explicitly so new code cannot add to it.

Usage::

    python tools/check_docstrings.py             # gate (exit 1 on new debt)
    python tools/check_docstrings.py --stats     # coverage summary
    python tools/check_docstrings.py --write-baseline  # refresh allowlist

The checker is purely syntactic (``ast``), so it runs in milliseconds
and needs no imports of the package under test.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
BASELINE = Path(__file__).resolve().parent / "docstring_baseline.txt"

#: Dunder methods are exempt: their contracts are defined by the data
#: model, and re-stating them adds nothing.
EXEMPT_METHODS = {"__init__"}


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _has_docstring(node) -> bool:
    doc = ast.get_docstring(node, clean=False)
    return bool(doc and doc.strip())


def _overload_or_property_setter(node) -> bool:
    """Setters/deleters re-document their getter; ``@overload`` stubs
    document on the implementation."""
    for deco in node.decorator_list:
        text = ast.unparse(deco)
        if text.endswith((".setter", ".deleter")) or text == "overload":
            return True
    return False


def iter_missing(path: Path) -> Iterator[Tuple[str, str]]:
    """Yield ``(qualified_name, kind)`` for public objects in ``path``
    that lack a docstring."""
    rel = path.relative_to(SRC).with_suffix("")
    parts = [p for p in rel.parts if p != "__init__"]
    module = ".".join(("repro", *parts))
    tree = ast.parse(path.read_text(), filename=str(path))

    if not _has_docstring(tree):
        yield module, "module"

    def walk(node, prefix: str, depth: int):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    qual = f"{prefix}.{child.name}"
                    if not _has_docstring(child):
                        yield qual, "class"
                    yield from walk(child, qual, depth + 1)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if not _is_public(child.name):
                    continue  # private + dunders (incl. __init__)
                if _overload_or_property_setter(child):
                    continue
                qual = f"{prefix}.{child.name}"
                if not _has_docstring(child):
                    kind = "method" if depth else "function"
                    yield qual, kind

    yield from walk(tree, module, 0)


def collect() -> Tuple[List[Tuple[str, str]], int]:
    """All missing docstrings plus the total public-object count."""
    missing: List[Tuple[str, str]] = []
    total = 0

    def count_public(path: Path) -> int:
        tree = ast.parse(path.read_text(), filename=str(path))
        n = 1  # the module itself
        for node in ast.walk(tree):
            if isinstance(
                node,
                (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ) and _is_public(node.name):
                n += 1
        return n

    for path in sorted(SRC.rglob("*.py")):
        total += count_public(path)
        missing.extend(iter_missing(path))
    return missing, total


def load_baseline() -> set:
    """Names grandfathered by ``docstring_baseline.txt``."""
    if not BASELINE.exists():
        return set()
    lines = BASELINE.read_text().splitlines()
    return {
        line.strip()
        for line in lines
        if line.strip() and not line.startswith("#")
    }


def main(argv=None) -> int:
    """Run the gate; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the allowlist with the current missing set",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print coverage numbers and exit 0",
    )
    args = parser.parse_args(argv)

    missing, total = collect()
    names = {name for name, _kind in missing}

    if args.write_baseline:
        lines = [
            "# Docstring debt allowlist — names here predate the gate.",
            "# Shrink this file; never grow it.  Regenerate with:",
            "#   python tools/check_docstrings.py --write-baseline",
        ]
        lines += sorted(names)
        BASELINE.write_text("\n".join(lines) + "\n")
        print(f"baseline written: {len(names)} entries")
        return 0

    baseline = load_baseline()
    covered = total - len(names)
    if args.stats:
        pct = 100.0 * covered / total if total else 100.0
        print(
            f"docstring coverage: {covered}/{total} public objects "
            f"({pct:.1f}%); baseline debt: {len(baseline & names)}"
        )
        return 0

    new_debt = sorted(names - baseline)
    fixed = sorted(baseline - names)
    if fixed:
        print(
            f"note: {len(fixed)} baseline entries now documented — "
            "remove them:\n  " + "\n  ".join(fixed)
        )
    if new_debt:
        kinds = dict(missing)
        print(f"{len(new_debt)} public object(s) lack docstrings:")
        for name in new_debt:
            print(f"  {name}  ({kinds[name]})")
        print(
            "\nAdd docstrings (preferred) or, for legacy code only, "
            "add the names to tools/docstring_baseline.txt."
        )
        return 1
    print(
        f"docstring gate OK: {covered}/{total} documented, "
        f"{len(baseline & names)} grandfathered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
