"""Legacy setup shim.

Kept so ``pip install -e .`` works on minimal environments whose
setuptools lacks the ``wheel`` package needed for PEP 660 editable
installs; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
