#!/usr/bin/env python
"""Quantum state tomography — the paper's Section 5.2 example.

Estimates the density matrix of the 'unknown' state
|v> = (1/sqrt(2), i/sqrt(2)) from 1000 shots in each of the X, Y and Z
bases, reconstructs rho via Eq. (2) of the paper and reports the trace
distance to the true density matrix.

Run:  python examples/tomography.py
"""

import numpy as np

import repro as qclab
from repro.algorithms import (
    measurement_circuit,
    pauli_tomography,
    single_qubit_tomography,
)

v = np.array([1 / np.sqrt(2), 1j / np.sqrt(2)])

# the paper's workflow, step by step -----------------------------------------
# (submitted through the execution core; QCircuit.simulate(v) is the
# equivalent one-line wrapper over the same submit)
from repro.execution import ExecutionRequest, default_executor

meas_x = qclab.QCircuit(1)
meas_x.push_back(qclab.Measurement(0, "x"))
res_x = default_executor().run(ExecutionRequest(meas_x, start=v))
shots = 1000
counts_x = res_x.counts(shots, seed=1)  # the paper's rng(1)
print("X-basis counts over 1000 shots:", counts_x)

# the packaged one-call version -----------------------------------------------
result = single_qubit_tomography(v, shots=shots, seed=1)
print()
print("S coefficients [S0 S1 S2 S3]:", np.round(result.s, 3))
print("reconstructed density matrix:")
print(np.round(result.rho_est, 3))
print("true density matrix:")
print(np.round(result.rho_true, 3))
print("trace distance:", round(result.distance, 4))

# extension: two-qubit Pauli tomography of a Bell state -----------------------
bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
bell_result = pauli_tomography(bell, shots=2000, seed=7)
print()
print("two-qubit Bell-state tomography, trace distance:",
      round(bell_result.distance, 4))
print("reconstructed (rounded):")
print(np.round(bell_result.rho_est.real, 2))

# extension: tomography counts under readout noise, batched -------------------
# With a noise model the counts can no longer be sampled analytically;
# each shot becomes a stochastic trajectory.  The batched engine runs
# all shots as one (B, 2^n) array instead of a Python loop, so even
# large shot counts stay fast — and for a fixed seed the histogram is
# reproducible regardless of batch size or worker count.
from repro.noise import NoiseModel, noisy_counts

noisy_x = noisy_counts(
    measurement_circuit("x"),
    NoiseModel(readout_error=0.05),
    shots=shots,
    seed=1,
    start=v,
)
print()
print("X-basis counts with 5% readout error (batched):", noisy_x)
