#!/usr/bin/env python
"""Noisy simulation and the repetition-code threshold (extension).

Extends the paper's QEC example (Section 5.4) from a deterministic
injected error to stochastic noise channels, using the Monte-Carlo
wavefunction (trajectory) simulator, and reproduces the distance-3
repetition-code logical error curve against its exact formula
p_L = 3 p^2 - 2 p^3.

Run:  python examples/noisy_simulation.py
"""

import numpy as np

from repro.circuit import Measurement, QCircuit
from repro.gates import CNOT, Hadamard, Identity
from repro.noise import (
    AmplitudeDamping,
    BitFlip,
    Depolarizing,
    NoiseModel,
    noisy_counts,
    repetition_code_logical_error_rate,
    theoretical_logical_error_rate,
)

# a noisy Bell experiment ------------------------------------------------------
bell = QCircuit(2)
bell.push_back(Hadamard(0))
bell.push_back(CNOT(0, 1))
bell.push_back(Measurement(0))
bell.push_back(Measurement(1))

print("Bell circuit under depolarizing noise (p = 0.05 per gate):")
noise = NoiseModel(gate_noise=Depolarizing(0.05))
counts = noisy_counts(bell, noise, shots=4000, seed=1)
for outcome in sorted(counts):
    print(f"  {outcome}: {counts[outcome] / 4000:.4f}")
print("  (noiseless would give only 00 and 11 at 0.5 each)")
print()

# amplitude damping on an idling excited qubit ----------------------------------
relax = QCircuit(1)
from repro.gates import PauliX  # noqa: E402

relax.push_back(PauliX(0))
for _ in range(5):
    relax.push_back(Identity(0))  # five noisy wait steps
relax.push_back(Measurement(0))
gamma = 0.1
noise = NoiseModel(idle_noise=AmplitudeDamping(gamma),
                   per_gate={PauliX: None})
counts = noisy_counts(relax, noise, shots=4000, seed=2)
survived = counts.get("1", 0) / 4000
print(f"T1 decay: P(still |1>) after 5 steps of gamma={gamma}: "
      f"{survived:.3f} (theory {(1 - gamma) ** 5:.3f})")
print()

# the threshold curve ------------------------------------------------------------
print("distance-3 repetition code, logical error rate:")
print("  p       measured   theory (3p^2 - 2p^3)")
for p in (0.02, 0.05, 0.1, 0.2, 0.3, 0.45):
    measured = repetition_code_logical_error_rate(p, shots=2000, seed=3)
    theory = theoretical_logical_error_rate(p)
    print(f"  {p:<7g} {measured:<10.4f} {theory:.4f}")
print("below p = 1/2 the encoded qubit always beats the bare one.")

# exact density-matrix evolution vs Monte-Carlo trajectories ---------------------
from repro.simulation import simulate_density

print()
print("cross-validation: exact density matrix vs sampled trajectories")
noisy_bell = QCircuit(2)
noisy_bell.push_back(Hadamard(0))
noisy_bell.push_back(Identity(0))
noisy_bell.push_back(CNOT(0, 1))
noisy_bell.push_back(Identity(1))
noisy_bell.push_back(Measurement(0))
noisy_bell.push_back(Measurement(1))
channel_model = NoiseModel(idle_noise=Depolarizing(0.15))

exact = simulate_density(noisy_bell, noise=channel_model)
sampled = noisy_counts(noisy_bell, channel_model, shots=6000, seed=9)
print("  outcome   exact     sampled (6000 shots)")
for outcome, p in sorted(exact.outcome_distribution().items()):
    freq = sampled.get(outcome, 0) / 6000
    print(f"  {outcome}        {p:.4f}    {freq:.4f}")
