#!/usr/bin/env python
"""Grover's algorithm — the paper's Section 5.3 example.

Searches for |11> among four possibilities with the paper's exact
oracle/diffuser construction (built as independent sub-circuits and
composed as blocks), then scales the same machinery to larger
registers.

Run:  python examples/grover.py
"""

import repro as qclab
from repro.algorithms import (
    grover_search,
    optimal_iterations,
    paper_diffuser,
    paper_grover_circuit,
    paper_oracle,
)

# the paper's modular construction --------------------------------------------
oracle = paper_oracle()
print("oracle (circuit (4)):")
print(oracle.draw())
print()
diffuser = paper_diffuser()
print("diffuser (circuit (5)):")
print(diffuser.draw())
print()

gc = paper_grover_circuit()
print("complete Grover circuit (blocks):")
print(gc.draw())
print()

# run it through the execution core: submit() returns a Job that
# carries the compiled plan, per-stage timings and the result
from repro.execution import ExecutionRequest, default_executor

job = default_executor().submit(ExecutionRequest(gc, start="00"))
simulation = job.result()
print("job:          ", job)
print("results:      ", simulation.results)
print("probabilities:", simulation.probabilities)
print(
    f"(compiled in {job.timings.compile_seconds * 1e3:.2f} ms, "
    f"executed in {job.timings.execute_seconds * 1e3:.2f} ms)"
)
print()

# general n ---------------------------------------------------------------------
for marked in ("101", "1011", "110101"):
    n = len(marked)
    res = grover_search(marked)
    print(
        f"n={n}: searching |{marked}> -> found |{res.found}> with "
        f"p={res.probability:.4f} after {res.iterations} iteration(s) "
        f"(optimal {optimal_iterations(n)})"
    )
print()

# profiling a run ---------------------------------------------------------------
# wrap any simulation in instrument() to collect tracing spans and
# kernel metrics, then render the per-run profile
from repro.algorithms import grover_circuit
from repro.observability import instrument, to_chrome_trace

marked = "1011010110"
with instrument() as inst:
    grover_circuit(marked).simulate("0" * len(marked))

print(f"profile of a {len(marked)}-qubit Grover run:")
print(inst.report())
events = to_chrome_trace(inst.tracer)["traceEvents"]
print(
    f"({len(events)} trace events; dump to JSON via "
    "repro.observability.to_chrome_trace and open in Perfetto)"
)
