#!/usr/bin/env python
"""Quantum error correction — the paper's Section 5.4 example.

Protects |v> = (1/sqrt(2), i/sqrt(2)) with the distance-3 bit-flip
repetition code: encode, inject an X error, extract the syndrome into
two ancillas with mid-circuit measurements, and correct with
multi-controlled X gates.  Extensions run the dual phase-flip code and
the 9-qubit Shor code against arbitrary Pauli errors.

Run:  python examples/error_correction.py
"""

import numpy as np

from repro.algorithms import (
    bit_flip_code_circuit,
    run_bit_flip_demo,
    run_phase_flip_demo,
    run_shor_code_demo,
)

v = np.array([1 / np.sqrt(2), 1j / np.sqrt(2)])

qec = bit_flip_code_circuit(error_qubit=0)
print("bit-flip code circuit (error on q0):")
print(qec.draw())
print()

result = run_bit_flip_demo(v, error_qubit=0)
print("syndrome:", result.syndrome, "(paper: '11' for an error on q0)")
print("corrected:", result.corrected, " fidelity:", result.fidelity)
print()

print("all error locations:")
for e in (None, 0, 1, 2):
    r = run_bit_flip_demo(v, error_qubit=e)
    print(f"  error on {e!s:>4}: syndrome {r.syndrome} -> corrected="
          f"{r.corrected}")
print()

print("phase-flip code (extension):")
for e in (None, 0, 1, 2):
    r = run_phase_flip_demo(v, error_qubit=e)
    print(f"  Z error on {e!s:>4}: syndrome {r.syndrome} -> corrected="
          f"{r.corrected}")
print()

print("9-qubit Shor code vs arbitrary single Pauli errors (extension):")
for etype in ("x", "z", "y"):
    worst = min(
        run_shor_code_demo(v, etype, q).fidelity for q in range(9)
    )
    print(f"  {etype.upper()} errors on any of 9 qubits: worst fidelity "
          f"{worst:.12f}")
