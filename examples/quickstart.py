#!/usr/bin/env python
"""Quickstart: the paper's running example, circuit (1).

Builds the two-qubit Bell circuit from Sections 2-4 of the paper,
simulates it, and demonstrates every I/O surface: command-window
drawing, OpenQASM export and LaTeX export.

Run:  python examples/quickstart.py
"""

import repro as qclab

# -- Section 2: constructing the circuit ------------------------------------
circuit = qclab.QCircuit(2)
circuit.push_back(qclab.qgates.Hadamard(0))
circuit.push_back(qclab.qgates.CNOT(0, 1))
circuit.push_back(qclab.Measurement(0))
circuit.push_back(qclab.Measurement(1))

print("Circuit (1) from the paper:")
print(circuit.draw())
print()

# -- Section 3: simulating from |00> -----------------------------------------
simulation = circuit.simulate("00")
print("results:        ", simulation.results)
print("probabilities:  ", simulation.probabilities)
for result, state in zip(simulation.results, simulation.states):
    print(f"state for {result!r}:", state)
print()

# the same from a vector initial state
simulation = circuit.simulate([1, 0, 0, 0])
print("vector start, results:", simulation.results)
print()

# -- shot sampling ------------------------------------------------------------
counts = simulation.counts(1000, seed=1)
print("counts over 1000 shots (00, 01, 10, 11):", counts)
print()

# -- Section 4: QASM and LaTeX -----------------------------------------------
print("OpenQASM 2.0:")
print(circuit.toQASM())

print("quantikz LaTeX (first lines):")
print("\n".join(circuit.toTex().splitlines()[:8]))
