#!/usr/bin/env python
"""Quantum teleportation — the paper's Section 5.1 example.

Teleports |v> = (1/sqrt(2), i/sqrt(2)) from q0 to q2 through a Bell
pair, printing the mid-circuit measurement branches and verifying with
``reducedStatevector`` that the receiver's qubit carries |v> in every
branch.

Run:  python examples/teleportation.py
"""

import numpy as np

import repro as qclab
from repro.algorithms import teleport, teleportation_circuit

qtc = teleportation_circuit()
print("Teleportation circuit:")
print(qtc.draw())
print()

# the state to teleport and the Bell channel, exactly as in the paper
v = np.array([1 / np.sqrt(2), 1j / np.sqrt(2)])
bell = np.array([1 / np.sqrt(2), 0, 0, 1 / np.sqrt(2)])
initial_state = np.kron(v, bell)

simulation = qtc.simulate(initial_state)
print("measurement results:       ", simulation.results)
print("branch probabilities:      ", simulation.probabilities)
print()
print("final state for outcome '00':")
print(simulation.states[0])
print()

reduced = qclab.reducedStatevector(
    simulation.states[0], [0, 1], simulation.results[0]
)
print("state of q2 given '00' (should equal |v>):")
print(reduced)
print()

# the one-call verification across all four branches
result = teleport(v)
print(
    "worst-case infidelity across the",
    len(result.results),
    "branches:",
    result.worst_error,
)
print("reducedStates (mid-circuit only -> not applicable):",
      simulation.reducedStates)
