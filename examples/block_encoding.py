#!/usr/bin/env python
"""FABLE block encodings (extension; paper refs [6, 7]).

The paper positions QCLAB as the foundation of derived quantum
compilers, FABLE among them.  This example compiles arbitrary real
matrices into block-encoding circuits, verifies the encoding by dense
simulation, and demonstrates FABLE's signature compression.

Run:  python examples/block_encoding.py
"""

import numpy as np

from repro.compilers import block_encoding_block, fable

rng = np.random.default_rng(42)

# exact encoding of a random matrix -------------------------------------------
n = 2
A = rng.uniform(-1, 1, size=(1 << n, 1 << n))
result = fable(A)
print(f"matrix size {A.shape}, circuit on {result.circuit.nbQubits} "
      f"qubits, alpha = {result.alpha}")
B = block_encoding_block(result)
print("max |encoded - A|:", np.abs(B - A).max())
print()

# the circuit itself ------------------------------------------------------------
small = fable(np.array([[0.5, -0.5], [0.25, 1.0]]))
print("block-encoding circuit for a 2x2 matrix:")
print(small.circuit.draw())
print()

# compression on structured matrices ---------------------------------------------
print("compression (rotations kept / total, error):")
cases = {
    "random 8x8": rng.uniform(-1, 1, size=(8, 8)),
    "constant 8x8": np.full((8, 8), 0.6),
    "low-rank 8x8": np.outer(
        np.linspace(0.1, 0.9, 8), np.linspace(0.9, 0.1, 8)
    ),
}
for name, M in cases.items():
    for threshold in (0.0, 1e-8, 0.05):
        res = fable(M, threshold=threshold)
        err = np.abs(block_encoding_block(res) - M).max()
        print(f"  {name:>14} thr={threshold:<8g} "
              f"{res.rotations_kept:>3}/{res.rotations_total:<3} "
              f"err={err:.2e}")
