#!/usr/bin/env python
"""Stabilizer simulation at scale (extension).

The paper's QEC footnote remarks that corrections can be tracked
"entirely in software by tracking the Pauli frame" — the general form
of that idea is stabilizer simulation. This example runs Clifford
circuits far beyond state-vector reach and shows the scaling crossover.

Run:  python examples/clifford_scaling.py
"""

import time

from repro.algorithms import ghz_circuit, graph_state_circuit
from repro.circuit import Measurement
from repro.simulation.stabilizer import (
    simulate_stabilizer,
    stabilizer_counts,
)

# a Bell experiment through both engines ---------------------------------------
ghz = ghz_circuit(3)
for q in range(3):
    ghz.push_back(Measurement(q))

print("3-qubit GHZ through both engines:")
sv = ghz.simulate("000")
print("  state vector:", dict(zip(sv.results, sv.probabilities)))
counts = stabilizer_counts(ghz, shots=2000, seed=0)
print("  stabilizer (2000 shots):",
      {k: v / 2000 for k, v in sorted(counts.items())})
print()

# scaling --------------------------------------------------------------------------
print("per-shot time, GHZ circuits (state vector vs CHP tableau):")
print("  n     statevector   stabilizer")
for n in (8, 12, 16):
    c = ghz_circuit(n)
    for q in range(n):
        c.push_back(Measurement(q))
    t0 = time.perf_counter()
    c.simulate("0" * n)
    t_sv = time.perf_counter() - t0
    t0 = time.perf_counter()
    simulate_stabilizer(c, rng=0)
    t_stab = time.perf_counter() - t0
    print(f"  {n:>3}   {t_sv:.5f}s      {t_stab:.5f}s")

for n in (50, 100, 200):
    c = ghz_circuit(n)
    for q in range(n):
        c.push_back(Measurement(q))
    t0 = time.perf_counter()
    result, _ = simulate_stabilizer(c, rng=0)
    t_stab = time.perf_counter() - t0
    print(f"  {n:>3}   (infeasible)   {t_stab:.5f}s  "
          f"-> outcome {result[:4]}...{result[-4:]}")
print()

# a 60-qubit graph state ----------------------------------------------------------
n = 60
circuit = graph_state_circuit(n, [(q, q + 1) for q in range(n - 1)])
for q in range(n):
    circuit.push_back(Measurement(q))
t0 = time.perf_counter()
result, _state = simulate_stabilizer(circuit, rng=1)
print(f"60-qubit path-graph state measured in "
      f"{time.perf_counter() - t0:.3f}s")
