#!/usr/bin/env python
"""QFT and quantum phase estimation (extensions).

Demonstrates composition at scale: the QFT's controlled-phase ladder,
circuit inversion via ``ctranspose``, controlled custom matrix gates
and nested blocks — then estimates eigenphases with QPE.

Run:  python examples/qft_phase_estimation.py
"""

import numpy as np

from repro.algorithms import (
    estimate_phase,
    phase_estimation_circuit,
    qft_circuit,
)

# QFT --------------------------------------------------------------------------
n = 3
qft = qft_circuit(n)
print(f"{n}-qubit QFT:")
print(qft.draw())

F = qft.matrix
w = np.exp(2j * np.pi / (1 << n))
expected = np.array(
    [[w ** (j * k) for k in range(1 << n)] for j in range(1 << n)]
) / np.sqrt(1 << n)
print("matches the DFT matrix:", np.allclose(F, expected))
print()

# inverse via ctranspose
iqft = qft.ctranspose()
print("QFT . QFT^dagger = I:",
      np.allclose(iqft.matrix @ F, np.eye(1 << n)))
print()

# QPE ---------------------------------------------------------------------------
print("phase estimation of U = diag(1, e^{2 pi i phi}):")
for phi, t in ((5 / 32, 5), (1 / 3, 6)):
    U = np.diag([1.0, np.exp(2j * np.pi * phi)])
    est = estimate_phase(U, [0, 1], nb_counting=t)
    print(
        f"  phi={phi:.6f}, {t} counting qubits -> estimate "
        f"{est.phase:.6f} (bits {est.bits}, p={est.probability:.3f})"
    )

circuit = phase_estimation_circuit(np.diag([1.0, 1j]), 3)
print()
print("QPE circuit for U = S (phi = 1/4):")
print(circuit.draw())
est = estimate_phase(np.diag([1.0, 1j]), [0, 1], nb_counting=3)
print("estimate:", est.phase, "(exact: 0.25)")

# amplitude estimation (built on QPE + the Grover operator) ---------------------
from repro.algorithms import estimate_amplitude
from repro.circuit import QCircuit as _QC
from repro.gates import RotationY as _RY

print()
print("amplitude estimation of a = sin^2(theta/2):")
for theta, t_bits in ((np.pi / 2, 3), (0.8, 7)):
    prep = _QC(1)
    prep.push_back(_RY(0, theta))
    est = estimate_amplitude(prep, ["1"], nb_counting=t_bits)
    print(f"  theta={theta:.4f}, {t_bits} counting qubits -> "
          f"a_est={est.amplitude:.5f} (exact {est.exact:.5f})")
