#!/usr/bin/env python
"""Variational eigensolving and Hamiltonian time evolution (extensions).

The workloads QCLAB's derived compilers target (paper refs [5, 6]):
Trotterized time evolution of a transverse-field Ising model, circuit
optimization of the resulting rotation sequences, and a VQE run on the
textbook H2 Hamiltonian.

Run:  python examples/vqe_time_evolution.py
"""

import numpy as np
import scipy.linalg

from repro.algorithms import (
    h2_hamiltonian,
    trotter_circuit,
    vqe_minimize,
)
from repro.simulation.observables import PauliSum
from repro.transforms import gate_counts, optimize

# -- Trotterized TFIM dynamics ------------------------------------------------
tfim = PauliSum(
    [(-1.0, "zzi"), (-1.0, "izz"), (-0.7, "xii"), (-0.7, "ixi"),
     (-0.7, "iix")]
)
t = 0.8
u_exact = scipy.linalg.expm(-1j * tfim.matrix() * t)

print("Trotter error vs steps (TFIM, 3 qubits, t = 0.8):")
print("  steps   order 1     order 2")
for steps in (1, 2, 4, 8, 16):
    e1 = np.abs(trotter_circuit(tfim, t, steps, 1).matrix - u_exact).max()
    e2 = np.abs(trotter_circuit(tfim, t, steps, 2).matrix - u_exact).max()
    print(f"  {steps:>5}   {e1:.6f}   {e2:.6f}")
print()

# -- circuit optimization of the Trotter sequence -----------------------------
circuit = trotter_circuit(tfim, t, steps=8, order=2)
optimized = optimize(circuit)
print("optimizing the 8-step second-order circuit:")
print("  before:", dict(gate_counts(circuit)))
print("  after: ", dict(gate_counts(optimized)))
print("  unitary preserved:",
      np.allclose(circuit.matrix, optimized.matrix, atol=1e-10))
print()

# -- VQE on H2 -----------------------------------------------------------------
print("VQE on the 2-qubit H2 Hamiltonian:")
result = vqe_minimize(h2_hamiltonian(), layers=1, seed=0)
print(f"  variational energy: {result.energy:.8f}")
print(f"  exact ground state: {result.exact:.8f}")
print(f"  error: {result.energy - result.exact:.2e} "
      f"({result.evaluations} circuit evaluations)")
