"""Noise channels and quantum-trajectory simulation (extension).

The paper's QEC example injects a *deterministic* error; real error
correction is assessed against *stochastic* noise.  This package adds
single-qubit noise channels (Kraus operators), a :class:`NoiseModel`
attaching channels to circuit locations, and a Monte-Carlo wavefunction
(trajectory) simulator that samples one collapse path per shot — the
standard technique for simulating open-system dynamics on a
state-vector engine.

The flagship experiment built on top is the distance-3 repetition-code
threshold curve: the measured logical error rate must follow the exact
combinatorics ``p_L = 3 p^2 - 2 p^3``.
"""

from repro.noise.channels import (
    AmplitudeDamping,
    BitFlip,
    Depolarizing,
    NoiseChannel,
    PauliChannel,
    PhaseFlip,
)
from repro.noise.model import NoiseModel
from repro.noise.trajectory import (
    BatchedTrajectoryResult,
    TrajectoryResult,
    noisy_counts,
    run_trajectories_batched,
    run_trajectory,
)
from repro.noise.qec_threshold import (
    repetition_code_logical_error_rate,
    theoretical_logical_error_rate,
)

__all__ = [
    "NoiseChannel",
    "PauliChannel",
    "BitFlip",
    "PhaseFlip",
    "Depolarizing",
    "AmplitudeDamping",
    "NoiseModel",
    "run_trajectory",
    "run_trajectories_batched",
    "noisy_counts",
    "TrajectoryResult",
    "BatchedTrajectoryResult",
    "repetition_code_logical_error_rate",
    "theoretical_logical_error_rate",
]
