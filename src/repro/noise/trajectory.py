"""Monte-Carlo wavefunction (quantum trajectory) simulation.

Instead of tracking every measurement branch (as
:func:`repro.simulation.simulate` does), a trajectory run samples ONE
path: each measurement collapses randomly according to its outcome
probabilities and each noise channel applies one Kraus operator drawn
with probability ``||K_i psi||^2``.  Averaging over shots reproduces
the open-system statistics exactly, at state-vector cost per shot.

Two execution engines share this module:

:func:`run_trajectory`
    One shot, one ``(2**n,)`` state — the reference path.

:func:`run_trajectories_batched`
    ``B`` shots as a single ``(B, 2**n)`` array; every compiled plan
    step executes ONCE across the whole batch and all stochastic
    choices (Kraus selection, measurement collapse, readout flips) are
    vectorized over the batch axis.  Shot counts beyond one batch fan
    out over worker processes.  The batched engine consumes the SAME
    underlying uniform stream as a serial :func:`run_trajectory` loop
    sharing one generator, in the same order, so for a fixed seed it is
    shot-for-shot reproducible against the serial path and independent
    of ``batch_size`` and ``max_workers``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from repro.circuit.measurement import Measurement
from repro.exceptions import SimulationError
from repro.noise.model import NoiseModel
from repro.observability.backend import InstrumentedBackend
from repro.observability.recorder import (
    EV_BATCH_EXECUTE,
    EV_TRAJECTORY,
    record_event,
)
from repro.observability.instrument import (
    activate,
    resolve_instrumentation,
)
from repro.observability.metrics import (
    BATCH_SIZE,
    BATCH_WORKERS,
    BATCHED_SHOTS,
    RNG_DRAWS,
    SHOTS_SAMPLED,
    TRAJECTORIES,
)
from repro.simulation.options import SimulationOptions
from repro.simulation.plan import GATE, MEASURE, get_plan
from repro.simulation.state import initial_state

__all__ = [
    "TrajectoryResult",
    "BatchedTrajectoryResult",
    "run_trajectory",
    "run_trajectories_batched",
    "noisy_counts",
]


@dataclass
class TrajectoryResult:
    """One sampled path: recorded outcomes and the final state."""

    result: str
    state: np.ndarray


def _apply_kraus(engine, state, kraus, qubit, nb_qubits, rng):
    """Select and apply one Kraus operator (Monte-Carlo branch)."""
    if len(kraus) == 1:
        out = engine.apply(state, kraus[0], [qubit], nb_qubits)
        norm = np.linalg.norm(out)
        return out / norm
    r = float(rng.random())
    acc = 0.0
    for k in kraus:
        candidate = engine.apply(state.copy(), k, [qubit], nb_qubits)
        p = float(np.linalg.norm(candidate) ** 2)
        acc += p
        if r < acc or k is kraus[-1]:
            if p <= 1e-300:
                continue  # zero-probability op; keep scanning
            return candidate / np.sqrt(p)
    raise SimulationError("Kraus sampling failed to select an operator")


def _sample_measurement(engine, state, meas, qubit, nb_qubits, rng):
    """Collapse one measurement randomly; returns (outcome, state)."""
    if meas.basis != "z":
        state = engine.apply(state, meas.basis_change, [qubit], nb_qubits)
    left = 1 << qubit
    view = state.reshape(left, 2, -1)
    p1 = float(np.sum(np.abs(view[:, 1, :]) ** 2))
    outcome = 1 if rng.random() < p1 else 0
    prob = p1 if outcome == 1 else 1.0 - p1
    view[:, 1 - outcome, :] = 0.0
    state = state * (1.0 / np.sqrt(prob))
    if meas.basis != "z":
        state = engine.apply(
            state, meas.basis_change_dagger, [qubit], nb_qubits
        )
    return outcome, state


def _resolve_options(options, backend):
    if options is None:
        opts = SimulationOptions()
    elif isinstance(options, SimulationOptions):
        opts = options
    else:
        opts = SimulationOptions(**options)
    if backend is not None:
        opts = opts.replace(backend=backend)
    return opts


def _channel_map(circuit, noise: NoiseModel) -> dict:
    """``{gate class: NoiseChannel}`` for every noisy gate of the circuit.

    Built by running the ``inject_noise`` IR pass over the canonical
    (revision-cached) lowering.  :func:`noisy_counts` builds this once
    per batch, so every shot resolves channels with one dict lookup per
    gate instead of re-matching the noise model's rules.

    Keyed by gate *class*, matching :meth:`NoiseModel.channel_for`'s
    resolution — deliberately not by gate identity: the plan cache may
    hand back a plan compiled from a different but signature-equal
    circuit, whose step back-pointers are different objects of the same
    classes.
    """
    if noise.is_trivial:
        return {}
    from repro.ir.lower import lower
    from repro.ir.passes import InjectNoise, PassManager

    program = PassManager([InjectNoise(noise)]).run(lower(circuit))
    return {
        type(irop.op): irop.channel
        for irop in program
        if irop.channel is not None
    }


class _CountingRNG:
    """Thin proxy counting ``random()`` draws (instrumented runs)."""

    __slots__ = ("rng", "draws")

    def __init__(self, rng):
        self.rng = rng
        self.draws = 0

    def random(self):
        self.draws += 1
        return self.rng.random()


def run_trajectory(
    circuit,
    noise: Optional[NoiseModel] = None,
    rng=None,
    start=None,
    backend=None,
    options: Optional[SimulationOptions] = None,
    _channels: Optional[dict] = None,
) -> TrajectoryResult:
    """Sample a single noisy run of ``circuit``.

    Parameters
    ----------
    circuit:
        The :class:`~repro.circuit.QCircuit` to run.
    noise:
        A :class:`NoiseModel` (``None`` = noiseless trajectory).
    rng:
        Seed or :class:`numpy.random.Generator`.
    start:
        Initial state (bitstring or vector).
    backend:
        Backend name or instance; overrides ``options``.
    options:
        A :class:`~repro.simulation.SimulationOptions`; the circuit is
        executed through a compiled plan, so repeated trajectories of
        the same circuit reuse one compilation.  Gate fusion is
        disabled automatically while a non-trivial noise model is
        active (channels attach per source gate).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    noise = noise or NoiseModel()
    opts = _resolve_options(options, backend)
    nb_qubits = circuit.nbQubits
    channels = (
        _channels if _channels is not None
        else _channel_map(circuit, noise)
    )
    inst = resolve_instrumentation(opts.trace, opts.metrics)

    t_traj = perf_counter()
    with activate(inst), inst.span(
        "trajectory", nb_qubits=nb_qubits
    ) as span:
        use_fuse = opts.fuse and noise.is_trivial
        plan, _stats = get_plan(
            circuit, opts.backend, opts.dtype, fuse=use_fuse
        )
        engine = plan.engine
        if inst.enabled:
            span.set(backend=engine.name)
            engine = InstrumentedBackend(engine, inst.metrics)
            inst.metrics.counter(
                TRAJECTORIES, "Monte-Carlo trajectories executed"
            ).inc()
            rng = _CountingRNG(rng)
        if start is None:
            start = "0" * nb_qubits
        state = initial_state(start, nb_qubits, dtype=opts.dtype)
        outcomes = []

        for step in plan.steps:
            if step.kind == GATE:
                state = engine.apply_planned(state, step, nb_qubits)
                channel = (
                    channels.get(type(step.op))
                    if step.op is not None
                    else None
                )
                if channel is not None:
                    for q in step.noise_qubits:
                        state = _apply_kraus(
                            engine, state, channel.kraus, q, nb_qubits,
                            rng,
                        )
                continue
            if step.kind == MEASURE:
                outcome, state = _sample_measurement(
                    engine, state, step.op, step.qubit, nb_qubits, rng
                )
                if noise.readout_error > 0.0 and (
                    rng.random() < noise.readout_error
                ):
                    outcome = 1 - outcome
                outcomes.append(str(outcome))
                continue
            # RESET
            meas = Measurement(step.op.qubit)
            outcome, state = _sample_measurement(
                engine, state, meas, step.qubit, nb_qubits, rng
            )
            if outcome == 1:
                from repro.gates import PauliX

                state = engine.apply(
                    state, PauliX(0).matrix, [step.qubit], nb_qubits
                )
            if step.op.record:
                outcomes.append(str(outcome))

        if isinstance(rng, _CountingRNG) and rng.draws:
            inst.metrics.counter(
                RNG_DRAWS, "random draws consumed"
            ).inc(rng.draws)
        record_event(
            EV_TRAJECTORY,
            nq=nb_qubits,
            ns=int((perf_counter() - t_traj) * 1e9),
        )
        return TrajectoryResult(result="".join(outcomes), state=state)


# -- the batched engine ------------------------------------------------------

#: Auto batch sizing: keep one batch around this many amplitudes ...
_BATCH_TARGET_ELEMS = 1 << 22
#: ... and never wider than this many rows.
_BATCH_MAX_ROWS = 4096


@dataclass
class BatchedTrajectoryResult:
    """All sampled paths of one batched run.

    ``results`` lists the per-shot outcome strings in shot order —
    identical to what a serial :func:`run_trajectory` loop sharing one
    generator would produce for the same seed.  ``counts`` aggregates
    them into a histogram ordered lexicographically by bitstring.
    """

    results: List[str]
    shots: int
    batch_size: int
    workers: int
    #: Final ``(shots, 2**n)`` states when requested, else ``None``.
    states: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def counts(self) -> Dict[str, int]:
        """``{outcome: count}``, insertion-ordered by bitstring."""
        return dict(sorted(Counter(self.results).items()))


def _default_batch_size(shots: int, nb_qubits: int) -> int:
    """Memory-aware batch width: aim for ``_BATCH_TARGET_ELEMS``
    amplitudes per batch, capped at ``_BATCH_MAX_ROWS`` rows."""
    rows = max(1, _BATCH_TARGET_ELEMS >> nb_qubits)
    return max(1, min(int(shots), rows, _BATCH_MAX_ROWS))


def _draws_per_shot(plan, channels: dict, noise: NoiseModel) -> int:
    """Uniform variates one trajectory consumes, in plan order.

    This is the contract that keeps the batched engine shot-for-shot
    reproducible against the serial loop: every shot consumes a FIXED
    number of draws (Kraus sites with >1 operator, measurements,
    readout checks, resets), so shot ``i`` owns variates
    ``[i*D, (i+1)*D)`` of the stream in both engines.
    """
    draws = 0
    readout = 1 if noise.readout_error > 0.0 else 0
    for step in plan.steps:
        if step.kind == GATE:
            channel = (
                channels.get(type(step.op))
                if step.op is not None
                else None
            )
            if channel is not None and len(channel.kraus) > 1:
                draws += len(step.noise_qubits)
        elif step.kind == MEASURE:
            draws += 1 + readout
        else:  # RESET
            draws += 1
    return draws


def _apply_kraus_batched(engine, states, kraus, qubit, nb_qubits, r):
    """Vectorized Monte-Carlo Kraus branch over a ``(B, dim)`` batch.

    ``r`` is one uniform variate per row (``None`` for single-operator
    channels, which draw nothing).  Selection replays the serial
    scan — first operator with cumulative probability past ``r`` (or
    the last), skipping zero-probability branches — via boolean masks.
    """
    if len(kraus) == 1:
        out = engine.apply_batched(states, kraus[0], [qubit], nb_qubits)
        norms = np.linalg.norm(out, axis=1)
        out /= norms[:, None]
        return out
    batch = states.shape[0]
    acc = np.zeros(batch)
    assigned = np.zeros(batch, dtype=bool)
    out = np.empty_like(states)
    last = len(kraus) - 1
    for i, k in enumerate(kraus):
        candidate = engine.apply_batched(
            states.copy(), k, [qubit], nb_qubits
        )
        p = np.linalg.norm(candidate, axis=1) ** 2
        acc += p
        sel = ~assigned & ((r < acc) | (i == last)) & (p > 1e-300)
        if sel.any():
            out[sel] = candidate[sel] / np.sqrt(p[sel])[:, None]
            assigned |= sel
    if not assigned.all():
        raise SimulationError("Kraus sampling failed to select an operator")
    return out


def _sample_measurement_batched(engine, states, meas, qubit, nb_qubits, r):
    """Collapse one measurement across the batch; returns
    ``(outcomes, states)`` with ``outcomes`` a ``(B,)`` int array."""
    if meas.basis != "z":
        states = engine.apply_batched(
            states, meas.basis_change, [qubit], nb_qubits
        )
    batch = states.shape[0]
    left = 1 << qubit
    view = states.reshape(batch, left, 2, -1)
    p1 = np.sum(np.abs(view[:, :, 1, :]) ** 2, axis=(1, 2))
    outcomes = (r < p1).astype(np.int64)
    ones = outcomes.astype(bool)
    view[ones, :, 0, :] = 0.0
    view[~ones, :, 1, :] = 0.0
    prob = np.where(ones, p1, 1.0 - p1)
    states *= (1.0 / np.sqrt(prob))[:, None]
    if meas.basis != "z":
        states = engine.apply_batched(
            states, meas.basis_change_dagger, [qubit], nb_qubits
        )
    return outcomes, states


def _bit_matrix_to_strings(columns: list, batch: int) -> List[str]:
    """Recorded outcome columns -> per-shot result strings."""
    if not columns:
        return [""] * batch
    mat = np.stack(columns, axis=1).astype(np.uint8) + ord("0")
    return [bytes(row).decode("ascii") for row in mat]


def _execute_batch(plan, engine, channels, noise, start, draws, dtype):
    """Run one batch of trajectories through a compiled plan.

    ``draws`` is the pre-drawn ``(B, draws_per_shot)`` uniform matrix;
    column ``j`` holds every row's ``j``-th stochastic choice, matching
    the serial engine's shot-major consumption of the same stream.
    """
    nb_qubits = plan.nb_qubits
    batch = draws.shape[0]
    base = initial_state(
        start if start is not None else "0" * nb_qubits,
        nb_qubits,
        dtype=dtype,
    )
    states = np.tile(base, (batch, 1))
    col = 0
    recorded: list = []
    x_kernel = None

    for step in plan.steps:
        if step.kind == GATE:
            states = engine.apply_planned_batched(states, step, nb_qubits)
            channel = (
                channels.get(type(step.op))
                if step.op is not None
                else None
            )
            if channel is not None:
                kraus = channel.kraus
                needs_draw = len(kraus) > 1
                for q in step.noise_qubits:
                    r = None
                    if needs_draw:
                        r = draws[:, col]
                        col += 1
                    states = _apply_kraus_batched(
                        engine, states, kraus, q, nb_qubits, r
                    )
            continue
        if step.kind == MEASURE:
            outcomes, states = _sample_measurement_batched(
                engine, states, step.op, step.qubit, nb_qubits,
                draws[:, col],
            )
            col += 1
            if noise.readout_error > 0.0:
                flips = draws[:, col] < noise.readout_error
                col += 1
                outcomes = outcomes ^ flips.astype(np.int64)
            recorded.append(outcomes)
            continue
        # RESET
        meas = Measurement(step.op.qubit)
        outcomes, states = _sample_measurement_batched(
            engine, states, meas, step.qubit, nb_qubits, draws[:, col]
        )
        col += 1
        ones = outcomes.astype(bool)
        if ones.any():
            if x_kernel is None:
                from repro.gates import PauliX

                x_kernel = PauliX(0).matrix
            states[ones] = engine.apply_batched(
                np.ascontiguousarray(states[ones]), x_kernel,
                [step.qubit], nb_qubits,
            )
        if step.op.record:
            recorded.append(outcomes)

    return _bit_matrix_to_strings(recorded, batch), states


def _batch_worker(payload):
    """Process-pool entry point: run one pre-seeded batch.

    Receives everything it needs (circuit, channels, the pre-drawn
    uniform matrix) so results do not depend on which worker — or how
    many workers — execute the batch.  Compiled plans memoize per
    process, so a worker pays compilation at most once per circuit.
    """
    (circuit, noise, channels, start, opts, use_fuse, draws,
     keep_states) = payload
    plan, _stats = get_plan(
        circuit, opts.backend, opts.dtype, fuse=use_fuse
    )
    results, states = _execute_batch(
        plan, plan.engine, channels, noise, start, draws, opts.dtype
    )
    return results, (states if keep_states else None)


def run_trajectories_batched(
    circuit,
    noise: Optional[NoiseModel] = None,
    shots: int = 1000,
    seed=None,
    start=None,
    backend=None,
    options: Optional[SimulationOptions] = None,
    return_states: bool = False,
) -> BatchedTrajectoryResult:
    """Sample ``shots`` noisy trajectories through the batched engine.

    The shots are partitioned into batches of
    ``options.batch_size`` rows (memory-aware default) and each batch
    executes as ONE ``(B, 2**n)`` array: every compiled plan step is
    applied once across the batch and the stochastic choices are
    vectorized — Kraus selection via one uniform vector plus boolean
    masks per operator, measurement collapse via per-row outcome
    sampling and masked renormalization, readout error as a vectorized
    bit flip.

    With ``options.max_workers > 1`` the batches fan out over a
    process pool.  The parent draws every batch's randomness from the
    seed stream *before* dispatch, so the outcome sequence is
    bit-reproducible for a fixed seed regardless of the worker count —
    and identical to a serial :func:`run_trajectory` loop sharing one
    generator.

    ``return_states=True`` additionally stacks the final states into a
    ``(shots, 2**n)`` array on the result (memory permitting).
    """
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    noise = noise or NoiseModel()
    opts = _resolve_options(options, backend)
    nb_qubits = circuit.nbQubits
    shots = int(shots)
    if shots < 0:
        raise SimulationError(f"shots must be >= 0, got {shots}")
    inst = resolve_instrumentation(opts.trace, opts.metrics)

    with activate(inst), inst.span(
        "batch.trajectories", shots=shots, nb_qubits=nb_qubits
    ) as span:
        use_fuse = opts.fuse and noise.is_trivial
        plan, _stats = get_plan(
            circuit, opts.backend, opts.dtype, fuse=use_fuse
        )
        channels = _channel_map(circuit, noise)
        draws_per_shot = _draws_per_shot(plan, channels, noise)
        batch_size = opts.batch_size or _default_batch_size(
            shots, nb_qubits
        )
        sizes = [
            min(batch_size, shots - done)
            for done in range(0, shots, batch_size)
        ] or []
        # the parent owns the stream: every batch's uniforms are drawn
        # here, in order, so workers receive randomness instead of seeds
        draw_blocks = [
            rng.random((size, draws_per_shot)) for size in sizes
        ]

        workers = min(int(opts.max_workers), max(1, len(sizes)))
        if inst.enabled:
            # instrumented runs execute in-process so every kernel
            # application lands in this run's registry
            workers = 1
        engine = plan.engine
        if inst.enabled:
            span.set(
                backend=engine.name,
                batch_size=batch_size,
                workers=workers,
                draws_per_shot=draws_per_shot,
            )
            engine = InstrumentedBackend(engine, inst.metrics)
            inst.metrics.counter(
                TRAJECTORIES, "Monte-Carlo trajectories executed"
            ).inc(shots)
            inst.metrics.counter(
                BATCHED_SHOTS, "shots executed by the batched engine"
            ).inc(shots)
            inst.metrics.gauge(
                BATCH_SIZE, "high-water trajectory batch size"
            ).set_max(batch_size)
            inst.metrics.gauge(
                BATCH_WORKERS, "high-water batch worker fan-out"
            ).set_max(workers)
            if shots and draws_per_shot:
                inst.metrics.counter(
                    RNG_DRAWS, "random draws consumed"
                ).inc(shots * draws_per_shot)

        results: List[str] = []
        state_blocks: List[np.ndarray] = []
        if workers > 1:
            import concurrent.futures

            child_opts = opts.replace(trace=None, metrics=None)
            payloads = [
                (circuit, noise, channels, start, child_opts,
                 use_fuse, block, return_states)
                for block in draw_blocks
            ]
            t_pool = perf_counter()
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                for res, states in pool.map(_batch_worker, payloads):
                    results.extend(res)
                    if return_states:
                        state_blocks.append(states)
            # child processes own their rings; one parent-side event
            # summarizes the whole fan-out
            record_event(
                EV_BATCH_EXECUTE,
                batch=shots,
                workers=workers,
                ns=int((perf_counter() - t_pool) * 1e9),
            )
        else:
            for block in draw_blocks:
                t_block = perf_counter()
                with inst.span("batch.execute", batch=block.shape[0]):
                    res, states = _execute_batch(
                        plan, engine, channels, noise, start, block,
                        opts.dtype,
                    )
                record_event(
                    EV_BATCH_EXECUTE,
                    batch=block.shape[0],
                    workers=1,
                    ns=int((perf_counter() - t_block) * 1e9),
                )
                results.extend(res)
                if return_states:
                    state_blocks.append(states)

        return BatchedTrajectoryResult(
            results=results,
            shots=shots,
            batch_size=batch_size,
            workers=workers,
            states=(
                np.concatenate(state_blocks, axis=0)
                if return_states and state_blocks
                else None
            ),
        )


def noisy_counts(
    circuit,
    noise: Optional[NoiseModel] = None,
    shots: int = 1000,
    seed=None,
    start=None,
    backend=None,
    options: Optional[SimulationOptions] = None,
) -> Dict[str, int]:
    """Outcome histogram over ``shots`` independent noisy trajectories.

    Executes through the batched engine
    (:func:`run_trajectories_batched`): all shots replay one compiled
    plan and each plan step runs once per ``(B, 2**n)`` batch, so the
    per-shot cost is linear algebra rather than interpreter overhead.
    For a fixed seed the histogram is identical to the historical
    serial loop's, independent of ``batch_size``/``max_workers``.  The
    returned dict is insertion-ordered by bitstring.
    """
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    opts = _resolve_options(options, backend)
    inst = resolve_instrumentation(opts.trace, opts.metrics)
    if inst.enabled:
        # share this run's tracer/registry with the batched engine
        # instead of letting it allocate fresh ones
        opts = opts.replace(trace=inst.tracer, metrics=inst.metrics)
    with activate(inst), inst.span("noisy_counts", shots=int(shots)):
        if inst.enabled:
            inst.metrics.counter(
                SHOTS_SAMPLED, "shots sampled via counts()"
            ).inc(int(shots))
        return run_trajectories_batched(
            circuit, noise, shots=shots, seed=rng, start=start,
            options=opts,
        ).counts
