"""Monte-Carlo wavefunction (quantum trajectory) simulation.

Instead of tracking every measurement branch (as
:func:`repro.simulation.simulate` does), a trajectory run samples ONE
path: each measurement collapses randomly according to its outcome
probabilities and each noise channel applies one Kraus operator drawn
with probability ``||K_i psi||^2``.  Averaging over shots reproduces
the open-system statistics exactly, at state-vector cost per shot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuit.barrier import Barrier
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import SimulationError
from repro.gates.base import QGate
from repro.noise.model import NoiseModel
from repro.simulation.backends import get_backend
from repro.simulation.simulate import apply_operation
from repro.simulation.state import initial_state

__all__ = ["TrajectoryResult", "run_trajectory", "noisy_counts"]


@dataclass
class TrajectoryResult:
    """One sampled path: recorded outcomes and the final state."""

    result: str
    state: np.ndarray


def _apply_kraus(engine, state, kraus, qubit, nb_qubits, rng):
    """Select and apply one Kraus operator (Monte-Carlo branch)."""
    if len(kraus) == 1:
        out = engine.apply(state, kraus[0], [qubit], nb_qubits)
        norm = np.linalg.norm(out)
        return out / norm
    r = float(rng.random())
    acc = 0.0
    for k in kraus:
        candidate = engine.apply(state.copy(), k, [qubit], nb_qubits)
        p = float(np.linalg.norm(candidate) ** 2)
        acc += p
        if r < acc or k is kraus[-1]:
            if p <= 1e-300:
                continue  # zero-probability op; keep scanning
            return candidate / np.sqrt(p)
    raise SimulationError("Kraus sampling failed to select an operator")


def _sample_measurement(engine, state, meas, qubit, nb_qubits, rng):
    """Collapse one measurement randomly; returns (outcome, state)."""
    if meas.basis != "z":
        state = engine.apply(state, meas.basis_change, [qubit], nb_qubits)
    left = 1 << qubit
    view = state.reshape(left, 2, -1)
    p1 = float(np.sum(np.abs(view[:, 1, :]) ** 2))
    outcome = 1 if rng.random() < p1 else 0
    prob = p1 if outcome == 1 else 1.0 - p1
    view[:, 1 - outcome, :] = 0.0
    state = state * (1.0 / np.sqrt(prob))
    if meas.basis != "z":
        state = engine.apply(
            state, meas.basis_change_dagger, [qubit], nb_qubits
        )
    return outcome, state


def run_trajectory(
    circuit,
    noise: Optional[NoiseModel] = None,
    rng=None,
    start=None,
    backend: str = "kernel",
) -> TrajectoryResult:
    """Sample a single noisy run of ``circuit``.

    Parameters
    ----------
    circuit:
        The :class:`~repro.circuit.QCircuit` to run.
    noise:
        A :class:`NoiseModel` (``None`` = noiseless trajectory).
    rng:
        Seed or :class:`numpy.random.Generator`.
    start:
        Initial state (bitstring or vector).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    noise = noise or NoiseModel()
    engine = get_backend(backend)
    nb_qubits = circuit.nbQubits
    if start is None:
        start = "0" * nb_qubits
    state = initial_state(start, nb_qubits)
    outcomes = []

    for op, off in circuit.operations():
        if isinstance(op, Barrier):
            continue
        if isinstance(op, QGate):
            state = apply_operation(engine, state, op, off, nb_qubits)
            channel = noise.channel_for(op)
            if channel is not None and not channel.is_identity:
                for q in op.qubits:
                    state = _apply_kraus(
                        engine, state, channel.kraus, q + off,
                        nb_qubits, rng,
                    )
            continue
        if isinstance(op, Measurement):
            outcome, state = _sample_measurement(
                engine, state, op, op.qubit + off, nb_qubits, rng
            )
            if noise.readout_error > 0.0 and (
                rng.random() < noise.readout_error
            ):
                outcome = 1 - outcome
            outcomes.append(str(outcome))
            continue
        if isinstance(op, Reset):
            meas = Measurement(op.qubit)
            outcome, state = _sample_measurement(
                engine, state, meas, op.qubit + off, nb_qubits, rng
            )
            if outcome == 1:
                from repro.gates import PauliX

                state = apply_operation(
                    engine, state, PauliX(op.qubit), off, nb_qubits
                )
            if op.record:
                outcomes.append(str(outcome))
            continue
        raise SimulationError(
            f"cannot simulate circuit element {type(op).__name__}"
        )

    return TrajectoryResult(result="".join(outcomes), state=state)


def noisy_counts(
    circuit,
    noise: Optional[NoiseModel] = None,
    shots: int = 1000,
    seed=None,
    start=None,
    backend: str = "kernel",
) -> Dict[str, int]:
    """Outcome histogram over ``shots`` independent noisy trajectories."""
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    counts: Dict[str, int] = {}
    for _ in range(int(shots)):
        result = run_trajectory(
            circuit, noise, rng=rng, start=start, backend=backend
        ).result
        counts[result] = counts.get(result, 0) + 1
    return counts
