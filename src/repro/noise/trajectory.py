"""Monte-Carlo wavefunction (quantum trajectory) simulation.

Instead of tracking every measurement branch (as
:func:`repro.simulation.simulate` does), a trajectory run samples ONE
path: each measurement collapses randomly according to its outcome
probabilities and each noise channel applies one Kraus operator drawn
with probability ``||K_i psi||^2``.  Averaging over shots reproduces
the open-system statistics exactly, at state-vector cost per shot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuit.measurement import Measurement
from repro.exceptions import SimulationError
from repro.noise.model import NoiseModel
from repro.observability.backend import InstrumentedBackend
from repro.observability.instrument import (
    activate,
    resolve_instrumentation,
)
from repro.observability.metrics import (
    RNG_DRAWS,
    SHOTS_SAMPLED,
    TRAJECTORIES,
)
from repro.simulation.options import SimulationOptions
from repro.simulation.plan import GATE, MEASURE, get_plan
from repro.simulation.state import initial_state

__all__ = ["TrajectoryResult", "run_trajectory", "noisy_counts"]


@dataclass
class TrajectoryResult:
    """One sampled path: recorded outcomes and the final state."""

    result: str
    state: np.ndarray


def _apply_kraus(engine, state, kraus, qubit, nb_qubits, rng):
    """Select and apply one Kraus operator (Monte-Carlo branch)."""
    if len(kraus) == 1:
        out = engine.apply(state, kraus[0], [qubit], nb_qubits)
        norm = np.linalg.norm(out)
        return out / norm
    r = float(rng.random())
    acc = 0.0
    for k in kraus:
        candidate = engine.apply(state.copy(), k, [qubit], nb_qubits)
        p = float(np.linalg.norm(candidate) ** 2)
        acc += p
        if r < acc or k is kraus[-1]:
            if p <= 1e-300:
                continue  # zero-probability op; keep scanning
            return candidate / np.sqrt(p)
    raise SimulationError("Kraus sampling failed to select an operator")


def _sample_measurement(engine, state, meas, qubit, nb_qubits, rng):
    """Collapse one measurement randomly; returns (outcome, state)."""
    if meas.basis != "z":
        state = engine.apply(state, meas.basis_change, [qubit], nb_qubits)
    left = 1 << qubit
    view = state.reshape(left, 2, -1)
    p1 = float(np.sum(np.abs(view[:, 1, :]) ** 2))
    outcome = 1 if rng.random() < p1 else 0
    prob = p1 if outcome == 1 else 1.0 - p1
    view[:, 1 - outcome, :] = 0.0
    state = state * (1.0 / np.sqrt(prob))
    if meas.basis != "z":
        state = engine.apply(
            state, meas.basis_change_dagger, [qubit], nb_qubits
        )
    return outcome, state


def _resolve_options(options, backend):
    if options is None:
        opts = SimulationOptions()
    elif isinstance(options, SimulationOptions):
        opts = options
    else:
        opts = SimulationOptions(**options)
    if backend is not None:
        opts = opts.replace(backend=backend)
    return opts


def _channel_map(circuit, noise: NoiseModel) -> dict:
    """``{gate class: NoiseChannel}`` for every noisy gate of the circuit.

    Built by running the ``inject_noise`` IR pass over the canonical
    (revision-cached) lowering.  :func:`noisy_counts` builds this once
    per batch, so every shot resolves channels with one dict lookup per
    gate instead of re-matching the noise model's rules.

    Keyed by gate *class*, matching :meth:`NoiseModel.channel_for`'s
    resolution — deliberately not by gate identity: the plan cache may
    hand back a plan compiled from a different but signature-equal
    circuit, whose step back-pointers are different objects of the same
    classes.
    """
    if noise.is_trivial:
        return {}
    from repro.ir.lower import lower
    from repro.ir.passes import InjectNoise, PassManager

    program = PassManager([InjectNoise(noise)]).run(lower(circuit))
    return {
        type(irop.op): irop.channel
        for irop in program
        if irop.channel is not None
    }


class _CountingRNG:
    """Thin proxy counting ``random()`` draws (instrumented runs)."""

    __slots__ = ("rng", "draws")

    def __init__(self, rng):
        self.rng = rng
        self.draws = 0

    def random(self):
        self.draws += 1
        return self.rng.random()


def run_trajectory(
    circuit,
    noise: Optional[NoiseModel] = None,
    rng=None,
    start=None,
    backend=None,
    options: Optional[SimulationOptions] = None,
    _channels: Optional[dict] = None,
) -> TrajectoryResult:
    """Sample a single noisy run of ``circuit``.

    Parameters
    ----------
    circuit:
        The :class:`~repro.circuit.QCircuit` to run.
    noise:
        A :class:`NoiseModel` (``None`` = noiseless trajectory).
    rng:
        Seed or :class:`numpy.random.Generator`.
    start:
        Initial state (bitstring or vector).
    backend:
        Backend name or instance; overrides ``options``.
    options:
        A :class:`~repro.simulation.SimulationOptions`; the circuit is
        executed through a compiled plan, so repeated trajectories of
        the same circuit reuse one compilation.  Gate fusion is
        disabled automatically while a non-trivial noise model is
        active (channels attach per source gate).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    noise = noise or NoiseModel()
    opts = _resolve_options(options, backend)
    nb_qubits = circuit.nbQubits
    channels = (
        _channels if _channels is not None
        else _channel_map(circuit, noise)
    )
    inst = resolve_instrumentation(opts.trace, opts.metrics)

    with activate(inst), inst.span(
        "trajectory", nb_qubits=nb_qubits
    ) as span:
        use_fuse = opts.fuse and noise.is_trivial
        plan, _stats = get_plan(
            circuit, opts.backend, opts.dtype, fuse=use_fuse
        )
        engine = plan.engine
        if inst.enabled:
            span.set(backend=engine.name)
            engine = InstrumentedBackend(engine, inst.metrics)
            inst.metrics.counter(
                TRAJECTORIES, "Monte-Carlo trajectories executed"
            ).inc()
            rng = _CountingRNG(rng)
        if start is None:
            start = "0" * nb_qubits
        state = initial_state(start, nb_qubits, dtype=opts.dtype)
        outcomes = []

        for step in plan.steps:
            if step.kind == GATE:
                state = engine.apply_planned(state, step, nb_qubits)
                channel = (
                    channels.get(type(step.op))
                    if step.op is not None
                    else None
                )
                if channel is not None:
                    for q in step.noise_qubits:
                        state = _apply_kraus(
                            engine, state, channel.kraus, q, nb_qubits,
                            rng,
                        )
                continue
            if step.kind == MEASURE:
                outcome, state = _sample_measurement(
                    engine, state, step.op, step.qubit, nb_qubits, rng
                )
                if noise.readout_error > 0.0 and (
                    rng.random() < noise.readout_error
                ):
                    outcome = 1 - outcome
                outcomes.append(str(outcome))
                continue
            # RESET
            meas = Measurement(step.op.qubit)
            outcome, state = _sample_measurement(
                engine, state, meas, step.qubit, nb_qubits, rng
            )
            if outcome == 1:
                from repro.gates import PauliX

                state = engine.apply(
                    state, PauliX(0).matrix, [step.qubit], nb_qubits
                )
            if step.op.record:
                outcomes.append(str(outcome))

        if isinstance(rng, _CountingRNG) and rng.draws:
            inst.metrics.counter(
                RNG_DRAWS, "random draws consumed"
            ).inc(rng.draws)
        return TrajectoryResult(result="".join(outcomes), state=state)


def noisy_counts(
    circuit,
    noise: Optional[NoiseModel] = None,
    shots: int = 1000,
    seed=None,
    start=None,
    backend=None,
    options: Optional[SimulationOptions] = None,
) -> Dict[str, int]:
    """Outcome histogram over ``shots`` independent noisy trajectories.

    All shots replay one compiled plan — the plan is fetched once from
    the cache, so the per-shot cost is pure execution."""
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    opts = _resolve_options(options, backend)
    inst = resolve_instrumentation(opts.trace, opts.metrics)
    if inst.enabled:
        # share this run's tracer/registry with every shot instead of
        # letting each trajectory allocate fresh ones
        opts = opts.replace(trace=inst.tracer, metrics=inst.metrics)
    with activate(inst), inst.span("noisy_counts", shots=int(shots)):
        if inst.enabled:
            inst.metrics.counter(
                SHOTS_SAMPLED, "shots sampled via counts()"
            ).inc(int(shots))
        counts: Dict[str, int] = {}
        channels = _channel_map(circuit, noise or NoiseModel())
        for _ in range(int(shots)):
            result = run_trajectory(
                circuit, noise, rng=rng, start=start, options=opts,
                _channels=channels,
            ).result
            counts[result] = counts.get(result, 0) + 1
        return counts
