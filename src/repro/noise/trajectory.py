"""Monte-Carlo wavefunction (quantum trajectory) simulation.

Instead of tracking every measurement branch (as
:func:`repro.simulation.simulate` does), a trajectory run samples ONE
path: each measurement collapses randomly according to its outcome
probabilities and each noise channel applies one Kraus operator drawn
with probability ``||K_i psi||^2``.  Averaging over shots reproduces
the open-system statistics exactly, at state-vector cost per shot.

Two entry points share this module — both thin wrappers submitting a
request to the unified execution core (the sampling loops themselves
live in :mod:`repro.execution.trajectory`):

:func:`run_trajectory`
    One shot, one ``(2**n,)`` state — the reference path.

:func:`run_trajectories_batched`
    ``B`` shots as a single ``(B, 2**n)`` array; every compiled plan
    step executes ONCE across the whole batch and all stochastic
    choices (Kraus selection, measurement collapse, readout flips) are
    vectorized over the batch axis.  Shot counts beyond one batch fan
    out over worker processes.  The batched engine consumes the SAME
    underlying uniform stream as a serial :func:`run_trajectory` loop
    sharing one generator, in the same order, so for a fixed seed it is
    shot-for-shot reproducible against the serial path and independent
    of ``batch_size`` and ``max_workers``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.noise.model import NoiseModel
from repro.observability.instrument import (
    activate,
    resolve_instrumentation,
)
from repro.observability.metrics import SHOTS_SAMPLED
from repro.simulation.options import SimulationOptions

__all__ = [
    "TrajectoryResult",
    "BatchedTrajectoryResult",
    "run_trajectory",
    "run_trajectories_batched",
    "noisy_counts",
]


@dataclass
class TrajectoryResult:
    """One sampled path: recorded outcomes and the final state."""

    result: str
    state: np.ndarray


@dataclass
class BatchedTrajectoryResult:
    """All sampled paths of one batched run.

    ``results`` lists the per-shot outcome strings in shot order —
    identical to what a serial :func:`run_trajectory` loop sharing one
    generator would produce for the same seed.  ``counts`` aggregates
    them into a histogram ordered lexicographically by bitstring.
    """

    results: List[str]
    shots: int
    batch_size: int
    workers: int
    #: Final ``(shots, 2**n)`` states when requested, else ``None``.
    states: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def counts(self) -> Dict[str, int]:
        """``{outcome: count}``, insertion-ordered by bitstring."""
        return dict(sorted(Counter(self.results).items()))


def _resolve_options(options, backend):
    if options is None:
        opts = SimulationOptions()
    elif isinstance(options, SimulationOptions):
        opts = options
    else:
        opts = SimulationOptions(**options)
    if backend is not None:
        opts = opts.replace(backend=backend)
    return opts


def run_trajectory(
    circuit,
    noise: Optional[NoiseModel] = None,
    rng=None,
    start=None,
    backend=None,
    options: Optional[SimulationOptions] = None,
    _channels: Optional[dict] = None,
) -> TrajectoryResult:
    """Sample a single noisy run of ``circuit``.

    Parameters
    ----------
    circuit:
        The :class:`~repro.circuit.QCircuit` to run.
    noise:
        A :class:`NoiseModel` (``None`` = noiseless trajectory).
    rng:
        Seed or :class:`numpy.random.Generator`.
    start:
        Initial state (bitstring or vector).
    backend:
        Backend name or instance; overrides ``options``.
    options:
        A :class:`~repro.simulation.SimulationOptions`; the circuit is
        executed through a compiled plan, so repeated trajectories of
        the same circuit reuse one compilation.  Gate fusion is
        disabled automatically while a non-trivial noise model is
        active (channels attach per source gate).
    """
    from repro.execution.executor import default_executor
    from repro.execution.request import TRAJECTORY, ExecutionRequest

    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    job = default_executor().submit(
        ExecutionRequest(
            circuit,
            kind=TRAJECTORY,
            start=start,
            options=_resolve_options(options, backend),
            seed=rng,
            noise=noise,
            channels=_channels,
        )
    )
    return job.result()


def run_trajectories_batched(
    circuit,
    noise: Optional[NoiseModel] = None,
    shots: int = 1000,
    seed=None,
    start=None,
    backend=None,
    options: Optional[SimulationOptions] = None,
    return_states: bool = False,
) -> BatchedTrajectoryResult:
    """Sample ``shots`` noisy trajectories through the batched engine.

    The shots are partitioned into batches of
    ``options.batch_size`` rows (memory-aware default) and each batch
    executes as ONE ``(B, 2**n)`` array: every compiled plan step is
    applied once across the batch and the stochastic choices are
    vectorized — Kraus selection via one uniform vector plus boolean
    masks per operator, measurement collapse via per-row outcome
    sampling and masked renormalization, readout error as a vectorized
    bit flip.

    With ``options.max_workers > 1`` the batches fan out over a
    process pool.  The parent draws every batch's randomness from the
    seed stream *before* dispatch, so the outcome sequence is
    bit-reproducible for a fixed seed regardless of the worker count —
    and identical to a serial :func:`run_trajectory` loop sharing one
    generator.

    ``return_states=True`` additionally stacks the final states into a
    ``(shots, 2**n)`` array on the result (memory permitting).
    """
    from repro.execution.executor import default_executor
    from repro.execution.request import (
        TRAJECTORY_BATCH,
        ExecutionRequest,
    )

    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    job = default_executor().submit(
        ExecutionRequest(
            circuit,
            kind=TRAJECTORY_BATCH,
            start=start,
            options=_resolve_options(options, backend),
            seed=rng,
            noise=noise,
            shots=int(shots),
            return_states=bool(return_states),
        )
    )
    return job.result()


def noisy_counts(
    circuit,
    noise: Optional[NoiseModel] = None,
    shots: int = 1000,
    seed=None,
    start=None,
    backend=None,
    options: Optional[SimulationOptions] = None,
) -> Dict[str, int]:
    """Outcome histogram over ``shots`` independent noisy trajectories.

    Executes through the batched engine
    (:func:`run_trajectories_batched`): all shots replay one compiled
    plan and each plan step runs once per ``(B, 2**n)`` batch, so the
    per-shot cost is linear algebra rather than interpreter overhead.
    For a fixed seed the histogram is identical to the historical
    serial loop's, independent of ``batch_size``/``max_workers``.  The
    returned dict is insertion-ordered by bitstring.
    """
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    opts = _resolve_options(options, backend)
    inst = resolve_instrumentation(opts.trace, opts.metrics)
    if inst.enabled:
        # share this run's tracer/registry with the batched engine
        # instead of letting it allocate fresh ones
        opts = opts.replace(trace=inst.tracer, metrics=inst.metrics)
    with activate(inst), inst.span("noisy_counts", shots=int(shots)):
        if inst.enabled:
            inst.metrics.counter(
                SHOTS_SAMPLED, "shots sampled via counts()"
            ).inc(int(shots))
        return run_trajectories_batched(
            circuit, noise, shots=shots, seed=rng, start=start,
            options=opts,
        ).counts
