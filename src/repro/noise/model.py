"""Noise models: where channels strike in a circuit.

A :class:`NoiseModel` attaches channels to circuit locations:

* ``gate_noise`` — applied to every qubit a gate touches, after the
  gate (the standard circuit-level noise model);
* ``per_gate`` — overrides per gate class (e.g. stronger noise on
  two-qubit gates, the usual hardware reality);
* ``idle_noise`` — applied to qubits named by an :class:`Identity`
  gate (lets a circuit mark explicit "wait" locations);
* ``readout_error`` — classical bit-flip probability on each recorded
  measurement outcome.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.exceptions import SimulationError
from repro.gates import Identity
from repro.gates.base import QGate
from repro.noise.channels import NoiseChannel

__all__ = ["NoiseModel"]


class NoiseModel:
    """Maps circuit locations to noise channels.

    Parameters
    ----------
    gate_noise:
        Channel applied on every qubit touched by every gate (``None``
        disables).
    per_gate:
        ``{GateClass: channel}`` overrides; an entry with value ``None``
        makes that gate class noiseless.
    idle_noise:
        Channel applied where the circuit contains an explicit
        :class:`~repro.gates.Identity` (wait) gate.  Overrides
        ``gate_noise`` on those markers.
    readout_error:
        Probability of classically flipping each recorded measurement
        outcome.
    """

    def __init__(
        self,
        gate_noise: Optional[NoiseChannel] = None,
        per_gate: Optional[Dict[Type[QGate], Optional[NoiseChannel]]] = None,
        idle_noise: Optional[NoiseChannel] = None,
        readout_error: float = 0.0,
    ):
        if not 0.0 <= readout_error <= 1.0:
            raise SimulationError(
                f"readout_error {readout_error} outside [0, 1]"
            )
        for ch in [gate_noise, idle_noise] + list(
            (per_gate or {}).values()
        ):
            if ch is not None and not isinstance(ch, NoiseChannel):
                raise SimulationError(
                    f"expected a NoiseChannel, got {type(ch).__name__}"
                )
        self.gate_noise = gate_noise
        self.per_gate = dict(per_gate or {})
        self.idle_noise = idle_noise
        self.readout_error = float(readout_error)

    def channel_for(self, gate: QGate) -> Optional[NoiseChannel]:
        """The channel that strikes after ``gate`` (``None`` = noiseless)."""
        if self.idle_noise is not None and isinstance(gate, Identity):
            return self.idle_noise
        if type(gate) in self.per_gate:
            return self.per_gate[type(gate)]
        return self.gate_noise

    @property
    def is_trivial(self) -> bool:
        """``True`` when the model never applies any noise."""
        return (
            self.gate_noise is None
            and self.idle_noise is None
            and not any(self.per_gate.values())
            and self.readout_error == 0.0
        )

    def __repr__(self) -> str:
        return (
            f"NoiseModel(gate_noise={self.gate_noise!r}, "
            f"idle_noise={self.idle_noise!r}, "
            f"readout_error={self.readout_error})"
        )
