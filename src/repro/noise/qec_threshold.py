"""The repetition-code threshold experiment.

Runs the paper's distance-3 bit-flip code (Section 5.4) against a
*stochastic* bit-flip channel of strength ``p`` on the three data
qubits and measures the logical error rate.  The code corrects any
single flip, so the exact combinatorics give

.. math::

    p_L = 3 p^2 (1 - p) + p^3 = 3 p^2 - 2 p^3,

and the measured curve must follow it — the canonical
"encoded beats unencoded below threshold ``p = 1/2``" figure.
"""

from __future__ import annotations

import numpy as np

from repro.circuit import Measurement, QCircuit
from repro.exceptions import SimulationError
from repro.gates import CNOT, Identity, MCX
from repro.noise.channels import BitFlip
from repro.noise.model import NoiseModel
from repro.noise.trajectory import run_trajectories_batched

__all__ = [
    "repetition_code_logical_error_rate",
    "theoretical_logical_error_rate",
]


def theoretical_logical_error_rate(p: float) -> float:
    """Exact logical error rate of the distance-3 repetition code:
    ``3 p^2 - 2 p^3`` (two or three of the data qubits flipped)."""
    return 3.0 * p**2 - 2.0 * p**3


def _noisy_memory_circuit() -> QCircuit:
    """Encode |0>_L, wait (noise strikes), extract + correct, decode.

    Identity gates on the data qubits mark the noise location; the
    final CNOT/Toffoli decode maps the corrected logical qubit back to
    q0, which is then measured: outcome 1 = logical error.
    """
    c = QCircuit(5)
    # encode
    c.push_back(CNOT(0, 1))
    c.push_back(CNOT(0, 2))
    # explicit wait location for the noise channel
    for q in range(3):
        c.push_back(Identity(q))
    # syndrome extraction into ancillas q3, q4
    c.push_back(CNOT(0, 3))
    c.push_back(CNOT(1, 3))
    c.push_back(CNOT(0, 4))
    c.push_back(CNOT(2, 4))
    c.push_back(Measurement(3))
    c.push_back(Measurement(4))
    # correction, as in the paper
    c.push_back(MCX([3, 4], 2, [0, 1]))
    c.push_back(MCX([3, 4], 1, [1, 0]))
    c.push_back(MCX([3, 4], 0, [1, 1]))
    # decode and read the logical qubit
    c.push_back(CNOT(0, 1))
    c.push_back(CNOT(0, 2))
    c.push_back(Measurement(0))
    return c


def repetition_code_logical_error_rate(
    p: float, shots: int = 2000, seed=None, backend: str = "kernel"
) -> float:
    """Measured logical error rate of the distance-3 code at physical
    bit-flip probability ``p``.

    The shots execute through the batched trajectory engine
    (:func:`repro.noise.run_trajectories_batched`), which for a fixed
    seed reproduces the historical serial loop shot-for-shot; the
    final data-qubit readout (the last recorded outcome) is 1 exactly
    when the error was miscorrected.
    """
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"physical error rate {p} outside [0, 1]")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    circuit = _noisy_memory_circuit()
    noise = NoiseModel(idle_noise=BitFlip(p))
    res = run_trajectories_batched(
        circuit, noise, shots=int(shots), seed=rng, backend=backend
    )
    # outcomes: syndrome bits then the logical readout
    failures = sum(1 for r in res.results if r[-1] == "1")
    return failures / float(shots)
