"""Single-qubit noise channels as Kraus-operator sets.

Every channel satisfies the completeness relation
``sum_i K_i^dagger K_i = I`` (validated at construction).  The
trajectory simulator selects one Kraus operator per application with
probability ``||K_i |psi>||^2``, which reproduces the channel exactly
in expectation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.linalg import closeto, dagger

__all__ = [
    "NoiseChannel",
    "PauliChannel",
    "BitFlip",
    "PhaseFlip",
    "Depolarizing",
    "AmplitudeDamping",
]

_I = np.eye(2, dtype=np.complex128)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.diag([1.0, -1.0]).astype(np.complex128)


class NoiseChannel:
    """A single-qubit quantum channel given by Kraus operators.

    Parameters
    ----------
    kraus:
        Sequence of ``2 x 2`` arrays ``K_i`` with
        ``sum_i K_i^dagger K_i = I``.
    name:
        Human-readable channel name.
    """

    def __init__(self, kraus: Sequence[np.ndarray], name: str = "channel"):
        ops = [np.asarray(k, dtype=np.complex128) for k in kraus]
        if not ops:
            raise SimulationError("a channel needs at least one Kraus op")
        for k in ops:
            if k.shape != (2, 2):
                raise SimulationError(
                    f"Kraus operator of shape {k.shape}; expected (2, 2)"
                )
        total = sum(dagger(k) @ k for k in ops)
        if not closeto(total, _I, atol=1e-10):
            raise SimulationError(
                "Kraus operators do not satisfy completeness "
                "(sum K^dag K != I)"
            )
        self._kraus = ops
        self._name = str(name)

    @property
    def kraus(self) -> List[np.ndarray]:
        """The Kraus operators."""
        return list(self._kraus)

    @property
    def name(self) -> str:
        """Channel name."""
        return self._name

    @property
    def is_identity(self) -> bool:
        """``True`` for the trivial channel (single identity Kraus op)."""
        return len(self._kraus) == 1 and closeto(self._kraus[0], _I)

    def __repr__(self) -> str:
        return f"NoiseChannel({self._name!r}, {len(self._kraus)} Kraus ops)"


class PauliChannel(NoiseChannel):
    """Applies X, Y, Z with probabilities ``px``, ``py``, ``pz``.

    The identity is applied with the remaining probability; each Kraus
    operator is ``sqrt(p) * sigma``.
    """

    def __init__(self, px: float = 0.0, py: float = 0.0, pz: float = 0.0):
        for p in (px, py, pz):
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"probability {p} outside [0, 1]")
        p_id = 1.0 - px - py - pz
        if p_id < -1e-12:
            raise SimulationError("Pauli probabilities sum to more than 1")
        p_id = max(p_id, 0.0)
        kraus = [np.sqrt(p_id) * _I]
        for p, sigma in ((px, _X), (py, _Y), (pz, _Z)):
            if p > 0.0:
                kraus.append(np.sqrt(p) * sigma)
        super().__init__(kraus, name="pauli")
        self.px, self.py, self.pz = float(px), float(py), float(pz)


class BitFlip(PauliChannel):
    """Flips the qubit (X) with probability ``p``."""

    def __init__(self, p: float):
        super().__init__(px=p)
        self._name = "bit-flip"
        self.p = float(p)


class PhaseFlip(PauliChannel):
    """Applies Z with probability ``p``."""

    def __init__(self, p: float):
        super().__init__(pz=p)
        self._name = "phase-flip"
        self.p = float(p)


class Depolarizing(PauliChannel):
    """Applies each of X, Y, Z with probability ``p/3``."""

    def __init__(self, p: float):
        super().__init__(px=p / 3.0, py=p / 3.0, pz=p / 3.0)
        self._name = "depolarizing"
        self.p = float(p)


class AmplitudeDamping(NoiseChannel):
    """Energy relaxation toward ``|0>`` with damping rate ``gamma``.

    Kraus operators ``K0 = diag(1, sqrt(1-gamma))`` and
    ``K1 = sqrt(gamma) |0><1|`` — a genuinely non-unital channel that
    exercises the trajectory simulator beyond Pauli errors.
    """

    def __init__(self, gamma: float):
        if not 0.0 <= gamma <= 1.0:
            raise SimulationError(f"gamma {gamma} outside [0, 1]")
        k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]])
        k1 = np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]])
        super().__init__([k0, k1], name="amplitude-damping")
        self.gamma = float(gamma)
