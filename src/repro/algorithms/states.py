"""Named entangled-state builders (extension).

Circuit constructors for the standard families of entangled states —
GHZ, W and graph states — used as workloads throughout the benchmark
suite and as starting points for experiments.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.gates import CNOT, CZ, Hadamard, RotationY
from repro.utils.validation import check_qubits

__all__ = [
    "ghz_circuit",
    "ghz_state",
    "w_circuit",
    "w_state",
    "graph_state_circuit",
]


def ghz_circuit(nb_qubits: int) -> QCircuit:
    """Prepare the GHZ state ``(|0...0> + |1...1>)/sqrt(2)``."""
    if nb_qubits < 1:
        raise CircuitError("GHZ needs at least one qubit")
    c = QCircuit(nb_qubits)
    c.push_back(Hadamard(0))
    for q in range(nb_qubits - 1):
        c.push_back(CNOT(q, q + 1))
    return c


def ghz_state(nb_qubits: int) -> np.ndarray:
    """The GHZ state vector."""
    dim = 1 << nb_qubits
    state = np.zeros(dim, dtype=np.complex128)
    state[0] = state[-1] = 1 / np.sqrt(2.0)
    return state


def w_circuit(nb_qubits: int) -> QCircuit:
    """Prepare the W state ``(|10..0> + |01..0> + ... + |0..01>)/sqrt(n)``.

    Uses the cascade construction: a chain of controlled RY rotations
    distributing the single excitation with amplitudes ``sqrt(1/n)``,
    followed by CNOTs shifting it into place.
    """
    n = nb_qubits
    if n < 1:
        raise CircuitError("W state needs at least one qubit")
    c = QCircuit(n)
    from repro.gates import ControlledGate1, PauliX

    c.push_back(PauliX(0))
    # distribute the excitation: after step k, amplitude sqrt((n-k)/n)
    # remains on qubit k
    for k in range(n - 1):
        remaining = n - k
        theta = 2.0 * np.arccos(np.sqrt(1.0 / remaining))
        c.push_back(ControlledGate1(RotationY(k + 1, theta), k))
        c.push_back(CNOT(k + 1, k))
    return c


def w_state(nb_qubits: int) -> np.ndarray:
    """The W state vector."""
    dim = 1 << nb_qubits
    state = np.zeros(dim, dtype=np.complex128)
    for q in range(nb_qubits):
        state[1 << (nb_qubits - 1 - q)] = 1.0 / np.sqrt(nb_qubits)
    return state


def graph_state_circuit(
    nb_qubits: int, edges: Iterable[Tuple[int, int]]
) -> QCircuit:
    """Prepare the graph state of the given edge set.

    ``|G> = prod_{(a,b) in E} CZ_{ab} |+>^n`` — Hadamards on every
    qubit followed by one CZ per edge (all CZs commute, so edge order
    is irrelevant).
    """
    c = QCircuit(nb_qubits)
    for q in range(nb_qubits):
        c.push_back(Hadamard(q))
    seen = set()
    for a, b in edges:
        a, b = sorted(check_qubits([a, b], nb_qubits))
        if (a, b) in seen:
            raise CircuitError(f"duplicate edge ({a}, {b})")
        seen.add((a, b))
        c.push_back(CZ(a, b))
    return c
