"""Arbitrary state preparation (Möttönen et al., extension).

Compiles any normalized state vector into a circuit that prepares it
from ``|0...0>``, using multiplexed RY rotations for the amplitude
profile and multiplexed RZ rotations for the phase profile — the same
Gray-code multiplexor machinery as FABLE.  The preparation is exact up
to an unobservable global phase.
"""

from __future__ import annotations

import numpy as np

from repro.circuit import QCircuit
from repro.compilers.multiplexor import append_multiplexed_rotation
from repro.exceptions import StateError
from repro.utils.bits import bit_length_for

__all__ = ["prepare_state"]


def _ry_angles(amplitudes: np.ndarray, level: int, n: int) -> np.ndarray:
    """RY multiplexer angles for qubit ``level`` (0 = MSB).

    ``angles[j] = 2 arcsin(sqrt(P(bit=1 | prefix=j)))`` over the
    magnitude distribution of the target state.
    """
    probs = np.abs(amplitudes) ** 2
    block = 1 << (n - level)  # amplitudes per prefix value
    half = block >> 1
    angles = np.zeros(1 << level)
    for j in range(1 << level):
        seg = probs[j * block : (j + 1) * block]
        den = seg.sum()
        if den > 1e-300:
            angles[j] = 2.0 * np.arcsin(
                min(1.0, np.sqrt(seg[half:].sum() / den))
            )
    return angles


def _apply_phase_stage(circuit: QCircuit, phases: np.ndarray, n: int):
    """Imprint per-basis-state phases with multiplexed RZ cascades.

    Recursively splits the phase vector: the difference between the two
    halves of each prefix block becomes an RZ multiplexer on that level;
    the common part propagates upward until only a global phase is left
    (dropped).
    """
    current = phases.astype(float)
    for level in range(n - 1, -1, -1):
        pairs = current.reshape(-1, 2)
        deltas = pairs[:, 1] - pairs[:, 0]
        append_multiplexed_rotation(
            circuit,
            deltas,
            list(range(level)),
            level,
            axis="z",
            threshold=1e-14,
        )
        current = pairs.mean(axis=1)


def prepare_state(state) -> QCircuit:
    """A circuit preparing ``state`` from ``|0...0>`` (up to global phase).

    Parameters
    ----------
    state:
        Normalized complex vector of length ``2**n``.

    Examples
    --------
    >>> import numpy as np
    >>> circuit = prepare_state(np.array([1, 0, 0, 1]) / np.sqrt(2))
    >>> # circuit.matrix[:, 0] is the Bell state (up to global phase)
    """
    target = np.asarray(state, dtype=np.complex128).ravel()
    n = bit_length_for(target.size)
    if abs(np.linalg.norm(target) - 1.0) > 1e-8:
        raise StateError("state to prepare must be normalized")

    circuit = QCircuit(n)
    # amplitude profile: one RY multiplexer per qubit, MSB outward
    for level in range(n):
        angles = _ry_angles(target, level, n)
        append_multiplexed_rotation(
            circuit,
            angles,
            list(range(level)),
            level,
            axis="y",
            threshold=1e-14,
        )
    # phase profile (skip if the state is real non-negative)
    phases = np.angle(target)
    support = np.abs(target) > 1e-14
    if np.any(np.abs(phases[support]) > 1e-14):
        # zero out phases on non-support entries so they do not disturb
        # the cascade averages
        phases = np.where(support, phases, 0.0)
        _apply_phase_stage(circuit, phases, n)
    return circuit
