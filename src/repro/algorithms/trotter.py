"""Trotter–Suzuki time evolution circuits (extension).

Builds circuits approximating ``exp(-i H t)`` for a
:class:`~repro.simulation.observables.PauliSum` Hamiltonian — the
workload class that motivated QCLAB's derived F3C compiler (paper ref
[5]).  Each term ``exp(-i c t P)`` is implemented exactly with the
standard basis-change / CNOT-ladder / RZ construction; first- and
second-order (Strang) product formulas are provided.
"""

from __future__ import annotations

import numpy as np

from repro.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.gates import CNOT, Hadamard, RotationX, RotationZ, RotationZZ
from repro.simulation.observables import PauliSum

__all__ = ["pauli_evolution_circuit", "trotter_circuit"]


def _basis_change_ops(letter: str, qubit: int, forward: bool):
    """Gates mapping the eigenbasis of X/Y onto Z (and back)."""
    if letter == "x":
        return [Hadamard(qubit)]
    if letter == "y":
        # exp(-i t Y) = Rx(pi/2)^dag exp(-i t Z) Rx(pi/2)
        angle = np.pi / 2 if forward else -np.pi / 2
        return [RotationX(qubit, angle)]
    return []


def pauli_evolution_circuit(
    pauli: str, angle: float, nb_qubits: int | None = None
) -> QCircuit:
    """Circuit for ``exp(-i angle/2 * P)`` for one Pauli string ``P``.

    The convention matches the rotation gates: for ``P = Z`` this is
    ``RZ(angle)``; for a weighted Hamiltonian term ``c * P`` evolved for
    time ``t`` pass ``angle = 2 * c * t``.
    """
    p = pauli.lower()
    if any(c not in "ixyz" for c in p) or not p:
        raise CircuitError(f"invalid Pauli string {pauli!r}")
    n = nb_qubits if nb_qubits is not None else len(p)
    if len(p) != n:
        raise CircuitError(
            f"Pauli string length {len(p)} does not match {n} qubit(s)"
        )
    circuit = QCircuit(n)
    active = [q for q, c in enumerate(p) if c != "i"]
    if not active:
        return circuit  # exp(-i angle/2 I) is a global phase

    # single-qubit and two-qubit fast paths use the native gates
    if len(active) == 1 and p[active[0]] == "z":
        circuit.push_back(RotationZ(active[0], angle))
        return circuit
    if (
        len(active) == 2
        and p[active[0]] == "z"
        and p[active[1]] == "z"
    ):
        circuit.push_back(RotationZZ(active[0], active[1], angle))
        return circuit

    for q in active:
        for g in _basis_change_ops(p[q], q, forward=True):
            circuit.push_back(g)
    for a, b in zip(active, active[1:]):
        circuit.push_back(CNOT(a, b))
    circuit.push_back(RotationZ(active[-1], angle))
    for a, b in reversed(list(zip(active, active[1:]))):
        circuit.push_back(CNOT(a, b))
    for q in active:
        for g in _basis_change_ops(p[q], q, forward=False):
            circuit.push_back(g)
    return circuit


def trotter_circuit(
    hamiltonian: PauliSum,
    time: float,
    steps: int = 1,
    order: int = 1,
) -> QCircuit:
    """A Trotter–Suzuki approximation of ``exp(-i H t)``.

    Parameters
    ----------
    hamiltonian:
        The :class:`PauliSum` ``H = sum_k c_k P_k``.
    time:
        Evolution time ``t``.
    steps:
        Number of Trotter steps ``r`` (error decreases as ``1/r`` for
        first order, ``1/r^2`` for second).
    order:
        1 (Lie) or 2 (Strang splitting).
    """
    if order not in (1, 2):
        raise CircuitError(f"order must be 1 or 2, got {order}")
    if steps < 1:
        raise CircuitError(f"steps must be >= 1, got {steps}")
    n = hamiltonian.nbQubits
    dt = float(time) / steps
    circuit = QCircuit(n)

    def push_terms(terms, factor):
        for coeff, pauli in terms:
            sub = pauli_evolution_circuit(
                pauli, 2.0 * coeff * dt * factor, n
            )
            for op in sub:
                circuit.push_back(op)

    terms = hamiltonian.terms
    for _ in range(steps):
        if order == 1:
            push_terms(terms, 1.0)
        else:
            push_terms(terms[:-1], 0.5)
            push_terms(terms[-1:], 1.0)
            push_terms(list(reversed(terms[:-1])), 0.5)
    return circuit
