"""Quantum teleportation (paper, Section 5.1).

Builds the exact three-qubit circuit from the paper — Bell measurement
on the sender's side, classically-controlled corrections implemented as
controlled gates — and verifies that the sender's state lands on the
receiver's qubit for every measurement branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.circuit import Measurement, QCircuit
from repro.exceptions import StateError
from repro.gates import CNOT, CZ, Hadamard
from repro.simulation.reduced import reducedStatevector

__all__ = ["teleportation_circuit", "teleport", "bell_state", "TeleportationResult"]


def bell_state() -> np.ndarray:
    """The Bell pair ``(|00> + |11>)/sqrt(2)`` used as the quantum channel."""
    return np.array([1, 0, 0, 1], dtype=np.complex128) / np.sqrt(2.0)


def teleportation_circuit() -> QCircuit:
    """The paper's teleportation circuit ``qtc``.

    ``q0`` holds the state to teleport, ``q1``/``q2`` the Bell pair;
    mid-circuit measurements on ``q0``/``q1`` feed the controlled X/Z
    corrections on ``q2``.
    """
    qtc = QCircuit(3)
    qtc.push_back(CNOT(0, 1))
    qtc.push_back(Hadamard(0))
    qtc.push_back(Measurement(0))
    qtc.push_back(Measurement(1))
    qtc.push_back(CNOT(1, 2))
    qtc.push_back(CZ(0, 2))
    return qtc


@dataclass
class TeleportationResult:
    """Outcome of a teleportation run."""

    #: Bell-measurement outcomes, e.g. ``['00', '01', '10', '11']``.
    results: List[str]
    #: Probability of each outcome (ideally 0.25 each).
    probabilities: np.ndarray
    #: Full three-qubit state per branch.
    states: List[np.ndarray]
    #: State of the receiver's qubit ``q2`` per branch.
    received: List[np.ndarray]
    #: Max fidelity error ``1 - |<v|received>|^2`` over branches.
    worst_error: float


def teleport(v, backend: str = "kernel") -> TeleportationResult:
    """Teleport the one-qubit state ``v`` and verify arrival.

    Parameters
    ----------
    v:
        Length-2 normalized state vector (the paper uses
        ``(1/sqrt(2), i/sqrt(2))``).
    backend:
        Simulation backend name.
    """
    v = np.asarray(v, dtype=np.complex128).ravel()
    if v.size != 2:
        raise StateError(f"teleport expects a one-qubit state, got {v.size}")
    if abs(np.linalg.norm(v) - 1.0) > 1e-8:
        raise StateError("state to teleport must be normalized")

    qtc = teleportation_circuit()
    initial = np.kron(v, bell_state())
    sim = qtc.simulate(initial, {"backend": backend})

    received = [
        reducedStatevector(state, [0, 1], result)
        for state, result in zip(sim.states, sim.results)
    ]
    worst = 0.0
    for r in received:
        fid = abs(np.vdot(v, r)) ** 2
        worst = max(worst, 1.0 - fid)
    return TeleportationResult(
        results=sim.results,
        probabilities=sim.probabilities,
        states=sim.states,
        received=received,
        worst_error=worst,
    )
