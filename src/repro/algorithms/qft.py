"""Quantum Fourier transform (extension).

The QFT exercises the controlled-phase ladder and circuit composition;
``inverse_qft_circuit`` exercises :meth:`QCircuit.ctranspose`.

Convention: with ``q0`` as the most significant bit, the QFT maps the
basis state ``|j>`` to ``2^{-n/2} sum_k e^{2 pi i j k / 2^n} |k>``; the
final SWAP network restores natural output ordering.
"""

from __future__ import annotations

import math

from repro.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.gates import CPhase, Hadamard, SWAP

__all__ = ["qft_circuit", "inverse_qft_circuit"]


def qft_circuit(nb_qubits: int, do_swaps: bool = True) -> QCircuit:
    """The n-qubit quantum Fourier transform.

    ``do_swaps=False`` omits the final qubit-reversal SWAPs (useful when
    a follow-up circuit can simply read the qubits in reverse order, as
    phase estimation does).
    """
    if nb_qubits < 1:
        raise CircuitError("QFT needs at least one qubit")
    c = QCircuit(nb_qubits)
    for q in range(nb_qubits):
        c.push_back(Hadamard(q))
        for k in range(q + 1, nb_qubits):
            angle = math.pi / (1 << (k - q))
            c.push_back(CPhase(k, q, angle))
    if do_swaps:
        for q in range(nb_qubits // 2):
            c.push_back(SWAP(q, nb_qubits - 1 - q))
    return c


def inverse_qft_circuit(nb_qubits: int, do_swaps: bool = True) -> QCircuit:
    """The inverse QFT, via :meth:`QCircuit.ctranspose`."""
    return qft_circuit(nb_qubits, do_swaps=do_swaps).ctranspose()
