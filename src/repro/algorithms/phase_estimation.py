"""Quantum phase estimation (extension).

Estimates the eigenphase ``phi`` of a one-qubit unitary ``U`` (with
eigenvector prepared on the target qubit) using ``t`` counting qubits,
controlled powers of ``U`` and an inverse QFT — a canonical composition
test for controlled custom gates and nested circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.qft import inverse_qft_circuit
from repro.circuit import Measurement, QCircuit
from repro.exceptions import CircuitError
from repro.gates import ControlledGate1, Hadamard, MatrixGate

__all__ = ["phase_estimation_circuit", "estimate_phase", "PhaseEstimate"]


def phase_estimation_circuit(
    unitary: np.ndarray, nb_counting: int, measure: bool = True
) -> QCircuit:
    """Build the QPE circuit for a 2x2 unitary.

    Counting qubits are ``q0 .. q(t-1)`` (``q0`` the most significant
    phase bit); the eigenvector qubit is ``q_t``.
    """
    u = np.asarray(unitary, dtype=np.complex128)
    if u.shape != (2, 2):
        raise CircuitError("phase estimation expects a one-qubit unitary")
    if nb_counting < 1:
        raise CircuitError("need at least one counting qubit")
    t = nb_counting
    c = QCircuit(t + 1)
    for q in range(t):
        c.push_back(Hadamard(q))
    power = u
    # counting qubit q(t-1) controls U^1, q(t-2) controls U^2, ...
    for k in range(t):
        ctrl = t - 1 - k
        c.push_back(
            ControlledGate1(
                MatrixGate(t, power, label=f"U^{1 << k}"), ctrl
            )
        )
        power = power @ power
    iqft = inverse_qft_circuit(t)
    c.push_back(iqft.asBlock("QFT†"))
    if measure:
        for q in range(t):
            c.push_back(Measurement(q))
    return c


@dataclass
class PhaseEstimate:
    """Result of a phase-estimation run."""

    #: Estimated phase in ``[0, 1)``.
    phase: float
    #: The measured counting-register bitstring.
    bits: str
    #: Probability of that outcome.
    probability: float


def estimate_phase(
    unitary: np.ndarray,
    eigenvector: np.ndarray,
    nb_counting: int = 5,
    backend: str = "kernel",
) -> PhaseEstimate:
    """Estimate the eigenphase of ``unitary`` on ``eigenvector``.

    Returns the most likely ``t``-bit phase estimate; for phases exactly
    representable in ``t`` bits the result is deterministic.
    """
    vec = np.asarray(eigenvector, dtype=np.complex128).ravel()
    if vec.size != 2:
        raise CircuitError("eigenvector must be a one-qubit state")
    circuit = phase_estimation_circuit(unitary, nb_counting)
    counting0 = np.zeros(1 << nb_counting, dtype=np.complex128)
    counting0[0] = 1.0
    initial = np.kron(counting0, vec)
    sim = circuit.simulate(initial, {"backend": backend})
    best = int(np.argmax(sim.probabilities))
    bits = sim.results[best]
    return PhaseEstimate(
        phase=int(bits, 2) / (1 << nb_counting),
        bits=bits,
        probability=float(sim.probabilities[best]),
    )
