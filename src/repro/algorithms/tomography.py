"""Quantum state tomography (paper, Section 5.2).

Reconstructs a one-qubit density matrix from X/Y/Z-basis counts exactly
as the paper does:

.. math::

    \\rho^{est} = (S_0 I + S_1 X + S_2 Y + S_3 Z) / 2

with ``S_1 = P_x(0) - P_x(1)`` etc. estimated from ``shots`` repeated
measurements.  A general n-qubit Pauli (linear-inversion) tomography is
provided as an extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict

import numpy as np

from repro.circuit import Measurement, QCircuit
from repro.exceptions import MeasurementError, StateError
from repro.simulation.density import density_matrix, trace_distance

__all__ = [
    "measurement_circuit",
    "tomography_coefficients",
    "single_qubit_tomography",
    "pauli_tomography",
    "TomographyResult",
]

_PAULI = {
    "i": np.eye(2, dtype=np.complex128),
    "x": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "z": np.diag([1, -1]).astype(np.complex128),
}


def measurement_circuit(basis: str, nb_qubits: int = 1) -> QCircuit:
    """A circuit that only measures, in the given basis.

    For one qubit this is the paper's ``meas_x``/``meas_y``/``meas_z``;
    for several qubits ``basis`` may be a single letter (applied to all)
    or one letter per qubit.
    """
    if len(basis) == 1:
        basis = basis * nb_qubits
    if len(basis) != nb_qubits:
        raise MeasurementError(
            f"basis string {basis!r} does not match {nb_qubits} qubit(s)"
        )
    circuit = QCircuit(nb_qubits)
    for q, b in enumerate(basis):
        circuit.push_back(Measurement(q, b))
    return circuit


def tomography_coefficients(
    counts_x: np.ndarray, counts_y: np.ndarray, counts_z: np.ndarray
) -> np.ndarray:
    """The paper's ``S`` coefficients from X/Y/Z count vectors.

    ``S_0 = P_z(0) + P_z(1) = 1``; ``S_k`` is the mean of ``(-1)^bit`` in
    basis ``k``.
    """
    s = np.empty(4)
    for k, counts in enumerate((counts_z, counts_x, counts_y, counts_z)):
        counts = np.asarray(counts, dtype=float)
        shots = counts.sum()
        if shots <= 0:
            raise MeasurementError("counts must contain at least one shot")
        p0, p1 = counts[0] / shots, counts[1] / shots
        s[k] = (p0 + p1) if k == 0 else (p0 - p1)
    return s


@dataclass
class TomographyResult:
    """Output of a tomography experiment."""

    #: The coefficients ``[S_0, S_1, S_2, S_3]`` of Eq. (2).
    s: np.ndarray
    #: The reconstructed density matrix.
    rho_est: np.ndarray
    #: The true density matrix (``None`` when the state is unknown).
    rho_true: np.ndarray | None
    #: Trace distance between estimate and truth (``None`` if unknown).
    distance: float | None
    #: Raw count vectors per basis.
    counts: Dict[str, np.ndarray]


def single_qubit_tomography(
    v, shots: int = 1000, seed=None, backend: str = "kernel"
) -> TomographyResult:
    """Run the paper's full one-qubit tomography workflow.

    Measures ``v`` ``shots`` times in each of the X, Y and Z bases,
    estimates the S coefficients, reconstructs ``rho_est`` via Eq. (2)
    and reports the trace distance to the true ``rho = |v><v|``.

    ``seed`` seeds the shot sampling (the paper's ``rng(1)``).
    """
    v = np.asarray(v, dtype=np.complex128).ravel()
    if v.size != 2:
        raise StateError("single_qubit_tomography expects a one-qubit state")
    rng = np.random.default_rng(seed)
    counts = {}
    for basis in "xyz":
        circuit = measurement_circuit(basis)
        sim = circuit.simulate(v, {"backend": backend})
        counts[basis] = sim.counts(shots, seed=rng)
    s = tomography_coefficients(counts["x"], counts["y"], counts["z"])
    rho_est = 0.5 * (
        s[0] * _PAULI["i"]
        + s[1] * _PAULI["x"]
        + s[2] * _PAULI["y"]
        + s[3] * _PAULI["z"]
    )
    rho_true = density_matrix(v)
    return TomographyResult(
        s=s,
        rho_est=rho_est,
        rho_true=rho_true,
        distance=trace_distance(rho_true, rho_est),
        counts=counts,
    )


def pauli_tomography(
    state,
    shots: int = 1000,
    seed=None,
    backend: str = "kernel",
) -> TomographyResult:
    """Linear-inversion Pauli tomography of an n-qubit pure state.

    Extension of the paper's one-qubit workflow: measures in every
    basis setting of ``{x, y, z}^n`` and reconstructs

    .. math::

        \\rho^{est} = 2^{-n} \\sum_P \\hat E[P] \\; P

    over all ``4**n`` Pauli strings ``P`` (``E[I..I] = 1``).  Intended
    for small ``n`` (cost grows as ``3**n`` settings).
    """
    state = np.asarray(state, dtype=np.complex128).ravel()
    n = int(np.log2(state.size))
    if 1 << n != state.size:
        raise StateError("state length must be a power of two")
    if n > 6:
        raise StateError("pauli_tomography is intended for small registers")
    rng = np.random.default_rng(seed)

    # counts per measurement setting
    setting_counts: Dict[str, np.ndarray] = {}
    for setting in product("xyz", repeat=n):
        key = "".join(setting)
        sim = measurement_circuit(key, n).simulate(state, {"backend": backend})
        setting_counts[key] = sim.counts(shots, seed=rng)

    dim = 1 << n
    rho_est = np.zeros((dim, dim), dtype=np.complex128)
    for letters in product("ixyz", repeat=n):
        pauli = "".join(letters)
        setting = pauli.replace("i", "z")
        counts = setting_counts[setting]
        total = counts.sum()
        exp = 0.0
        active = [k for k, c in enumerate(pauli) if c != "i"]
        for outcome in range(dim):
            parity = sum((outcome >> (n - 1 - k)) & 1 for k in active) & 1
            exp += (1 - 2 * parity) * counts[outcome] / total
        op = _PAULI[pauli[0]]
        for c in pauli[1:]:
            op = np.kron(op, _PAULI[c])
        rho_est += exp * op
    rho_est /= dim
    rho_true = density_matrix(state)
    return TomographyResult(
        s=np.array([]),
        rho_est=rho_est,
        rho_true=rho_true,
        distance=trace_distance(rho_true, rho_est),
        counts=setting_counts,
    )
