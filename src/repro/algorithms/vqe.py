"""A variational quantum eigensolver (extension).

Exercises the observable machinery end to end: a hardware-efficient
RY/CZ ansatz, energies via :class:`~repro.simulation.observables.PauliSum`
expectations on the state-vector simulator, and a classical optimizer
(SciPy) minimizing the energy — the canonical NISQ prototyping workflow
the paper positions QCLAB for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.gates import CZ, RotationY
from repro.parameter import Parameter
from repro.simulation.observables import PauliSum
from repro.simulation.state import basis_state

__all__ = ["hardware_efficient_ansatz", "vqe_minimize", "VQEResult", "h2_hamiltonian"]


def h2_hamiltonian() -> PauliSum:
    """The textbook 2-qubit H2 Hamiltonian (STO-3G, fixed geometry).

    Coefficients from the standard qubit reduction; its ground energy is
    the molecule's electronic energy at that bond length.
    """
    return PauliSum(
        [
            (-1.052373245772859, "ii"),
            (0.39793742484318045, "zi"),
            (-0.39793742484318045, "iz"),
            (-0.01128010425623538, "zz"),
            (0.18093119978423156, "xx"),
        ]
    )


def hardware_efficient_ansatz(
    nb_qubits: int, layers: int, params=None
) -> QCircuit:
    """RY rotations interleaved with CZ entangler ladders.

    Needs ``nb_qubits * (layers + 1)`` parameters: one RY per qubit per
    rotation layer, with a CZ ladder between consecutive layers.

    ``params`` may be numeric angles, :class:`~repro.parameter.Parameter`
    slots (or a mix), or ``None`` to create a fresh symbolic slot per
    rotation — the resulting circuit is then compiled once and re-bound
    per evaluation via :meth:`QCircuit.bind`.
    """
    expected = nb_qubits * (layers + 1)
    if params is None:
        params = [Parameter(f"theta_{i}") for i in range(expected)]
    elif isinstance(params, np.ndarray):
        params = list(params.ravel())
    else:
        params = list(params)
    if len(params) != expected:
        raise CircuitError(
            f"ansatz needs {expected} parameter(s), got {len(params)}"
        )
    circuit = QCircuit(nb_qubits)
    idx = 0
    for layer in range(layers + 1):
        for q in range(nb_qubits):
            circuit.push_back(RotationY(q, params[idx]))
            idx += 1
        if layer < layers:
            for q in range(nb_qubits - 1):
                circuit.push_back(CZ(q, q + 1))
    return circuit


@dataclass
class VQEResult:
    """Output of a VQE minimization."""

    #: The minimized energy.
    energy: float
    #: Optimal parameters.
    params: np.ndarray
    #: Exact ground energy of the Hamiltonian (dense diagonalization).
    exact: float
    #: Number of energy evaluations used.
    evaluations: int


def vqe_minimize(
    hamiltonian: PauliSum,
    layers: int = 1,
    seed=0,
    restarts: int = 3,
    backend: str = "kernel",
) -> VQEResult:
    """Minimize ``<psi(params)| H |psi(params)>`` over the ansatz.

    Uses SciPy's gradient-free optimizers with a few random restarts;
    intended for the small Hamiltonians of prototyping workflows.  The
    ansatz is built once over symbolic :class:`Parameter` slots and each
    energy evaluation re-binds the same compiled plan, so the optimizer
    loop never pays for lowering or plan compilation after the first
    call.
    """
    import scipy.optimize

    n = hamiltonian.nbQubits
    zero = basis_state("0" * n)
    evaluations = 0

    circuit = hardware_efficient_ansatz(n, layers)
    thetas = circuit.parameters

    def energy(params):
        nonlocal evaluations
        evaluations += 1
        bound = circuit.bind(dict(zip(thetas, np.asarray(params, float))))
        state = bound.simulate(zero, {"backend": backend}).states[0]
        return hamiltonian.expectation(state)

    rng = np.random.default_rng(seed)
    best = None
    for _ in range(max(1, int(restarts))):
        x0 = rng.uniform(-np.pi, np.pi, size=n * (layers + 1))
        res = scipy.optimize.minimize(
            energy, x0, method="COBYLA",
            options={"maxiter": 500, "rhobeg": 0.5},
        )
        if best is None or res.fun < best.fun:
            best = res
    exact = float(np.linalg.eigvalsh(hamiltonian.matrix())[0])
    return VQEResult(
        energy=float(best.fun),
        params=np.asarray(best.x),
        exact=exact,
        evaluations=evaluations,
    )
