"""A variational quantum eigensolver (extension).

Exercises the observable machinery end to end: a hardware-efficient
RY/CZ ansatz, energies via :class:`~repro.simulation.observables.PauliSum`
expectations on the state-vector simulator, and a classical optimizer
(SciPy) minimizing the energy — the canonical NISQ prototyping workflow
the paper positions QCLAB for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.gates import CZ, RotationY
from repro.simulation.observables import PauliSum
from repro.simulation.state import basis_state

__all__ = ["hardware_efficient_ansatz", "vqe_minimize", "VQEResult", "h2_hamiltonian"]


def h2_hamiltonian() -> PauliSum:
    """The textbook 2-qubit H2 Hamiltonian (STO-3G, fixed geometry).

    Coefficients from the standard qubit reduction; its ground energy is
    the molecule's electronic energy at that bond length.
    """
    return PauliSum(
        [
            (-1.052373245772859, "ii"),
            (0.39793742484318045, "zi"),
            (-0.39793742484318045, "iz"),
            (-0.01128010425623538, "zz"),
            (0.18093119978423156, "xx"),
        ]
    )


def hardware_efficient_ansatz(
    nb_qubits: int, layers: int, params: np.ndarray
) -> QCircuit:
    """RY rotations interleaved with CZ entangler ladders.

    Needs ``nb_qubits * (layers + 1)`` parameters: one RY per qubit per
    rotation layer, with a CZ ladder between consecutive layers.
    """
    params = np.asarray(params, dtype=float).ravel()
    expected = nb_qubits * (layers + 1)
    if params.size != expected:
        raise CircuitError(
            f"ansatz needs {expected} parameter(s), got {params.size}"
        )
    circuit = QCircuit(nb_qubits)
    idx = 0
    for layer in range(layers + 1):
        for q in range(nb_qubits):
            circuit.push_back(RotationY(q, float(params[idx])))
            idx += 1
        if layer < layers:
            for q in range(nb_qubits - 1):
                circuit.push_back(CZ(q, q + 1))
    return circuit


@dataclass
class VQEResult:
    """Output of a VQE minimization."""

    #: The minimized energy.
    energy: float
    #: Optimal parameters.
    params: np.ndarray
    #: Exact ground energy of the Hamiltonian (dense diagonalization).
    exact: float
    #: Number of energy evaluations used.
    evaluations: int


def vqe_minimize(
    hamiltonian: PauliSum,
    layers: int = 1,
    seed=0,
    restarts: int = 3,
    backend: str = "kernel",
) -> VQEResult:
    """Minimize ``<psi(params)| H |psi(params)>`` over the ansatz.

    Uses SciPy's gradient-free optimizers with a few random restarts;
    intended for the small Hamiltonians of prototyping workflows.
    """
    import scipy.optimize

    n = hamiltonian.nbQubits
    zero = basis_state("0" * n)
    evaluations = 0

    def energy(params):
        nonlocal evaluations
        evaluations += 1
        circuit = hardware_efficient_ansatz(n, layers, params)
        state = circuit.simulate(zero, {"backend": backend}).states[0]
        return hamiltonian.expectation(state)

    rng = np.random.default_rng(seed)
    best = None
    for _ in range(max(1, int(restarts))):
        x0 = rng.uniform(-np.pi, np.pi, size=n * (layers + 1))
        res = scipy.optimize.minimize(
            energy, x0, method="COBYLA",
            options={"maxiter": 500, "rhobeg": 0.5},
        )
        if best is None or res.fun < best.fun:
            best = res
    exact = float(np.linalg.eigvalsh(hamiltonian.matrix())[0])
    return VQEResult(
        energy=float(best.fun),
        params=np.asarray(best.x),
        exact=exact,
        evaluations=evaluations,
    )
