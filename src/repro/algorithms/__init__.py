"""Algorithm builders: the paper's four examples plus extensions.

Section 5 of the paper walks through quantum teleportation, quantum
state tomography, Grover's algorithm and quantum error correction; each
has a builder module here that constructs the exact circuits from the
paper and a runner that reproduces the printed outputs.  The package
also ships the QFT, quantum phase estimation and classic oracle
algorithms (Deutsch–Jozsa, Bernstein–Vazirani) as extensions exercising
the same modular-composition machinery.
"""

from repro.algorithms.amplitude_estimation import (
    AmplitudeEstimate,
    amplitude_estimation_circuit,
    estimate_amplitude,
    grover_operator_matrix,
)
from repro.algorithms.grover import (
    diffuser_circuit,
    grover_circuit,
    grover_search,
    optimal_iterations,
    oracle_circuit,
    paper_diffuser,
    paper_grover_circuit,
    paper_oracle,
)
from repro.algorithms.oracles import (
    bernstein_vazirani_circuit,
    bernstein_vazirani_secret,
    deutsch_jozsa_circuit,
    deutsch_jozsa_is_constant,
    phase_oracle,
)
from repro.algorithms.phase_estimation import (
    phase_estimation_circuit,
    estimate_phase,
)
from repro.algorithms.qec import (
    bit_flip_code_circuit,
    phase_flip_code_circuit,
    run_bit_flip_demo,
    run_phase_flip_demo,
    run_shor_code_demo,
    shor_code_circuit,
)
from repro.algorithms.qft import qft_circuit, inverse_qft_circuit
from repro.algorithms.state_preparation import prepare_state
from repro.algorithms.states import (
    ghz_circuit,
    ghz_state,
    graph_state_circuit,
    w_circuit,
    w_state,
)
from repro.algorithms.trotter import pauli_evolution_circuit, trotter_circuit
from repro.algorithms.vqe import (
    VQEResult,
    h2_hamiltonian,
    hardware_efficient_ansatz,
    vqe_minimize,
)
from repro.algorithms.teleportation import (
    bell_state,
    teleport,
    teleportation_circuit,
)
from repro.algorithms.tomography import (
    measurement_circuit,
    pauli_tomography,
    single_qubit_tomography,
    tomography_coefficients,
)

__all__ = [
    # teleportation
    "teleportation_circuit",
    "teleport",
    "bell_state",
    # tomography
    "measurement_circuit",
    "single_qubit_tomography",
    "tomography_coefficients",
    "pauli_tomography",
    # grover
    "oracle_circuit",
    "diffuser_circuit",
    "grover_circuit",
    "grover_search",
    "optimal_iterations",
    "paper_oracle",
    "paper_diffuser",
    "paper_grover_circuit",
    # qec
    "bit_flip_code_circuit",
    "phase_flip_code_circuit",
    "shor_code_circuit",
    "run_bit_flip_demo",
    "run_phase_flip_demo",
    "run_shor_code_demo",
    # extensions
    "qft_circuit",
    "inverse_qft_circuit",
    "phase_estimation_circuit",
    "estimate_phase",
    "phase_oracle",
    "deutsch_jozsa_circuit",
    "deutsch_jozsa_is_constant",
    "bernstein_vazirani_circuit",
    "bernstein_vazirani_secret",
    "prepare_state",
    "pauli_evolution_circuit",
    "trotter_circuit",
    "hardware_efficient_ansatz",
    "vqe_minimize",
    "VQEResult",
    "h2_hamiltonian",
    "ghz_circuit",
    "ghz_state",
    "w_circuit",
    "w_state",
    "graph_state_circuit",
    "estimate_amplitude",
    "amplitude_estimation_circuit",
    "grover_operator_matrix",
    "AmplitudeEstimate",
]
