"""Quantum error correction (paper, Section 5.4) and extensions.

``bit_flip_code_circuit`` is the paper's 5-qubit distance-3 repetition
code demo: encode, inject a bit flip, extract the syndrome into two
ancillas, measure them mid-circuit and correct with multi-controlled X
gates whose control states decode the syndrome.

Extensions: the dual phase-flip repetition code and the 9-qubit Shor
code (protects against an arbitrary single-qubit Pauli error),
implemented with coherent decode + majority-vote Toffolis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit import Measurement, QCircuit
from repro.exceptions import CircuitError, StateError
from repro.gates import CNOT, Hadamard, MCX, PauliX, PauliY, PauliZ
from repro.simulation.density import density_matrix, fidelity
from repro.simulation.reduced import partial_trace

__all__ = [
    "bit_flip_code_circuit",
    "run_bit_flip_demo",
    "phase_flip_code_circuit",
    "run_phase_flip_demo",
    "shor_code_circuit",
    "run_shor_code_demo",
    "QECResult",
]

#: Syndrome expected per corrupted qubit for the repetition code:
#: ancilla q3 checks parity(q0, q1), ancilla q4 checks parity(q0, q2).
_SYNDROMES = {None: "00", 0: "11", 1: "10", 2: "01"}


def _check_state(v) -> np.ndarray:
    v = np.asarray(v, dtype=np.complex128).ravel()
    if v.size != 2:
        raise StateError("QEC demos protect a one-qubit state (length 2)")
    if abs(np.linalg.norm(v) - 1.0) > 1e-8:
        raise StateError("state must be normalized")
    return v


def bit_flip_code_circuit(error_qubit: int | None = 0) -> QCircuit:
    """The paper's distance-3 bit-flip repetition code circuit.

    ``error_qubit`` selects which physical qubit (0, 1 or 2) suffers the
    injected Pauli-X error; ``None`` injects no error.
    """
    if error_qubit not in (None, 0, 1, 2):
        raise CircuitError(
            f"error_qubit must be 0, 1, 2 or None, got {error_qubit!r}"
        )
    qec = QCircuit(5)
    # encode |v> across three physical qubits
    qec.push_back(CNOT(0, 1))
    qec.push_back(CNOT(0, 2))
    # inject the bit-flip error
    if error_qubit is not None:
        qec.push_back(PauliX(error_qubit))
    # extract the syndrome into the ancillas q3, q4
    qec.push_back(CNOT(0, 3))
    qec.push_back(CNOT(1, 3))
    qec.push_back(CNOT(0, 4))
    qec.push_back(CNOT(2, 4))
    qec.push_back(Measurement(3))
    qec.push_back(Measurement(4))
    # decode the syndrome with multi-controlled X gates
    qec.push_back(MCX([3, 4], 2, [0, 1]))
    qec.push_back(MCX([3, 4], 1, [1, 0]))
    qec.push_back(MCX([3, 4], 0, [1, 1]))
    return qec


@dataclass
class QECResult:
    """Outcome of an error-correction demo."""

    #: Measured syndrome string (repetition codes) or '' (Shor demo).
    syndrome: str
    #: Probability of that syndrome (1.0 for deterministic errors).
    probability: float
    #: Fidelity between the corrected logical content and the input.
    fidelity: float
    #: Whether correction succeeded (fidelity ~ 1).
    corrected: bool
    #: Final full-register state of the (single) branch.
    state: np.ndarray


def run_bit_flip_demo(
    v, error_qubit: int | None = 0, backend: str = "kernel"
) -> QECResult:
    """Protect ``v`` against a bit flip and verify the correction."""
    v = _check_state(v)
    circuit = bit_flip_code_circuit(error_qubit)
    initial = np.kron(v, _basis16())
    sim = circuit.simulate(initial, {"backend": backend})
    assert sim.nbBranches == 1  # deterministic syndrome
    syndrome = sim.results[0]
    state = sim.states[0]
    # expected: (alpha|000> + beta|111>) (x) |syndrome>
    expected = np.zeros(32, dtype=np.complex128)
    anc = int(syndrome, 2)
    expected[(0b000 << 2) | anc] = v[0]
    expected[(0b111 << 2) | anc] = v[1]
    fid = abs(np.vdot(expected, state)) ** 2
    return QECResult(
        syndrome=syndrome,
        probability=float(sim.probabilities[0]),
        fidelity=float(fid),
        corrected=bool(fid > 1 - 1e-10),
        state=state,
    )


def _basis16() -> np.ndarray:
    z = np.zeros(16, dtype=np.complex128)
    z[0] = 1.0
    return z


def phase_flip_code_circuit(error_qubit: int | None = 0) -> QCircuit:
    """Distance-3 phase-flip repetition code (extension).

    The dual of the paper's circuit: encoding conjugates the repetition
    code with Hadamards so ``|v>_L = alpha|+++> + beta|--->``; the
    injected error is a Pauli-Z; syndrome extraction and correction run
    in the Hadamard frame and the state is rotated back afterwards.
    """
    if error_qubit not in (None, 0, 1, 2):
        raise CircuitError(
            f"error_qubit must be 0, 1, 2 or None, got {error_qubit!r}"
        )
    qec = QCircuit(5)
    qec.push_back(CNOT(0, 1))
    qec.push_back(CNOT(0, 2))
    for q in range(3):
        qec.push_back(Hadamard(q))
    if error_qubit is not None:
        qec.push_back(PauliZ(error_qubit))
    for q in range(3):
        qec.push_back(Hadamard(q))
    qec.push_back(CNOT(0, 3))
    qec.push_back(CNOT(1, 3))
    qec.push_back(CNOT(0, 4))
    qec.push_back(CNOT(2, 4))
    qec.push_back(Measurement(3))
    qec.push_back(Measurement(4))
    qec.push_back(MCX([3, 4], 2, [0, 1]))
    qec.push_back(MCX([3, 4], 1, [1, 0]))
    qec.push_back(MCX([3, 4], 0, [1, 1]))
    for q in range(3):
        qec.push_back(Hadamard(q))
    return qec


def run_phase_flip_demo(
    v, error_qubit: int | None = 0, backend: str = "kernel"
) -> QECResult:
    """Protect ``v`` against a phase flip and verify the correction."""
    v = _check_state(v)
    circuit = phase_flip_code_circuit(error_qubit)
    initial = np.kron(v, _basis16())
    sim = circuit.simulate(initial, {"backend": backend})
    assert sim.nbBranches == 1
    syndrome = sim.results[0]
    state = sim.states[0]
    # expected logical content: alpha|+++> + beta|---> on q0..q2
    plus = np.ones(2) / np.sqrt(2.0)
    minus = np.array([1.0, -1.0]) / np.sqrt(2.0)
    ppp = np.kron(np.kron(plus, plus), plus)
    mmm = np.kron(np.kron(minus, minus), minus)
    logical = v[0] * ppp + v[1] * mmm
    anc = np.zeros(4)
    anc[int(syndrome, 2)] = 1.0
    expected = np.kron(logical, anc).astype(np.complex128)
    fid = abs(np.vdot(expected, state)) ** 2
    return QECResult(
        syndrome=syndrome,
        probability=float(sim.probabilities[0]),
        fidelity=float(fid),
        corrected=bool(fid > 1 - 1e-10),
        state=state,
    )


_ERRORS = {"x": PauliX, "y": PauliY, "z": PauliZ}


def shor_code_circuit(
    error_type: str | None = "x", error_qubit: int = 0
) -> QCircuit:
    """The 9-qubit Shor code (extension): encode, inject an arbitrary
    single-qubit Pauli error, coherently decode and majority-correct.

    No ancillas are used: decoding inverts the encoder and Toffoli
    majority votes restore the logical qubit on ``q0``.
    """
    if error_type is not None and error_type not in _ERRORS:
        raise CircuitError(
            f"error_type must be 'x', 'y', 'z' or None, got {error_type!r}"
        )
    if not 0 <= error_qubit < 9:
        raise CircuitError("error_qubit must be in 0..8")
    c = QCircuit(9)
    # encode: phase-level repetition across blocks {0,3,6} ...
    c.push_back(CNOT(0, 3))
    c.push_back(CNOT(0, 6))
    for b in (0, 3, 6):
        c.push_back(Hadamard(b))
        # ... then bit-level repetition inside each block
        c.push_back(CNOT(b, b + 1))
        c.push_back(CNOT(b, b + 2))
    # inject the error
    if error_type is not None:
        c.push_back(_ERRORS[error_type](error_qubit))
    # decode: invert the encoder with majority votes
    for b in (0, 3, 6):
        c.push_back(CNOT(b, b + 1))
        c.push_back(CNOT(b, b + 2))
        c.push_back(MCX([b + 1, b + 2], b))
        c.push_back(Hadamard(b))
    c.push_back(CNOT(0, 3))
    c.push_back(CNOT(0, 6))
    c.push_back(MCX([3, 6], 0))
    return c


def run_shor_code_demo(
    v, error_type: str | None = "x", error_qubit: int = 0,
    backend: str = "kernel",
) -> QECResult:
    """Run the Shor-code demo and verify ``q0`` carries ``v`` again."""
    v = _check_state(v)
    circuit = shor_code_circuit(error_type, error_qubit)
    rest = np.zeros(256, dtype=np.complex128)
    rest[0] = 1.0
    initial = np.kron(v, rest)
    sim = circuit.simulate(initial, {"backend": backend})
    state = sim.states[0]
    rho0 = partial_trace(state, keep=[0])
    fid = fidelity(density_matrix(v), rho0)
    return QECResult(
        syndrome="",
        probability=1.0,
        fidelity=float(fid),
        corrected=bool(fid > 1 - 1e-10),
        state=state,
    )
