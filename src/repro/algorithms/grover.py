"""Grover's algorithm (paper, Section 5.3).

Provides the paper's exact two-qubit construction (``paper_oracle``,
``paper_diffuser``, ``paper_grover_circuit`` — searching ``|11>`` among
four states with one iteration) and a general n-qubit generator with a
single-bitstring phase oracle, the standard diffuser and the optimal
iteration count.  Both demonstrate QCLAB's modular composition: the
oracle and diffuser are independent circuits pushed into the full
circuit as blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuit import Measurement, QCircuit
from repro.exceptions import CircuitError
from repro.gates import CZ, Hadamard, MCZ, PauliX, PauliZ

__all__ = [
    "paper_oracle",
    "paper_diffuser",
    "paper_grover_circuit",
    "oracle_circuit",
    "diffuser_circuit",
    "grover_circuit",
    "optimal_iterations",
    "grover_search",
    "GroverResult",
]


def paper_oracle() -> QCircuit:
    """The paper's two-qubit oracle (circuit (4)): a single CZ flips the
    phase of ``|11>``."""
    oracle = QCircuit(2)
    oracle.push_back(CZ(0, 1))
    return oracle


def paper_diffuser() -> QCircuit:
    """The paper's two-qubit diffuser (circuit (5)): H-Z on both qubits,
    a CZ, then H on both qubits."""
    diffuser = QCircuit(2)
    diffuser.push_back(Hadamard(0))
    diffuser.push_back(Hadamard(1))
    diffuser.push_back(PauliZ(0))
    diffuser.push_back(PauliZ(1))
    diffuser.push_back(CZ(0, 1))
    diffuser.push_back(Hadamard(0))
    diffuser.push_back(Hadamard(1))
    return diffuser


def paper_grover_circuit() -> QCircuit:
    """The complete two-qubit Grover circuit ``gc`` from the paper,
    with the oracle and diffuser pushed as blocks."""
    gc = QCircuit(2)
    gc.push_back(Hadamard(0))
    gc.push_back(Hadamard(1))
    gc.push_back(paper_oracle().asBlock("oracle"))
    gc.push_back(paper_diffuser().asBlock("diffuser"))
    gc.push_back(Measurement(0))
    gc.push_back(Measurement(1))
    return gc


def oracle_circuit(marked: str) -> QCircuit:
    """Phase oracle flipping the sign of the basis state ``marked``.

    Implemented as an MCZ whose open/closed controls encode the marked
    bitstring; for ``'11'`` this reduces to the paper's single CZ.
    """
    n = len(marked)
    if n < 1 or any(c not in "01" for c in marked):
        raise CircuitError(f"invalid marked bitstring {marked!r}")
    oracle = QCircuit(n)
    if n == 1:
        if marked == "1":
            oracle.push_back(PauliZ(0))
        else:
            oracle.push_back(PauliX(0))
            oracle.push_back(PauliZ(0))
            oracle.push_back(PauliX(0))
        return oracle
    # controls are q0..q(n-2) with states = marked bits; target q(n-1).
    # A target bit 0 is wrapped with X so the phase lands on `marked`.
    target = n - 1
    if marked[target] == "0":
        oracle.push_back(PauliX(target))
    if n == 2:
        oracle.push_back(
            CZ(0, 1) if marked[0] == "1" else CZ(0, 1, control_state=0)
        )
    else:
        controls = list(range(n - 1))
        states = [int(marked[q]) for q in controls]
        oracle.push_back(MCZ(controls, target, states))
    if marked[target] == "0":
        oracle.push_back(PauliX(target))
    return oracle


def diffuser_circuit(nb_qubits: int) -> QCircuit:
    """The standard inversion-about-the-mean diffuser on ``nb_qubits``:
    ``H^n X^n (MC)Z X^n H^n`` (equal to the paper's two-qubit diffuser
    up to global phase)."""
    if nb_qubits < 1:
        raise CircuitError("diffuser needs at least one qubit")
    d = QCircuit(nb_qubits)
    for q in range(nb_qubits):
        d.push_back(Hadamard(q))
    for q in range(nb_qubits):
        d.push_back(PauliX(q))
    if nb_qubits == 1:
        d.push_back(PauliZ(0))
    elif nb_qubits == 2:
        d.push_back(CZ(0, 1))
    else:
        d.push_back(MCZ(list(range(nb_qubits - 1)), nb_qubits - 1))
    for q in range(nb_qubits):
        d.push_back(PauliX(q))
    for q in range(nb_qubits):
        d.push_back(Hadamard(q))
    return d


def optimal_iterations(nb_qubits: int, nb_marked: int = 1) -> int:
    """The Grover iteration count ``round(pi/4 sqrt(N/M))`` (at least 1)."""
    ratio = (1 << nb_qubits) / nb_marked
    return max(1, int(math.floor(math.pi / 4.0 * math.sqrt(ratio))))


def grover_circuit(
    marked, iterations: int | None = None, measure: bool = True
) -> QCircuit:
    """Full Grover circuit searching for the marked bitstring(s).

    ``marked`` is a bitstring or a sequence of distinct bitstrings of
    equal length; ``iterations`` defaults to the optimal count for that
    number of marked items.  The oracle and diffuser are nested as
    labelled blocks, as in the paper's figure.
    """
    marked_list = [marked] if isinstance(marked, str) else list(marked)
    if not marked_list:
        raise CircuitError("grover_circuit needs at least one marked state")
    n = len(marked_list[0])
    if any(len(m) != n for m in marked_list):
        raise CircuitError("marked bitstrings must have equal length")
    if iterations is None:
        iterations = optimal_iterations(n, nb_marked=len(marked_list))
    gc = QCircuit(n)
    for q in range(n):
        gc.push_back(Hadamard(q))
    if len(marked_list) == 1:
        oracle_builder = lambda: oracle_circuit(marked_list[0])
    else:
        from repro.algorithms.oracles import phase_oracle

        oracle_builder = lambda: phase_oracle(marked_list, n)
    for _ in range(iterations):
        gc.push_back(oracle_builder().asBlock("oracle"))
        gc.push_back(diffuser_circuit(n).asBlock("diffuser"))
    if measure:
        for q in range(n):
            gc.push_back(Measurement(q))
    return gc


@dataclass
class GroverResult:
    """Outcome of a Grover run."""

    #: The most likely measured bitstring.
    found: str
    #: Its probability.
    probability: float
    #: Number of Grover iterations applied.
    iterations: int
    #: Full outcome distribution ``{bitstring: probability}``.
    distribution: dict


def grover_search(
    marked, iterations: int | None = None, backend: str = "kernel"
) -> GroverResult:
    """Run Grover's search for ``marked`` (one bitstring or several)
    and report the most likely outcome."""
    marked_list = [marked] if isinstance(marked, str) else list(marked)
    n = len(marked_list[0])
    iters = (
        optimal_iterations(n, nb_marked=len(marked_list))
        if iterations is None
        else int(iterations)
    )
    circuit = grover_circuit(marked_list if len(marked_list) > 1
                             else marked_list[0], iterations=iters)
    sim = circuit.simulate("0" * n, {"backend": backend})
    dist = dict(zip(sim.results, sim.probabilities))
    found = max(dist, key=dist.get)
    return GroverResult(
        found=found,
        probability=float(dist[found]),
        iterations=iters,
        distribution=dist,
    )
