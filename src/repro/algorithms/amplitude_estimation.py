"""Quantum amplitude estimation (extension).

Estimates ``a = sum_{x in good} |<x| A |0>|^2`` — the success
probability of a state-preparation circuit ``A`` — with phase
estimation on the Grover operator ``Q = -A S_0 A^dagger S_good``,
achieving the quadratic precision advantage over direct sampling
(Brassard et al.).  Composes the toolbox's QPE, phase oracles,
generic controlled gates and custom matrix gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.algorithms.oracles import phase_oracle
from repro.algorithms.qft import inverse_qft_circuit
from repro.circuit import Measurement, QCircuit
from repro.exceptions import CircuitError
from repro.gates import ControlledGate, Hadamard, MatrixGate

__all__ = [
    "grover_operator_matrix",
    "amplitude_estimation_circuit",
    "estimate_amplitude",
    "AmplitudeEstimate",
]


def grover_operator_matrix(
    preparation: QCircuit, good: Iterable[str]
) -> np.ndarray:
    """The dense Grover operator ``Q = A S_0 A^dagger S_good``.

    ``S_good`` flips the phase of the good states, ``S_0`` the phase of
    ``|0...0>``; on the 2D invariant subspace ``Q`` rotates by ``2 theta``
    with ``a = sin^2(theta)``.
    """
    if preparation.has_measurement:
        raise CircuitError(
            "the preparation circuit must be unitary (no measurements)"
        )
    n = preparation.nbQubits
    a_mat = preparation.matrix
    dim = 1 << n
    s_good = phase_oracle(list(good), n).matrix
    s_zero = np.eye(dim, dtype=np.complex128)
    s_zero[0, 0] = -1.0
    return -a_mat @ s_zero @ a_mat.conj().T @ s_good


def amplitude_estimation_circuit(
    preparation: QCircuit,
    good: Iterable[str],
    nb_counting: int,
    measure: bool = True,
) -> QCircuit:
    """The canonical QAE circuit.

    Counting qubits ``q0..q(t-1)``, system register after them; the
    preparation runs once on the system, controlled powers ``Q^{2^k}``
    feed the counting register, and an inverse QFT precedes readout.
    """
    if nb_counting < 1:
        raise CircuitError("need at least one counting qubit")
    n = preparation.nbQubits
    t = nb_counting
    system = list(range(t, t + n))
    circuit = QCircuit(t + n)
    for q in range(t):
        circuit.push_back(Hadamard(q))
    prep = QCircuit(n, offset=t)
    for op in preparation:
        prep.push_back(op)
    circuit.push_back(prep.asBlock("A"))
    q_mat = grover_operator_matrix(preparation, good)
    power = q_mat
    for k in range(t):
        ctrl = t - 1 - k
        circuit.push_back(
            ControlledGate(
                MatrixGate(system, power, label=f"Q^{1 << k}"), ctrl
            )
        )
        power = power @ power
    circuit.push_back(inverse_qft_circuit(t).asBlock("QFT†"))
    if measure:
        for q in range(t):
            circuit.push_back(Measurement(q))
    return circuit


@dataclass
class AmplitudeEstimate:
    """Result of an amplitude-estimation run."""

    #: The estimated amplitude ``a``.
    amplitude: float
    #: The exact amplitude (dense computation, for reference).
    exact: float
    #: The measured counting-register value's probability.
    probability: float
    #: Number of counting qubits used.
    nb_counting: int


def estimate_amplitude(
    preparation: QCircuit,
    good: Iterable[str],
    nb_counting: int = 5,
    backend: str = "kernel",
) -> AmplitudeEstimate:
    """Run QAE and return the most likely amplitude estimate.

    The estimate's resolution is ``O(1/2^t)`` in the phase ``theta``
    (quadratically better in ``a``-precision per oracle call than
    classical sampling).
    """
    good = list(good)
    n = preparation.nbQubits
    circuit = amplitude_estimation_circuit(preparation, good, nb_counting)
    sim = circuit.simulate("0" * circuit.nbQubits, {"backend": backend})
    # aggregate probabilities over the counting register (the system
    # register is unmeasured, so results are t-bit strings already)
    best = int(np.argmax(sim.probabilities))
    y = int(sim.results[best], 2)
    theta = np.pi * y / (1 << nb_counting)
    a_est = float(np.sin(theta) ** 2)

    psi = preparation.matrix[:, 0]
    exact = float(
        sum(abs(psi[int(x, 2)]) ** 2 for x in good)
    )
    return AmplitudeEstimate(
        amplitude=a_est,
        exact=exact,
        probability=float(sim.probabilities[best]),
        nb_counting=nb_counting,
    )
