"""Oracle constructions and the classic oracle algorithms (extension).

``phase_oracle`` generalizes the Grover oracle to several marked
states; ``deutsch_jozsa_circuit`` and ``bernstein_vazirani_circuit``
exercise multi-qubit Hadamard sandwiches with phase oracles.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algorithms.grover import oracle_circuit
from repro.circuit import Measurement, QCircuit
from repro.exceptions import CircuitError
from repro.gates import Hadamard, PauliZ

__all__ = [
    "phase_oracle",
    "deutsch_jozsa_circuit",
    "deutsch_jozsa_is_constant",
    "bernstein_vazirani_circuit",
    "bernstein_vazirani_secret",
]


def phase_oracle(marked: Iterable[str], nb_qubits: int) -> QCircuit:
    """Phase oracle flipping the sign of every bitstring in ``marked``."""
    oracle = QCircuit(nb_qubits)
    seen = set()
    for bits in marked:
        if len(bits) != nb_qubits:
            raise CircuitError(
                f"marked state {bits!r} does not match {nb_qubits} qubit(s)"
            )
        if bits in seen:
            raise CircuitError(f"duplicate marked state {bits!r}")
        seen.add(bits)
        oracle.push_back(oracle_circuit(bits))
    return oracle


def deutsch_jozsa_circuit(oracle: QCircuit) -> QCircuit:
    """Deutsch–Jozsa on a *phase* oracle for ``f``: ``H^n O_f H^n`` then
    measure; all-zeros outcome means ``f`` is constant."""
    n = oracle.nbQubits
    c = QCircuit(n)
    for q in range(n):
        c.push_back(Hadamard(q))
    c.push_back(oracle.asBlock("O_f"))
    for q in range(n):
        c.push_back(Hadamard(q))
    for q in range(n):
        c.push_back(Measurement(q))
    return c


def deutsch_jozsa_is_constant(
    oracle: QCircuit, backend: str = "kernel"
) -> bool:
    """Run Deutsch–Jozsa; ``True`` when the oracle encodes a constant
    function (all-zeros measured with probability 1)."""
    n = oracle.nbQubits
    sim = deutsch_jozsa_circuit(oracle).simulate("0" * n, {"backend": backend})
    dist = dict(zip(sim.results, sim.probabilities))
    return dist.get("0" * n, 0.0) > 1.0 - 1e-9


def bernstein_vazirani_circuit(secret: str) -> QCircuit:
    """Bernstein–Vazirani with the phase-kickback oracle
    ``|x> -> (-1)^{s.x} |x>`` built from Z gates on the secret's 1 bits."""
    n = len(secret)
    if n < 1 or any(c not in "01" for c in secret):
        raise CircuitError(f"invalid secret bitstring {secret!r}")
    c = QCircuit(n)
    for q in range(n):
        c.push_back(Hadamard(q))
    # (-1)^{s.x} phase oracle: conjugated Z on each secret bit... but in
    # the Hadamard frame a plain Z on qubit q implements s_q = 1.
    for q, bit in enumerate(secret):
        if bit == "1":
            c.push_back(PauliZ(q))
    for q in range(n):
        c.push_back(Hadamard(q))
    for q in range(n):
        c.push_back(Measurement(q))
    return c


def bernstein_vazirani_secret(secret: str, backend: str = "kernel") -> str:
    """Recover ``secret`` in a single query (deterministically)."""
    sim = bernstein_vazirani_circuit(secret).simulate(
        "0" * len(secret), {"backend": backend}
    )
    best = int(max(range(sim.nbBranches), key=lambda i: sim.probabilities[i]))
    return sim.results[best]
