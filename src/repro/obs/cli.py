"""The ``python -m repro.obs`` introspection command.

Two modes:

* **Replay** (default): build a named workload circuit, run it under
  full instrumentation, and print the per-op cost table (call count,
  cumulative wall time, bytes touched per backend/kind), the fraction
  of the execute span those kernels explain, plan-cache statistics,
  the statevector memory peak and the flight-recorder digest.
* **Dump reading** (``--dump FILE``): load a flight-recorder dump
  written by :meth:`~repro.observability.FlightRecorder.dump_json`
  and print the same digest from its events alone.

Options: ``--workload`` picks the circuit (``plan12`` is the
BENCH_plan 12-qubit layered workload), ``--backend`` the engine,
``--top N`` truncates the hot-kernel table, ``--json`` switches to a
machine-readable report, and ``--trace`` / ``--speedscope`` export
the instrumented run as a Chrome trace / collapsed-stack profile.
"""

from __future__ import annotations

import argparse
import json
import re
from typing import List, Optional

__all__ = [
    "main", "build_workload", "WORKLOADS", "run_workload", "load_dump",
]


def _plan12_circuit():
    """The BENCH_plan workload: a deep 1q-heavy 12-qubit circuit
    (alternating RX/RZ layers with a periodic CZ ladder)."""
    from repro.circuit import QCircuit
    from repro.gates import CZ, RotationX, RotationZ

    n, layers = 12, 12
    c = QCircuit(n)
    for layer in range(layers):
        for q in range(n):
            c.push_back(RotationX(q, 0.1 * (layer + 1) + 0.01 * q))
        for q in range(n):
            c.push_back(RotationZ(q, 0.2 * (layer + 1) - 0.01 * q))
        if layer % 4 == 3:
            for q in range(0, n - 1, 2):
                c.push_back(CZ(q, q + 1))
    return c


def _bell_circuit():
    """The paper's Bell pair with both qubits measured."""
    from repro.circuit import Measurement, QCircuit
    from repro.gates import CNOT, Hadamard

    c = QCircuit(2)
    c.push_back(Hadamard(0))
    c.push_back(CNOT(0, 1))
    c.push_back(Measurement(0))
    c.push_back(Measurement(1))
    return c


def _ghz12_circuit():
    """A 12-qubit GHZ chain (H + CNOT ladder)."""
    from repro.circuit import QCircuit
    from repro.gates import CNOT, Hadamard

    n = 12
    c = QCircuit(n)
    c.push_back(Hadamard(0))
    for q in range(n - 1):
        c.push_back(CNOT(q, q + 1))
    return c


def _qft10_circuit():
    """A 10-qubit quantum Fourier transform."""
    from repro.algorithms.qft import qft_circuit

    return qft_circuit(10)


def _grover_circuit():
    """Grover search marking ``101`` on 3 qubits."""
    from repro.algorithms.grover import grover_circuit

    return grover_circuit("101")


#: Named workloads the CLI can replay.
WORKLOADS = {
    "plan12": _plan12_circuit,
    "bell": _bell_circuit,
    "ghz12": _ghz12_circuit,
    "qft10": _qft10_circuit,
    "grover": _grover_circuit,
}


def build_workload(name: str):
    """The circuit for a :data:`WORKLOADS` entry (raises on unknown)."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(sorted(WORKLOADS))}"
        )


def run_workload(name: str, backend: str = "kernel"):
    """Replay a named workload under instrumentation.

    Clears the global flight recorder first so its ring holds exactly
    this replay's events.  Returns ``(report, instrumentation)`` where
    ``report`` is the run's
    :class:`~repro.observability.ProfileReport`.
    """
    from repro.observability import flight_recorder, instrument
    from repro.simulation import SimulationOptions, simulate

    circuit = build_workload(name)
    flight_recorder().clear()
    with instrument() as inst:
        simulate(
            circuit,
            "0" * circuit.nbQubits,
            options=SimulationOptions(backend=backend),
        )
    return inst.report(), inst


def _dispatch_table(events) -> List[dict]:
    """Aggregate ``step.dispatch`` events (dicts or
    :class:`~repro.observability.RecorderEvent`) into per-op rows
    ``{op, dispatches, cumulative_ns}``, hottest first.

    These timings wrap the whole per-step branch loop, so their sum
    tracks the enclosing execute span to within a few percent — the
    per-op cost table the CLI leads with.
    """
    per_op: dict = {}
    for e in events:
        data = e if isinstance(e, dict) else dict(e.data, kind=e.kind)
        if data.get("kind", "step.dispatch") != "step.dispatch":
            continue
        op = data.get("op", "?")
        cnt, ns = per_op.get(op, (0, 0))
        per_op[op] = (cnt + 1, ns + int(data.get("ns", 0)))
    return [
        {"op": op, "dispatches": cnt, "cumulative_ns": ns}
        for op, (cnt, ns) in sorted(
            per_op.items(), key=lambda kv: -kv[1][1]
        )
    ]


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:9.3f} s "
    if ns >= 1e6:
        return f"{ns / 1e6:9.3f} ms"
    return f"{ns / 1e3:9.1f} us"


def _report_lines(report, top: int) -> List[str]:
    """The replay-mode digest: per-op costs, hot kernels, coverage,
    cache and memory."""
    from repro.observability import EV_STEP_DISPATCH, flight_recorder
    from repro.simulation.plan import plan_cache_info

    lines: List[str] = []
    exe_ns = report.execute_seconds * 1e9
    dispatch = _dispatch_table(
        flight_recorder().events(EV_STEP_DISPATCH)
    )
    if dispatch:
        shown = dispatch[: top if top > 0 else None]
        lines.append("per-op cost (step dispatches):")
        lines.append(
            f"  {'op':<12} {'dispatches':>10} {'cumulative':>12}"
        )
        for r in shown:
            lines.append(
                f"  {r['op']:<12} {r['dispatches']:>10} "
                f"{_fmt_ns(r['cumulative_ns']):>12}"
            )
        total = sum(r["cumulative_ns"] for r in dispatch)
        if exe_ns > 0:
            lines.append(
                f"  dispatch total {_fmt_ns(total).strip()} = "
                f"{100 * total / exe_ns:.1f}% of the "
                f"{_fmt_ns(exe_ns).strip()} execute span"
            )
    rows = report.op_table()[: top if top > 0 else None]
    lines.append(f"top {len(rows)} hot kernels (backend/kind):")
    lines.append(
        f"  {'backend/kind':<20} {'calls':>8} {'cumulative':>12} "
        f"{'bytes':>14}"
    )
    for r in rows:
        lines.append(
            f"  {r['backend'] + '/' + r['kind']:<20} {r['calls']:>8} "
            f"{_fmt_ns(r['seconds'] * 1e9):>12} {r['bytes']:>14}"
        )
    total_ns = sum(r["seconds"] for r in report.op_table()) * 1e9
    if exe_ns > 0:
        lines.append(
            f"  kernel total {_fmt_ns(total_ns).strip()} = "
            f"{100 * total_ns / exe_ns:.1f}% of the "
            f"{_fmt_ns(exe_ns).strip()} execute span"
        )
    info = plan_cache_info()
    lines.append(
        f"plan cache: {info['size']}/{info['capacity']} entries, "
        f"{info['hits']} hit(s) / {info['misses']} miss(es) "
        f"(hit rate {100 * info['hit_rate']:.1f}%)"
    )
    from repro.observability import STATE_BYTES_MAX, Gauge

    peak = 0
    if report.metrics is not None:
        g = report.metrics.get(STATE_BYTES_MAX)
        if isinstance(g, Gauge):
            peak = int(g.value())
    lines.append(f"statevector peak: {peak} bytes")
    return lines


def _salvage_dump(text: str) -> Optional[dict]:
    """Recover what can be recovered from a truncated dump.

    A dump written non-atomically by a still-running process (an old
    :meth:`~repro.observability.FlightRecorder.dump_json`, a mid-write
    copy, a crash during the write) may end mid-event.  The header
    scalars all precede the ``events`` array in the v1 layout, so they
    are recoverable by regex; the events themselves are recovered one
    complete JSON object at a time with
    :meth:`json.JSONDecoder.raw_decode`, dropping only the final
    partial one.  Returns ``None`` when the text is not even a
    recognizable dump prefix.
    """
    if '"format": "repro-flight-recorder"' not in text:
        return None
    dump: dict = {"format": "repro-flight-recorder", "truncated": True}
    for field in ("version", "capacity", "recorded", "dropped"):
        m = re.search(rf'"{field}":\s*(\d+)', text)
        if m:
            dump[field] = int(m.group(1))
    events: List[dict] = []
    start = text.find('"events"')
    if start != -1:
        decoder = json.JSONDecoder()
        pos = text.find("[", start)
        while pos != -1:
            pos = text.find("{", pos)
            if pos == -1:
                break
            try:
                event, end = decoder.raw_decode(text, pos)
            except json.JSONDecodeError:
                break  # the torn final event
            events.append(event)
            pos = end
    dump["events"] = events
    return dump


def load_dump(path: str) -> Optional[dict]:
    """Load a flight-recorder dump, tolerating torn writes.

    Well-formed dumps load directly; files cut off mid-write (a
    still-running process, a crash) fall back to :func:`_salvage_dump`
    which recovers the header and every complete event and marks the
    result ``{"truncated": True}``.  Returns ``None`` for files that
    are not flight-recorder dumps at all — the CLI turns that into
    exit code 2.
    """
    with open(path) as fh:
        text = fh.read()
    try:
        dump = json.loads(text)
    except json.JSONDecodeError:
        return _salvage_dump(text)
    if (
        not isinstance(dump, dict)
        or dump.get("format") != "repro-flight-recorder"
    ):
        return None
    return dump


def _dump_lines(dump: dict, top: int) -> List[str]:
    """The dump-reading digest, computed from recorder events alone."""
    events = dump.get("events", [])
    lines = [
        f"flight-recorder dump: {len(events)} event(s) retained "
        f"(capacity {dump.get('capacity')}, "
        f"{dump.get('dropped', 0)} dropped, "
        f"{dump.get('recorded', len(events))} recorded)"
    ]
    by_kind: dict = {}
    for e in events:
        by_kind[e["kind"]] = by_kind.get(e["kind"], 0) + 1
    if by_kind:
        lines.append(
            "  by kind: "
            + ", ".join(
                f"{k}={n}" for k, n in sorted(by_kind.items())
            )
        )
    table = _dispatch_table(events)
    if table:
        rows = table[: top if top > 0 else None]
        lines.append(f"top {len(rows)} hot dispatch kinds:")
        for r in rows:
            lines.append(
                f"  {r['op']:<12} {r['dispatches']:>8} dispatch(es) "
                f"{_fmt_ns(r['cumulative_ns']):>12}"
            )
    hits = by_kind.get("plan.hit", 0)
    misses = by_kind.get("plan.miss", 0)
    if hits or misses:
        lines.append(
            f"plan cache: {hits} hit(s) / {misses} miss(es) "
            f"(hit rate {100 * hits / (hits + misses):.1f}%)"
        )
    peaks = [
        int(e.get("bytes", 0))
        for e in events
        if e["kind"] == "state.highwater"
    ]
    if peaks:
        lines.append(f"statevector peak: {max(peaks)} bytes")
    errors = [e for e in events if e["kind"] == "error"]
    for e in errors:
        lines.append(
            f"error: {e.get('error', '?')} at {e.get('where', '?')}"
        )
    return lines


def _dump_json_payload(dump: dict, top: int) -> dict:
    """Machine-readable form of :func:`_dump_lines`."""
    events = dump.get("events", [])
    table = _dispatch_table(events)[: top if top > 0 else None]
    by_kind: dict = {}
    for e in events:
        by_kind[e["kind"]] = by_kind.get(e["kind"], 0) + 1
    return {
        "mode": "dump",
        "events": len(events),
        "dropped": dump.get("dropped", 0),
        "truncated": bool(dump.get("truncated", False)),
        "by_kind": by_kind,
        "dispatch_table": table,
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Replay a workload under instrumentation (or read a "
            "flight-recorder dump) and print hot kernels, plan-cache "
            "hit rates and memory peaks."
        ),
    )
    parser.add_argument(
        "--workload",
        default="plan12",
        help=f"circuit to replay ({', '.join(sorted(WORKLOADS))})",
    )
    parser.add_argument(
        "--backend", default="kernel", help="simulation backend name"
    )
    parser.add_argument(
        "--dump",
        metavar="FILE",
        help="read a flight-recorder dump instead of replaying",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="rows in the hot table"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write the replay's Chrome trace JSON to PATH",
    )
    parser.add_argument(
        "--speedscope",
        metavar="PATH",
        help="write the replay's collapsed stacks to PATH",
    )
    args = parser.parse_args(argv)

    if args.dump:
        dump = load_dump(args.dump)
        if dump is None:
            print(f"{args.dump}: not a flight-recorder dump")
            return 2
        if dump.get("truncated"):
            print(
                f"{args.dump}: truncated dump (torn write?); "
                f"recovered {len(dump.get('events', []))} complete "
                "event(s)"
            )
        if args.json:
            print(json.dumps(_dump_json_payload(dump, args.top), indent=2))
        else:
            print("\n".join(_dump_lines(dump, args.top)))
        return 0

    from repro.observability import (
        flight_recorder,
        to_chrome_trace,
        to_collapsed_stacks,
    )
    from repro.simulation.plan import plan_cache_info

    report, inst = run_workload(args.workload, args.backend)
    if args.trace:
        with open(args.trace, "w") as fh:
            json.dump(to_chrome_trace(inst.tracer), fh, indent=2)
    if args.speedscope:
        with open(args.speedscope, "w") as fh:
            fh.write(to_collapsed_stacks(inst.tracer))
    if args.json:
        from repro.observability import EV_STEP_DISPATCH

        payload = {
            "mode": "replay",
            "workload": args.workload,
            "backend": args.backend,
            "execute_ns": int(report.execute_seconds * 1e9),
            "dispatch_table": _dispatch_table(
                flight_recorder().events(EV_STEP_DISPATCH)
            ),
            "op_table": [
                {
                    "backend": r["backend"],
                    "kind": r["kind"],
                    "calls": r["calls"],
                    "cumulative_ns": int(r["seconds"] * 1e9),
                    "bytes": r["bytes"],
                }
                for r in report.op_table()
            ],
            "coverage": report.coverage(),
            "plan_cache": plan_cache_info(),
            "recorder": {
                "retained": len(flight_recorder()),
                "dropped": flight_recorder().dropped,
                "by_kind": flight_recorder().counts_by_kind(),
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"workload {args.workload!r} on backend {args.backend!r}")
        print("\n".join(_report_lines(report, args.top)))
        print()
        print(flight_recorder().summary())
    return 0
