"""``python -m repro.obs`` — the observability introspection CLI.

Replays a small named workload under full instrumentation (or reads a
flight-recorder dump produced by
:meth:`~repro.observability.FlightRecorder.dump_json`) and prints the
hot-kernel table, plan-cache statistics and memory peaks.  See
:mod:`repro.obs.cli` for the command surface and
``docs/observability.md`` for examples.
"""

from repro.obs.cli import main

__all__ = ["main"]
