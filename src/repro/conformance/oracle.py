"""The differential + metamorphic oracle.

Given one generated case, the oracle executes the circuit across every
applicable execution path and compares the outcomes:

Differential checks (same circuit, different engine)
    * every registered statevector backend x {planned, unplanned}
      against the planned ``kernel`` reference (branch results,
      probabilities and full state vectors);
    * the planned ``kernel`` run with fusion disabled;
    * the exact density-matrix engine against the reference ensemble
      ``sum_b p_b |psi_b><psi_b|``;
    * serial :func:`~repro.noise.run_trajectory` against the batched
      engine, shot for shot, per statevector backend (the strict seed
      contract makes this an *exact* comparison);
    * batched trajectory counts against the exact density-matrix
      outcome distribution (binomial bound);
    * the MPS engine — exact statevector comparison for
      measurement-free circuits, sampled counts otherwise;
    * the stabilizer engine for Clifford cases (sampled counts).

Metamorphic checks (transformed circuit, same engine)
    * every registered optimization pass (``fuse_1q``,
      ``fuse_rotations``, ``coalesce_diagonals``, ``cancel_inverses``)
      applied through the IR pipeline must preserve simulation
      semantics;
    * the JSON serializer and the QASM export->import round-trip must
      preserve semantics (QASM only for circuits whose semantics QASM
      can express — Z-basis measurements, unrecorded resets);
    * for parametric cases (``--parametric``), ``bind(values)`` on the
      cached plan against a from-scratch recompile of the materialized
      circuit, vectorized ``sweep()`` rows against per-point binds, and
      the guarantee that re-binding never misses the plan cache.

Every check returns the *deviation* it measured so failures carry a
magnitude, and every failure carries a ``replay`` closure the shrinker
uses to re-test candidate minimizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.circuit import QCircuit
from repro.io import dumps_circuit, fromQASM, loads_circuit
from repro.ir import PassManager, lower
from repro.noise import (
    NoiseModel,
    run_trajectories_batched,
    run_trajectory,
)
from repro.simulation import (
    SimulationOptions,
    available_backends,
    simulate,
    simulate_density,
)
from repro.simulation.mps import mps_counts, simulate_mps
from repro.simulation.stabilizer import stabilizer_counts

from repro.conformance.generator import GeneratedCase
from repro.conformance.tolerances import counts_deviation, tolerance_for

__all__ = ["CheckFailure", "OracleConfig", "run_oracle"]

#: Deviation reported for structural mismatches (different branch
#: results, different shot strings) where no numeric distance applies.
STRUCTURAL_MISMATCH = float("inf")

#: Optimization passes whose semantics-preservation is checked.
CHECKED_PASSES = (
    "fuse_1q",
    "fuse_rotations",
    "coalesce_diagonals",
    "cancel_inverses",
)


@dataclass
class CheckFailure:
    """One failed conformance check, replayable on candidate circuits."""

    check: str
    seed: int
    deviation: float
    tolerance: float
    message: str
    #: ``replay(circuit, noise)`` re-runs this check on a candidate and
    #: returns its deviation (``None`` when the check does not apply).
    replay: Callable[
        [QCircuit, Optional[NoiseModel]], Optional[float]
    ] = field(repr=False, default=None)

    def still_fails(
        self, circuit: QCircuit, noise: Optional[NoiseModel]
    ) -> Optional[float]:
        """Deviation of the candidate if it still trips this check."""
        try:
            deviation = self.replay(circuit, noise)
        except Exception:
            # A candidate that crashes the engine is not a valid
            # minimization of a *numerical* disagreement.
            return None
        if deviation is not None and deviation > self.tolerance:
            return deviation
        return None


@dataclass(frozen=True)
class OracleConfig:
    """Which checks run, and how hard the sampling checks sample."""

    backends: Optional[Tuple[str, ...]] = None  # None = all registered
    trajectory_shots: int = 12
    sampling_shots: int = 192
    tolerances: Optional[Dict[str, float]] = None
    check_density: bool = True
    check_trajectory: bool = True
    check_mps: bool = True
    check_stabilizer: bool = True
    check_passes: bool = True
    check_roundtrips: bool = True
    check_parametric: bool = True

    def tol(self, check: str) -> float:
        """Tolerance for ``check``, honoring :attr:`tolerances`."""
        return tolerance_for(check, self.tolerances)


def _start(circuit: QCircuit) -> str:
    return "0" * circuit.nbQubits


def _simulate(circuit, backend, compiled=True, fuse=True):
    opts = SimulationOptions(
        backend=backend, compile=compiled, fuse=fuse
    )
    return simulate(circuit, _start(circuit), options=opts)


def _align_phase(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``b`` with its global phase rotated onto ``a`` (for comparisons
    that must be phase-invariant, e.g. after ``fuse_1q`` which drops
    the unobservable global phase on re-synthesis)."""
    i = int(np.argmax(np.abs(a)))
    if abs(a[i]) < 1e-12 or abs(b[i]) < 1e-12:
        return b
    phase = a[i] / b[i]
    return b * (phase / abs(phase))


def _branch_deviation(ref, sim, up_to_phase=False) -> Tuple[float, str]:
    """Max deviation between two Simulation objects (results,
    probabilities, states); structural mismatch is infinite."""
    if ref.results != sim.results:
        return STRUCTURAL_MISMATCH, (
            f"branch results differ: {ref.results} vs {sim.results}"
        )
    dev = float(
        np.max(np.abs(ref.probabilities - sim.probabilities))
        if len(ref.probabilities)
        else 0.0
    )
    worst = "probabilities"
    for i, (a, b) in enumerate(zip(ref.states, sim.states)):
        if up_to_phase:
            b = _align_phase(a, b)
        d = float(np.max(np.abs(a - b)))
        if d > dev:
            dev, worst = d, f"state of branch {i} ({ref.results[i]!r})"
    return dev, f"max |delta| = {dev:.3e} in {worst}"


def _distribution(sim) -> Dict[str, float]:
    """Exact outcome distribution of a branching simulation."""
    dist: Dict[str, float] = {}
    for result, p in zip(sim.results, sim.probabilities):
        dist[result] = dist.get(result, 0.0) + float(p)
    return dist


def _ensemble_rho(sim) -> np.ndarray:
    out = None
    for p, state in zip(sim.probabilities, sim.states):
        rho = float(p) * np.outer(state, state.conj())
        out = rho if out is None else out + rho
    return out


# -- individual checks -------------------------------------------------------


def _statevector_replay(backend, compiled, fuse):
    def replay(circuit, noise):
        ref = _simulate(circuit, "kernel")
        sim = _simulate(circuit, backend, compiled=compiled, fuse=fuse)
        dev, _ = _branch_deviation(ref, sim)
        return dev

    return replay


def _check_statevector(case: GeneratedCase, config: OracleConfig):
    failures = []
    tol = config.tol("statevector")
    ref = _simulate(case.circuit, "kernel")
    backends = config.backends or available_backends("statevector")
    variants = [(b, c, True) for b in backends for c in (True, False)]
    variants.append(("kernel", True, False))  # fusion off
    for backend, compiled, fuse in variants:
        if backend == "kernel" and compiled and fuse:
            continue  # the reference itself
        sim = _simulate(
            case.circuit, backend, compiled=compiled, fuse=fuse
        )
        dev, msg = _branch_deviation(ref, sim)
        if dev > tol:
            mode = "planned" if compiled else "unplanned"
            if not fuse:
                mode += "/nofuse"
            failures.append(
                CheckFailure(
                    check=f"statevector:{backend}/{mode}",
                    seed=case.seed,
                    deviation=dev,
                    tolerance=tol,
                    message=(
                        f"{backend}/{mode} disagrees with "
                        f"kernel/planned: {msg}"
                    ),
                    replay=_statevector_replay(backend, compiled, fuse),
                )
            )
    return failures


def _density_replay():
    def replay(circuit, noise):
        ref = _simulate(circuit, "kernel")
        dens = simulate_density(circuit)
        return float(np.max(np.abs(_ensemble_rho(ref) - dens.rho)))

    return replay


def _check_density(case: GeneratedCase, config: OracleConfig):
    tol = config.tol("density")
    replay = _density_replay()
    dev = replay(case.circuit, None)
    if dev > tol:
        return [
            CheckFailure(
                check="density:exact",
                seed=case.seed,
                deviation=dev,
                tolerance=tol,
                message=(
                    "density-matrix engine disagrees with the "
                    f"statevector ensemble: max |delta rho| = {dev:.3e}"
                ),
                replay=replay,
            )
        ]
    return []


def _trajectory_replay(backend, shots, seed):
    def replay(circuit, noise):
        rng = np.random.default_rng(seed)
        serial = [
            run_trajectory(
                circuit, noise, rng=rng, backend=backend
            ).result
            for _ in range(shots)
        ]
        batched = run_trajectories_batched(
            circuit,
            noise,
            shots=shots,
            seed=np.random.default_rng(seed),
            options=SimulationOptions(backend=backend, batch_size=5),
        )
        return 0.0 if list(batched.results) == serial else (
            STRUCTURAL_MISMATCH
        )

    return replay


def _check_trajectory(case: GeneratedCase, config: OracleConfig):
    """Serial vs batched trajectories: exact, per backend, odd batch."""
    failures = []
    tol = config.tol("trajectory")
    shots = config.trajectory_shots
    backends = config.backends or available_backends("statevector")
    for backend in backends:
        replay = _trajectory_replay(backend, shots, case.seed)
        dev = replay(case.circuit, case.noise)
        if dev > tol:
            failures.append(
                CheckFailure(
                    check=f"trajectory:{backend}/batched",
                    seed=case.seed,
                    deviation=dev,
                    tolerance=tol,
                    message=(
                        f"batched trajectories on {backend!r} are not "
                        "shot-for-shot identical to the serial loop "
                        f"({shots} shots, batch_size=5)"
                    ),
                    replay=replay,
                )
            )
    return failures


def _noisy_counts_replay(shots, seed):
    def replay(circuit, noise):
        if not circuit.has_measurement:
            return None
        dens = simulate_density(circuit, noise=noise)
        batched = run_trajectories_batched(
            circuit, noise, shots=shots,
            seed=np.random.default_rng(seed),
        )
        return counts_deviation(
            batched.counts, dens.outcome_distribution(), shots
        )

    return replay


def _check_noisy_counts(case: GeneratedCase, config: OracleConfig):
    """Batched trajectory sampling against the exact density engine."""
    if not case.circuit.has_measurement:
        return []
    shots = config.sampling_shots
    replay = _noisy_counts_replay(shots, case.seed)
    dev = replay(case.circuit, case.noise)
    if dev is None or dev <= 1.0:
        return []
    return [
        CheckFailure(
            check="density:trajectory-counts",
            seed=case.seed,
            deviation=dev,
            tolerance=1.0,
            message=(
                f"batched trajectory histogram ({shots} shots) sits "
                f"{dev:.2f}x outside the binomial bound of the exact "
                "density-matrix distribution"
            ),
            replay=replay,
        )
    ]


def _executor_replay():
    def replay(circuit, noise):
        from repro.execution import DONE, ExecutionRequest, default_executor

        ref = _simulate(circuit, "kernel")
        job = default_executor().submit(
            ExecutionRequest(
                circuit,
                start=_start(circuit),
                options=SimulationOptions(backend="kernel"),
            )
        )
        if job.state != DONE:
            return STRUCTURAL_MISMATCH
        if job.timings.total_seconds is None or job.stats() is None:
            return STRUCTURAL_MISMATCH
        dev, _ = _branch_deviation(ref, job.result())
        return dev

    return replay


def _check_executor(case: GeneratedCase, config: OracleConfig):
    """The execution-core contract: a directly submitted job finishes
    ``DONE`` with timings/stats populated and materializes branches
    bit-identical to the :func:`simulate` wrapper."""
    tol = config.tol("statevector")
    replay = _executor_replay()
    dev = replay(case.circuit, None)
    if dev <= tol:
        return []
    return [
        CheckFailure(
            check="executor:submit",
            seed=case.seed,
            deviation=dev,
            tolerance=tol,
            message=(
                "Executor.submit disagrees with the simulate() "
                f"wrapper (or broke the Job contract): max |delta| = "
                f"{dev:.3e}"
            ),
            replay=replay,
        )
    ]


def _mps_eligible(circuit) -> bool:
    from repro.gates.base import QGate

    return all(
        len(op.qubits) <= 2
        for op, _ in lower(circuit).flat()
        if isinstance(op, QGate)
    )


def _mps_state_replay():
    def replay(circuit, noise):
        if not _mps_eligible(circuit):
            return None
        if any(
            type(op).__name__ in ("Measurement", "Reset")
            for op, _ in lower(circuit).flat()
        ):
            return None
        ref = _simulate(circuit, "kernel")
        _result, state = simulate_mps(circuit, rng=0)
        return float(
            np.max(np.abs(ref.states[0] - state.to_statevector()))
        )

    return replay


def _mps_counts_replay(shots, seed):
    def replay(circuit, noise):
        if not _mps_eligible(circuit):
            return None
        if not circuit.has_measurement:
            return None
        ref = _simulate(circuit, "kernel")
        counts = mps_counts(circuit, shots=shots, seed=seed)
        return counts_deviation(counts, _distribution(ref), shots)

    return replay


def _check_mps(case: GeneratedCase, config: OracleConfig):
    if not case.two_local:
        return []
    failures = []
    tol = config.tol("mps")
    state_replay = _mps_state_replay()
    dev = state_replay(case.circuit, None)
    if dev is not None and dev > tol:
        failures.append(
            CheckFailure(
                check="mps:statevector",
                seed=case.seed,
                deviation=dev,
                tolerance=tol,
                message=(
                    "MPS statevector disagrees with the kernel "
                    f"backend: max |delta| = {dev:.3e}"
                ),
                replay=state_replay,
            )
        )
    shots = config.sampling_shots
    counts_replay = _mps_counts_replay(shots, case.seed)
    dev = counts_replay(case.circuit, None)
    if dev is not None and dev > 1.0:
        failures.append(
            CheckFailure(
                check="mps:counts",
                seed=case.seed,
                deviation=dev,
                tolerance=1.0,
                message=(
                    f"MPS histogram ({shots} shots) sits {dev:.2f}x "
                    "outside the binomial bound of the exact "
                    "distribution"
                ),
                replay=counts_replay,
            )
        )
    return failures


def _stabilizer_replay(shots, seed):
    def replay(circuit, noise):
        if not circuit.has_measurement:
            return None
        ref = _simulate(circuit, "kernel")
        counts = stabilizer_counts(circuit, shots=shots, seed=seed)
        return counts_deviation(counts, _distribution(ref), shots)

    return replay


def _check_stabilizer(case: GeneratedCase, config: OracleConfig):
    if not case.clifford or not case.circuit.has_measurement:
        return []
    shots = config.sampling_shots
    replay = _stabilizer_replay(shots, case.seed)
    dev = replay(case.circuit, None)
    if dev is None or dev <= 1.0:
        return []
    return [
        CheckFailure(
            check="stabilizer:counts",
            seed=case.seed,
            deviation=dev,
            tolerance=1.0,
            message=(
                f"stabilizer histogram ({shots} shots) sits {dev:.2f}x "
                "outside the binomial bound of the exact distribution"
            ),
            replay=replay,
        )
    ]


def _gate_only(circuit: QCircuit) -> QCircuit:
    """``circuit`` with top-level measurements and resets dropped (the
    vectorized sweep path is gate-only by contract)."""
    from repro.circuit import Measurement, Reset

    out = QCircuit(circuit.nbQubits, circuit.offset)
    for op in circuit:
        if not isinstance(op, (Measurement, Reset)):
            out.push_back(op)
    return out


def _parametric_bind_replay(backend, values):
    def replay(circuit, noise):
        params = tuple(getattr(circuit, "parameters", ()))
        if not params or len(params) != len(values):
            return None
        bound = circuit.bind(dict(zip(params, values)))
        ref = _simulate(bound.materialize(), "kernel")
        sim = simulate(
            bound, _start(circuit),
            options=SimulationOptions(backend=backend),
        )
        dev, _ = _branch_deviation(ref, sim)
        return dev

    return replay


def _parametric_sweep_replay(backend, points):
    def replay(circuit, noise):
        params = tuple(getattr(circuit, "parameters", ()))
        if not params:
            return None
        gates = _gate_only(circuit)
        if tuple(gates.parameters) != params:
            return None
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != len(params):
            return None
        swept = gates.sweep(pts, options={"backend": backend}).states
        dev = 0.0
        for i, row in enumerate(pts):
            ref = gates.bind(dict(zip(params, row))).simulate(
                _start(gates), {"backend": backend}
            ).states[0]
            dev = max(dev, float(np.max(np.abs(swept[i] - ref))))
        return dev

    return replay


def _parametric_cache_replay(values_a, values_b):
    def replay(circuit, noise):
        params = tuple(getattr(circuit, "parameters", ()))
        if not params or len(params) != len(values_a):
            return None
        from repro.simulation.plan import plan_cache_info

        start = _start(circuit)
        circuit.bind(dict(zip(params, values_a))).simulate(start)
        before = plan_cache_info()["misses"]
        circuit.bind(dict(zip(params, values_b))).simulate(start)
        after = plan_cache_info()["misses"]
        return 0.0 if after == before else STRUCTURAL_MISMATCH

    return replay


def _check_parametric(case: GeneratedCase, config: OracleConfig):
    """The parametric-bind contract on parametric cases.

    * ``bind(values)`` through every backend must match a from-scratch
      recompile of the materialized concrete circuit (baseline values
      and a shifted binding);
    * vectorized ``sweep()`` rows must match per-point ``bind()`` on
      the gate-only portion of the circuit;
    * re-binding the same circuit must not miss the plan cache.
    """
    if case.symbolic is None:
        return []
    failures = []
    tol = config.tol("statevector")
    symbolic = case.symbolic
    baseline = [float(v) for _, v in case.parameters]
    shifted = [v + 0.37 for v in baseline]
    backends = config.backends or available_backends("statevector")
    for backend in backends:
        for tag, values in (("baseline", baseline), ("shifted", shifted)):
            replay = _parametric_bind_replay(backend, values)
            dev = replay(symbolic, None)
            if dev is not None and dev > tol:
                failures.append(
                    CheckFailure(
                        check=f"param:bind/{backend}/{tag}",
                        seed=case.seed,
                        deviation=dev,
                        tolerance=tol,
                        message=(
                            f"bound plan on {backend!r} ({tag} values) "
                            "disagrees with the materialized recompile: "
                            f"max |delta| = {dev:.3e}"
                        ),
                        replay=replay,
                    )
                )
        points = [baseline, shifted, [v - 0.81 for v in baseline]]
        replay = _parametric_sweep_replay(backend, points)
        dev = replay(symbolic, None)
        if dev is not None and dev > tol:
            failures.append(
                CheckFailure(
                    check=f"param:sweep/{backend}",
                    seed=case.seed,
                    deviation=dev,
                    tolerance=tol,
                    message=(
                        f"vectorized sweep on {backend!r} disagrees "
                        "with per-point bind: max |delta| = "
                        f"{dev:.3e}"
                    ),
                    replay=replay,
                )
            )
    replay = _parametric_cache_replay(baseline, shifted)
    dev = replay(symbolic, None)
    if dev is not None and dev > 0.0:
        failures.append(
            CheckFailure(
                check="param:plan-cache",
                seed=case.seed,
                deviation=dev,
                tolerance=0.0,
                message=(
                    "re-binding a parametric circuit recompiled its "
                    "plan (cache miss where a hit was guaranteed)"
                ),
                replay=replay,
            )
        )
    return failures


def _pass_replay(pass_name):
    def replay(circuit, noise):
        ref = _simulate(circuit, "kernel")
        program = PassManager(["flatten", pass_name]).run(lower(circuit))
        sim = _simulate(program.to_circuit(), "kernel")
        # up_to_phase: fuse_1q legitimately drops the unobservable
        # global phase when re-synthesizing a run into one U3.
        dev, _ = _branch_deviation(ref, sim, up_to_phase=True)
        return dev

    return replay


def _check_passes(case: GeneratedCase, config: OracleConfig):
    failures = []
    for pass_name in CHECKED_PASSES:
        tol = config.tol(f"pass.{pass_name}")
        replay = _pass_replay(pass_name)
        dev = replay(case.circuit, None)
        if dev > tol:
            failures.append(
                CheckFailure(
                    check=f"pass.{pass_name}",
                    seed=case.seed,
                    deviation=dev,
                    tolerance=tol,
                    message=(
                        f"IR pass {pass_name!r} changed simulation "
                        f"semantics: max |delta| = {dev:.3e}"
                    ),
                    replay=replay,
                )
            )
    return failures


def _serialize_replay():
    def replay(circuit, noise):
        ref = _simulate(circuit, "kernel")
        sim = _simulate(loads_circuit(dumps_circuit(circuit)), "kernel")
        dev, _ = _branch_deviation(ref, sim)
        return dev

    return replay


def _qasm_replay():
    def replay(circuit, noise):
        ref = _simulate(circuit, "kernel")
        sim = _simulate(fromQASM(circuit.toQASM()), "kernel")
        if ref.results != sim.results:
            return STRUCTURAL_MISMATCH
        # QASM re-synthesizes unitaries (u3 pulls in global phases),
        # so only the *observable* outcome distribution must survive.
        a, b = _distribution(ref), _distribution(sim)
        return max(
            abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in set(a) | set(b)
        )

    return replay


def _check_roundtrips(case: GeneratedCase, config: OracleConfig):
    failures = []
    tol = config.tol("serialize")
    replay = _serialize_replay()
    dev = replay(case.circuit, None)
    if dev > tol:
        failures.append(
            CheckFailure(
                check="serialize:json",
                seed=case.seed,
                deviation=dev,
                tolerance=tol,
                message=(
                    "JSON serializer round-trip changed simulation "
                    f"semantics: max |delta| = {dev:.3e}"
                ),
                replay=replay,
            )
        )
    if case.qasm_safe:
        tol = config.tol("qasm")
        replay = _qasm_replay()
        dev = replay(case.circuit, None)
        if dev > tol:
            failures.append(
                CheckFailure(
                    check="qasm:roundtrip",
                    seed=case.seed,
                    deviation=dev,
                    tolerance=tol,
                    message=(
                        "QASM export->import round-trip changed the "
                        f"outcome distribution: max |delta p| = "
                        f"{dev:.3e}"
                    ),
                    replay=replay,
                )
            )
    return failures


def run_oracle(
    case: GeneratedCase, config: Optional[OracleConfig] = None
) -> Tuple[List[CheckFailure], int]:
    """All applicable checks for one case.

    Returns ``(failures, nb_checks_run)``.  Checks are grouped by
    family; sampling-based families use binomial bounds (deviation
    normalized so 1.0 is the limit), numeric families use the
    tolerances of :mod:`repro.conformance.tolerances`.
    """
    config = config or OracleConfig()
    failures: List[CheckFailure] = []
    nb_checks = 0

    groups = [(True, _check_statevector), (True, _check_executor)]
    if config.check_density and case.noise is None:
        groups.append((True, _check_density))
    if config.check_trajectory:
        groups.append((True, _check_trajectory))
    if config.check_density and config.check_trajectory:
        groups.append((True, _check_noisy_counts))
    if config.check_mps and case.noise is None:
        groups.append((case.two_local, _check_mps))
    if config.check_stabilizer and case.noise is None:
        groups.append((case.clifford, _check_stabilizer))
    if config.check_passes:
        groups.append((True, _check_passes))
    if config.check_roundtrips:
        groups.append((True, _check_roundtrips))
    if config.check_parametric:
        groups.append((case.symbolic is not None, _check_parametric))

    for applicable, check in groups:
        if not applicable:
            continue
        nb_checks += 1
        failures.extend(check(case, config))
    return failures, nb_checks
