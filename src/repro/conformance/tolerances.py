"""Per-backend agreement tolerances for the conformance oracle.

Every differential check compares a *candidate* execution path against
the reference (the planned ``kernel`` backend) and asserts the maximum
deviation stays under a named tolerance.  The tolerances are not all
equal because the execution paths are not all equally exact:

=====================  =========  =====================================
check family           tolerance  why
=====================  =========  =====================================
``statevector``        1e-10      same kernels, different contraction
                                  order — pure float roundoff
``density``            1e-9       ``K rho K^+`` conjugations square the
                                  roundoff of the statevector path
``mps``                1e-8       SVD splits re-orthogonalize every
                                  two-qubit gate
``pass.*``             1e-9       gate fusion multiplies 2x2 kernels,
                                  compounding roundoff per fused run
``serialize``          1e-12      JSON round-trip is bit-exact for
                                  rotations (``(cos, sin)`` pairs)
``qasm``               1e-6       export re-synthesizes unitaries into
                                  ``u3`` Euler angles
``counts``             (stat.)    sampling paths use a binomial bound,
                                  see :func:`counts_deviation`
=====================  =========  =====================================

The table is exported as :data:`DEFAULT_TOLERANCES` and documented for
users in ``docs/backends.md``.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

__all__ = [
    "DEFAULT_TOLERANCES",
    "tolerance_for",
    "counts_deviation",
]

#: Default maximum |deviation| per check family (see module docstring).
DEFAULT_TOLERANCES: Dict[str, float] = {
    "statevector": 1e-10,
    "density": 1e-9,
    "trajectory": 0.0,  # serial vs batched is bit-exact by contract
    "mps": 1e-8,
    "pass": 1e-9,
    "serialize": 1e-12,
    "qasm": 1e-6,
}


def tolerance_for(
    check: str, overrides: Optional[Mapping[str, float]] = None
) -> float:
    """Resolve the tolerance for a check name.

    ``check`` may be a family name (``'statevector'``) or a qualified
    check (``'pass.fuse_1q'`` resolves through its ``'pass'`` family).
    ``overrides`` maps family names to replacement tolerances.
    """
    family = check.split(".", 1)[0].split(":", 1)[0]
    table = dict(DEFAULT_TOLERANCES)
    if overrides:
        table.update(overrides)
    try:
        return table[family]
    except KeyError:
        raise KeyError(
            f"no tolerance registered for check {check!r} "
            f"(family {family!r}); known: {sorted(table)}"
        ) from None


def counts_deviation(
    counts: Mapping[str, int],
    expected: Mapping[str, float],
    shots: int,
    sigmas: float = 6.0,
    slack: float = 3.0,
) -> float:
    """Statistical deviation of a sampled histogram from an exact
    distribution, normalized so values > 1 mean "outside the bound".

    For every outcome (union of observed and expected) the observed
    count is compared against the binomial expectation ``N p`` with a
    ``sigmas``-sigma tolerance plus an absolute ``slack`` (which keeps
    near-zero-probability outcomes from tripping on a single stray
    shot).  The returned deviation is the worst ratio::

        max_o |count_o - N p_o| / (sigmas * sqrt(N p_o (1 - p_o)) + slack)

    A correct sampler stays well under 1 for the fuzzer's fixed seeds;
    a wrong backend (transposed kernel, dropped control) lands orders
    of magnitude above it.  An observed outcome whose expected
    probability is exactly zero is structurally impossible and reports
    an infinite deviation.
    """
    shots = int(shots)
    if shots <= 0:
        return 0.0
    worst = 0.0
    for outcome in set(counts) | set(expected):
        p = float(expected.get(outcome, 0.0))
        observed = int(counts.get(outcome, 0))
        if p == 0.0 and observed > 0:
            return float("inf")
        std = math.sqrt(max(shots * p * (1.0 - p), 0.0))
        bound = sigmas * std + slack
        worst = max(worst, abs(observed - shots * p) / bound)
    return worst
