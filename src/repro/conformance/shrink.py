"""Greedy minimization of failing conformance circuits.

A raw fuzzer failure is an 18-op, 4-qubit circuit with nested blocks —
useless as a bug report.  :func:`shrink` turns it into the smallest
circuit the failure's ``replay`` closure still rejects:

1. **Flatten** — replace nested blocks by their expanded contents (a
   backend bug does not care about block structure; if the flattened
   circuit still fails, shrink that instead).
2. **Delta-debug the op list** — repeatedly try dropping contiguous
   chunks (halving the chunk size down to single ops, ddmin-style),
   keeping any candidate that still fails.
3. **Prune the register** — drop unused qubits above the highest used
   qubit and shift the circuit down past unused low qubits.

Every candidate is validated by re-running the *original failing
check* via :meth:`CheckFailure.still_fails`, so the shrinker can never
"minimize" into a different bug, and a wall-clock budget bounds the
whole search (shrinking is a best-effort nicety, not a correctness
step).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional

from repro.circuit import QCircuit
from repro.io import circuit_to_dict
from repro.ir import PassManager, lower
from repro.noise import NoiseModel

from repro.conformance.oracle import CheckFailure

__all__ = ["ShrunkFailure", "shrink"]


@dataclass
class ShrunkFailure:
    """A minimized, reproducible conformance failure."""

    seed: int
    check: str
    deviation: float
    tolerance: float
    message: str
    circuit: QCircuit
    noise: Optional[NoiseModel]
    nb_ops_original: int
    nb_ops_shrunk: int
    shrink_seconds: float

    @property
    def qasm(self) -> Optional[str]:
        """OpenQASM 2.0 of the reproducer, when expressible."""
        try:
            return self.circuit.toQASM()
        except Exception:
            return None

    def to_dict(self) -> dict:
        """JSON-serializable report (seed + QASM + circuit + numbers)."""
        return {
            "seed": self.seed,
            "check": self.check,
            "deviation": self.deviation,
            "tolerance": self.tolerance,
            "message": self.message,
            "nb_qubits": self.circuit.nbQubits,
            "nb_ops_original": self.nb_ops_original,
            "nb_ops_shrunk": self.nb_ops_shrunk,
            "shrink_seconds": self.shrink_seconds,
            "noise": repr(self.noise) if self.noise is not None else None,
            "qasm": self.qasm,
            "circuit": circuit_to_dict(self.circuit),
            "draw": self.circuit.draw(),
        }

    def summary(self) -> str:
        """Human-readable failure block for terminal output."""
        lines = [
            f"FAIL {self.check} (seed {self.seed}): {self.message}",
            f"  deviation {self.deviation:.3e} > tolerance "
            f"{self.tolerance:.3e}; shrunk "
            f"{self.nb_ops_original} -> {self.nb_ops_shrunk} ops "
            f"in {self.shrink_seconds:.1f}s",
        ]
        if self.noise is not None:
            lines.append(f"  noise: {self.noise!r}")
        lines.extend(
            "  " + line for line in self.circuit.draw().splitlines()
        )
        return "\n".join(lines)


def _rebuild(nb_qubits: int, ops: List) -> QCircuit:
    circuit = QCircuit(nb_qubits)
    for op in ops:
        circuit.push_back(op)
    return circuit


def _try_flatten(circuit: QCircuit) -> Optional[QCircuit]:
    try:
        return PassManager(["flatten"]).run(lower(circuit)).to_circuit()
    except Exception:
        return None


def _ddmin_ops(
    circuit: QCircuit,
    noise: Optional[NoiseModel],
    failure: CheckFailure,
    deadline: float,
) -> QCircuit:
    """Drop contiguous op chunks while the failure reproduces."""
    ops = list(circuit)
    chunk = max(len(ops) // 2, 1)
    while chunk >= 1:
        i = 0
        progressed = False
        while i < len(ops) and len(ops) > 1:
            if perf_counter() > deadline:
                return _rebuild(circuit.nbQubits, ops)
            candidate_ops = ops[:i] + ops[i + chunk:]
            if not candidate_ops:
                i += chunk
                continue
            candidate = _rebuild(circuit.nbQubits, candidate_ops)
            if failure.still_fails(candidate, noise) is not None:
                ops = candidate_ops
                progressed = True
            else:
                i += chunk
        if chunk == 1 and not progressed:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if progressed else 0)
    return _rebuild(circuit.nbQubits, ops)


def _prune_register(
    circuit: QCircuit,
    noise: Optional[NoiseModel],
    failure: CheckFailure,
) -> QCircuit:
    """Drop unused high qubits; shift down past unused low qubits."""
    used = sorted({q for op in circuit for q in op.qubits})
    if not used:
        return circuit
    top = used[-1]
    if top + 1 < circuit.nbQubits:
        candidate = _rebuild(top + 1, list(circuit))
        if failure.still_fails(candidate, noise) is not None:
            circuit = candidate
    low = used[0]
    if low > 0:
        try:
            shifted = [op.shifted(-low) for op in circuit]
            candidate = _rebuild(circuit.nbQubits - low, shifted)
        except Exception:
            return circuit
        if failure.still_fails(candidate, noise) is not None:
            circuit = candidate
    return circuit


def shrink(
    circuit: QCircuit,
    noise: Optional[NoiseModel],
    failure: CheckFailure,
    time_budget: float = 20.0,
) -> ShrunkFailure:
    """Minimize ``circuit`` against ``failure`` within ``time_budget``
    seconds and package the result as a :class:`ShrunkFailure`."""
    t0 = perf_counter()
    deadline = t0 + float(time_budget)
    nb_original = len(list(lower(circuit).flat()))
    best = circuit
    deviation = failure.deviation

    flat = _try_flatten(circuit)
    if flat is not None:
        dev = failure.still_fails(flat, noise)
        if dev is not None:
            best, deviation = flat, dev

    for _ in range(3):  # ddmin + prune to a small fixpoint
        before = len(best)
        best = _ddmin_ops(best, noise, failure, deadline)
        best = _prune_register(best, noise, failure)
        if len(best) >= before or perf_counter() > deadline:
            break

    final_dev = failure.still_fails(best, noise)
    if final_dev is not None:
        deviation = final_dev
    return ShrunkFailure(
        seed=failure.seed,
        check=failure.check,
        deviation=deviation,
        tolerance=failure.tolerance,
        message=failure.message,
        circuit=best,
        noise=noise,
        nb_ops_original=nb_original,
        nb_ops_shrunk=len(best),
        shrink_seconds=perf_counter() - t0,
    )
