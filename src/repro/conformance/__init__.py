"""Cross-backend differential fuzzing and conformance harness.

This package answers one question continuously: *do all the ways this
toolbox can execute a circuit agree with each other?*  It has four
parts, composed by :func:`run_conformance`:

- :mod:`~repro.conformance.generator` — a seeded random-circuit
  generator covering the full gate universe (controlled, parametric,
  matrix and multi-controlled gates, measurements, resets, barriers,
  nested blocks) plus optional noise models.
- :mod:`~repro.conformance.oracle` — the differential oracle: each
  circuit runs on every registered statevector backend x {planned,
  unplanned} x {fused, unfused}, through the density-matrix,
  trajectory (serial *and* batched), MPS and stabilizer engines where
  eligible, and through metamorphic checks (IR optimization passes,
  QASM and serializer round-trips).  Deterministic paths compare to
  tight numeric tolerances; sampling paths use seeded binomial bounds.
- :mod:`~repro.conformance.shrink` — a ddmin-style greedy shrinker
  that minimizes each failing circuit against the *original* failing
  check, yielding a reproducible report (seed + QASM + deviation).
- :mod:`~repro.conformance.runner` / :mod:`~repro.conformance.cli` —
  the run loop with observability spans/metrics, and the
  ``python -m repro.conformance`` command that CI invokes.

Quick check::

    from repro.conformance import run_conformance

    report = run_conformance(seeds=20)
    assert report.ok, report.summary()
"""

from repro.conformance.generator import (
    GeneratedCase,
    GeneratorConfig,
    generate_case,
)
from repro.conformance.oracle import (
    CHECKED_PASSES,
    CheckFailure,
    OracleConfig,
    run_oracle,
)
from repro.conformance.runner import ConformanceReport, run_conformance
from repro.conformance.shrink import ShrunkFailure, shrink
from repro.conformance.tolerances import (
    DEFAULT_TOLERANCES,
    counts_deviation,
    tolerance_for,
)

__all__ = [
    "GeneratorConfig",
    "GeneratedCase",
    "generate_case",
    "OracleConfig",
    "CheckFailure",
    "CHECKED_PASSES",
    "run_oracle",
    "ShrunkFailure",
    "shrink",
    "ConformanceReport",
    "run_conformance",
    "DEFAULT_TOLERANCES",
    "tolerance_for",
    "counts_deviation",
]
