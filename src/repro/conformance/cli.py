"""``python -m repro.conformance`` — the conformance fuzzer CLI.

Examples::

    # the CI smoke budget
    python -m repro.conformance --seeds 25 --qubits 3

    # the acceptance run
    python -m repro.conformance --seeds 200

    # the nightly deep fuzz, with JSON report + reproducer artifacts
    python -m repro.conformance --seeds 1500 --qubits 5 \\
        --report conformance_report.json --artifacts shrunk/

Exit status is 0 when every check agreed and 1 otherwise; every
failure prints a shrunk reproducer (seed, check, deviation, circuit
drawing) and — with ``--artifacts`` — writes a standalone JSON file
per failure containing the seed, the QASM, the serialized circuit and
the measured deviation.  ``docs/conformance.md`` documents how to
replay one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.conformance.generator import GeneratorConfig
from repro.conformance.oracle import OracleConfig
from repro.conformance.runner import run_conformance

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.conformance`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description=(
            "Differential fuzzing of every repro execution path: "
            "random circuits through all backends x {planned, "
            "unplanned} x {serial, batched}, IR passes, and I/O "
            "round-trips; failures are shrunk to minimal reproducers."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=50,
        help="number of seeded circuits to fuzz (default 50)",
    )
    parser.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed (default 0); seeds are fully reproducible",
    )
    parser.add_argument(
        "--qubits", type=int, default=4,
        help="maximum register width (default 4)",
    )
    parser.add_argument(
        "--depth", type=int, default=18,
        help="maximum ops per circuit (default 18)",
    )
    parser.add_argument(
        "--shots", type=int, default=192,
        help="shots per sampling check (default 192)",
    )
    parser.add_argument(
        "--no-noise", action="store_true",
        help="generate only noiseless circuits",
    )
    parser.add_argument(
        "--parametric", type=float, default=0.0, metavar="FRACTION",
        help=(
            "fraction of non-Clifford seeds generated with symbolic "
            "Parameter slots, exercising the bind()/sweep() oracle "
            "(default 0.0 — seed streams are unchanged)"
        ),
    )
    parser.add_argument(
        "--backends", type=str, default=None,
        help=(
            "comma-separated statevector backends to cross-check "
            "(default: all registered)"
        ),
    )
    parser.add_argument(
        "--skip", type=str, default=None,
        help=(
            "comma-separated check families to skip: density, "
            "trajectory, mps, stabilizer, passes, roundtrips, "
            "parametric"
        ),
    )
    parser.add_argument(
        "--shrink-budget", type=float, default=20.0,
        help="seconds the shrinker may spend per failure (default 20)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first failing seed",
    )
    parser.add_argument(
        "--report", type=Path, default=None,
        help="write the full JSON report to this path",
    )
    parser.add_argument(
        "--artifacts", type=Path, default=None,
        help="directory for one JSON reproducer file per failure",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run instrumented and print the observability profile",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-seed progress dots",
    )
    return parser


def _configs(args) -> tuple:
    generator = GeneratorConfig(
        max_qubits=max(args.qubits, 1),
        min_qubits=min(2, max(args.qubits, 1)),
        max_ops=max(args.depth, 1),
        min_ops=min(4, max(args.depth, 1)),
        noise_fraction=0.0 if args.no_noise else 0.25,
        parametric_fraction=min(max(args.parametric, 0.0), 1.0),
    )
    skip = {
        s.strip() for s in (args.skip or "").split(",") if s.strip()
    }
    backends = None
    if args.backends:
        backends = tuple(
            b.strip() for b in args.backends.split(",") if b.strip()
        )
    oracle = OracleConfig(
        backends=backends,
        sampling_shots=max(args.shots, 1),
        check_density="density" not in skip,
        check_trajectory="trajectory" not in skip,
        check_mps="mps" not in skip,
        check_stabilizer="stabilizer" not in skip,
        check_passes="passes" not in skip,
        check_roundtrips="roundtrips" not in skip,
        check_parametric="parametric" not in skip,
    )
    return generator, oracle


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    generator, oracle = _configs(args)

    def on_seed(seed, nb_failures):
        if args.quiet:
            return
        sys.stdout.write("x" if nb_failures else ".")
        if (seed - args.seed_start) % 50 == 49:
            sys.stdout.write(f" {seed - args.seed_start + 1}\n")
        sys.stdout.flush()

    inst = None
    if args.profile:
        from repro.observability import instrument

        ctx = instrument()
        inst = ctx.__enter__()
    try:
        report = run_conformance(
            seeds=args.seeds,
            seed_start=args.seed_start,
            generator=generator,
            oracle=oracle,
            shrink_budget=args.shrink_budget,
            fail_fast=args.fail_fast,
            on_seed=on_seed,
        )
    finally:
        if inst is not None:
            ctx.__exit__(None, None, None)

    if not args.quiet:
        sys.stdout.write("\n")
    print(report.summary())

    for failure in report.failures:
        print()
        print(failure.summary())
        print(
            f"  replay: python -m repro.conformance "
            f"--seeds 1 --seed-start {failure.seed}"
        )

    if args.report is not None:
        args.report.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"report written to {args.report}")
    if args.artifacts is not None and report.failures:
        args.artifacts.mkdir(parents=True, exist_ok=True)
        for failure in report.failures:
            name = "".join(
                c if c.isalnum() or c in "-_" else "_"
                for c in failure.check
            )
            path = args.artifacts / f"seed{failure.seed}_{name}.json"
            path.write_text(
                json.dumps(failure.to_dict(), indent=2) + "\n"
            )
        print(f"{len(report.failures)} reproducer(s) in {args.artifacts}")

    if inst is not None:
        print()
        print(inst.report())
    return 0 if report.ok else 1
