"""The conformance run loop: generate -> oracle -> shrink -> report.

:func:`run_conformance` is the library entry point behind the
``python -m repro.conformance`` CLI and the CI smoke/nightly jobs.  It
executes a block of seeds through the differential oracle, minimizes
every failure with the greedy shrinker, and returns a
:class:`ConformanceReport` that serializes to JSON for artifact upload.

Each seed runs under a ``conformance.seed`` observability span (inside
a ``conformance.run`` root span) and bumps the
``repro_conformance_*`` metrics, so a profiled run shows exactly where
oracle time goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional

from repro.observability.instrument import (
    activate,
    resolve_instrumentation,
)
from repro.observability.metrics import (
    CONFORMANCE_CHECKS,
    CONFORMANCE_CIRCUITS,
    CONFORMANCE_FAILURES,
)

from repro.conformance.generator import GeneratorConfig, generate_case
from repro.conformance.oracle import OracleConfig, run_oracle
from repro.conformance.shrink import ShrunkFailure, shrink

__all__ = ["ConformanceReport", "run_conformance"]


@dataclass
class ConformanceReport:
    """Outcome of one conformance run."""

    nb_seeds: int = 0
    nb_circuits: int = 0
    nb_checks: int = 0
    failures: List[ShrunkFailure] = field(default_factory=list)
    seconds: float = 0.0
    seed_start: int = 0

    @property
    def ok(self) -> bool:
        """``True`` when every check on every seed agreed."""
        return not self.failures

    @property
    def circuits_per_second(self) -> float:
        """Oracle throughput (circuits fully cross-checked per second)."""
        return self.nb_circuits / self.seconds if self.seconds else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable summary + per-failure reproducers."""
        return {
            "ok": self.ok,
            "nb_seeds": self.nb_seeds,
            "seed_start": self.seed_start,
            "nb_circuits": self.nb_circuits,
            "nb_checks": self.nb_checks,
            "nb_failures": len(self.failures),
            "seconds": self.seconds,
            "circuits_per_second": self.circuits_per_second,
            "failures": [f.to_dict() for f in self.failures],
        }

    def summary(self) -> str:
        """One-paragraph terminal summary."""
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"conformance: {status} — {self.nb_circuits} circuit(s), "
            f"{self.nb_checks} check group(s) over seeds "
            f"[{self.seed_start}, {self.seed_start + self.nb_seeds}) "
            f"in {self.seconds:.1f}s "
            f"({self.circuits_per_second:.1f} circuits/s)"
        )


def run_conformance(
    seeds: int = 50,
    seed_start: int = 0,
    generator: Optional[GeneratorConfig] = None,
    oracle: Optional[OracleConfig] = None,
    shrink_budget: float = 20.0,
    fail_fast: bool = False,
    trace=None,
    metrics=None,
    on_seed: Optional[Callable[[int, int], None]] = None,
) -> ConformanceReport:
    """Fuzz ``seeds`` seeded circuits through the differential oracle.

    Parameters
    ----------
    seeds, seed_start:
        Run seeds ``seed_start .. seed_start + seeds - 1``.  Fixed
        seeds make every run (and every CI failure) reproducible.
    generator:
        :class:`~repro.conformance.GeneratorConfig` controlling the
        circuit distribution.
    oracle:
        :class:`~repro.conformance.OracleConfig` controlling which
        check families run and their sampling budgets.
    shrink_budget:
        Wall-clock seconds the shrinker may spend per failure.
    fail_fast:
        Stop at the first failing seed (after shrinking it).
    trace, metrics:
        Observability opt-ins with
        :class:`~repro.simulation.SimulationOptions` semantics —
        ``True`` for fresh instances, or explicit
        ``Tracer``/``MetricsRegistry`` objects to accumulate into.
    on_seed:
        Progress callback ``on_seed(seed, nb_failures_so_far)``.
    """
    generator = generator or GeneratorConfig()
    oracle = oracle or OracleConfig()
    inst = resolve_instrumentation(trace, metrics)
    report = ConformanceReport(seed_start=int(seed_start))
    t0 = perf_counter()

    circuits_counter = checks_counter = failures_counter = None
    if inst.enabled:
        circuits_counter = inst.metrics.counter(
            CONFORMANCE_CIRCUITS, "circuits generated and oracled"
        )
        checks_counter = inst.metrics.counter(
            CONFORMANCE_CHECKS, "conformance check groups executed"
        )
        failures_counter = inst.metrics.counter(
            CONFORMANCE_FAILURES, "conformance failures detected"
        )

    with activate(inst), inst.span(
        "conformance.run", seeds=int(seeds), seed_start=int(seed_start)
    ):
        for seed in range(
            int(seed_start), int(seed_start) + int(seeds)
        ):
            report.nb_seeds += 1
            with inst.span("conformance.seed", seed=seed):
                case = generate_case(seed, generator)
                failures, nb_checks = run_oracle(case, oracle)
            report.nb_circuits += 1
            report.nb_checks += nb_checks
            if inst.enabled:
                circuits_counter.inc()
                checks_counter.inc(nb_checks)
            for failure in failures:
                if inst.enabled:
                    failures_counter.inc(check=failure.check)
                with inst.span(
                    "conformance.shrink", check=failure.check, seed=seed
                ):
                    report.failures.append(
                        shrink(
                            case.circuit,
                            case.noise,
                            failure,
                            time_budget=shrink_budget,
                        )
                    )
            if on_seed is not None:
                on_seed(seed, len(report.failures))
            if fail_fast and report.failures:
                break

    report.seconds = perf_counter() - t0
    return report
