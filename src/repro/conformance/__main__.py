"""Module entry point: ``python -m repro.conformance``."""

import sys

from repro.conformance.cli import main

if __name__ == "__main__":
    sys.exit(main())
