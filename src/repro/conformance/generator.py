"""Seeded random-circuit generation for the conformance harness.

One seed deterministically produces one :class:`GeneratedCase` — a
circuit (possibly with nested ``asBlock`` sub-circuits, mid-circuit
measurements in random bases, resets and barriers), an optional
:class:`~repro.noise.NoiseModel`, and metadata the oracle uses to
decide which execution paths apply (Clifford-only circuits additionally
run through the stabilizer engine; circuits whose gates all span at
most two qubits additionally run through the MPS engine).

The generator is intentionally *adversarial* rather than uniform: it
biases toward the structures that historically broke backends —
non-adjacent qubit pairs, open (``control_state=0``) controls,
diagonal runs (fusion fodder), adjacent inverse pairs (cancellation
fodder), random-unitary ``MatrixGate`` s, and nested blocks with
non-zero offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.circuit import Barrier, Measurement, QCircuit, Reset
from repro.gates import (
    CH,
    CNOT,
    CPhase,
    CRotationX,
    CRotationY,
    CRotationZ,
    CY,
    CZ,
    ControlledGate1,
    Hadamard,
    MCPhase,
    MCX,
    MatrixGate,
    PauliX,
    PauliY,
    PauliZ,
    Phase,
    RotationX,
    RotationXX,
    RotationY,
    RotationYY,
    RotationZ,
    RotationZZ,
    S,
    Sdg,
    SqrtX,
    SWAP,
    T,
    Tdg,
    U2,
    U3,
    iSWAP,
)
from repro.noise import (
    AmplitudeDamping,
    BitFlip,
    Depolarizing,
    NoiseModel,
    PhaseFlip,
)
from repro.parameter import Parameter

__all__ = ["GeneratorConfig", "GeneratedCase", "generate_case"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random-circuit generator.

    Parameters
    ----------
    min_qubits, max_qubits:
        Register-width range (inclusive).
    min_ops, max_ops:
        Number of top-level elements pushed per circuit (inclusive).
    max_recorded:
        Cap on recorded outcomes (measurements + recorded resets) so
        branch enumeration stays bounded at ``2**max_recorded``.
    p_measure, p_reset, p_barrier, p_block:
        Per-element probabilities of emitting a mid-circuit
        measurement, reset, barrier, or nested ``asBlock`` sub-circuit
        instead of a gate.
    clifford_fraction:
        Fraction of seeds generated Clifford-only (H/S/X/Y/Z/CX/CZ/SWAP
        with Z-basis measurements), eligible for the stabilizer engine.
    noise_fraction:
        Fraction of seeds that carry a random :class:`NoiseModel`.
    parametric_fraction:
        Fraction of non-Clifford seeds generated *parametric*: some
        rotation angles are replaced by symbolic
        :class:`~repro.parameter.Parameter` slots.  The case's
        :attr:`~GeneratedCase.circuit` is the concrete baseline
        materialization (so every existing check runs unchanged) and
        the symbolic original rides along in
        :attr:`~GeneratedCase.symbolic` for the bind/sweep oracle.
        The default 0.0 draws nothing from the RNG, keeping historical
        seed streams byte-identical.
    allow_matrix_gates, allow_multi_controlled:
        Include random-unitary :class:`~repro.gates.MatrixGate` s /
        multi-controlled gates in the universe.
    measure_at_end:
        Always append at least one end-of-circuit measurement so
        sampling checks have outcomes to compare.
    """

    min_qubits: int = 2
    max_qubits: int = 4
    min_ops: int = 4
    max_ops: int = 18
    max_recorded: int = 5
    p_measure: float = 0.08
    p_reset: float = 0.05
    p_barrier: float = 0.03
    p_block: float = 0.07
    clifford_fraction: float = 0.2
    noise_fraction: float = 0.25
    parametric_fraction: float = 0.0
    allow_matrix_gates: bool = True
    allow_multi_controlled: bool = True
    measure_at_end: bool = True

    def __post_init__(self):
        if not 1 <= self.min_qubits <= self.max_qubits:
            raise ValueError(
                f"invalid qubit range [{self.min_qubits}, "
                f"{self.max_qubits}]"
            )
        if not 1 <= self.min_ops <= self.max_ops:
            raise ValueError(
                f"invalid op range [{self.min_ops}, {self.max_ops}]"
            )
        for name in (
            "p_measure", "p_reset", "p_barrier", "p_block",
            "clifford_fraction", "noise_fraction",
            "parametric_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class GeneratedCase:
    """One seed's workload: circuit + noise + oracle eligibility."""

    seed: int
    circuit: QCircuit
    noise: Optional[NoiseModel]
    clifford: bool
    #: Number of recorded outcomes (measurements + recorded resets).
    nb_recorded: int
    #: All gates span <= 2 qubits (MPS-eligible).
    two_local: bool
    #: Every measurement is Z-basis and no reset records its outcome
    #: (QASM round-trip preserves semantics only then).
    qasm_safe: bool
    #: Human-readable universe tag ('clifford' or 'full').
    universe: str = "full"
    #: ``(Parameter, baseline_value)`` pairs of a parametric case, in
    #: slot-creation order; empty for concrete cases.
    parameters: tuple = ()
    #: The symbolic original of a parametric case (``circuit`` is its
    #: baseline materialization); ``None`` for concrete cases.
    symbolic: Optional[QCircuit] = None


def _random_unitary(rng: np.random.Generator, dim: int) -> np.ndarray:
    """Haar-ish random unitary: QR of a complex Gaussian, phases fixed."""
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    d = np.diagonal(r)
    return q * (d / np.abs(d))


def _distinct(rng: np.random.Generator, n: int, k: int) -> List[int]:
    """k distinct qubits out of n, in random order."""
    return [int(q) for q in rng.choice(n, size=k, replace=False)]


def _clifford_gate(rng: np.random.Generator, n: int):
    roll = int(rng.integers(0, 9 if n >= 2 else 6))
    q = int(rng.integers(0, n))
    if roll == 0:
        return Hadamard(q)
    if roll == 1:
        return S(q)
    if roll == 2:
        return Sdg(q)
    if roll == 3:
        return PauliX(q)
    if roll == 4:
        return PauliY(q)
    if roll == 5:
        return PauliZ(q)
    a, b = _distinct(rng, n, 2)
    if roll == 6:
        return CNOT(a, b)
    if roll == 7:
        return CZ(a, b)
    return SWAP(a, b)


def _sym(rng: np.random.Generator, theta: float, params_out):
    """Replace ``theta`` with a fresh :class:`Parameter` slot half the
    time (parametric mode only), recording the baseline value.

    Draws from ``rng`` only when ``params_out`` is not ``None`` so
    concrete-mode seed streams are untouched.
    """
    if params_out is None or rng.random() >= 0.5:
        return theta
    param = Parameter(f"p{len(params_out)}")
    params_out.append((param, theta))
    return param


def _full_gate(
    rng: np.random.Generator, n: int, config: GeneratorConfig,
    params_out=None,
):
    """One gate from the full universe (may need >= 2 / >= 3 qubits)."""
    kinds = ["fixed", "param", "param"]
    if n >= 2:
        kinds += ["two", "two", "ctrl"]
        if config.allow_matrix_gates:
            kinds.append("matrix")
    elif config.allow_matrix_gates:
        kinds.append("matrix")
    if n >= 3 and config.allow_multi_controlled:
        kinds.append("mc")
    kind = kinds[int(rng.integers(0, len(kinds)))]
    q = int(rng.integers(0, n))
    theta = float(rng.normal(scale=1.5))

    if kind == "fixed":
        cls = [Hadamard, PauliX, PauliY, PauliZ, S, Sdg, T, Tdg, SqrtX][
            int(rng.integers(0, 9))
        ]
        return cls(q)
    if kind == "param":
        roll = int(rng.integers(0, 6))
        if roll < 4:
            theta = _sym(rng, theta, params_out)
        if roll == 0:
            return RotationX(q, theta)
        if roll == 1:
            return RotationY(q, theta)
        if roll == 2:
            return RotationZ(q, theta)
        if roll == 3:
            return Phase(q, theta)
        if roll == 4:
            return U2(q, theta, float(rng.normal(scale=1.5)))
        return U3(
            q, theta, float(rng.normal(scale=1.5)),
            float(rng.normal(scale=1.5)),
        )
    if kind == "two":
        a, b = _distinct(rng, n, 2)
        roll = int(rng.integers(0, 8))
        if roll in (4, 7):
            theta = _sym(rng, theta, params_out)
        if roll == 0:
            return CNOT(a, b)
        if roll == 1:
            return CZ(a, b)
        if roll == 2:
            return CY(a, b)
        if roll == 3:
            return CH(a, b)
        if roll == 4:
            return CPhase(a, b, theta)
        if roll == 5:
            return SWAP(a, b)
        if roll == 6:
            return iSWAP(a, b)
        cls = [RotationXX, RotationYY, RotationZZ][int(rng.integers(0, 3))]
        return cls(a, b, theta)
    if kind == "ctrl":
        a, b = _distinct(rng, n, 2)
        control_state = int(rng.integers(0, 2))
        roll = int(rng.integers(0, 4))
        if roll >= 1:
            theta = _sym(rng, theta, params_out)
        if roll == 0:
            return ControlledGate1(Hadamard(b), a, control_state)
        if roll == 1:
            return CRotationX(a, b, theta)
        if roll == 2:
            return CRotationY(a, b, theta)
        return CRotationZ(a, b, theta)
    if kind == "mc":
        k = int(rng.integers(2, min(n - 1, 3) + 1))
        qs = _distinct(rng, n, k + 1)
        controls, target = qs[:-1], qs[-1]
        states = [int(s) for s in rng.integers(0, 2, size=k)]
        if int(rng.integers(0, 2)):
            return MCX(controls, target, states)
        return MCPhase(controls, target, theta, control_states=states)
    # matrix gate on 1 or 2 qubits
    k = 1 if n == 1 else int(rng.integers(1, 3))
    qs = sorted(_distinct(rng, n, k))
    return MatrixGate(qs, _random_unitary(rng, 1 << k), label="R")


def _random_block(
    rng: np.random.Generator, n: int, config: GeneratorConfig, clifford: bool
) -> QCircuit:
    """A nested sub-circuit, pushed whole via ``asBlock``."""
    width = int(rng.integers(1, n + 1))
    offset = int(rng.integers(0, n - width + 1))
    sub = QCircuit(width, offset)
    for _ in range(int(rng.integers(1, 4))):
        sub.push_back(
            _clifford_gate(rng, width)
            if clifford
            else _full_gate(rng, width, config)
        )
    return sub.asBlock("B")


def _random_noise(rng: np.random.Generator) -> NoiseModel:
    p = float(rng.uniform(0.01, 0.08))
    cls = [BitFlip, PhaseFlip, Depolarizing, AmplitudeDamping][
        int(rng.integers(0, 4))
    ]
    readout = float(rng.uniform(0.0, 0.05)) if rng.random() < 0.4 else 0.0
    return NoiseModel(gate_noise=cls(p), readout_error=readout)


def generate_case(
    seed: int, config: Optional[GeneratorConfig] = None
) -> GeneratedCase:
    """Deterministically generate the workload for one seed."""
    config = config or GeneratorConfig()
    rng = np.random.default_rng(seed)
    n = int(rng.integers(config.min_qubits, config.max_qubits + 1))
    nb_ops = int(rng.integers(config.min_ops, config.max_ops + 1))
    clifford = bool(rng.random() < config.clifford_fraction)
    noisy = bool(rng.random() < config.noise_fraction)
    # Short-circuit: the default fraction of 0.0 draws nothing, so
    # historical seed streams stay byte-identical.
    parametric = bool(
        config.parametric_fraction > 0
        and not clifford
        and rng.random() < config.parametric_fraction
    )
    params_out: Optional[list] = [] if parametric else None

    circuit = QCircuit(n)
    recorded = 0
    qasm_safe = True
    for _ in range(nb_ops):
        roll = float(rng.random())
        if roll < config.p_measure and recorded < config.max_recorded:
            q = int(rng.integers(0, n))
            basis = "z" if clifford else ["z", "z", "x", "y"][
                int(rng.integers(0, 4))
            ]
            circuit.push_back(Measurement(q, basis))
            recorded += 1
            if basis != "z":
                qasm_safe = False
            continue
        roll -= config.p_measure
        if roll < config.p_reset:
            record = (
                recorded < config.max_recorded and rng.random() < 0.5
            )
            circuit.push_back(Reset(int(rng.integers(0, n)), record))
            if record:
                recorded += 1
                qasm_safe = False
            continue
        roll -= config.p_reset
        if roll < config.p_barrier:
            k = int(rng.integers(1, n + 1))
            circuit.push_back(Barrier(sorted(_distinct(rng, n, k))))
            continue
        roll -= config.p_barrier
        if roll < config.p_block:
            circuit.push_back(_random_block(rng, n, config, clifford))
            continue
        circuit.push_back(
            _clifford_gate(rng, n)
            if clifford
            else _full_gate(rng, n, config, params_out)
        )

    if config.measure_at_end and recorded < config.max_recorded:
        circuit.push_back(Measurement(int(rng.integers(0, n))))
        recorded += 1

    from repro.gates.base import QGate
    from repro.ir import lower

    symbolic = None
    parameters = tuple(params_out) if params_out else ()
    if parameters:
        # Concrete baseline for every existing check; the symbolic
        # original rides along for the parametric oracle.
        symbolic = circuit
        circuit = circuit.bind(dict(parameters)).materialize()

    two_local = all(
        len(op.qubits) <= 2
        for op, _off in lower(circuit).flat()
        if isinstance(op, QGate)
    )
    return GeneratedCase(
        seed=int(seed),
        circuit=circuit,
        noise=_random_noise(rng) if noisy else None,
        clifford=clifford,
        nb_recorded=recorded,
        two_local=two_local,
        qasm_safe=qasm_safe,
        universe="clifford" if clifford else "full",
        parameters=parameters,
        symbolic=symbolic,
    )
