"""Circuit persistence: JSON serialization and deserialization.

Saves a :class:`~repro.circuit.QCircuit` — including nested block
sub-circuits, custom matrix gates, measurements in any basis, resets and
barriers — to a plain JSON document, and restores it exactly.

Rotation and phase parameters are stored as their ``(cos, sin)`` pairs
(not the angle value), so a save/load round-trip is **bit-exact** for
the numerically sensitive parameters, in keeping with the toolbox's
stability story.
"""

from __future__ import annotations

import json
from typing import Callable, Dict

import numpy as np

from repro.circuit.barrier import Barrier
from repro.circuit.circuit import QCircuit
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import QCLabError
from repro.gates import (
    CH,
    CNOT,
    CPhase,
    CRotationX,
    CRotationY,
    CRotationZ,
    CSwap,
    CY,
    CZ,
    ControlledGate,
    ControlledGate1,
    Hadamard,
    Identity,
    MCGate,
    MCPhase,
    MCRotationX,
    MCRotationY,
    MCRotationZ,
    MCX,
    MCY,
    MCZ,
    MatrixGate,
    PauliX,
    PauliY,
    PauliZ,
    Phase,
    RotationX,
    RotationXX,
    RotationY,
    RotationYY,
    RotationZ,
    RotationZZ,
    S,
    Sdg,
    SqrtX,
    SWAP,
    T,
    Tdg,
    U2,
    U3,
    iSWAP,
)
from repro.gates.fixed import _SqrtXdg
from repro.gates.two_qubit import _iSWAPdg

__all__ = [
    "circuit_to_dict",
    "circuit_from_dict",
    "dumps_circuit",
    "loads_circuit",
    "save_circuit",
    "load_circuit",
]


class SerializationError(QCLabError, ValueError):
    """A failure while (de)serializing a circuit."""


_FIXED = {
    cls.__name__: cls
    for cls in (
        Identity, Hadamard, PauliX, PauliY, PauliZ, S, Sdg, T, Tdg,
        SqrtX, _SqrtXdg,
    )
}

_ROT1 = {
    cls.__name__: cls for cls in (RotationX, RotationY, RotationZ)
}
_ROT2 = {
    cls.__name__: cls for cls in (RotationXX, RotationYY, RotationZZ)
}
_CROT = {
    cls.__name__: cls
    for cls in (CRotationX, CRotationY, CRotationZ)
}
_MCROT = {
    cls.__name__: cls
    for cls in (MCRotationX, MCRotationY, MCRotationZ)
}
_NAMED_CTRL = {
    cls.__name__: cls for cls in (CNOT, CY, CZ, CH)
}
_MC_FIXED = {cls.__name__: cls for cls in (MCX, MCY, MCZ)}


def _rot_pair(rotation) -> list:
    return [rotation.cos, rotation.sin]


def _angle_pair(angle) -> list:
    return [angle.cos, angle.sin]


def _encode_op(op) -> dict:
    name = type(op).__name__
    if isinstance(op, QCircuit):
        d = circuit_to_dict(op)
        d["type"] = "QCircuit"
        return d
    if name in _FIXED:
        return {"type": name, "qubit": op.qubit}
    if name in _ROT1:
        return {
            "type": name,
            "qubit": op.qubit,
            "rotation": _rot_pair(op.rotation),
        }
    if name in _ROT2:
        return {
            "type": name,
            "qubits": list(op.qubits),
            "rotation": _rot_pair(op.rotation),
        }
    if isinstance(op, Phase):
        return {
            "type": "Phase",
            "qubit": op.qubit,
            "angle": _angle_pair(op.angle),
        }
    if isinstance(op, U2):
        return {
            "type": "U2", "qubit": op.qubit, "phi": op.phi, "lam": op.lam,
        }
    if isinstance(op, U3):
        return {
            "type": "U3",
            "qubit": op.qubit,
            "theta": op.theta,
            "phi": op.phi,
            "lam": op.lam,
        }
    if isinstance(op, MatrixGate):
        m = op.matrix
        return {
            "type": "MatrixGate",
            "qubits": list(op.qubits),
            "label": op.label,
            "matrix_re": m.real.tolist(),
            "matrix_im": m.imag.tolist(),
        }
    if isinstance(op, (SWAP, iSWAP, _iSWAPdg)):
        return {"type": name, "qubits": list(op.qubits)}
    if isinstance(op, CSwap):
        return {
            "type": "CSwap",
            "control": op.control,
            "targets": list(op.gate.qubits),
            "control_state": op.control_state,
        }
    if isinstance(op, CPhase):
        return {
            "type": "CPhase",
            "control": op.control,
            "target": op.target,
            "angle": _angle_pair(op.angle),
            "control_state": op.control_state,
        }
    if name in _CROT:
        return {
            "type": name,
            "control": op.control,
            "target": op.target,
            "rotation": _rot_pair(op.rotation),
            "control_state": op.control_state,
        }
    if name in _NAMED_CTRL:
        return {
            "type": name,
            "control": op.control,
            "target": op.target,
            "control_state": op.control_state,
        }
    if isinstance(op, ControlledGate1):
        return {
            "type": "ControlledGate1",
            "control": op.control,
            "control_state": op.control_state,
            "gate": _encode_op(op.gate),
        }
    if isinstance(op, ControlledGate):
        return {
            "type": "ControlledGate",
            "control": op.control,
            "control_state": op.control_state,
            "gate": _encode_op(op.gate),
        }
    if isinstance(op, MCPhase):
        return {
            "type": "MCPhase",
            "controls": list(op.controls()),
            "target": op.target,
            "angle": _angle_pair(op.gate.angle),
            "control_states": list(op.control_states()),
        }
    if name in _MCROT:
        return {
            "type": name,
            "controls": list(op.controls()),
            "target": op.target,
            "rotation": _rot_pair(op.gate.rotation),
            "control_states": list(op.control_states()),
        }
    if name in _MC_FIXED:
        return {
            "type": name,
            "controls": list(op.controls()),
            "target": op.target,
            "control_states": list(op.control_states()),
        }
    if isinstance(op, MCGate):
        return {
            "type": "MCGate",
            "controls": list(op.controls()),
            "control_states": list(op.control_states()),
            "gate": _encode_op(op.gate),
        }
    if isinstance(op, Measurement):
        d = {"type": "Measurement", "qubit": op.qubit, "basis": op.basis}
        if op.basis == "custom":
            b = op.basis_change
            d["basis_re"] = b.real.tolist()
            d["basis_im"] = b.imag.tolist()
            d["label"] = op.label
        return d
    if isinstance(op, Reset):
        return {"type": "Reset", "qubit": op.qubit, "record": op.record}
    if isinstance(op, Barrier):
        return {"type": "Barrier", "qubits": list(op.qubits)}
    raise SerializationError(
        f"cannot serialize circuit element {name}"
    )


def _decode_op(d: dict):
    name = d.get("type")
    if name == "QCircuit":
        return circuit_from_dict(d)
    if name in _FIXED:
        return _FIXED[name](d["qubit"])
    if name in _ROT1:
        c, s = d["rotation"]
        return _ROT1[name](d["qubit"], c, s)
    if name in _ROT2:
        c, s = d["rotation"]
        return _ROT2[name](*d["qubits"], c, s)
    if name == "Phase":
        c, s = d["angle"]
        return Phase(d["qubit"], c, s)
    if name == "U2":
        return U2(d["qubit"], d["phi"], d["lam"])
    if name == "U3":
        return U3(d["qubit"], d["theta"], d["phi"], d["lam"])
    if name == "MatrixGate":
        m = np.array(d["matrix_re"]) + 1j * np.array(d["matrix_im"])
        return MatrixGate(d["qubits"], m, label=d.get("label", "U"))
    if name == "SWAP":
        return SWAP(*d["qubits"])
    if name == "iSWAP":
        return iSWAP(*d["qubits"])
    if name == "_iSWAPdg":
        return _iSWAPdg(*d["qubits"])
    if name == "CSwap":
        return CSwap(
            d["control"], *d["targets"],
            control_state=d.get("control_state", 1),
        )
    if name == "CPhase":
        c, s = d["angle"]
        return CPhase(
            d["control"], d["target"], c, s,
            control_state=d.get("control_state", 1),
        )
    if name in _CROT:
        c, s = d["rotation"]
        from repro.angle import QRotation

        return _CROT[name](
            d["control"], d["target"], QRotation(c, s),
            control_state=d.get("control_state", 1),
        )
    if name in _NAMED_CTRL:
        return _NAMED_CTRL[name](
            d["control"], d["target"], d.get("control_state", 1)
        )
    if name == "ControlledGate1":
        return ControlledGate1(
            _decode_op(d["gate"]), d["control"],
            d.get("control_state", 1),
        )
    if name == "ControlledGate":
        return ControlledGate(
            _decode_op(d["gate"]), d["control"],
            d.get("control_state", 1),
        )
    if name == "MCPhase":
        c, s = d["angle"]
        return MCPhase(
            d["controls"], d["target"], c, s,
            control_states=d.get("control_states"),
        )
    if name in _MCROT:
        c, s = d["rotation"]
        from repro.angle import QRotation

        return _MCROT[name](
            d["controls"], d["target"], QRotation(c, s),
            control_states=d.get("control_states"),
        )
    if name in _MC_FIXED:
        return _MC_FIXED[name](
            d["controls"], d["target"], d.get("control_states")
        )
    if name == "MCGate":
        return MCGate(
            _decode_op(d["gate"]), d["controls"],
            d.get("control_states"),
        )
    if name == "Measurement":
        if d.get("basis") == "custom":
            b = np.array(d["basis_re"]) + 1j * np.array(d["basis_im"])
            return Measurement(d["qubit"], b, label=d.get("label"))
        return Measurement(d["qubit"], d.get("basis", "z"))
    if name == "Reset":
        return Reset(d["qubit"], record=d.get("record", False))
    if name == "Barrier":
        return Barrier(d["qubits"])
    raise SerializationError(f"unknown circuit element type {name!r}")


def circuit_to_dict(circuit: QCircuit) -> dict:
    """Serialize a circuit (recursively) to plain Python containers.

    Uses the canonical walker's structure-preserving view
    (:func:`repro.ir.lower.iter_elements` with ``expand='none'``):
    nested sub-circuits stay whole and recurse through
    :func:`_encode_op`, so the document mirrors the tree exactly.
    """
    from repro.ir.lower import iter_elements

    return {
        "type": "QCircuit",
        "nbQubits": circuit.nbQubits,
        "offset": circuit.offset,
        "block": circuit.is_block,
        "block_label": circuit.block_label,
        "ops": [
            _encode_op(op)
            for op, _off in iter_elements(circuit, "none")
        ],
    }


def circuit_from_dict(data: dict) -> QCircuit:
    """Rebuild a circuit from :func:`circuit_to_dict` output."""
    try:
        circuit = QCircuit(data["nbQubits"], data.get("offset", 0))
    except KeyError as exc:
        raise SerializationError(
            f"missing required key {exc.args[0]!r}"
        ) from None
    if data.get("block"):
        circuit.asBlock(data.get("block_label", "circuit"))
    for op_dict in data.get("ops", []):
        circuit.push_back(_decode_op(op_dict))
    return circuit


def dumps_circuit(circuit: QCircuit, **json_kwargs) -> str:
    """Serialize a circuit to a JSON string."""
    return json.dumps(circuit_to_dict(circuit), **json_kwargs)


def loads_circuit(text: str) -> QCircuit:
    """Parse a circuit from a JSON string."""
    return circuit_from_dict(json.loads(text))


def save_circuit(circuit: QCircuit, path) -> None:
    """Write a circuit to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(circuit_to_dict(circuit), fh, indent=1)


def load_circuit(path) -> QCircuit:
    """Read a circuit from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return circuit_from_dict(json.load(fh))
