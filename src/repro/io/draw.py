"""Command-window circuit rendering with Unicode box characters.

Reproduces QCLAB's ``draw`` (paper, Section 4): qubits are horizontal
wires (three text rows each), gates are boxes, controls are dots joined
by vertical lines, CNOT targets are ``⊕`` and measurements are boxes —
the textual version of the musical-score diagrams in the paper.
"""

from __future__ import annotations

from typing import List

from repro.io.layout import LayoutItem, layout_circuit

__all__ = ["draw_circuit"]

_MIN_BOX = 5


def _natural_width(item: LayoutItem) -> int:
    w = 1
    for el in item.spec.elements.values():
        if el.kind in ("box", "meas", "reset", "block"):
            w = max(w, max(_MIN_BOX, len(el.label) + 4))
    return w


def _center(text: str, width: int, fill: str = " ") -> str:
    pad = width - len(text)
    left = pad // 2
    return fill * left + text + fill * (pad - left)


def _set_char(line: str, pos: int, char: str) -> str:
    return line[:pos] + char + line[pos + 1 :]


def _render_box(label: str, width: int, up: bool, down: bool, kind: str):
    """Render a single-wire box cell; returns (top, mid, bot) of `width`."""
    w = max(_MIN_BOX, len(label) + 4)
    c_in = (w - 1) // 2
    top = "┌" + "─" * (w - 2) + "┐"
    bot = "└" + "─" * (w - 2) + "┘"
    if up:
        top = _set_char(top, c_in, "┴")
    if down:
        bot = _set_char(bot, c_in, "┬")
    mid = "┤" + _center(label, w - 2) + "├"
    # center inside the column, wire continuing through the mid line
    lpad = (width - w) // 2
    rpad = width - w - lpad
    return (
        " " * lpad + top + " " * rpad,
        "─" * lpad + mid + "─" * rpad,
        " " * lpad + bot + " " * rpad,
    )


def _render_item(item: LayoutItem, width: int, grid, nb_qubits: int):
    """Paint one layout item into the (top, mid, bot) line grid."""
    lo, hi = item.qubit_min, item.qubit_max
    c = (width - 1) // 2
    connect = item.spec.connect
    label_row = (lo + hi) // 2
    for q in range(lo, hi + 1):
        el = item.spec.elements.get(q)
        top, mid, bot = grid[q]
        up = connect and q > lo
        down = connect and q < hi
        if el is None:
            # pass-through wire inside a control span
            mid = _set_char(mid, c, "┼")
            top = _set_char(top, c, "│")
            bot = _set_char(bot, c, "│")
        elif el.kind in ("ctrl1", "ctrl0", "oplus", "cross"):
            sym = {"ctrl1": "●", "ctrl0": "○", "oplus": "⊕", "cross": "×"}[
                el.kind
            ]
            mid = _set_char(mid, c, sym)
            if up:
                top = _set_char(top, c, "│")
            if down:
                bot = _set_char(bot, c, "│")
        elif el.kind == "barrier":
            top = _set_char(top, c, "║")
            mid = _set_char(mid, c, "║")
            bot = _set_char(bot, c, "║")
        elif el.kind in ("box", "meas", "reset"):
            top, mid, bot = _render_box(el.label, width, up, down, el.kind)
        elif el.kind == "block":
            w = max(
                _MIN_BOX,
                max(len(e.label) for e in item.spec.elements.values()) + 4,
            )
            lpad = (width - w) // 2
            rpad = width - w - lpad
            if q == lo:
                top_s = "┌" + "─" * (w - 2) + "┐"
            else:
                top_s = "│" + " " * (w - 2) + "│"
            if q == hi:
                bot_s = "└" + "─" * (w - 2) + "┘"
            else:
                bot_s = "│" + " " * (w - 2) + "│"
            inner = el.label if q == label_row else ""
            mid_s = "┤" + _center(inner, w - 2) + "├"
            top = " " * lpad + top_s + " " * rpad
            mid = "─" * lpad + mid_s + "─" * rpad
            bot = " " * lpad + bot_s + " " * rpad
        else:  # pragma: no cover - future kinds
            mid = _set_char(mid, c, "?")
        grid[q] = (top, mid, bot)


def draw_circuit(circuit) -> str:
    """Render a :class:`~repro.circuit.QCircuit` as a Unicode diagram."""
    n = circuit.nbQubits
    items, nb_columns = layout_circuit(circuit)
    by_column: List[List[LayoutItem]] = [[] for _ in range(nb_columns)]
    for item in items:
        by_column[item.column].append(item)

    prefix_w = len(f"q{n - 1}: ")
    lines = []
    rows = []
    for q in range(n):
        label = f"q{q}: ".rjust(prefix_w)
        rows.append(
            [" " * prefix_w, label, " " * prefix_w]
        )

    for col_items in by_column:
        width = max((_natural_width(it) for it in col_items), default=1)
        grid = [
            (" " * width, "─" * width, " " * width) for _ in range(n)
        ]
        for item in col_items:
            _render_item(item, width, grid, n)
        for q in range(n):
            top, mid, bot = grid[q]
            rows[q][0] += top + " "
            rows[q][1] += mid + "─"
            rows[q][2] += bot + " "

    for q in range(n):
        # trim fully blank top/bottom lines? keep them: uniform 3-row style
        lines.extend(rows[q])
    return "\n".join(line.rstrip() for line in lines)
