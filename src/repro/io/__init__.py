"""Circuit I/O: command-window drawing, LaTeX export, OpenQASM 2.0
export and import.

These implement the paper's Section 4 features: ``draw`` renders the
musical-score diagram with Unicode box characters, ``toTex`` emits
executable quantikz LaTeX, and ``toQASM`` bridges to quantum hardware.
The importer (:func:`~repro.io.qasm_import.fromQASM`) goes beyond the
paper's export-only support so circuits can round-trip.
"""

from repro.io.draw import draw_circuit
from repro.io.latex import circuit_to_tex
from repro.io.qasm_export import circuit_to_qasm
from repro.io.qasm3_export import circuit_to_qasm3
from repro.io.qasm_import import fromQASM, parse_qasm
from repro.io.serialize import (
    circuit_from_dict,
    circuit_to_dict,
    dumps_circuit,
    load_circuit,
    loads_circuit,
    save_circuit,
)

__all__ = [
    "draw_circuit",
    "circuit_to_tex",
    "circuit_to_qasm",
    "circuit_to_qasm3",
    "fromQASM",
    "parse_qasm",
    "circuit_to_dict",
    "circuit_from_dict",
    "dumps_circuit",
    "loads_circuit",
    "save_circuit",
    "load_circuit",
]
