"""OpenQASM 2.0 import: parse QASM text into a :class:`QCircuit`.

The paper's QCLAB exports QASM; this importer closes the loop so
circuits round-trip (and external QASM files can be simulated).  It
covers the practical OpenQASM 2.0 subset:

* ``qreg``/``creg`` declarations (multiple qregs concatenate);
* the full qelib1 single/two/three-qubit gate names plus this package's
  ``rxx``/``ryy``/``rzz``/``iswap`` extensions;
* ``gate`` definitions, expanded recursively at application time;
* parameter expressions with ``pi``, ``+ - * / ^``, parentheses and
  unary minus;
* ``measure``, ``reset``, ``barrier``; whole-register broadcast for
  one-qubit gates.

``if`` statements and ``opaque`` gates are rejected with a clear error.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.circuit.barrier import Barrier
from repro.circuit.circuit import QCircuit
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import QASMError
from repro.gates import (
    CH,
    CSwap,
    CNOT,
    CPhase,
    CRotationX,
    CRotationY,
    CRotationZ,
    CY,
    CZ,
    ControlledGate1,
    Hadamard,
    Identity,
    MCX,
    PauliX,
    PauliY,
    PauliZ,
    Phase,
    RotationX,
    RotationXX,
    RotationY,
    RotationYY,
    RotationZ,
    RotationZZ,
    S,
    Sdg,
    SqrtX,
    SWAP,
    T,
    Tdg,
    U2,
    U3,
    iSWAP,
)
from repro.gates.fixed import _SqrtXdg
from repro.gates.two_qubit import _iSWAPdg

__all__ = ["fromQASM", "parse_qasm"]

_TOKEN_RE = re.compile(
    r"""
    (?P<COMMENT>//[^\n]*)
  | (?P<STRING>"[^"]*")
  | (?P<NUMBER>(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?)
  | (?P<ID>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ARROW>->)
  | (?P<SYM>[;,(){}\[\]+\-*/^=<>])
  | (?P<WS>\s+)
""",
    re.VERBOSE,
)


def _tokenize(text: str) -> List[tuple]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise QASMError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        kind = m.lastgroup
        if kind not in ("WS", "COMMENT"):
            tokens.append((kind, m.group()))
        pos = m.end()
    tokens.append(("EOF", ""))
    return tokens


# -- expression AST ---------------------------------------------------------


def _eval_expr(node, env: Dict[str, float]) -> float:
    op = node[0]
    if op == "num":
        return node[1]
    if op == "var":
        name = node[1]
        if name == "pi":
            return math.pi
        if name not in env:
            raise QASMError(f"unknown identifier {name!r} in expression")
        return env[name]
    if op == "neg":
        return -_eval_expr(node[1], env)
    if op == "call":
        fns: Dict[str, Callable] = {
            "sin": math.sin,
            "cos": math.cos,
            "tan": math.tan,
            "exp": math.exp,
            "ln": math.log,
            "sqrt": math.sqrt,
        }
        if node[1] not in fns:
            raise QASMError(f"unknown function {node[1]!r}")
        return fns[node[1]](_eval_expr(node[2], env))
    a = _eval_expr(node[1], env)
    b = _eval_expr(node[2], env)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return a / b
    if op == "^":
        return a**b
    raise QASMError(f"bad expression node {node!r}")  # pragma: no cover


@dataclass
class _GateDef:
    """A user ``gate`` definition: formals and unexpanded body calls."""

    name: str
    params: List[str]
    qargs: List[str]
    body: List[tuple]  # (name, [param ASTs], [qubit arg names])


@dataclass
class _Application:
    name: str
    params: List[float]
    qubits: List[int]


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.qregs: Dict[str, tuple] = {}  # name -> (offset, size)
        self.cregs: Dict[str, int] = {}
        self.nb_qubits = 0
        self.defs: Dict[str, _GateDef] = {}
        self.ops: List[object] = []  # QObjects in order

    # -- token helpers ------------------------------------------------------

    def peek(self):
        return self.tokens[self.pos]

    def next(self):
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, value=None, kind=None):
        k, v = self.next()
        if kind is not None and k != kind:
            raise QASMError(f"expected {kind}, got {v!r}")
        if value is not None and v != value:
            raise QASMError(f"expected {value!r}, got {v!r}")
        return v

    # -- expressions --------------------------------------------------------

    def parse_expr(self):
        return self._parse_add()

    def _parse_add(self):
        node = self._parse_mul()
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            node = (op, node, self._parse_mul())
        return node

    def _parse_mul(self):
        node = self._parse_pow()
        while self.peek()[1] in ("*", "/"):
            op = self.next()[1]
            node = (op, node, self._parse_pow())
        return node

    def _parse_pow(self):
        node = self._parse_unary()
        if self.peek()[1] == "^":
            self.next()
            return ("^", node, self._parse_pow())
        return node

    def _parse_unary(self):
        kind, value = self.peek()
        if value == "-":
            self.next()
            return ("neg", self._parse_unary())
        if value == "+":
            self.next()
            return self._parse_unary()
        if value == "(":
            self.next()
            node = self.parse_expr()
            self.expect(")")
            return node
        if kind == "NUMBER":
            self.next()
            return ("num", float(value))
        if kind == "ID":
            self.next()
            if self.peek()[1] == "(":
                self.next()
                arg = self.parse_expr()
                self.expect(")")
                return ("call", value, arg)
            return ("var", value)
        raise QASMError(f"unexpected token {value!r} in expression")

    # -- top level ----------------------------------------------------------

    def parse(self) -> QCircuit:
        kind, value = self.peek()
        if kind == "ID" and value == "OPENQASM":
            self.next()
            self.expect(kind="NUMBER")
            self.expect(";")
        while self.peek()[0] != "EOF":
            self.parse_statement()
        if self.nb_qubits == 0:
            raise QASMError("no qreg declaration found")
        circuit = QCircuit(self.nb_qubits)
        for op in self.ops:
            circuit.push_back(op)
        return circuit

    def parse_statement(self):
        kind, value = self.peek()
        if kind != "ID":
            raise QASMError(f"unexpected token {value!r}")
        if value == "include":
            self.next()
            self.expect(kind="STRING")
            self.expect(";")
            return
        if value in ("qreg", "creg"):
            self.next()
            name = self.expect(kind="ID")
            self.expect("[")
            size = int(self.expect(kind="NUMBER"))
            self.expect("]")
            self.expect(";")
            if value == "qreg":
                self.qregs[name] = (self.nb_qubits, size)
                self.nb_qubits += size
            else:
                self.cregs[name] = size
            return
        if value == "gate":
            self._parse_gate_def()
            return
        if value == "opaque":
            raise QASMError("opaque gates are not supported")
        if value == "if":
            raise QASMError("classical 'if' statements are not supported")
        if value == "barrier":
            self.next()
            qubits = self._parse_mixed_args_flat()
            self.expect(";")
            self.ops.append(Barrier(qubits))
            return
        if value == "reset":
            self.next()
            for q in self._parse_argument():
                self.ops.append(Reset(q))
            self.expect(";")
            return
        if value == "measure":
            self.next()
            qubits = self._parse_argument()
            self.expect("->")
            self._parse_creg_argument()
            self.expect(";")
            for q in qubits:
                self.ops.append(Measurement(q))
            return
        # gate application
        self._parse_application()

    def _parse_gate_def(self):
        self.expect("gate")
        name = self.expect(kind="ID")
        params: List[str] = []
        if self.peek()[1] == "(":
            self.next()
            while self.peek()[1] != ")":
                params.append(self.expect(kind="ID"))
                if self.peek()[1] == ",":
                    self.next()
            self.expect(")")
        qargs: List[str] = []
        while True:
            qargs.append(self.expect(kind="ID"))
            if self.peek()[1] == ",":
                self.next()
                continue
            break
        self.expect("{")
        body: List[tuple] = []
        while self.peek()[1] != "}":
            if self.peek()[1] == "barrier":
                self.next()
                while self.peek()[1] != ";":
                    self.next()
                self.expect(";")
                continue
            gname = self.expect(kind="ID")
            gparams: List[tuple] = []
            if self.peek()[1] == "(":
                self.next()
                while self.peek()[1] != ")":
                    gparams.append(self.parse_expr())
                    if self.peek()[1] == ",":
                        self.next()
                self.expect(")")
            gargs: List[str] = []
            while True:
                gargs.append(self.expect(kind="ID"))
                if self.peek()[1] == ",":
                    self.next()
                    continue
                break
            self.expect(";")
            body.append((gname, gparams, gargs))
        self.expect("}")
        self.defs[name] = _GateDef(name, params, qargs, body)

    # -- arguments ------------------------------------------------------------

    def _qubit_of(self, reg: str, index: int) -> int:
        if reg not in self.qregs:
            raise QASMError(f"unknown quantum register {reg!r}")
        offset, size = self.qregs[reg]
        if not 0 <= index < size:
            raise QASMError(f"index {index} out of range for qreg {reg!r}")
        return offset + index

    def _parse_argument(self) -> List[int]:
        """A quantum argument: ``q[i]`` -> [qubit], or ``q`` -> all qubits."""
        reg = self.expect(kind="ID")
        if self.peek()[1] == "[":
            self.next()
            index = int(self.expect(kind="NUMBER"))
            self.expect("]")
            return [self._qubit_of(reg, index)]
        if reg not in self.qregs:
            raise QASMError(f"unknown quantum register {reg!r}")
        offset, size = self.qregs[reg]
        return list(range(offset, offset + size))

    def _parse_creg_argument(self):
        reg = self.expect(kind="ID")
        if reg not in self.cregs:
            raise QASMError(f"unknown classical register {reg!r}")
        if self.peek()[1] == "[":
            self.next()
            self.expect(kind="NUMBER")
            self.expect("]")

    def _parse_mixed_args_flat(self) -> List[int]:
        qubits: List[int] = []
        while True:
            qubits.extend(self._parse_argument())
            if self.peek()[1] == ",":
                self.next()
                continue
            break
        return qubits

    # -- applications -----------------------------------------------------------

    def _parse_application(self):
        name = self.expect(kind="ID")
        params: List[float] = []
        if self.peek()[1] == "(":
            self.next()
            while self.peek()[1] != ")":
                params.append(_eval_expr(self.parse_expr(), {}))
                if self.peek()[1] == ",":
                    self.next()
            self.expect(")")
        arglists: List[List[int]] = []
        while True:
            arglists.append(self._parse_argument())
            if self.peek()[1] == ",":
                self.next()
                continue
            break
        self.expect(";")
        for qubits in _broadcast(arglists):
            self._emit(name, params, qubits)

    def _emit(self, name: str, params: List[float], qubits: List[int]):
        if name in self.defs:
            self._expand_def(self.defs[name], params, qubits)
            return
        builder = _BUILTINS.get(name)
        if builder is None:
            raise QASMError(f"unknown gate {name!r}")
        nparams, nqubits, fn = builder
        if len(params) != nparams:
            raise QASMError(
                f"gate {name!r} expects {nparams} parameter(s), got "
                f"{len(params)}"
            )
        if len(qubits) != nqubits:
            raise QASMError(
                f"gate {name!r} expects {nqubits} qubit(s), got "
                f"{len(qubits)}"
            )
        self.ops.append(fn(params, qubits))

    def _expand_def(
        self, gdef: _GateDef, params: List[float], qubits: List[int]
    ):
        if len(params) != len(gdef.params):
            raise QASMError(
                f"gate {gdef.name!r} expects {len(gdef.params)} "
                f"parameter(s), got {len(params)}"
            )
        if len(qubits) != len(gdef.qargs):
            raise QASMError(
                f"gate {gdef.name!r} expects {len(gdef.qargs)} qubit(s), "
                f"got {len(qubits)}"
            )
        env = dict(zip(gdef.params, params))
        qmap = dict(zip(gdef.qargs, qubits))
        for gname, gparams, gargs in gdef.body:
            values = [_eval_expr(p, env) for p in gparams]
            try:
                actual = [qmap[a] for a in gargs]
            except KeyError as exc:
                raise QASMError(
                    f"unknown qubit argument {exc.args[0]!r} in gate "
                    f"{gdef.name!r}"
                ) from None
            self._emit(gname, values, actual)


def _broadcast(arglists: List[List[int]]):
    """OpenQASM broadcast: any whole-register argument fans out."""
    lengths = {len(a) for a in arglists}
    if lengths == {1}:
        yield [a[0] for a in arglists]
        return
    size = max(lengths)
    if lengths - {1, size}:
        raise QASMError("mismatched register sizes in gate application")
    for i in range(size):
        yield [a[0] if len(a) == 1 else a[i] for a in arglists]


_BUILTINS = {
    # name: (nb params, nb qubits, builder)
    "id": (0, 1, lambda p, q: Identity(q[0])),
    "h": (0, 1, lambda p, q: Hadamard(q[0])),
    "x": (0, 1, lambda p, q: PauliX(q[0])),
    "y": (0, 1, lambda p, q: PauliY(q[0])),
    "z": (0, 1, lambda p, q: PauliZ(q[0])),
    "s": (0, 1, lambda p, q: S(q[0])),
    "sdg": (0, 1, lambda p, q: Sdg(q[0])),
    "t": (0, 1, lambda p, q: T(q[0])),
    "tdg": (0, 1, lambda p, q: Tdg(q[0])),
    "sx": (0, 1, lambda p, q: SqrtX(q[0])),
    "sxdg": (0, 1, lambda p, q: _SqrtXdg(q[0])),
    "u1": (1, 1, lambda p, q: Phase(q[0], p[0])),
    "p": (1, 1, lambda p, q: Phase(q[0], p[0])),
    "rx": (1, 1, lambda p, q: RotationX(q[0], p[0])),
    "ry": (1, 1, lambda p, q: RotationY(q[0], p[0])),
    "rz": (1, 1, lambda p, q: RotationZ(q[0], p[0])),
    "u2": (2, 1, lambda p, q: U2(q[0], p[0], p[1])),
    "u3": (3, 1, lambda p, q: U3(q[0], p[0], p[1], p[2])),
    "u": (3, 1, lambda p, q: U3(q[0], p[0], p[1], p[2])),
    "U": (3, 1, lambda p, q: U3(q[0], p[0], p[1], p[2])),
    "cx": (0, 2, lambda p, q: CNOT(q[0], q[1])),
    "CX": (0, 2, lambda p, q: CNOT(q[0], q[1])),
    "cy": (0, 2, lambda p, q: CY(q[0], q[1])),
    "cz": (0, 2, lambda p, q: CZ(q[0], q[1])),
    "ch": (0, 2, lambda p, q: CH(q[0], q[1])),
    "cu1": (1, 2, lambda p, q: CPhase(q[0], q[1], p[0])),
    "cp": (1, 2, lambda p, q: CPhase(q[0], q[1], p[0])),
    "crx": (1, 2, lambda p, q: CRotationX(q[0], q[1], p[0])),
    "cry": (1, 2, lambda p, q: CRotationY(q[0], q[1], p[0])),
    "crz": (1, 2, lambda p, q: CRotationZ(q[0], q[1], p[0])),
    "cu3": (
        3,
        2,
        lambda p, q: ControlledGate1(U3(q[1], p[0], p[1], p[2]), q[0]),
    ),
    "swap": (0, 2, lambda p, q: SWAP(q[0], q[1])),
    "iswap": (0, 2, lambda p, q: iSWAP(q[0], q[1])),
    "iswapdg": (0, 2, lambda p, q: _iSWAPdg(q[0], q[1])),
    "ccx": (0, 3, lambda p, q: MCX([q[0], q[1]], q[2])),
    "cswap": (0, 3, lambda p, q: CSwap(q[0], q[1], q[2])),
    "rxx": (1, 2, lambda p, q: RotationXX(q[0], q[1], p[0])),
    "ryy": (1, 2, lambda p, q: RotationYY(q[0], q[1], p[0])),
    "rzz": (1, 2, lambda p, q: RotationZZ(q[0], q[1], p[0])),
}


def parse_qasm(text: str) -> QCircuit:
    """Parse OpenQASM 2.0 source text into a :class:`QCircuit`.

    Records an ``io.qasm.parse`` span when instrumentation is ambient
    (see :mod:`repro.observability`).
    """
    from repro.observability.instrument import current_instrumentation

    with current_instrumentation().span(
        "io.qasm.parse", chars=len(text)
    ) as span:
        circuit = _Parser(text).parse()
        span.set(nb_qubits=circuit.nbQubits)
        return circuit


def fromQASM(source) -> QCircuit:
    """Parse OpenQASM 2.0 from a string, file path or open file object."""
    if hasattr(source, "read"):
        return parse_qasm(source.read())
    text = str(source)
    if "\n" not in text and text.endswith(".qasm"):
        with open(text, "r", encoding="utf-8") as fh:
            return parse_qasm(fh.read())
    return parse_qasm(text)
