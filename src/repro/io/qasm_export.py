"""OpenQASM 2.0 export — the paper's ``toQASM``.

Produces text executable on OpenQASM-2.0 toolchains (``qelib1.inc``
gate set).  Gates outside qelib1 (``rxx``/``ryy``/``rzz``, ``iswap``)
are emitted with accompanying ``gate`` definitions; multi-controlled
gates are decomposed recursively into singly-controlled primitives, so
every circuit this package can build exports to standard QASM.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.exceptions import QASMError

__all__ = [
    "circuit_to_qasm",
    "u3_params",
    "unitary_to_u3_qasm",
    "controlled_gate_qasm",
    "multi_controlled_qasm",
    "matrix_gate_qasm",
]

_TOL = 1e-12

#: gate definitions for names outside qelib1, emitted on demand.
_GATE_DEFS = {
    "rzz": "gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }",
    "rxx": (
        "gate rxx(theta) a,b "
        "{ h a; h b; cx a,b; u1(theta) b; cx a,b; h a; h b; }"
    ),
    "ryy": (
        "gate ryy(theta) a,b { rx(pi/2) a; rx(pi/2) b; cx a,b; "
        "u1(theta) b; cx a,b; rx(-pi/2) a; rx(-pi/2) b; }"
    ),
    "iswap": "gate iswap a,b { s a; s b; h a; cx a,b; cx b,a; h b; }",
    "iswapdg": (
        "gate iswapdg a,b { h b; cx b,a; cx a,b; h a; sdg b; sdg a; }"
    ),
}


def u3_params(matrix: np.ndarray):
    """Decompose a 2x2 unitary as ``U = e^{i alpha} u3(theta, phi, lam)``.

    Returns ``(theta, phi, lam, alpha)``.  Numerically robust for every
    unitary, including diagonal and anti-diagonal ones.
    """
    u = np.asarray(matrix, dtype=np.complex128)
    if u.shape != (2, 2):
        raise QASMError(f"u3_params expects a 2x2 matrix, got {u.shape}")
    c = abs(u[0, 0])
    s = abs(u[1, 0])
    theta = 2.0 * math.atan2(s, c)
    if c > _TOL:
        alpha = math.atan2(u[0, 0].imag, u[0, 0].real)
        if s > _TOL:
            phi = math.atan2(u[1, 0].imag, u[1, 0].real) - alpha
            lam = math.atan2(-u[0, 1].imag, -u[0, 1].real) - alpha
        else:
            phi = 0.0
            lam = math.atan2(u[1, 1].imag, u[1, 1].real) - alpha
    else:
        alpha = 0.0
        phi = math.atan2(u[1, 0].imag, u[1, 0].real)
        lam = math.atan2(-u[0, 1].imag, -u[0, 1].real)
    return theta, phi, lam, alpha


def unitary_to_u3_qasm(matrix: np.ndarray, qubit: int) -> str:
    """QASM applying a 2x2 unitary to ``qubit`` (global phase dropped)."""
    theta, phi, lam, _alpha = u3_params(matrix)
    return f"u3({theta!r},{phi!r},{lam!r}) q[{qubit}];"


def _controlled_u_lines(
    control: int, target: int, matrix: np.ndarray
) -> List[str]:
    """Singly-controlled arbitrary 2x2 unitary.

    The base gate's global phase ``alpha`` is physical once controlled;
    it becomes a ``u1(alpha)`` on the control qubit.
    """
    theta, phi, lam, alpha = u3_params(matrix)
    lines = []
    if abs(alpha) > 1e-12:
        lines.append(f"u1({alpha!r}) q[{control}];")
    lines.append(
        f"cu3({theta!r},{phi!r},{lam!r}) q[{control}],q[{target}];"
    )
    return lines


def _sqrt_unitary(matrix: np.ndarray) -> np.ndarray:
    """Principal square root of a 2x2 unitary (stays unitary)."""
    import scipy.linalg

    root = scipy.linalg.sqrtm(np.asarray(matrix, dtype=np.complex128))
    return np.asarray(root, dtype=np.complex128)


_X_MATRIX = np.array([[0, 1], [1, 0]], dtype=np.complex128)


def _mcu_lines(
    controls: Sequence[int], target: int, matrix: np.ndarray
) -> List[str]:
    """Recursive multi-controlled-U decomposition (all controls state-1).

    Uses the standard identity ``C^k(U) = C(V) . C^{k-1}X . C(V^dag) .
    C^{k-1}X . C^{k-1}(V)`` with ``V = sqrt(U)``; Toffolis short-circuit
    to the native ``ccx``.
    """
    controls = list(controls)
    if len(controls) == 1:
        if np.allclose(matrix, _X_MATRIX, atol=1e-12):
            return [f"cx q[{controls[0]}],q[{target}];"]
        return _controlled_u_lines(controls[0], target, matrix)
    if len(controls) == 2 and np.allclose(matrix, _X_MATRIX, atol=1e-12):
        return [f"ccx q[{controls[0]}],q[{controls[1]}],q[{target}];"]
    v = _sqrt_unitary(matrix)
    v_dag = v.conj().T
    last = controls[-1]
    rest = controls[:-1]
    lines = []
    lines += _mcu_lines([last], target, v)
    lines += _mcu_lines(rest, last, _X_MATRIX)
    lines += _mcu_lines([last], target, v_dag)
    lines += _mcu_lines(rest, last, _X_MATRIX)
    lines += _mcu_lines(rest, target, v)
    return lines


def multi_controlled_qasm(gate, offset: int = 0) -> str:
    """QASM for an :class:`~repro.gates.MCGate` (any controls/states)."""
    controls = [c + offset for c in gate.controls()]
    states = list(gate.control_states())
    target = gate.target + offset
    lines: List[str] = []
    flips = [c for c, s in zip(controls, states) if s == 0]
    for c in flips:
        lines.append(f"x q[{c}];")
    lines += _mcu_lines(controls, target, gate.target_matrix())
    for c in flips:
        lines.append(f"x q[{c}];")
    return "\n".join(lines)


def controlled_gate_qasm(gate, offset: int = 0) -> str:
    """QASM core for a generic :class:`ControlledGate1` (state-1 control;
    the caller wraps state-0 controls with ``x``)."""
    control = gate.control + offset
    target = gate.target + offset
    return "\n".join(_controlled_u_lines(control, target, gate.target_matrix()))


def matrix_gate_qasm(gate, offset: int = 0) -> str:
    """QASM for a :class:`MatrixGate`.

    One-qubit unitaries emit a single ``u3``; two-qubit unitaries are
    compiled exactly through the quantum Shannon decomposition
    (:func:`repro.compilers.two_qubit.decompose_two_qubit`) and emitted
    gate by gate.  Larger custom gates have no OpenQASM 2.0 encoding.
    """
    if gate.nbQubits == 1:
        return unitary_to_u3_qasm(gate.matrix, gate.qubits[0] + offset)
    if gate.nbQubits == 2:
        from repro.compilers.two_qubit import decompose_two_qubit

        a, b = gate.qubits
        sub = decompose_two_qubit(gate.matrix, a, b)
        lines: List[str] = []
        for op, off in sub.operations():
            lines.extend(op.toQASM(off + offset).splitlines())
        return "\n".join(lines)
    raise QASMError(
        f"cannot export a {gate.nbQubits}-qubit custom matrix gate to "
        "OpenQASM 2.0; decompose it into one- and two-qubit gates first"
    )


def circuit_to_qasm(
    circuit, offset: int = 0, include_header: bool = True
) -> str:
    """Export a :class:`~repro.circuit.QCircuit` as OpenQASM 2.0 text.

    The header declares ``qreg q[n]`` and ``creg c[n]`` and pulls in
    ``qelib1.inc``; definitions for non-qelib1 gates are added when the
    body uses them.  Records an ``io.qasm.export`` span when
    instrumentation is ambient (see :mod:`repro.observability`).
    """
    from repro.observability.instrument import current_instrumentation

    with current_instrumentation().span(
        "io.qasm.export", nb_qubits=circuit.nbQubits
    ):
        return _circuit_to_qasm(circuit, offset, include_header)


def _circuit_to_qasm(
    circuit, offset: int = 0, include_header: bool = True
) -> str:
    from repro.ir.lower import lower

    body_lines: List[str] = []
    for op, off in lower(circuit).flat():
        text = op.toQASM(off + offset)
        body_lines.extend(text.splitlines())
    body = "\n".join(body_lines)

    if not include_header:
        return body + ("\n" if body else "")

    defs = [
        definition
        for name, definition in _GATE_DEFS.items()
        if any(
            line.startswith(name + " ") or line.startswith(name + "(")
            for line in body_lines
        )
    ]
    n = circuit.nbQubits + offset
    parts = ['OPENQASM 2.0;', 'include "qelib1.inc";']
    parts += defs
    parts.append(f"qreg q[{n}];")
    parts.append(f"creg c[{n}];")
    if body:
        parts.append(body)
    return "\n".join(parts) + "\n"
