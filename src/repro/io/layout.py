"""Column layout shared by the text drawer and the LaTeX exporter.

A circuit is flattened into *items* (one per drawable element, blocks
kept whole) and greedily packed into columns: an item occupies every
wire between its lowest and highest qubit (so vertical connectors never
cross other gates) and lands in the leftmost column where all of those
wires are free.  This reproduces the musical-score look of the paper's
diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gates.base import DrawSpec, QObject

__all__ = ["LayoutItem", "layout_circuit"]


@dataclass
class LayoutItem:
    """One placed element: its draw spec shifted to absolute qubits."""

    spec: DrawSpec
    qubit_min: int
    qubit_max: int
    column: int
    obj: QObject


def layout_circuit(circuit) -> tuple:
    """Pack a circuit's elements into columns.

    Returns ``(items, nb_columns)`` where ``items`` is a list of
    :class:`LayoutItem` sorted by column then qubit.  The element
    stream comes from the canonical lowering
    (:func:`repro.ir.lower.lower` with ``expand='blocks'``: nested
    circuits expand, ``asBlock`` sub-circuits stay whole).
    """
    from repro.ir.lower import lower

    frontier = [0] * circuit.nbQubits
    items: List[LayoutItem] = []
    for op, off in lower(circuit, "blocks").flat():
        spec = op.draw_spec()
        elements = {q + off: el for q, el in spec.elements.items()}
        shifted = DrawSpec(elements=elements, connect=spec.connect)
        lo = min(elements)
        hi = max(elements)
        span = range(lo, hi + 1) if spec.connect or len(elements) > 1 else [lo]
        col = max(frontier[q] for q in span)
        for q in span:
            frontier[q] = col + 1
        items.append(LayoutItem(shifted, lo, hi, col, op))
    nb_columns = max(frontier) if items else 0
    items.sort(key=lambda it: (it.column, it.qubit_min))
    return items, nb_columns
