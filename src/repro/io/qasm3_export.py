"""OpenQASM 3 export (extension).

A forward-looking companion to the OpenQASM 2.0 exporter: emits the
QASM 3 dialect (``qubit[n] q; bit[n] c;``, ``U``/named-gate calls,
``c[i] = measure q[i];``).  Gate bodies reuse the 2.0 emission — the
statement grammar for the supported gate set is compatible — with the
declaration syntax and measurement statements rewritten.
"""

from __future__ import annotations

import re
from typing import List

from repro.exceptions import QASMError

__all__ = ["circuit_to_qasm3"]

_MEASURE_RE = re.compile(
    r"^measure\s+q\[(\d+)\]\s*->\s*c\[(\d+)\];$"
)

#: QASM 2 names that differ in the QASM 3 standard-gate library.
_RENAMES = {
    "u1": "p",
    "cu1": "cp",
    "iswapdg": "inv @ iswap",
}


def _convert_line(line: str) -> str:
    m = _MEASURE_RE.match(line)
    if m:
        return f"c[{m.group(2)}] = measure q[{m.group(1)}];"
    head = line.split("(")[0].split()[0] if line else line
    if head in _RENAMES:
        replacement = _RENAMES[head]
        return replacement + line[len(head):]
    return line


def circuit_to_qasm3(circuit, include_header: bool = True) -> str:
    """Export a :class:`~repro.circuit.QCircuit` as OpenQASM 3 text.

    Uses the same statement emission as :meth:`QCircuit.toQASM` (the
    supported gate calls are valid in both dialects, modulo the few
    renames handled here) with QASM 3 declarations and measurement
    assignments.
    """
    from repro.ir.lower import lower

    body_lines: List[str] = []
    for op, off in lower(circuit).flat():
        try:
            text = op.toQASM(off)
        except QASMError as exc:
            raise QASMError(
                f"cannot export {type(op).__name__} to OpenQASM 3: {exc}"
            ) from None
        for line in text.splitlines():
            body_lines.append(_convert_line(line))

    if not include_header:
        return "\n".join(body_lines) + ("\n" if body_lines else "")

    n = circuit.nbQubits
    parts = ['OPENQASM 3.0;', 'include "stdgates.inc";']
    # non-standard gates need declarations in QASM 3 as well
    from repro.io.qasm_export import _GATE_DEFS

    for name, definition in _GATE_DEFS.items():
        if any(
            line.startswith(name + " ") or line.startswith(name + "(")
            for line in body_lines
        ):
            parts.append(definition)
    parts.append(f"qubit[{n}] q;")
    parts.append(f"bit[{n}] c;")
    parts.extend(body_lines)
    return "\n".join(parts) + "\n"
