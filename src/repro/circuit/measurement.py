"""Single-qubit measurements in arbitrary bases.

Measurements in QCLAB are single-qubit operations (paper, Section 3.3).
A measurement in a non-computational basis applies a *basis change*
before the standard Z measurement and reverts it afterwards — e.g. an
X-basis measurement is ``H - measure - H``.

The X and Y bases are preconfigured; a custom basis is specified by the
unitary that rotates the desired measurement basis onto the
computational basis (its eigenvector for outcome 0 is mapped to ``|0>``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MeasurementError
from repro.gates.base import (
    DrawElement,
    DrawSpec,
    QObject,
    bump_mutation_epoch,
    validate_unitary,
)
from repro.utils.linalg import dagger
from repro.utils.validation import check_qubit

__all__ = ["Measurement"]

_SQRT2 = np.sqrt(2.0)

#: Basis-change unitaries mapping measurement-basis eigenvectors onto the
#: computational basis: ``B |b_0> = |0>`` and ``B |b_1> = |1>``.
_BASIS_CHANGES = {
    "z": np.eye(2, dtype=np.complex128),
    "x": np.array([[1, 1], [1, -1]], dtype=np.complex128) / _SQRT2,  # H
    "y": (
        np.array([[1, 1], [1, -1]], dtype=np.complex128) / _SQRT2
    ) @ np.diag([1, -1j]).astype(np.complex128),  # H @ Sdg
}


class Measurement(QObject):
    """A single-qubit measurement.

    Parameters
    ----------
    qubit:
        The measured qubit.
    basis:
        ``'z'`` (default), ``'x'``, ``'y'``, or a ``2 x 2`` unitary
        (NumPy array) defining a custom basis change.  The custom matrix
        ``B`` must map the basis eigenvectors to the computational basis
        (``B @ b0 = |0>``); the measurement applies ``B``, measures in Z,
        and applies ``B^dagger`` to the collapsed state.
    label:
        Optional diagram label for custom bases (defaults to ``'M?'``).

    Examples
    --------
    >>> Measurement(0)          # Z basis
    Measurement(0, 'z')
    >>> Measurement(0, 'x')     # X basis, as in the paper's tomography
    Measurement(0, 'x')
    """

    def __init__(self, qubit: int = 0, basis="z", label: str | None = None):
        self._qubit = check_qubit(qubit)
        if isinstance(basis, str):
            key = basis.lower()
            if key not in _BASIS_CHANGES:
                raise MeasurementError(
                    f"unknown measurement basis {basis!r}; expected "
                    "'x', 'y', 'z' or a 2x2 unitary"
                )
            self._basis = key
            self._basis_change = _BASIS_CHANGES[key]
            self._label = label or ("M" if key == "z" else f"M{key}")
        else:
            self._basis = "custom"
            self._basis_change = validate_unitary(basis, "basis change")
            if self._basis_change.shape != (2, 2):
                raise MeasurementError(
                    "custom basis change must be a 2x2 unitary"
                )
            self._label = label or "M?"

    # -- accessors ----------------------------------------------------------

    @property
    def qubit(self) -> int:
        """The measured qubit (settable)."""
        return self._qubit

    @qubit.setter
    def qubit(self, value: int) -> None:
        bump_mutation_epoch()
        self._qubit = check_qubit(value)

    @property
    def qubits(self) -> tuple:
        """One-tuple of the measured qubit (the ``QObject`` protocol)."""
        return (self._qubit,)

    @property
    def basis(self) -> str:
        """The basis name: ``'z'``, ``'x'``, ``'y'`` or ``'custom'``."""
        return self._basis

    @property
    def basis_change(self) -> np.ndarray:
        """The basis-change unitary applied before the Z measurement."""
        return self._basis_change

    @property
    def basis_change_dagger(self) -> np.ndarray:
        """The revert applied to the collapsed state afterwards."""
        return dagger(self._basis_change)

    @property
    def label(self) -> str:
        """Diagram label."""
        return self._label

    # -- QObject ------------------------------------------------------------

    def draw_spec(self) -> DrawSpec:
        """A single ``meas`` box labelled with the basis."""
        return DrawSpec(
            elements={self._qubit: DrawElement("meas", self._label)},
            connect=False,
        )

    def toQASM(self, offset: int = 0) -> str:
        """OpenQASM for the measurement: the basis-change gate(s) (if
        any) followed by ``measure``, qubits shifted by ``offset``."""
        q = self._qubit + offset
        lines = []
        if self._basis == "x":
            lines.append(f"h q[{q}];")
        elif self._basis == "y":
            # H Sdg rotates the Y basis onto Z
            lines.append(f"sdg q[{q}];")
            lines.append(f"h q[{q}];")
        elif self._basis == "custom":
            from repro.io.qasm_export import unitary_to_u3_qasm

            lines.append(unitary_to_u3_qasm(self._basis_change, q))
        lines.append(f"measure q[{q}] -> c[{q}];")
        return "\n".join(lines)

    def shifted(self, offset: int) -> "Measurement":
        """A copy measuring ``qubit + offset`` in the same basis."""
        import copy

        out = copy.copy(self)
        out._qubit = self._qubit + int(offset)
        return out

    def __eq__(self, other):
        if not isinstance(other, Measurement):
            return NotImplemented
        return (
            self._qubit == other._qubit
            and self._basis == other._basis
            and np.allclose(self._basis_change, other._basis_change)
        )

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return f"Measurement({self._qubit}, {self._basis!r})"
