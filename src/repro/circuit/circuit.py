"""The :class:`QCircuit` container — the paper's central object.

A ``QCircuit`` holds an ordered sequence of :class:`~repro.gates.QObject`
elements (gates, measurements, resets, barriers, or nested circuits) on
a fixed-width qubit register.  It mirrors QCLAB's API verbatim:

>>> from repro.circuit import Measurement, QCircuit
>>> from repro.gates import CNOT, Hadamard
>>> circuit = QCircuit(2)
>>> _ = circuit.push_back(Hadamard(0))
>>> _ = circuit.push_back(CNOT(0, 1))
>>> _ = circuit.push_back(Measurement(0))
>>> circuit.simulate('00').results
['0', '1']

Nested circuits support the modular construction style of the paper's
Grover example: build ``oracle`` and ``diffuser`` as separate circuits,
call :meth:`asBlock` to draw them as labelled boxes, and ``push_back``
them into the full circuit.  A nested circuit may carry an ``offset``
that shifts its qubits inside the parent register.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.circuit.barrier import Barrier
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import CircuitError
from repro.gates.base import DrawElement, DrawSpec, QGate, QObject
from repro.utils.validation import check_qubit

__all__ = ["QCircuit"]


class QCircuit(QObject):
    """A quantum circuit on ``nbQubits`` qubits.

    Parameters
    ----------
    nbQubits:
        Width of the register.
    offset:
        Shift applied to all qubits when this circuit is nested inside a
        larger one (default 0).
    """

    def __init__(self, nbQubits: int, offset: int = 0):
        if (
            isinstance(nbQubits, bool)
            or not isinstance(nbQubits, (int, np.integer))
            or int(nbQubits) < 1
        ):
            raise CircuitError(
                f"nbQubits must be a positive integer, got {nbQubits!r}"
            )
        self._nb_qubits = int(nbQubits)
        self._offset = check_qubit(offset) if offset else 0
        self._ops: List[QObject] = []
        self._block = False
        self._block_label = "circuit"
        self._revision = 0

    # -- register geometry ---------------------------------------------------

    @property
    def nbQubits(self) -> int:
        """Width of the register."""
        return self._nb_qubits

    @property
    def offset(self) -> int:
        """Qubit shift of this circuit inside a parent register."""
        return self._offset

    @offset.setter
    def offset(self, value: int) -> None:
        self._offset = check_qubit(value) if value else 0
        self._revision += 1

    @property
    def revision(self) -> int:
        """Mutation counter: bumped by every structural edit
        (:meth:`push_back`, :meth:`pop_back`, :meth:`insert`,
        :meth:`erase`, :meth:`clear`, :attr:`offset`).  The compiled-plan
        layer (:mod:`repro.simulation.plan`) uses it to invalidate its
        per-circuit flattening cache; gate *parameter* updates are
        tracked separately through gate signatures."""
        return self._revision

    @property
    def qubits(self) -> tuple:
        """The circuit's qubit indices (offset-shifted, ascending)."""
        return tuple(range(self._offset, self._offset + self._nb_qubits))

    # -- container API ---------------------------------------------------------

    def push_back(self, obj: QObject) -> "QCircuit":
        """Append a gate, measurement, reset, barrier or sub-circuit."""
        self._check_fits(obj)
        self._ops.append(obj)
        self._revision += 1
        return self

    def pop_back(self) -> QObject:
        """Remove and return the last element."""
        if not self._ops:
            raise CircuitError("pop_back on an empty circuit")
        self._revision += 1
        return self._ops.pop()

    def insert(self, index: int, obj: QObject) -> "QCircuit":
        """Insert an element at position ``index``."""
        self._check_fits(obj)
        if not 0 <= index <= len(self._ops):
            raise CircuitError(
                f"insert index {index} out of range [0, {len(self._ops)}]"
            )
        self._ops.insert(index, obj)
        self._revision += 1
        return self

    def erase(self, index: int) -> QObject:
        """Remove and return the element at position ``index``."""
        if not 0 <= index < len(self._ops):
            raise CircuitError(
                f"erase index {index} out of range [0, {len(self._ops)})"
            )
        self._revision += 1
        return self._ops.pop(index)

    def clear(self) -> None:
        """Remove every element."""
        self._ops.clear()
        self._revision += 1

    def _check_fits(self, obj: QObject) -> None:
        if not isinstance(obj, QObject):
            raise CircuitError(
                f"cannot push {type(obj).__name__}; expected a gate, "
                "measurement, reset, barrier or QCircuit"
            )
        if obj is self:
            raise CircuitError("cannot push a circuit into itself")
        if max(obj.qubits) >= self._nb_qubits:
            raise CircuitError(
                f"object on qubits {obj.qubits} does not fit in a "
                f"{self._nb_qubits}-qubit circuit"
            )

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index):
        return self._ops[index]

    def __iter__(self) -> Iterator[QObject]:
        return iter(self._ops)

    @property
    def nbGates(self) -> int:
        """Number of unitary gates, counting nested circuits recursively."""
        return sum(1 for _op, _off in self.operations() if isinstance(_op, QGate))

    @property
    def depth(self) -> int:
        """Circuit depth: the number of layers when operations pack
        greedily into columns (an operation occupies every wire between
        its lowest and highest qubit, so controls block the wires they
        cross — the same rule the drawer uses)."""
        frontier = [0] * self._nb_qubits
        for op, off in self.operations():
            if isinstance(op, Barrier):
                continue
            qubits = [q + off for q in op.qubits]
            lo, hi = min(qubits), max(qubits)
            col = max(frontier[lo : hi + 1], default=0)
            for q in range(lo, hi + 1):
                frontier[q] = col + 1
        return max(frontier, default=0)

    # -- flattening ------------------------------------------------------------

    def operations(
        self, base_offset: int = 0
    ) -> Iterator[Tuple[QObject, int]]:
        """Yield ``(op, total_offset)`` pairs, recursing into sub-circuits.

        The total offset accumulates this circuit's own offset with every
        enclosing circuit's; simulation and QASM export consume this
        flattened stream.  Delegates to the canonical tree walker
        :func:`repro.ir.lower.iter_elements` (``expand='all'``).
        """
        from repro.ir.lower import iter_elements

        return iter_elements(self, "all", base_offset)

    @property
    def has_measurement(self) -> bool:
        """``True`` when the circuit (recursively) contains a measurement
        or reset."""
        return any(
            isinstance(op, (Measurement, Reset))
            for op, _ in self.operations()
        )

    # -- unitary view ------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The ``2**n x 2**n`` unitary of a measurement-free circuit.

        Computed by applying each gate kernel to the columns of the
        identity with the optimized backend, so no full gate operator is
        ever materialized.
        """
        if self.has_measurement:
            raise CircuitError(
                "matrix is undefined for circuits with measurements/resets"
            )
        from repro.exceptions import UnboundParameterError
        from repro.execution.dispatch import run_unitary
        from repro.simulation.plan import get_plan

        plan, _stats = get_plan(self, "kernel", np.complex128)
        if plan.is_parametric:
            raise UnboundParameterError(
                "matrix is undefined for a circuit with unbound "
                "parameters; bind(...) values first"
            )
        return run_unitary(plan)

    def ctranspose(self) -> "QCircuit":
        """The inverse circuit: reversed order, each gate conjugated."""
        if self.has_measurement:
            raise CircuitError(
                "ctranspose is undefined for circuits with "
                "measurements/resets"
            )
        out = QCircuit(self._nb_qubits, self._offset)
        for op in reversed(self._ops):
            if isinstance(op, Barrier):
                out.push_back(Barrier(op.qubits))
            else:
                out.push_back(op.ctranspose())
        return out

    # -- symbolic parameters ------------------------------------------------------

    @property
    def parameters(self) -> tuple:
        """Distinct unbound :class:`~repro.parameter.Parameter` slots
        in the circuit, in first-appearance order (nested circuits
        walked recursively); empty for concrete circuits."""
        from repro.ir.lower import lower

        return lower(self).parameters()

    def bind(self, values) -> "BoundCircuit":
        """A cheap bound view of this parametric circuit.

        ``values`` maps each :class:`~repro.parameter.Parameter` (or
        its unambiguous name) to a value, or is a sequence aligned with
        :attr:`parameters`.  The view shares this circuit — no copy, no
        revision bump — and simulating it reuses this circuit's cached
        compiled plan, only refilling the parametric kernel tables.
        This replaces the deprecated sweep idiom of mutating
        ``gate.theta`` in place between ``simulate()`` calls.

        >>> from repro import Parameter, QCircuit
        >>> from repro.gates import RotationY
        >>> theta = Parameter("theta")
        >>> circuit = QCircuit(1)
        >>> _ = circuit.push_back(RotationY(0, theta))
        >>> bound = circuit.bind({theta: 3.141592653589793})
        >>> bool(abs(bound.simulate('0').states[0][1]) > 0.999)
        True
        """
        from repro.circuit.bound import BoundCircuit
        from repro.parameter import normalize_values

        return BoundCircuit(
            self, normalize_values(self.parameters, values)
        )

    def sweep(self, values, parameters=None, start=None, options=None):
        """Evaluate the circuit over a whole matrix of parameter
        points, vectorized along the parameter axis.

        Convenience for :func:`repro.simulation.sweep`; see there for
        the parameters and the returned
        :class:`~repro.simulation.sweep.SweepResult`.
        """
        from repro.simulation.sweep import sweep as _sweep

        return _sweep(
            self, values, parameters=parameters, start=start,
            options=options,
        )

    # -- simulation ---------------------------------------------------------------

    def simulate(
        self,
        start="0",
        options=None,
        *legacy_args,
        backend=None,
        atol=None,
        dtype=None,
        seed=None,
        compile=None,
        fuse=None,
    ):
        """Simulate the circuit from an initial state.

        Parameters
        ----------
        start:
            A bitstring such as ``'00'`` (q0 first) or a state vector of
            length ``2**nbQubits``.
        options:
            A :class:`~repro.simulation.SimulationOptions` (or plain
            dict) holding backend, atol, dtype, seed and compilation
            settings — the unified configuration object shared by every
            simulation entry point.
        backend, atol, dtype, seed, compile, fuse:
            Per-field overrides of ``options``.  Passing them without
            ``options`` is the historical keyword form and emits a
            :class:`DeprecationWarning` (it keeps working).

        Returns
        -------
        Simulation
            Result object exposing ``results``, ``probabilities``,
            ``states``, ``counts(shots)``, ``reducedStates`` and the
            plan statistics ``stats``.
        """
        from repro.simulation.simulate import simulate as _simulate

        return _simulate(
            self,
            start,
            options,
            *legacy_args,
            backend=backend,
            atol=atol,
            dtype=dtype,
            seed=seed,
            compile=compile,
            fuse=fuse,
            # this method adds a frame between the user and the shim;
            # keep deprecation warnings pointing at the user's line
            _stacklevel=4,
        )

    def counts(
        self, shots: int, start="0", seed=None, backend=None, options=None
    ):
        """Shot-sample the circuit: convenience for
        ``simulate(start).counts(shots, seed)``."""
        if backend is not None:
            import warnings

            warnings.warn(
                "the backend keyword of counts() is deprecated; pass "
                "options=SimulationOptions(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            from repro.simulation.options import (
                resolve_simulation_options,
            )

            options = resolve_simulation_options(
                options, (), {}, caller="counts"
            ).replace(backend=backend)
        return self.simulate(start, options).counts(shots, seed=seed)

    # -- blocks (Grover-style modular drawing) ---------------------------------------

    def asBlock(self, label: str = "circuit") -> "QCircuit":
        """Draw this circuit as a single labelled box inside a parent."""
        self._block = True
        self._block_label = str(label)
        return self

    def unBlock(self) -> "QCircuit":
        """Revert :meth:`asBlock`: draw the circuit's gates inline."""
        self._block = False
        return self

    @property
    def is_block(self) -> bool:
        """Whether the circuit draws as a labelled box."""
        return self._block

    @property
    def block_label(self) -> str:
        """Label shown when drawn as a block."""
        return self._block_label

    def draw_spec(self) -> DrawSpec:
        """One connected block box (used when this circuit is nested
        inside a parent circuit as a sub-circuit)."""
        el = DrawElement("block", self._block_label)
        return DrawSpec(
            elements={q: el for q in self.qubits}, connect=True
        )

    # -- I/O -------------------------------------------------------------------------

    def draw(self, output: str = "str"):
        """Render the circuit with Unicode box-drawing characters.

        ``output='str'`` returns the diagram string; ``output='print'``
        prints it (like QCLAB's command-window display) and returns
        ``None``.
        """
        from repro.io.draw import draw_circuit

        text = draw_circuit(self)
        if output == "print":
            print(text)
            return None
        return text

    def toTex(self, filename: str | None = None) -> str:
        """Export the circuit as executable quantikz LaTeX.

        When ``filename`` is given the LaTeX source is also written to
        that file; the source string is returned either way.
        """
        from repro.io.latex import circuit_to_tex

        tex = circuit_to_tex(self)
        if filename is not None:
            with open(filename, "w", encoding="utf-8") as fh:
                fh.write(tex)
        return tex

    def toQASM(self, offset: int = 0, include_header: bool = True) -> str:
        """Export the circuit as OpenQASM 2.0 text."""
        from repro.io.qasm_export import circuit_to_qasm

        return circuit_to_qasm(
            self, offset=offset, include_header=include_header
        )

    def toQASM3(self, include_header: bool = True) -> str:
        """Export the circuit as OpenQASM 3 text (extension)."""
        from repro.io.qasm3_export import circuit_to_qasm3

        return circuit_to_qasm3(self, include_header=include_header)

    def __repr__(self) -> str:
        return (
            f"QCircuit(nbQubits={self._nb_qubits}, offset={self._offset}, "
            f"nbOps={len(self._ops)})"
        )
