"""Mid-circuit qubit reset.

The paper (Section 3.3, refs [9, 13]) lists qubit resets alongside
mid-circuit measurements as enablers of iterative algorithms and qubit
reuse.  A reset measures the qubit in the computational basis and maps
either outcome to ``|0>``; each simulation branch keeps its own
post-reset state, so a reset on an entangled qubit correctly produces a
probabilistic mixture over branches.
"""

from __future__ import annotations

from repro.gates.base import (
    DrawElement,
    DrawSpec,
    QObject,
    bump_mutation_epoch,
)
from repro.utils.validation import check_qubit

__all__ = ["Reset"]


class Reset(QObject):
    """Reset a qubit to ``|0>``.

    Parameters
    ----------
    qubit:
        The qubit to reset.
    record:
        When ``True``, the implicit measurement outcome is appended to
        the branch result strings like an ordinary measurement outcome;
        the default ``False`` keeps result strings free of reset
        outcomes (matching hardware semantics, where a reset is not a
        readout).
    """

    def __init__(self, qubit: int = 0, record: bool = False):
        self._qubit = check_qubit(qubit)
        self._record = bool(record)

    @property
    def qubit(self) -> int:
        """The reset qubit (settable)."""
        return self._qubit

    @qubit.setter
    def qubit(self, value: int) -> None:
        bump_mutation_epoch()
        self._qubit = check_qubit(value)

    @property
    def qubits(self) -> tuple:
        """One-tuple of the reset qubit (the ``QObject`` protocol)."""
        return (self._qubit,)

    @property
    def record(self) -> bool:
        """Whether the implicit measurement outcome is recorded."""
        return self._record

    def draw_spec(self) -> DrawSpec:
        """A single ``|0>`` reset box on the reset qubit."""
        return DrawSpec(
            elements={self._qubit: DrawElement("reset", "|0⟩")},
            connect=False,
        )

    def toQASM(self, offset: int = 0) -> str:
        """The OpenQASM ``reset`` statement, qubit shifted by
        ``offset``."""
        return f"reset q[{self._qubit + offset}];"

    def shifted(self, offset: int) -> "Reset":
        """A copy resetting ``qubit + offset``."""
        import copy

        out = copy.copy(self)
        out._qubit = self._qubit + int(offset)
        return out

    def __eq__(self, other):
        if not isinstance(other, Reset):
            return NotImplemented
        return self._qubit == other._qubit and self._record == other._record

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return f"Reset({self._qubit})"
