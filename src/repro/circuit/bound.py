"""Bound views of parametric circuits.

A :class:`BoundCircuit` pairs a parametric
:class:`~repro.circuit.QCircuit` with one normalized value set.  It is
deliberately *cheap*: creating it does not touch the base circuit (no
revision bump, no re-lowering) and simulating it reuses the base
circuit's compiled plan — the plan cache keys parametric gates by slot
identity, so every binding of the same circuit hits one cached plan and
only the per-step kernel tables are refilled.

This is the supported replacement for the historical sweep idiom of
mutating ``gate.theta`` in place between ``simulate()`` calls (which
recompiled the plan at every point and is now deprecated).
"""

from __future__ import annotations

from repro.circuit.circuit import QCircuit
from repro.gates.base import QGate

__all__ = ["BoundCircuit"]


class BoundCircuit:
    """A parametric circuit together with one parameter binding.

    Obtained from :meth:`repro.circuit.QCircuit.bind`; not constructed
    directly in normal use.  ``values`` is already normalized to
    ``{Parameter: float}``.
    """

    __slots__ = ("_base", "_values")

    def __init__(self, base: QCircuit, values: dict):
        self._base = base
        self._values = dict(values)

    @property
    def base(self) -> QCircuit:
        """The underlying parametric circuit (shared, not copied)."""
        return self._base

    @property
    def values(self) -> dict:
        """The normalized ``{Parameter: value}`` binding."""
        return dict(self._values)

    @property
    def nbQubits(self) -> int:
        """Register width of the base circuit."""
        return self._base.nbQubits

    @property
    def parameters(self) -> tuple:
        """The base circuit's parameter slots."""
        return self._base.parameters

    def simulate(self, start="0", options=None, **kwargs):
        """Simulate the base circuit at this binding.

        Same interface as :meth:`repro.circuit.QCircuit.simulate`; the
        compiled plan of the base circuit is fetched from the cache and
        its parametric kernels bound in place — no recompilation.
        """
        from repro.simulation.simulate import simulate as _simulate

        kwargs.setdefault("_stacklevel", 4)
        return _simulate(self, start, options, **kwargs)

    def materialize(self) -> QCircuit:
        """A concrete :class:`~repro.circuit.QCircuit` copy with every
        parameter slot replaced by its bound value.

        Useful for export paths (QASM, serialization, drawing with
        numeric angles) that need value-carrying gates; simulation does
        not need it.
        """
        return _materialize(self._base, self._values)

    def __repr__(self) -> str:
        vals = ", ".join(
            f"{p.name}={float(v):g}" for p, v in self._values.items()
        )
        return f"BoundCircuit({self._base!r}, {{{vals}}})"


def _materialize(circuit: QCircuit, values: dict) -> QCircuit:
    """Recursively rebuild ``circuit`` with parameter slots resolved."""
    out = QCircuit(circuit.nbQubits, circuit.offset)
    if circuit.is_block:
        out.asBlock(circuit.block_label)
    for op in circuit:
        if isinstance(op, QCircuit):
            out.push_back(_materialize(op, values))
        elif isinstance(op, QGate):
            out.push_back(op.bind_parameters(values))
        else:
            out.push_back(op)
    return out
