"""Circuit barriers.

A barrier is a no-op that (a) prevents the drawer from packing gates on
opposite sides of it into one column and (b) exports to the OpenQASM
``barrier`` statement.
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.base import DrawElement, DrawSpec, QObject
from repro.utils.validation import check_qubits

__all__ = ["Barrier"]


class Barrier(QObject):
    """A barrier across the given qubits.

    Parameters
    ----------
    qubits:
        The qubits the barrier spans (at least one).
    """

    def __init__(self, qubits: Sequence[int]):
        qs = check_qubits(list(qubits))
        if not qs:
            raise ValueError("Barrier requires at least one qubit")
        self._qubits = tuple(sorted(qs))

    @property
    def qubits(self) -> tuple:
        """The spanned qubits, ascending."""
        return self._qubits

    def draw_spec(self) -> DrawSpec:
        """One connected ``barrier`` column across the spanned qubits."""
        el = DrawElement("barrier")
        return DrawSpec(
            elements={q: el for q in self._qubits}, connect=True
        )

    def toQASM(self, offset: int = 0) -> str:
        """The OpenQASM ``barrier`` statement, qubits shifted by
        ``offset``."""
        regs = ",".join(f"q[{q + offset}]" for q in self._qubits)
        return f"barrier {regs};"

    def shifted(self, offset: int) -> "Barrier":
        """A copy spanning ``qubits + offset``."""
        return Barrier([q + int(offset) for q in self._qubits])

    def __eq__(self, other):
        if not isinstance(other, Barrier):
            return NotImplemented
        return self._qubits == other._qubits

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return f"Barrier({list(self._qubits)!r})"
