"""Circuit containers and non-unitary circuit elements.

This package provides :class:`~repro.circuit.circuit.QCircuit` — the
central object of the paper's API — together with
:class:`~repro.circuit.measurement.Measurement` (Z/X/Y and custom-basis
single-qubit measurements), :class:`~repro.circuit.reset.Reset`
(mid-circuit qubit reset) and :class:`~repro.circuit.barrier.Barrier`.
"""

from repro.circuit.barrier import Barrier
from repro.circuit.bound import BoundCircuit
from repro.circuit.circuit import QCircuit
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset

__all__ = ["QCircuit", "BoundCircuit", "Measurement", "Reset", "Barrier"]
