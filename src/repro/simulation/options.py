"""The unified :class:`SimulationOptions` API.

Every simulation entry point — :func:`repro.simulation.simulate`,
:meth:`repro.circuit.QCircuit.simulate` and
:func:`repro.simulation.simulate_density` — accepts the same options
object through the keyword-only ``options=`` argument::

    opts = SimulationOptions(backend='sparse', atol=1e-10)
    circuit.simulate('00', options=opts)

The historical per-function keyword sets (``backend=``, ``atol=``,
``dtype=`` passed directly, or positionally after ``start``) keep
working through a shim that emits :class:`DeprecationWarning`; they are
resolved into a :class:`SimulationOptions` by
:func:`resolve_simulation_options`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["SimulationOptions", "resolve_simulation_options"]

#: Positional order of the legacy ``simulate(circuit, start, backend,
#: atol, dtype)`` signature, consumed by the compatibility shim.
_LEGACY_ORDER = ("backend", "atol", "dtype")


@dataclass(frozen=True)
class SimulationOptions:
    """Options shared by all simulation entry points.

    Parameters
    ----------
    backend:
        Registry name (``'kernel'``, ``'sparse'``, ``'einsum'`` or a
        user-registered name) or a :class:`~repro.simulation.Backend`
        instance.
    atol:
        Probability threshold below which measurement branches are
        pruned.
    dtype:
        Working precision: ``complex128`` (default) or ``complex64``
        (mirrors QCLAB++'s single-precision template instantiation).
    seed:
        Default seed (int or :class:`numpy.random.Generator`) for
        shot sampling helpers that do not receive an explicit one.
    compile:
        When ``True`` (default) the circuit is compiled once into a
        :class:`~repro.simulation.CompiledPlan` (memoized in an LRU
        cache) and executed through it; ``False`` forces the historical
        walk-the-op-tree path.
    fuse:
        When compiling, merge adjacent same-qubit one-qubit gates and
        coalesce consecutive diagonal gates (default ``True``).
    trace:
        Tracing for this run: ``True`` records nested timing spans
        into a fresh :class:`~repro.observability.Tracer`, or pass a
        ``Tracer`` instance to accumulate across runs.  The default
        (``None``) inherits whatever
        :func:`repro.observability.instrument` made ambient — i.e.
        nothing, unless the call happens inside an ``instrument()``
        block.
    metrics:
        Metrics for this run: ``True`` for a fresh
        :class:`~repro.observability.MetricsRegistry`, or an explicit
        registry to share one across runs.  Defaults like ``trace``.
        When either field is set, ``Simulation.report()`` returns the
        run's :class:`~repro.observability.ProfileReport`.
    batch_size:
        Number of Monte-Carlo trajectories executed simultaneously as
        one ``(B, 2**n)`` batch by the batched trajectory engine
        (:func:`repro.noise.run_trajectories_batched`).  ``None``
        (default) picks a memory-aware size automatically; explicit
        values must be >= 1.
    max_workers:
        Process fan-out for trajectory batches: shot counts exceeding
        one batch are distributed over this many worker processes via
        :mod:`concurrent.futures`.  Results are bit-reproducible for a
        fixed seed regardless of the worker count (the parent draws
        every batch's randomness up front).  Default 1 = in-process.
    min_shots_per_worker:
        Fan-out floor: process workers are only spawned while every
        worker gets at least this many shots, so small jobs never pay
        process start-up + state pickling that dwarfs the simulation
        itself.  ``max_workers`` is the ceiling, this is the
        efficiency guard; set to 1 to force the requested fan-out.
    """

    backend: Any = "kernel"
    atol: float = 1e-12
    dtype: Any = np.complex128
    seed: Any = None
    compile: bool = True
    fuse: bool = True
    trace: Any = None
    metrics: Any = None
    batch_size: Optional[int] = None
    max_workers: int = 1
    min_shots_per_worker: int = 8192

    def __post_init__(self):
        if self.atol < 0:
            raise SimulationError(f"atol must be >= 0, got {self.atol!r}")
        dt = np.dtype(self.dtype)
        if dt.kind != "c":
            raise SimulationError(
                f"dtype must be a complex floating type, got {dt}"
            )
        object.__setattr__(self, "dtype", dt.type)
        if self.batch_size is not None:
            if int(self.batch_size) < 1:
                raise SimulationError(
                    f"batch_size must be >= 1, got {self.batch_size!r}"
                )
            object.__setattr__(self, "batch_size", int(self.batch_size))
        if int(self.max_workers) < 1:
            raise SimulationError(
                f"max_workers must be >= 1, got {self.max_workers!r}"
            )
        object.__setattr__(self, "max_workers", int(self.max_workers))
        if int(self.min_shots_per_worker) < 1:
            raise SimulationError(
                "min_shots_per_worker must be >= 1, got "
                f"{self.min_shots_per_worker!r}"
            )
        object.__setattr__(
            self, "min_shots_per_worker", int(self.min_shots_per_worker)
        )

    @property
    def use_plan(self) -> bool:
        """Alias of :attr:`compile` (QuTiP-style naming)."""
        return self.compile

    def replace(self, **changes) -> "SimulationOptions":
        """A copy of the options with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def resolve_simulation_options(
    options: Optional[SimulationOptions],
    legacy_args: tuple = (),
    legacy_kwargs: Optional[dict] = None,
    caller: str = "simulate",
    stacklevel: int = 3,
) -> SimulationOptions:
    """Merge new-style ``options`` with legacy positional/keyword forms.

    ``legacy_args`` are extra positional arguments after ``start``
    (historically ``backend, atol, dtype``); ``legacy_kwargs`` are
    explicitly-passed old keywords (values of ``None`` mean "not
    given").  Legacy forms resolve onto a :class:`SimulationOptions`
    and emit a single :class:`DeprecationWarning`, except when
    ``options`` is also provided — then explicit keywords silently
    override the options object (the supported new-style idiom).

    ``stacklevel`` must make the warning point at the *user's* call
    site: the default 3 skips this function plus one driver frame
    (``simulate``/``simulate_density``); wrappers that add a frame
    (``QCircuit.simulate``) pass one more.  Getting this right is what
    makes Python's default once-per-location filter deduplicate the
    warning per call site instead of per library line.
    """
    legacy_kwargs = {
        k: v for k, v in (legacy_kwargs or {}).items() if v is not None
    }
    if legacy_args:
        if len(legacy_args) > len(_LEGACY_ORDER):
            raise TypeError(
                f"{caller}() takes at most {2 + len(_LEGACY_ORDER)} "
                f"positional arguments"
            )
        for name, value in zip(_LEGACY_ORDER, legacy_args):
            if name in legacy_kwargs:
                raise TypeError(
                    f"{caller}() got multiple values for argument {name!r}"
                )
            legacy_kwargs[name] = value
        warnings.warn(
            f"positional backend/atol/dtype arguments to {caller}() are "
            "deprecated; pass options=SimulationOptions(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    elif legacy_kwargs and options is None:
        names = ", ".join(sorted(legacy_kwargs))
        warnings.warn(
            f"the {names} keyword(s) of {caller}() are deprecated; pass "
            "options=SimulationOptions(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    base = options if options is not None else SimulationOptions()
    if not isinstance(base, SimulationOptions):
        if isinstance(base, dict):
            base = SimulationOptions(**base)
        else:
            raise SimulationError(
                "options must be a SimulationOptions (or dict), got "
                f"{type(base).__name__}"
            )
    if legacy_kwargs:
        base = base.replace(**legacy_kwargs)
    return base
