"""Exact density-matrix simulation (extension).

Evolves the full density matrix ``rho`` (``2^n x 2^n``) instead of a
state vector: gates act as ``U rho U^dagger`` (through the optimized
kernel backend, applied column- then row-wise), noise channels act
*exactly* as ``rho -> sum_k K_k rho K_k^dagger``, and measurements
branch selectively like the state-vector simulator.

:func:`simulate_density` is a thin wrapper over the unified execution
core: it resolves options and submits one ``DENSITY``
:class:`~repro.execution.ExecutionRequest`; the step loop itself lives
in :mod:`repro.execution.density`.

This is the exact counterpart of the Monte-Carlo trajectory engine in
:mod:`repro.noise.trajectory` — the test-suite cross-validates the two,
which is the strongest correctness check available for open-system
simulation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.execution.density import DensityBranch
from repro.noise.model import NoiseModel
from repro.simulation.options import (
    SimulationOptions,
    resolve_simulation_options,
)

__all__ = ["DensityBranch", "DensitySimulation", "simulate_density"]


class DensitySimulation:
    """Result of :func:`simulate_density`.

    ``results`` / ``probabilities`` / ``rhos`` mirror the state-vector
    :class:`~repro.simulation.simulate.Simulation`; ``rho`` gives the
    outcome-averaged (non-selective) density matrix.
    """

    def __init__(self, nb_qubits: int, branches: List[DensityBranch]):
        self._nb_qubits = nb_qubits
        self._branches = branches

    @property
    def nbQubits(self) -> int:
        """Register width."""
        return self._nb_qubits

    @property
    def branches(self) -> List[DensityBranch]:
        """All measurement branches."""
        return list(self._branches)

    @property
    def results(self) -> List[str]:
        """Outcome strings per branch."""
        return [b.result for b in self._branches]

    @property
    def probabilities(self) -> np.ndarray:
        """Branch probabilities."""
        return np.array([b.probability for b in self._branches])

    @property
    def rhos(self) -> List[np.ndarray]:
        """Post-measurement density matrices per branch."""
        return [b.rho for b in self._branches]

    @property
    def rho(self) -> np.ndarray:
        """The outcome-averaged density matrix ``sum_b p_b rho_b``."""
        dim = 1 << self._nb_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        for b in self._branches:
            out += b.probability * b.rho
        return out

    def outcome_distribution(self) -> dict:
        """``{result: probability}`` over recorded outcomes."""
        dist: dict = {}
        for b in self._branches:
            dist[b.result] = dist.get(b.result, 0.0) + b.probability
        return dist

    def __repr__(self) -> str:
        return (
            f"DensitySimulation(nbQubits={self._nb_qubits}, "
            f"nbBranches={len(self._branches)})"
        )


def simulate_density(
    circuit,
    start=None,
    noise: Optional[NoiseModel] = None,
    options: Optional[SimulationOptions] = None,
    *legacy_args,
    backend=None,
    atol: Optional[float] = None,
    dtype=None,
    seed=None,
    compile: Optional[bool] = None,
    fuse: Optional[bool] = None,
) -> DensitySimulation:
    """Exact (noisy) density-matrix simulation of a circuit.

    Parameters
    ----------
    circuit:
        The :class:`~repro.circuit.QCircuit`.
    start:
        Bitstring, state vector, or density matrix (``2^n x 2^n``);
        ``None`` means ``|0...0>``.
    noise:
        Optional :class:`~repro.noise.NoiseModel`; channels are applied
        **exactly** (full Kraus sums), readout errors mix branch
        probabilities classically.
    options:
        A :class:`~repro.simulation.SimulationOptions` — the same
        object every simulation entry point accepts.  The historical
        ``backend``/``atol`` keyword and positional forms keep working
        through a :class:`DeprecationWarning` shim.

    The request executes through the shared
    :class:`~repro.execution.Executor` pipeline: the circuit compiles
    through the same plan cache as every other engine (gate fusion is
    disabled automatically while a non-trivial noise model is active,
    because channels attach per source gate) and the step loop in
    :mod:`repro.execution.density` replays it branch-wise.
    """
    from repro.execution.executor import default_executor
    from repro.execution.request import DENSITY, ExecutionRequest

    if options is not None and not isinstance(
        options, (SimulationOptions, dict)
    ):
        legacy_args = (options,) + tuple(legacy_args)
        options = None
    opts = resolve_simulation_options(
        options,
        tuple(legacy_args),
        {
            "backend": backend,
            "atol": atol,
            "dtype": dtype,
            "seed": seed,
            "compile": compile,
            "fuse": fuse,
        },
        caller="simulate_density",
    )
    job = default_executor().submit(
        ExecutionRequest(
            circuit,
            kind=DENSITY,
            start=start,
            options=opts,
            noise=noise,
        )
    )
    return job.result()


from repro.simulation.backends import register_engine  # noqa: E402

register_engine("density", "density", simulate_density)
