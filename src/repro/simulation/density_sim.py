"""Exact density-matrix simulation (extension).

Evolves the full density matrix ``rho`` (``2^n x 2^n``) instead of a
state vector: gates act as ``U rho U^dagger`` (through the optimized
kernel backend, applied column- then row-wise), noise channels act
*exactly* as ``rho -> sum_k K_k rho K_k^dagger``, and measurements
branch selectively like the state-vector simulator.

This is the exact counterpart of the Monte-Carlo trajectory engine in
:mod:`repro.noise.trajectory` — the test-suite cross-validates the two,
which is the strongest correctness check available for open-system
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.circuit.measurement import Measurement
from repro.exceptions import StateError
from repro.noise.model import NoiseModel
from repro.observability.backend import InstrumentedBackend
from repro.observability.instrument import (
    activate,
    resolve_instrumentation,
)
from repro.simulation.options import (
    SimulationOptions,
    resolve_simulation_options,
)
from repro.simulation.plan import GATE, MEASURE, get_plan
from repro.simulation.state import initial_state
from repro.utils.bits import gather_indices

__all__ = ["DensityBranch", "DensitySimulation", "simulate_density"]


@dataclass
class DensityBranch:
    """One measurement branch of a density-matrix simulation."""

    probability: float
    rho: np.ndarray
    result: str


class DensitySimulation:
    """Result of :func:`simulate_density`.

    ``results`` / ``probabilities`` / ``rhos`` mirror the state-vector
    :class:`~repro.simulation.simulate.Simulation`; ``rho`` gives the
    outcome-averaged (non-selective) density matrix.
    """

    def __init__(self, nb_qubits: int, branches: List[DensityBranch]):
        self._nb_qubits = nb_qubits
        self._branches = branches

    @property
    def nbQubits(self) -> int:
        """Register width."""
        return self._nb_qubits

    @property
    def branches(self) -> List[DensityBranch]:
        """All measurement branches."""
        return list(self._branches)

    @property
    def results(self) -> List[str]:
        """Outcome strings per branch."""
        return [b.result for b in self._branches]

    @property
    def probabilities(self) -> np.ndarray:
        """Branch probabilities."""
        return np.array([b.probability for b in self._branches])

    @property
    def rhos(self) -> List[np.ndarray]:
        """Post-measurement density matrices per branch."""
        return [b.rho for b in self._branches]

    @property
    def rho(self) -> np.ndarray:
        """The outcome-averaged density matrix ``sum_b p_b rho_b``."""
        dim = 1 << self._nb_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        for b in self._branches:
            out += b.probability * b.rho
        return out

    def outcome_distribution(self) -> dict:
        """``{result: probability}`` over recorded outcomes."""
        dist: dict = {}
        for b in self._branches:
            dist[b.result] = dist.get(b.result, 0.0) + b.probability
        return dist

    def __repr__(self) -> str:
        return (
            f"DensitySimulation(nbQubits={self._nb_qubits}, "
            f"nbBranches={len(self._branches)})"
        )


def _conjugate_apply(engine, rho, kernel, qubits, nb_qubits):
    """``K rho K^dagger`` via two batched backend applications."""
    left = engine.apply(rho, kernel, qubits, nb_qubits)
    # right-multiplication by K^dagger: (K left^dagger)^dagger
    return engine.apply(
        np.ascontiguousarray(left.conj().T), kernel, qubits, nb_qubits
    ).conj().T


def _apply_channel(engine, rho, kraus, qubit, nb_qubits):
    """Exact channel action ``sum_k K_k rho K_k^dagger``."""
    out = np.zeros_like(rho)
    for k in kraus:
        out += _conjugate_apply(engine, rho.copy(), k, [qubit], nb_qubits)
    return out


def _measure_density(engine, branches, meas, qubit, nb_qubits, atol):
    """Selective measurement: split every branch on the outcome."""
    out = []
    non_z = meas.basis != "z"
    for branch in branches:
        rho = branch.rho
        if non_z:
            rho = _conjugate_apply(
                engine, rho.copy(), meas.basis_change, [qubit], nb_qubits
            )
        for outcome in (0, 1):
            idx = gather_indices(nb_qubits, [qubit], [outcome])
            projected = np.zeros_like(rho)
            projected[np.ix_(idx, idx)] = rho[np.ix_(idx, idx)]
            p = float(np.real(np.trace(projected)))
            if p <= atol:
                continue
            collapsed = projected / p
            if non_z:
                collapsed = _conjugate_apply(
                    engine,
                    collapsed,
                    meas.basis_change_dagger,
                    [qubit],
                    nb_qubits,
                )
            out.append(
                DensityBranch(
                    branch.probability * p,
                    collapsed,
                    branch.result + str(outcome),
                )
            )
    return out


def simulate_density(
    circuit,
    start=None,
    noise: Optional[NoiseModel] = None,
    options: Optional[SimulationOptions] = None,
    *legacy_args,
    backend=None,
    atol: Optional[float] = None,
    dtype=None,
    seed=None,
    compile: Optional[bool] = None,
    fuse: Optional[bool] = None,
) -> DensitySimulation:
    """Exact (noisy) density-matrix simulation of a circuit.

    Parameters
    ----------
    circuit:
        The :class:`~repro.circuit.QCircuit`.
    start:
        Bitstring, state vector, or density matrix (``2^n x 2^n``);
        ``None`` means ``|0...0>``.
    noise:
        Optional :class:`~repro.noise.NoiseModel`; channels are applied
        **exactly** (full Kraus sums), readout errors mix branch
        probabilities classically.
    options:
        A :class:`~repro.simulation.SimulationOptions` — the same
        object every simulation entry point accepts.  The historical
        ``backend``/``atol`` keyword and positional forms keep working
        through a :class:`DeprecationWarning` shim.

    The circuit is executed through a compiled plan
    (:mod:`repro.simulation.plan`); gate fusion is disabled
    automatically while a non-trivial noise model is active, because
    channels attach per source gate.
    """
    if options is not None and not isinstance(
        options, (SimulationOptions, dict)
    ):
        legacy_args = (options,) + tuple(legacy_args)
        options = None
    opts = resolve_simulation_options(
        options,
        tuple(legacy_args),
        {
            "backend": backend,
            "atol": atol,
            "dtype": dtype,
            "seed": seed,
            "compile": compile,
            "fuse": fuse,
        },
        caller="simulate_density",
    )
    nb_qubits = circuit.nbQubits
    noise = noise or NoiseModel()
    dim = 1 << nb_qubits

    inst = resolve_instrumentation(opts.trace, opts.metrics)
    with activate(inst), inst.span(
        "simulate_density", nb_qubits=nb_qubits
    ) as span:
        use_fuse = opts.fuse and noise.is_trivial
        plan, _stats = get_plan(
            circuit, opts.backend, opts.dtype, fuse=use_fuse
        )
        engine = plan.engine
        span.set(backend=engine.name)
        if inst.enabled:
            # every K rho K^dagger conjugation is a gate apply; route
            # them through the instrumented wrapper
            engine = InstrumentedBackend(engine, inst.metrics)

        if start is None:
            start = "0" * nb_qubits
        arr = np.asarray(start) if not isinstance(start, str) else None
        if arr is not None and arr.ndim == 2:
            rho0 = np.array(arr, dtype=opts.dtype)
            if rho0.shape != (dim, dim):
                raise StateError(
                    f"density matrix of shape {rho0.shape}; expected "
                    f"({dim}, {dim})"
                )
            if abs(np.trace(rho0) - 1.0) > 1e-8:
                raise StateError("density matrix must have unit trace")
        else:
            psi = initial_state(start, nb_qubits, dtype=opts.dtype)
            rho0 = np.outer(psi, psi.conj())

        branches = [DensityBranch(1.0, rho0, "")]

        for step in plan.steps:
            if step.kind == GATE:

                def both_sides(rho):
                    left = engine.apply_planned(rho, step, nb_qubits)
                    right = engine.apply_planned(
                        np.ascontiguousarray(left.conj().T), step,
                        nb_qubits,
                    )
                    return right.conj().T

                for branch in branches:
                    branch.rho = both_sides(branch.rho)
                channel = (
                    noise.channel_for(step.op)
                    if step.op is not None
                    else None
                )
                if channel is not None and not channel.is_identity:
                    for q in step.noise_qubits:
                        for branch in branches:
                            branch.rho = _apply_channel(
                                engine, branch.rho, channel.kraus, q,
                                nb_qubits,
                            )
                continue
            if step.kind == MEASURE:
                branches = _measure_density(
                    engine, branches, step.op, step.qubit, nb_qubits,
                    opts.atol,
                )
                if noise.readout_error > 0.0:
                    branches = _flip_readouts(
                        branches, noise.readout_error
                    )
                continue
            # RESET
            branches = _reset_density(
                engine, branches, step.op, step.qubit, nb_qubits,
                opts.atol,
            )

        return DensitySimulation(nb_qubits, branches)


def _flip_readouts(branches, p):
    """Classical readout error: each branch splits into kept/flipped."""
    out = []
    for b in branches:
        kept = DensityBranch(b.probability * (1 - p), b.rho, b.result)
        flipped_result = b.result[:-1] + ("1" if b.result[-1] == "0" else "0")
        flipped = DensityBranch(b.probability * p, b.rho, flipped_result)
        out.extend([kept, flipped])
    return out


def _reset_density(engine, branches, op, qubit, nb_qubits, atol):
    """Non-selective reset: project both outcomes, map 1 -> 0, merge."""
    from repro.gates import PauliX

    meas = Measurement(op.qubit)
    split = _measure_density(
        engine,
        [DensityBranch(b.probability, b.rho, b.result) for b in branches],
        meas,
        qubit,
        nb_qubits,
        atol,
    )
    out = []
    for b in split:
        outcome = b.result[-1]
        rho = b.rho
        if outcome == "1":
            x = PauliX(0).matrix
            rho = _conjugate_apply(engine, rho.copy(), x, [qubit], nb_qubits)
        result = b.result if op.record else b.result[:-1]
        out.append(DensityBranch(b.probability, rho, result))
    return out


from repro.simulation.backends import register_engine  # noqa: E402

register_engine("density", "density", simulate_density)
