"""Compiled execution plans: compile once, simulate many.

The historical drivers re-resolved nested-circuit offsets, rebuilt gate
kernels and index maps, and re-walked the op tree on *every*
``simulate()`` call — and repeated all of it per measurement branch.
This module factors that work into a one-time compilation step, the
same compile-then-execute split QCLAB++ uses between circuit
construction and its GPU kernels:

``compile_circuit``
    Flattens the op tree once into a :class:`CompiledPlan` of
    :class:`PlanStep` s with resolved absolute qubits, dtype-cast
    kernels and precomputed index tables; adjacent same-qubit one-qubit
    gates are fused into single 2x2 kernels and consecutive diagonal
    gates are coalesced into one diagonal step.

``get_plan``
    Memoizes plans in an LRU cache keyed by a *structural circuit
    signature* (gate types, absolute qubits, parameters, backend,
    dtype).  The signature sees parameter values, so mutating a gate's
    angle invalidates the cached plan; structural edits additionally
    bump :attr:`QCircuit.revision`, which invalidates the per-circuit
    flattening cache.

:class:`PlanStats` records what compilation did (steps, fusions, cache
hits/misses, per-stage wall time) and is exposed per run as
``Simulation.stats``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Mapping

import numpy as np

from repro.circuit.circuit import QCircuit
from repro.circuit.measurement import Measurement
from repro.exceptions import SimulationError, UnboundParameterError
from repro.gates.base import controlled_matrix
from repro.ir.lower import lower
from repro.ir.program import BARRIER as IR_BARRIER
from repro.ir.program import GATE as IR_GATE
from repro.ir.program import MEASURE as IR_MEASURE
from repro.ir.program import RESET as IR_RESET
from repro.ir.program import KIND_NAMES
from repro.observability.backend import step_kind
from repro.observability.instrument import current_instrumentation
from repro.observability.metrics import (
    FUSED_STEPS,
    PARAM_BINDS,
    PLAN_CACHE_HITS,
    PLAN_CACHE_MISSES,
    PLAN_PREP_SECONDS,
)
from repro.observability.recorder import (
    EV_PLAN_BIND,
    EV_PLAN_COMPILE,
    EV_PLAN_EVICT,
    EV_PLAN_HIT,
    EV_PLAN_MISS,
    record_event,
)
from repro.simulation.backends import Backend, get_backend
from repro.utils.linalg import expand_diag

__all__ = [
    "GATE",
    "MEASURE",
    "RESET",
    "PlanStep",
    "PlanStats",
    "CompiledPlan",
    "compile_circuit",
    "circuit_signature",
    "get_plan",
    "plan_cache_info",
    "clear_plan_cache",
]

#: Plan-step kinds.
GATE, MEASURE, RESET = 0, 1, 2

#: Diagonal runs are coalesced while their qubit union stays this small.
MAX_DIAG_FUSE_QUBITS = 4


class PlanStep:
    """One executable step of a :class:`CompiledPlan`.

    Gate steps carry the dtype-cast ``kernel`` on pre-resolved absolute
    ``targets``/``controls`` plus whatever the backend attached in
    ``prepare_step`` (``rows``/``flat_rows``/``diag_rep`` index tables
    for the kernel engine, ``aux`` for sparse/einsum).  Measurement and
    reset steps carry the absolute ``qubit`` and the source ``op``.

    *Parametric* gate steps — compiled from gates holding a symbolic
    :class:`~repro.parameter.Parameter` slot — carry the slot's
    :class:`~repro.parameter.ParameterExpression` in ``param`` and a
    ``None`` kernel until :meth:`CompiledPlan.bind` fills it in.
    """

    __slots__ = (
        "kind", "kernel", "diag", "targets", "controls",
        "control_states", "diagonal", "rows", "flat_rows", "diag_rep",
        "diag_flat", "aux", "op", "noise_qubits", "qubit", "param",
    )

    def __init__(self, kind: int):
        self.kind = kind
        self.kernel = None
        self.param = None
        self.diag = None
        self.targets = ()
        self.controls = ()
        self.control_states = ()
        self.diagonal = False
        self.rows = None
        self.flat_rows = None
        self.diag_rep = None
        self.diag_flat = None
        self.aux = None
        self.op = None
        self.noise_qubits = None
        self.qubit = None

    def __repr__(self) -> str:
        if self.kind == MEASURE:
            return f"PlanStep(measure q{self.qubit})"
        if self.kind == RESET:
            return f"PlanStep(reset q{self.qubit})"
        ctrl = f", controls={self.controls}" if self.controls else ""
        tag = "diag " if self.diagonal else ""
        return f"PlanStep({tag}gate on {self.targets}{ctrl})"


@dataclass
class PlanStats:
    """What compilation and execution did for one run.

    ``cache_hits``/``cache_misses`` are global plan-cache counters at
    the time of the run; ``cache_hit`` says whether *this* run reused a
    cached plan.  The ``*_seconds`` fields give per-stage wall time
    (signature hashing, compilation — zero on a cache hit — and plan
    execution).
    """

    nb_source_ops: int = 0
    nb_steps: int = 0
    nb_gate_steps: int = 0
    nb_fused_1q: int = 0
    nb_diag_merged: int = 0
    cache_hit: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    signature_seconds: float = 0.0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0

    @property
    def nb_fused(self) -> int:
        """Total source gates merged away by fusion."""
        return self.nb_fused_1q + self.nb_diag_merged


class CompiledPlan:
    """A circuit compiled for one (backend, dtype) combination.

    Plans compiled from circuits that hold symbolic
    :class:`~repro.parameter.Parameter` slots are *parametric*: their
    parametric steps carry no kernel until :meth:`bind` fills the
    kernel tables in (no re-lowering, no re-compilation), and
    :meth:`sweep` executes a whole value matrix in one vectorized
    parameter-batched pass.
    """

    def __init__(
        self,
        nb_qubits: int,
        engine: Backend,
        dtype,
        steps: list,
        recorded: tuple,
        end_measured: dict,
        stats: PlanStats,
        tables: dict = None,
    ):
        self.nb_qubits = nb_qubits
        self.engine = engine
        self.dtype = dtype
        self.steps = steps
        #: ``(absolute qubit, op)`` pairs in recorded-measurement order.
        self.recorded = recorded
        #: absolute qubit -> (result-string position, Measurement).
        self.end_measured = end_measured
        self.stats = stats
        #: compile-time backend index tables, reused when binding.
        self._tables = {} if tables is None else tables
        self._param_steps = tuple(
            s for s in steps if s.kind == GATE and s.param is not None
        )
        seen: dict = {}
        for s in self._param_steps:
            seen.setdefault(s.param.parameter, None)
        self._parameters = tuple(seen)
        #: whether the parametric steps have been backend-prepared once
        #: (after that, re-binding only refreshes value-dependent data).
        self._params_prepared = False
        #: guards in-place kernel mutation (bind) against concurrent
        #: replay of the same cached plan; the
        #: :class:`~repro.execution.Executor` holds it across
        #: bind+execute for parametric plans.  Non-parametric replay is
        #: read-only and never takes it.
        self.lock = threading.Lock()

    @property
    def backend_name(self) -> str:
        """Name of the engine the plan was prepared for."""
        return self.engine.name

    # -- parametric execution ------------------------------------------------

    @property
    def parameters(self) -> tuple:
        """Distinct unbound :class:`~repro.parameter.Parameter` slots,
        in first-appearance order."""
        return self._parameters

    @property
    def is_parametric(self) -> bool:
        """Whether the plan has parametric steps awaiting a binding."""
        return bool(self._param_steps)

    def _resolve_values(self, values) -> dict:
        """Normalize a value set to ``{Parameter: value}``.

        Accepts a mapping keyed by :class:`~repro.parameter.Parameter`
        or by parameter *name* (names must be unambiguous within this
        plan), or a sequence aligned with :attr:`parameters`.  Extra
        entries are ignored; a missing slot raises
        :class:`~repro.exceptions.UnboundParameterError`.
        """
        from repro.parameter import normalize_values

        return normalize_values(self._parameters, values)

    def bind(self, values) -> "CompiledPlan":
        """Fill the parametric kernel tables from one value set.

        ``values`` is a ``{Parameter-or-name: float}`` mapping or a
        sequence in :attr:`parameters` order.  Kernels are computed,
        cast to the plan dtype and re-prepared for the plan's backend
        **in place** — no re-lowering or re-compilation happens, which
        is what makes bind-per-point sweeps cheap.  Returns ``self``.
        """
        if not self._param_steps:
            return self
        mapping = self._resolve_values(values)
        inst = current_instrumentation()
        t_bind = perf_counter()
        with inst.span(
            "param.bind",
            nb_params=len(self._parameters),
            nb_steps=len(self._param_steps),
        ):
            # seed from the compile-time structural tables; per-binding
            # entries (diagonal expansions, sparse operators) go into
            # the throwaway copy so repeated binds cannot accumulate
            tables = dict(self._tables)
            dtype = self.dtype
            nb_qubits = self.nb_qubits
            prepared = self._params_prepared
            prep_hist = (
                inst.metrics.histogram(
                    PLAN_PREP_SECONDS,
                    "wall seconds inside prepare_step/refresh_step hooks",
                )
                if inst.enabled
                else None
            )
            prep_stage = "refresh" if prepared else "prepare"
            for step in self._param_steps:
                theta = step.param.resolve(mapping)
                kernel = step.op.kernel_values(
                    np.asarray([theta], dtype=float)
                )[0]
                step.kernel = np.ascontiguousarray(
                    kernel.astype(dtype, copy=False)
                )
                if step.diagonal:
                    step.diag = np.ascontiguousarray(
                        np.diag(step.kernel)
                    )
                t_prep = perf_counter()
                if prepared:
                    # index tables already exist; only the
                    # value-dependent pieces follow the new kernel
                    self.engine.refresh_step(step, nb_qubits, tables)
                else:
                    self.engine.prepare_step(step, nb_qubits, tables)
                if prep_hist is not None:
                    prep_hist.observe(
                        perf_counter() - t_prep,
                        backend=self.engine.name,
                        stage=prep_stage,
                        kind=step_kind(step),
                    )
            self._params_prepared = True
            if inst.enabled:
                inst.metrics.counter(
                    PARAM_BINDS,
                    "parameter bindings applied to compiled plans",
                ).inc()
        record_event(
            EV_PLAN_BIND,
            params=len(self._parameters),
            steps=len(self._param_steps),
            ns=int((perf_counter() - t_bind) * 1e9),
        )
        return self

    def sweep(self, values, parameters=None, start=None) -> np.ndarray:
        """Execute the plan for a whole matrix of parameter points.

        One vectorized pass per plan step runs all ``P`` points at
        once: concrete steps broadcast their single kernel over the
        ``(P, 2**n)`` state batch, parametric steps apply a per-point
        kernel stack along the parameter axis.

        Parameters
        ----------
        values:
            A ``(P, K)`` array whose columns follow ``parameters``
            (default :attr:`parameters` order; a 1-D array is treated
            as a single column), or a mapping from Parameter/name to a
            length-``P`` value array.
        parameters:
            Optional explicit column order for the array form.
        start:
            Initial state specifier, as in :func:`simulate`
            (default: the all-zeros state).

        Returns
        -------
        numpy.ndarray
            The ``(P, 2**n)`` final states, one row per point.

        Validation happens here; the vectorized step loop itself lives
        in :func:`repro.execution.dispatch.run_sweep` — the execution
        core owns every plan-replay loop.
        """
        for step in self.steps:
            if step.kind != GATE:
                raise SimulationError(
                    "sweep supports gate-only plans; measurements and "
                    "resets branch per point — bind() and simulate "
                    "each point instead"
                )
        params = (
            self._parameters if parameters is None else tuple(parameters)
        )
        if isinstance(values, Mapping):
            mapping = self._resolve_values(values)
            cols = {
                p: np.asarray(v, dtype=float).ravel()
                for p, v in mapping.items()
            }
        else:
            arr = np.asarray(values, dtype=float)
            if arr.ndim == 1:
                arr = arr[:, None]
            if arr.ndim != 2 or arr.shape[1] != len(params):
                raise UnboundParameterError(
                    f"sweep over {len(params)} parameter(s) needs a "
                    f"(P, {len(params)}) value matrix, got shape "
                    f"{arr.shape}"
                )
            cols = {p: arr[:, j] for j, p in enumerate(params)}
            missing = [p for p in self._parameters if p not in cols]
            if missing:
                raise UnboundParameterError(
                    "no value column for parameter(s) "
                    + ", ".join(repr(p.name) for p in missing)
                )
        lengths = {v.shape[0] for v in cols.values()}
        if len(lengths) > 1:
            raise UnboundParameterError(
                f"parameter value arrays disagree on length: {lengths}"
            )
        nb_points = lengths.pop() if lengths else 1

        from repro.execution.dispatch import run_sweep

        return run_sweep(self, cols, nb_points, start)

    def __repr__(self) -> str:
        par = (
            f", parameters={[p.name for p in self._parameters]!r}"
            if self._param_steps else ""
        )
        return (
            f"CompiledPlan(nbQubits={self.nb_qubits}, "
            f"steps={len(self.steps)}, backend={self.engine.name!r}, "
            f"dtype={np.dtype(self.dtype).name}{par})"
        )


# -- lowering and signatures -------------------------------------------------
#
# Plan compilation consumes the canonical IR (:mod:`repro.ir`): the
# one tree walker, revision-cached, replaces the private ``_flattened``
# this module used to carry.


def circuit_signature(circuit: QCircuit) -> tuple:
    """Structural signature of a circuit: register width plus every
    flattened op's type, absolute qubits and parameter fingerprint.

    Equal signatures guarantee identical simulation semantics, so the
    signature keys the plan cache; any mutation — structural or a gate
    parameter update — changes it.  Gates holding a symbolic
    :class:`~repro.parameter.Parameter` are fingerprinted by *slot
    identity* (uid, scale, offset), not by value: every binding of the
    same parametric circuit hashes identically and reuses one cached
    plan.  Delegates to :meth:`repro.ir.IRProgram.signature` on the
    cached lowering.
    """
    return lower(circuit).signature()


# -- fusion ------------------------------------------------------------------


def _folded_diag(step):
    """``(qubits, diag)`` of a diagonal step with controls folded in.

    A controlled gate with a diagonal kernel is itself diagonal on the
    union of controls and targets (ones on the non-matching subspace).
    """
    if not step.controls:
        return step.targets, step.diag
    qubits_all = tuple(sorted(step.targets + step.controls))
    full = controlled_matrix(
        step.kernel, qubits_all, list(step.controls),
        list(step.control_states), list(step.targets),
    )
    return qubits_all, np.ascontiguousarray(np.diag(full))


def _merge_1q(prev: PlanStep, cur: PlanStep) -> None:
    """Merge uncontrolled one-qubit ``cur`` into ``prev`` (same target);
    ``prev`` acts first, so the merged kernel is ``cur @ prev``."""
    prev.kernel = cur.kernel @ prev.kernel
    prev.diagonal = prev.diagonal and cur.diagonal
    prev.diag = (
        np.ascontiguousarray(np.diag(prev.kernel))
        if prev.diagonal else None
    )
    prev.op = None
    prev.noise_qubits = None


def _merge_diag(prev: PlanStep, cur: PlanStep) -> bool:
    """Coalesce diagonal ``cur`` into diagonal ``prev`` when the union
    qubit set stays small; ``True`` on success."""
    pq, pd = _folded_diag(prev)
    cq, cd = _folded_diag(cur)
    if max(len(pq), len(cq)) < 2:
        return False  # plain 1q diagonals on distinct qubits: the
        # strided per-qubit multiply beats a gathered union step
    union = tuple(sorted(set(pq) | set(cq)))
    if len(union) > MAX_DIAG_FUSE_QUBITS:
        return False
    dtype = prev.kernel.dtype
    d = expand_diag(pd, pq, union, dtype) * expand_diag(
        cd, cq, union, dtype
    )
    prev.targets = union
    prev.controls = ()
    prev.control_states = ()
    prev.diag = d
    prev.kernel = np.diag(d)
    prev.op = None
    prev.noise_qubits = None
    return True


def _touched(step: PlanStep) -> set:
    return set(step.targets) | set(step.controls)


def _fuse_into_window(
    steps: list, open_start: int, step: PlanStep, counts: dict
) -> bool:
    """Fuse ``step`` into an earlier step of the open fusion window
    (``steps[open_start:]``) when a commuting path back exists.

    An uncontrolled one-qubit gate commutes past every step that does
    not touch its qubit, so it can fuse with the *last* step that does
    — if that step is an uncontrolled one-qubit gate on the same
    target.  A diagonal gate additionally commutes past any other
    diagonal step (they are simultaneously diagonalized), so it scans
    back through diagonals and disjoint steps for a coalescing partner.
    """
    if not step.controls and len(step.targets) == 1:
        q = step.targets[0]
        for i in range(len(steps) - 1, open_start - 1, -1):
            cand = steps[i]
            if q not in _touched(cand):
                continue  # disjoint: commute past
            if (
                not cand.controls
                and cand.param is None
                and len(cand.targets) == 1
                and cand.targets == step.targets
            ):
                _merge_1q(cand, step)
                counts["fused_1q"] += 1
                return True
            break
    if step.diagonal:
        qubits = _touched(step)
        for i in range(len(steps) - 1, open_start - 1, -1):
            cand = steps[i]
            if cand.diagonal:
                # a parametric diagonal has no kernel yet: commute past
                # it, but never merge into it
                if cand.param is None and _merge_diag(cand, step):
                    counts["diag_merged"] += 1
                    return True
                continue  # diagonals commute: keep scanning
            if _touched(cand) & qubits:
                break
            # non-diagonal but disjoint: commute past
    return False


# -- compilation -------------------------------------------------------------


def _table_bytes(tables: dict) -> int:
    """Approximate bytes held by compile-time backend index tables."""
    total = 0
    for v in tables.values():
        if hasattr(v, "nbytes"):
            total += v.nbytes
        elif isinstance(v, tuple):
            total += sum(getattr(x, "nbytes", 0) for x in v)
    return int(total)


def compile_circuit(
    circuit: QCircuit,
    backend="kernel",
    dtype=np.complex128,
    fuse: bool = True,
) -> CompiledPlan:
    """Compile a circuit into a :class:`CompiledPlan` for one backend
    and working precision.

    Barriers compile to nothing but act as fusion breaks.  With
    ``fuse=False`` every gate keeps a one-to-one step (required when a
    noise model attaches channels per gate).

    When instrumentation is ambient (see
    :mod:`repro.observability`), compilation records a
    ``plan.compile`` span and fusion counters.
    """
    inst = current_instrumentation()
    if not inst.enabled:
        return _compile_circuit(circuit, backend, dtype, fuse)
    with inst.span("plan.compile", fuse=bool(fuse)) as sp:
        plan = _compile_circuit(circuit, backend, dtype, fuse)
        st = plan.stats
        sp.set(
            backend=plan.backend_name,
            nb_qubits=plan.nb_qubits,
            nb_ops=st.nb_source_ops,
            steps=st.nb_steps,
            fused=st.nb_fused,
        )
        fused = inst.metrics.counter(
            FUSED_STEPS, "source gates merged away by plan fusion"
        )
        if st.nb_fused_1q:
            fused.inc(st.nb_fused_1q, kind="1q")
        if st.nb_diag_merged:
            fused.inc(st.nb_diag_merged, kind="diag")
        return plan


def _compile_circuit(
    circuit: QCircuit,
    backend="kernel",
    dtype=np.complex128,
    fuse: bool = True,
) -> CompiledPlan:
    t0 = perf_counter()
    engine = get_backend(backend)
    nb_qubits = circuit.nbQubits
    program = lower(circuit)

    steps: list = []
    open_start = 0  # start of the current fusion window in ``steps``
    counts = {"fused_1q": 0, "diag_merged": 0}
    nb_source_ops = 0
    recorded = []
    last_touch: dict = {}
    record_index: dict = {}

    for irop in program:
        kind = irop.kind
        if kind == IR_BARRIER:
            open_start = len(steps)  # barriers block fusion across them
            continue
        nb_source_ops += 1
        op = irop.op
        if kind == IR_GATE:
            step = PlanStep(GATE)
            step.targets = irop.targets
            step.controls = irop.controls
            step.control_states = irop.control_states
            step.diagonal = irop.is_diagonal
            step.op = op
            step.noise_qubits = irop.qubits
            if not irop.is_bound:
                # parametric step: no kernel until bind()/sweep();
                # validate the index structure with an identity stand-in
                step.param = irop.parameter_expression
                Backend._validate(
                    np.eye(1 << len(step.targets), dtype=dtype),
                    step.targets, nb_qubits, step.controls,
                    step.control_states,
                )
                for q in irop.qubits:
                    last_touch[q] = op
                steps.append(step)  # opaque to fusion
                continue
            step.kernel = irop.kernel(dtype)
            if step.diagonal:
                step.diag = np.ascontiguousarray(np.diag(step.kernel))
            Backend._validate(
                step.kernel, step.targets, nb_qubits, step.controls,
                step.control_states,
            )
            for q in irop.qubits:
                last_touch[q] = op
            if fuse and _fuse_into_window(
                steps, open_start, step, counts
            ):
                continue
            steps.append(step)
            continue
        if kind == IR_MEASURE:
            step = PlanStep(MEASURE)
            step.qubit = irop.qubit
            step.op = op
            record_index[id(op)] = len(recorded)
            recorded.append((step.qubit, op))
            last_touch[step.qubit] = op
            steps.append(step)
            open_start = len(steps)
            continue
        if kind == IR_RESET:
            step = PlanStep(RESET)
            step.qubit = irop.qubit
            step.op = op
            if op.record:
                record_index[id(op)] = len(recorded)
                recorded.append((step.qubit, op))
            last_touch[step.qubit] = op
            steps.append(step)
            open_start = len(steps)
            continue
        raise SimulationError(
            f"cannot compile {KIND_NAMES.get(kind, kind)} IR op "
            f"({type(op).__name__})"
        )

    end_measured = {}
    for q, op in last_touch.items():
        if isinstance(op, Measurement):
            end_measured[q] = (record_index[id(op)], op)

    tables: dict = {}
    nb_gate_steps = 0
    inst = current_instrumentation()
    prep_hist = (
        inst.metrics.histogram(
            PLAN_PREP_SECONDS,
            "wall seconds inside prepare_step/refresh_step hooks",
        )
        if inst.enabled
        else None
    )
    for step in steps:
        if step.kind == GATE:
            nb_gate_steps += 1
            if step.param is None:
                t_prep = perf_counter()
                engine.prepare_step(step, nb_qubits, tables)
                if prep_hist is not None:
                    prep_hist.observe(
                        perf_counter() - t_prep,
                        backend=engine.name,
                        stage="prepare",
                        kind=step_kind(step),
                    )
            # parametric steps are prepared at bind() time

    stats = PlanStats(
        nb_source_ops=nb_source_ops,
        nb_steps=len(steps),
        nb_fused_1q=counts["fused_1q"],
        nb_gate_steps=nb_gate_steps,
        nb_diag_merged=counts["diag_merged"],
        compile_seconds=perf_counter() - t0,
    )
    record_event(
        EV_PLAN_COMPILE,
        backend=engine.name,
        ops=nb_source_ops,
        steps=len(steps),
        fused=stats.nb_fused,
        ns=int(stats.compile_seconds * 1e9),
        table_bytes=_table_bytes(tables),
    )
    return CompiledPlan(
        nb_qubits, engine, np.dtype(dtype).type, steps,
        tuple(recorded), end_measured, stats, tables,
    )


# -- the plan cache ----------------------------------------------------------

#: LRU capacity; oldest plans are evicted beyond this.
PLAN_CACHE_MAXSIZE = 64

_CACHE: dict = {}
_HITS = 0
_MISSES = 0
#: Serializes cache lookups INCLUDING compilation on a miss, so that
#: N concurrent submits of signature-equal circuits see exactly one
#: miss and N-1 hits (the concurrent-executor tests assert this).
#: Re-entrant because compilation may consult the cache for
#: sub-circuits in future layers.
_CACHE_LOCK = threading.RLock()


def _engine_key(engine: Backend) -> tuple:
    return (type(engine).__qualname__, engine.name)


def _sig_hash(sig) -> str:
    """Short stable-ish hex digest of a circuit signature, for
    recorder events and :func:`plan_cache_info` (process-local: it is
    ``hash()``-based, so it varies across interpreter runs)."""
    return f"{hash(sig) & 0xFFFFFFFFFFFF:012x}"


def get_plan(
    circuit: QCircuit,
    backend="kernel",
    dtype=np.complex128,
    fuse: bool = True,
):
    """Fetch (or compile and memoize) the plan for a circuit.

    Returns ``(plan, stats)`` where ``stats`` is a fresh
    :class:`PlanStats` for this call (cache-hit flag, global counters,
    signature wall time filled in).

    Under ambient instrumentation the lookup records a ``plan.get``
    span (with a nested ``plan.compile`` span on a miss) and bumps the
    plan-cache hit/miss counters.
    """
    global _HITS, _MISSES
    engine = get_backend(backend)
    inst = current_instrumentation()
    with inst.span("plan.get", backend=engine.name) as sp:
        # one lock covers signature hashing (the per-circuit lowering
        # cache mutates), the lookup, AND compilation on a miss:
        # concurrent submits of signature-equal circuits then account
        # exactly one miss, and hit/miss counters never tear
        with _CACHE_LOCK:
            t0 = perf_counter()
            sig = circuit_signature(circuit)
            sig_seconds = perf_counter() - t0
            key = (
                sig, _engine_key(engine), np.dtype(dtype).str, bool(fuse)
            )
            plan = _CACHE.pop(key, None)
            if plan is not None:
                _CACHE[key] = plan  # re-insert: most recently used
                _HITS += 1
                hit = True
                record_event(
                    EV_PLAN_HIT,
                    backend=engine.name,
                    signature=_sig_hash(sig),
                )
            else:
                record_event(
                    EV_PLAN_MISS,
                    backend=engine.name,
                    signature=_sig_hash(sig),
                )
                plan = compile_circuit(circuit, engine, dtype, fuse=fuse)
                _CACHE[key] = plan
                while len(_CACHE) > PLAN_CACHE_MAXSIZE:
                    old_key, old_plan = next(iter(_CACHE.items()))
                    _CACHE.pop(old_key)
                    record_event(
                        EV_PLAN_EVICT,
                        backend=old_plan.engine.name,
                        signature=_sig_hash(old_key[0]),
                    )
                _MISSES += 1
                hit = False
        if inst.enabled:
            sp.set(cache_hit=hit)
            name = PLAN_CACHE_HITS if hit else PLAN_CACHE_MISSES
            inst.metrics.counter(
                name, "compiled-plan cache lookups"
            ).inc()
        stats = replace(
            plan.stats,
            cache_hit=hit,
            cache_hits=_HITS,
            cache_misses=_MISSES,
            signature_seconds=sig_seconds,
        )
        return plan, stats


def plan_cache_info() -> dict:
    """Global plan-cache counters plus a per-entry table.

    Returns ``hits`` / ``misses`` / ``size`` / ``maxsize`` (and
    ``capacity``, an alias of ``maxsize``), the derived ``hit_rate``
    (0.0 when the cache was never consulted), and ``entries`` — one
    dict per cached plan, least-recently-used first, carrying the
    plan's ``backend``, ``dtype``, ``fuse`` flag, ``nb_steps``,
    ``nb_qubits``, ``parametric`` flag and a short ``signature``
    digest (process-local, matching the flight recorder's
    ``plan.hit``/``plan.miss`` events).
    """
    with _CACHE_LOCK:
        lookups = _HITS + _MISSES
        entries = [
            {
                "backend": plan.engine.name,
                "dtype": np.dtype(plan.dtype).name,
                "fuse": key[3],
                "nb_steps": len(plan.steps),
                "nb_qubits": plan.nb_qubits,
                "parametric": plan.is_parametric,
                "signature": _sig_hash(key[0]),
            }
            for key, plan in _CACHE.items()
        ]
        return {
            "hits": _HITS,
            "misses": _MISSES,
            "size": len(_CACHE),
            "maxsize": PLAN_CACHE_MAXSIZE,
            "capacity": PLAN_CACHE_MAXSIZE,
            "hit_rate": (_HITS / lookups) if lookups else 0.0,
            "entries": entries,
        }


def clear_plan_cache() -> None:
    """Empty the plan cache and reset its counters."""
    global _HITS, _MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
