"""State-vector simulation: backends, branching measurement, results.

The paper describes two simulation engines sharing one API: QCLAB's
MATLAB reference (sparse ``I (x) U (x) I`` operators, Section 3.2) and
QCLAB++'s optimized kernels.  This package reproduces that split with
interchangeable backends (``sparse``, ``kernel``, ``einsum``, plus the
acceleration tier: ``strided`` always, ``jit`` when numba is
installed) and implements the full measurement model of Section 3.3:
branching mid-circuit measurements, arbitrary bases, shot sampling
(``counts``) and reduced states.
"""

from repro.simulation.backends import (
    Backend,
    EinsumBackend,
    KernelBackend,
    SparseKronBackend,
    available_backends,
    default_backend,
    get_backend,
    get_engine,
    register_backend,
    register_engine,
)
from repro.simulation.accel import StridedBackend
from repro.simulation.jit import HAVE_NUMBA, JitBackend
from repro.simulation.options import (
    SimulationOptions,
    resolve_simulation_options,
)
from repro.simulation.plan import (
    CompiledPlan,
    PlanStats,
    PlanStep,
    circuit_signature,
    clear_plan_cache,
    compile_circuit,
    get_plan,
    plan_cache_info,
)
from repro.simulation.density import (
    density_matrix,
    fidelity,
    purity,
    trace_distance,
)
from repro.simulation.density_sim import (
    DensitySimulation,
    simulate_density,
)
from repro.simulation.observables import (
    PauliSum,
    expectation,
    pauli_matrix,
    variance,
)
from repro.simulation.reduced import partial_trace, reducedStatevector
from repro.simulation.simulate import Simulation, apply_operation, simulate
from repro.simulation.sweep import SweepResult, sweep
from repro.simulation.mps import MPSState, mps_counts, simulate_mps
from repro.simulation.stabilizer import (
    StabilizerState,
    simulate_stabilizer,
    stabilizer_counts,
)
from repro.simulation.state import basis_state, initial_state, random_state

__all__ = [
    "Backend",
    "KernelBackend",
    "SparseKronBackend",
    "EinsumBackend",
    "StridedBackend",
    "JitBackend",
    "HAVE_NUMBA",
    "get_backend",
    "default_backend",
    "available_backends",
    "register_backend",
    "register_engine",
    "get_engine",
    "SimulationOptions",
    "resolve_simulation_options",
    "CompiledPlan",
    "PlanStep",
    "PlanStats",
    "compile_circuit",
    "circuit_signature",
    "get_plan",
    "plan_cache_info",
    "clear_plan_cache",
    "simulate",
    "Simulation",
    "apply_operation",
    "sweep",
    "SweepResult",
    "initial_state",
    "basis_state",
    "random_state",
    "reducedStatevector",
    "partial_trace",
    "density_matrix",
    "trace_distance",
    "fidelity",
    "purity",
    "expectation",
    "variance",
    "pauli_matrix",
    "PauliSum",
    "simulate_density",
    "DensitySimulation",
    "StabilizerState",
    "simulate_stabilizer",
    "stabilizer_counts",
    "MPSState",
    "simulate_mps",
    "mps_counts",
]
