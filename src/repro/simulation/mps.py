"""Matrix-product-state (MPS) simulation (extension).

A fourth simulation engine alongside the state-vector backends, the
density-matrix simulator and the stabilizer tableau: the state is held
as a chain of rank-3 tensors ``A[q] : (D_l, 2, D_r)`` kept in **mixed
canonical form** around a moving orthogonality center, two-qubit gates
act on neighbouring sites through a truncated SVD (TEBD style), and
the bond dimension — optionally capped at ``chi_max`` — measures the
entanglement the circuit has built.  Low-entanglement circuits on
*dozens* of qubits simulate comfortably where the ``2^n`` state vector
cannot exist.

Supported operations: any one-qubit gate, any two-qubit gate
(non-adjacent pairs are routed with SWAPs), Z/X/Y measurements
(sampled, trajectory style) and resets.  Gates on three or more qubits
raise :class:`~repro.exceptions.SimulationError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.circuit.barrier import Barrier
from repro.circuit.circuit import QCircuit
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import SimulationError
from repro.gates import SWAP
from repro.gates.base import QGate

__all__ = ["MPSState", "simulate_mps", "mps_counts"]

_SWAP_MATRIX = SWAP(0, 1).matrix


class MPSState:
    """An n-qubit pure state in mixed-canonical matrix-product form.

    Sites left of the orthogonality center are left-isometries, sites
    right of it right-isometries; the center tensor carries the state's
    norm, so all probabilities and truncations are *globally* correct.

    Parameters
    ----------
    nb_qubits:
        Chain length; starts in ``|0...0>``.
    chi_max:
        Optional bond-dimension cap; exceeding bonds are truncated to
        the ``chi_max`` largest singular values and the state is
        renormalized (controlled truncation error).
    """

    def __init__(self, nb_qubits: int, chi_max: Optional[int] = None):
        if nb_qubits < 1:
            raise SimulationError("need at least one qubit")
        if chi_max is not None and chi_max < 1:
            raise SimulationError("chi_max must be positive")
        self.n = int(nb_qubits)
        self.chi_max = chi_max
        self.tensors: List[np.ndarray] = []
        for _ in range(self.n):
            t = np.zeros((1, 2, 1), dtype=np.complex128)
            t[0, 0, 0] = 1.0
            self.tensors.append(t)
        self.center = 0
        #: largest bond dimension reached during the evolution.
        self.max_bond_seen = 1

    # -- canonical-form maintenance -----------------------------------------

    def _shift_center_right(self) -> None:
        i = self.center
        t = self.tensors[i]
        dl, _, dr = t.shape
        q, r = np.linalg.qr(t.reshape(dl * 2, dr))
        k = q.shape[1]
        self.tensors[i] = q.reshape(dl, 2, k)
        self.tensors[i + 1] = np.einsum(
            "ab,bcd->acd", r, self.tensors[i + 1]
        )
        self.center = i + 1

    def _shift_center_left(self) -> None:
        i = self.center
        t = self.tensors[i]
        dl, _, dr = t.shape
        # LQ via QR of the conjugate transpose: t = L Q, Q row-orthonormal
        q, r = np.linalg.qr(t.reshape(dl, 2 * dr).conj().T)
        k = q.shape[1]
        self.tensors[i] = q.conj().T.reshape(k, 2, dr)
        self.tensors[i - 1] = np.einsum(
            "abc,cd->abd", self.tensors[i - 1], r.conj().T
        )
        self.center = i - 1

    def _move_center(self, site: int) -> None:
        while self.center < site:
            self._shift_center_right()
        while self.center > site:
            self._shift_center_left()

    # -- structure ------------------------------------------------------------

    @property
    def bond_dimensions(self) -> List[int]:
        """Current bond dimensions between neighbouring sites."""
        return [self.tensors[q].shape[2] for q in range(self.n - 1)]

    # -- gates ------------------------------------------------------------------

    def apply_1q(self, matrix: np.ndarray, site: int) -> None:
        """Apply a one-qubit gate at ``site`` (canonicity preserved)."""
        self.tensors[site] = np.einsum(
            "ab,lbr->lar", matrix, self.tensors[site]
        )

    def apply_2q_adjacent(self, matrix: np.ndarray, site: int) -> None:
        """Apply a two-qubit gate on sites ``(site, site + 1)``.

        ``matrix`` is ``4 x 4`` with ``site`` as the most significant
        sub-index bit.  The orthogonality center moves here first, so
        the SVD truncation and renormalization are globally optimal.
        """
        self._move_center(site)
        a, b = self.tensors[site], self.tensors[site + 1]
        dl = a.shape[0]
        dr = b.shape[2]
        theta = np.einsum("las,sbr->labr", a, b)
        u = matrix.reshape(2, 2, 2, 2)
        theta = np.einsum("cdab,labr->lcdr", u, theta)
        mat = theta.reshape(dl * 2, 2 * dr)
        left, sing, right = np.linalg.svd(mat, full_matrices=False)
        keep = sing > 1e-14
        if self.chi_max is not None:
            keep[self.chi_max:] = False
        if not np.any(keep):
            keep[0] = True
        left = left[:, keep]
        sing = sing[keep]
        right = right[keep, :]
        # with the center here, ||sing|| is the global norm: renormalize
        sing = sing / np.linalg.norm(sing)
        chi = sing.size
        self.max_bond_seen = max(self.max_bond_seen, chi)
        self.tensors[site] = left.reshape(dl, 2, chi)
        self.tensors[site + 1] = (
            (sing[:, None] * right).reshape(chi, 2, dr)
        )
        self.center = site + 1

    def apply_2q(self, matrix: np.ndarray, site_a: int, site_b: int):
        """Apply a two-qubit gate on arbitrary sites (``site_a`` is the
        most significant sub-index bit); non-neighbours are routed with
        SWAPs."""
        if site_a == site_b:
            raise SimulationError("two-qubit gate needs distinct sites")
        lo, hi = sorted((site_a, site_b))
        kernel = matrix
        if site_a > site_b:
            # re-express with the lower site as the MSB
            kernel = (
                matrix.reshape(2, 2, 2, 2)
                .transpose(1, 0, 3, 2)
                .reshape(4, 4)
            )
        for k in range(hi - 1, lo, -1):
            self.apply_2q_adjacent(_SWAP_MATRIX, k)
        self.apply_2q_adjacent(kernel, lo)
        for k in range(lo + 1, hi):
            self.apply_2q_adjacent(_SWAP_MATRIX, k)

    # -- read-out -------------------------------------------------------------

    def norm(self) -> float:
        """The 2-norm of the state (1 up to roundoff, by construction)."""
        return float(np.linalg.norm(self.tensors[self.center]))

    def probability_one(self, site: int) -> float:
        """P(measuring 1) on ``site``: local at the center."""
        self._move_center(site)
        t = self.tensors[site]
        total = np.linalg.norm(t) ** 2
        p1 = np.linalg.norm(t[:, 1, :]) ** 2
        return float(p1 / total)

    def collapse(self, site: int, outcome: int, prob: float) -> None:
        """Project ``site`` onto ``outcome`` and renormalize (the center
        must already be at ``site``, as after :meth:`probability_one`)."""
        self._move_center(site)
        t = self.tensors[site].copy()
        t[:, 1 - outcome, :] = 0.0
        self.tensors[site] = t / np.sqrt(max(prob, 1e-300))

    def amplitude(self, bits: str) -> complex:
        """The amplitude ``<bits|psi>`` (O(n chi^2))."""
        if len(bits) != self.n:
            raise SimulationError(
                f"bitstring length {len(bits)} != {self.n} qubits"
            )
        env = np.ones(1, dtype=np.complex128)
        for q, c in enumerate(bits):
            env = env @ self.tensors[q][:, int(c), :]
        return complex(env[0])

    def to_statevector(self) -> np.ndarray:
        """Contract to the dense state vector (small ``n`` only)."""
        if self.n > 20:
            raise SimulationError(
                "refusing to densify an MPS with more than 20 qubits"
            )
        psi = self.tensors[0]
        for q in range(1, self.n):
            psi = np.einsum("l...s,sbr->l...br", psi, self.tensors[q])
        return psi.reshape(-1)


def simulate_mps(
    circuit: QCircuit,
    chi_max: Optional[int] = None,
    rng=None,
) -> tuple:
    """One MPS run of a circuit (measurements sampled trajectory-style).

    Returns ``(result_string, MPSState)``.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    state = MPSState(circuit.nbQubits, chi_max=chi_max)
    outcomes: List[str] = []
    for op, off in circuit.operations():
        if isinstance(op, Barrier):
            continue
        if isinstance(op, Measurement):
            site = op.qubit + off
            if op.basis != "z":
                state.apply_1q(op.basis_change, site)
            p1 = state.probability_one(site)
            outcome = 1 if rng.random() < p1 else 0
            prob = p1 if outcome else 1.0 - p1
            state.collapse(site, outcome, prob)
            if op.basis != "z":
                state.apply_1q(op.basis_change_dagger, site)
            outcomes.append(str(outcome))
            continue
        if isinstance(op, Reset):
            site = op.qubit + off
            p1 = state.probability_one(site)
            outcome = 1 if rng.random() < p1 else 0
            prob = p1 if outcome else 1.0 - p1
            state.collapse(site, outcome, prob)
            if outcome == 1:
                x = np.array([[0, 1], [1, 0]], dtype=np.complex128)
                state.apply_1q(x, site)
            if op.record:
                outcomes.append(str(outcome))
            continue
        if not isinstance(op, QGate):
            raise SimulationError(
                f"cannot simulate circuit element {type(op).__name__}"
            )
        sites = [q + off for q in op.qubits]
        if len(sites) == 1:
            state.apply_1q(op.matrix, sites[0])
        elif len(sites) == 2:
            state.apply_2q(op.matrix, sites[0], sites[1])
        else:
            raise SimulationError(
                f"the MPS backend supports 1- and 2-qubit gates; "
                f"decompose {type(op).__name__} first"
            )
    return "".join(outcomes), state


def mps_counts(
    circuit: QCircuit,
    shots: int = 1000,
    chi_max: Optional[int] = None,
    seed=None,
) -> Dict[str, int]:
    """Outcome histogram over ``shots`` independent MPS trajectories."""
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    counts: Dict[str, int] = {}
    for _ in range(int(shots)):
        result, _state = simulate_mps(circuit, chi_max=chi_max, rng=rng)
        counts[result] = counts.get(result, 0) + 1
    return counts


from repro.simulation.backends import register_engine  # noqa: E402

register_engine("mps", "mps", simulate_mps)
