"""Density matrices and distance measures.

Used by the tomography example (Section 5.2 of the paper), which
reconstructs a density matrix from measurement counts and reports the
trace distance to the true state.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StateError
from repro.utils.linalg import is_hermitian

__all__ = [
    "density_matrix",
    "trace_distance",
    "fidelity",
    "purity",
]


def density_matrix(state: np.ndarray) -> np.ndarray:
    """The pure-state density matrix ``rho = |psi><psi|``."""
    psi = np.asarray(state, dtype=np.complex128).ravel()
    if psi.size == 0 or (psi.size & (psi.size - 1)) != 0:
        raise StateError(
            f"state length {psi.size} is not a positive power of 2"
        )
    return np.outer(psi, psi.conj())


def _check_density(rho: np.ndarray, what: str) -> np.ndarray:
    m = np.asarray(rho, dtype=np.complex128)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise StateError(f"{what} is not a square matrix")
    return m


def trace_distance(rho: np.ndarray, sigma: np.ndarray) -> float:
    """``T(rho, sigma) = 1/2 ||rho - sigma||_1`` (sum of singular values).

    For Hermitian arguments this equals half the sum of the absolute
    eigenvalues of the difference, which is how it is computed here.
    """
    r = _check_density(rho, "rho")
    s = _check_density(sigma, "sigma")
    if r.shape != s.shape:
        raise StateError(f"shape mismatch {r.shape} vs {s.shape}")
    diff = r - s
    if is_hermitian(diff, atol=1e-8):
        eigs = np.linalg.eigvalsh(diff)
        return float(0.5 * np.sum(np.abs(eigs)))
    sing = np.linalg.svd(diff, compute_uv=False)
    return float(0.5 * np.sum(sing))


def fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity ``F(rho, sigma) = (tr sqrt(sqrt(rho) sigma sqrt(rho)))^2``.

    Computed through the eigendecomposition of ``rho``; for pure states
    it reduces to ``<psi| sigma |psi>``.
    """
    r = _check_density(rho, "rho")
    s = _check_density(sigma, "sigma")
    if r.shape != s.shape:
        raise StateError(f"shape mismatch {r.shape} vs {s.shape}")
    w, v = np.linalg.eigh(r)
    w = np.clip(w, 0.0, None)
    sqrt_r = (v * np.sqrt(w)) @ v.conj().T
    inner = sqrt_r @ s @ sqrt_r
    eigs = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
    return float(np.sum(np.sqrt(eigs)) ** 2)


def purity(rho: np.ndarray) -> float:
    """``tr(rho^2)``: 1 for pure states, ``1/d`` for maximally mixed."""
    r = _check_density(rho, "rho")
    return float(np.real(np.trace(r @ r)))
