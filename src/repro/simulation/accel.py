"""Level-1 acceleration: the pure-NumPy strided backend.

:class:`StridedBackend` is the always-on tier of the acceleration
stack (Level 2 is the opt-in Numba tier, :mod:`repro.simulation.jit`).
It keeps :class:`~repro.simulation.backends.KernelBackend`'s gather
tables for multi-qubit and controlled steps but replaces the two hot
step classes of fused plans with layout-specialized kernels chosen at
``prepare_step`` time:

one-qubit steps
    The state viewed as ``(left, 2, right)`` (``left = 2**t``) admits
    two BLAS formulations whose cost crosses over with the block
    width.  For small ``right`` the kernel is expanded once into
    ``kron(U, I_right)`` and the step becomes a single contiguous GEMM
    ``(left, 2*right) @ (2*right, 2*right)``; for large ``right`` a
    broadcast ``matmul(U, view)`` runs ``left`` small GEMMs over
    contiguous rows.  Both write straight into a caller-provided
    ``out=`` buffer — zero allocations per step.

diagonal steps
    The per-step diagonal (including coalesced multi-qubit runs and
    controlled diagonals) is scattered once into a full-register
    multiplier vector with exact ``1.0`` elsewhere — multiplying by
    one is lossless, so untouched amplitudes stay bit-identical — and
    every apply is one contiguous elementwise multiply instead of a
    fancy-indexed gather.

The backend opts into the ``out=`` scratch-buffer convention
(``supports_out = True``): the dispatch loops in
:mod:`repro.execution.dispatch` and the batched trajectory engine own
a double-buffered scratch pair and flip it per step, so a whole
planned run executes with no per-step statevector allocations.  All
kernel formulations are batch-shape invariant on the supported BLAS
builds (the same per-element contraction order regardless of how many
rows stack), preserving the serial-vs-batched bit-exactness contract
of :data:`repro.conformance.DEFAULT_TOLERANCES`.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.backends import KernelBackend, register_backend

__all__ = ["StridedBackend"]

#: Right-block width at or below which a one-qubit step applies as one
#: contiguous GEMM against the precomputed ``kron(U, I_right)``
#: operator (at most ``2*right <= 32`` columns); wider blocks use the
#: broadcast matmul, whose per-stack GEMMs are already contiguous.
KRON_GEMM_MAX_RIGHT = 16

#: Statevector dimension above which diagonal steps keep the inherited
#: gather tables instead of materializing a full-register multiplier
#: (the multiplier costs one state-sized vector per distinct diagonal).
FULL_DIAG_MAX_DIM = 1 << 24

# step.aux tags (aux is per-backend plan storage, so these never
# collide with the sparse/einsum backends' aux payloads)
_A1Q_GEMM = "strided.1q_gemm"
_A1Q_BCAST = "strided.1q_bcast"
_ADIAG = "strided.diag_full"

_STRIDED_TAGS = (_A1Q_GEMM, _A1Q_BCAST, _ADIAG)


@register_backend
class StridedBackend(KernelBackend):
    """Zero-allocation strided kernels (Level-1 acceleration tier)."""

    name = "strided"
    supports_out = True

    # -- plan hooks ----------------------------------------------------------

    def prepare_step(self, step, nb_qubits, tables):
        """Inherit the gather tables, then attach the strided kernel
        choice (GEMM operator, broadcast kernel or full-register
        diagonal multiplier) for the step classes this tier
        specializes."""
        super().prepare_step(step, nb_qubits, tables)
        self._prepare_strided(step, nb_qubits, tables)

    def refresh_step(self, step, nb_qubits, tables):
        """Value-only refresh: keep the index tables, rebuild the
        value-dependent strided payloads from the re-bound kernel."""
        super().refresh_step(step, nb_qubits, tables)
        self._prepare_strided(step, nb_qubits, tables)

    def _prepare_strided(self, step, nb_qubits, tables):
        """Choose and precompute this step's strided formulation."""
        step.aux = None
        dim = 1 << nb_qubits
        kernel = step.kernel
        if step.diagonal:
            if dim > FULL_DIAG_MAX_DIM:
                return  # gather tables stay cheaper than a dim-vector
            key = (
                "strided.diag", step.targets, step.controls,
                step.control_states, kernel.tobytes(),
            )
            fd = tables.get(key)
            if fd is None:
                fd = np.ones(dim, dtype=kernel.dtype)
                if step.rows is None:
                    view = fd.reshape(1 << step.targets[0], 2, -1)
                    view[:, 0, :] = kernel[0, 0]
                    view[:, 1, :] = kernel[1, 1]
                else:
                    fd[step.flat_rows] = step.diag_flat
                tables[key] = fd
            step.aux = (_ADIAG, fd)
            return
        if step.controls or len(step.targets) != 1:
            return  # inherited gather/matmul/scatter path
        target = step.targets[0]
        left = 1 << target
        right = 1 << (nb_qubits - 1 - target)
        if right <= KRON_GEMM_MAX_RIGHT:
            key = ("strided.kron", target, nb_qubits, kernel.tobytes())
            op = tables.get(key)
            if op is None:
                eye = np.eye(right, dtype=kernel.dtype)
                op = np.ascontiguousarray(np.kron(kernel, eye).T)
                tables[key] = op
            step.aux = (_A1Q_GEMM, left, 2 * right, op)
        else:
            step.aux = (
                _A1Q_BCAST, left, right, np.ascontiguousarray(kernel),
            )

    def planned_bytes(self, step, states, nb_qubits):
        """Full-register diagonals stream the whole state plus the
        multiplier; everything else keeps the inherited estimate."""
        aux = step.aux
        if isinstance(aux, tuple) and aux and aux[0] == _ADIAG:
            return 2 * states.nbytes + aux[1].nbytes
        return super().planned_bytes(step, states, nb_qubits)

    # -- out= plumbing -------------------------------------------------------

    @staticmethod
    def _strided_aux(step):
        """The step's strided payload, or ``None`` to fall back."""
        aux = step.aux
        if isinstance(aux, tuple) and aux and aux[0] in _STRIDED_TAGS:
            return aux
        return None

    @staticmethod
    def _dest(src, out):
        """Resolve a safe disjoint GEMM destination.

        Returns ``(dest, copy_to)``: compute into ``dest``; when
        ``copy_to`` is not ``None`` the caller must copy ``dest`` into
        it and return it instead (the alias/overlap/non-contiguous
        degraded path — correctness over speed).
        """
        if out is None:
            return np.empty_like(src), None
        if (
            out is src
            or not out.flags.c_contiguous
            or np.may_share_memory(out, src)
        ):
            return np.empty_like(src), out
        return out, None

    # -- planned applies -----------------------------------------------------

    def apply_planned(self, state, step, nb_qubits, out=None):
        """One strided step on a ``(dim,)`` state, optionally into
        ``out``; non-specialized steps (and 2-D states) fall back to
        the inherited kernel paths."""
        aux = self._strided_aux(step)
        if (
            aux is None
            or state.ndim != 1
            or not state.flags.c_contiguous
        ):
            return super().apply_planned(state, step, nb_qubits)
        tag = aux[0]
        if tag == _ADIAG:
            fd = aux[1]
            if out is None or out is state:
                np.multiply(state, fd, out=state)
                return state
            if (
                not out.flags.c_contiguous
                or np.may_share_memory(out, state)
            ):
                np.copyto(out, state * fd)
                return out
            np.multiply(state, fd, out=out)
            return out
        dest, copy_to = self._dest(state, out)
        if tag == _A1Q_GEMM:
            _, left, width, op = aux
            np.matmul(
                state.reshape(left, width), op,
                out=dest.reshape(left, width),
            )
        else:  # _A1Q_BCAST
            _, left, right, kernel = aux
            np.matmul(
                kernel, state.reshape(left, 2, right),
                out=dest.reshape(left, 2, right),
            )
        if copy_to is not None:
            np.copyto(copy_to, dest)
            return copy_to
        return dest

    def apply_planned_batched(self, states, step, nb_qubits, out=None):
        """One strided step across a ``(B, 2**n)`` batch: the GEMM
        rows stack into one larger GEMM, the broadcast matmul gains a
        batch axis, the diagonal multiplier broadcasts over rows."""
        aux = self._strided_aux(step)
        if aux is None or not states.flags.c_contiguous:
            return super().apply_planned_batched(
                states, step, nb_qubits
            )
        self._validate_batch(states, nb_qubits)
        batch = states.shape[0]
        tag = aux[0]
        if tag == _ADIAG:
            fd = aux[1]
            if out is None or out is states:
                np.multiply(states, fd, out=states)
                return states
            if (
                not out.flags.c_contiguous
                or np.may_share_memory(out, states)
            ):
                np.copyto(out, states * fd)
                return out
            np.multiply(states, fd, out=out)
            return out
        dest, copy_to = self._dest(states, out)
        if tag == _A1Q_GEMM:
            _, left, width, op = aux
            np.matmul(
                states.reshape(batch * left, width), op,
                out=dest.reshape(batch * left, width),
            )
        else:  # _A1Q_BCAST
            _, left, right, kernel = aux
            np.matmul(
                kernel, states.reshape(batch, left, 2, right),
                out=dest.reshape(batch, left, 2, right),
            )
        if copy_to is not None:
            np.copyto(copy_to, dest)
            return copy_to
        return dest
