"""Stabilizer (Clifford tableau) simulation (extension).

The paper's QEC footnote notes that corrections "can be implemented
... entirely in software by tracking the Pauli frame"; the general
machinery behind that remark is stabilizer simulation.  This module
implements the Aaronson–Gottesman CHP tableau algorithm: Clifford
circuits on *hundreds* of qubits simulate in polynomial time, versus
the state-vector engines' exponential cost — the classic scaling
crossover reproduced in ``benchmarks/bench_b8_stabilizer.py``.

Supported gates: H, S, S†, X, Y, Z, CNOT/CX, CZ, SWAP (all Clifford);
measurements are computational-basis.  Non-Clifford gates raise
:class:`~repro.exceptions.SimulationError`.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.circuit.barrier import Barrier
from repro.circuit.circuit import QCircuit
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import SimulationError
from repro.gates import (
    CNOT,
    CZ,
    Hadamard,
    Identity,
    PauliX,
    PauliY,
    PauliZ,
    S,
    Sdg,
    SWAP,
)

__all__ = ["StabilizerState", "simulate_stabilizer", "stabilizer_counts"]


class StabilizerState:
    """A stabilizer state as a CHP tableau.

    Rows ``0..n-1`` are destabilizers, rows ``n..2n-1`` stabilizers;
    ``x``/``z`` are the binary symplectic parts, ``r`` the sign bits.
    Starts in ``|0...0>``.
    """

    def __init__(self, nb_qubits: int):
        if nb_qubits < 1:
            raise SimulationError("need at least one qubit")
        n = int(nb_qubits)
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1          # destabilizer X_i
            self.z[n + i, i] = 1      # stabilizer Z_i

    # -- Clifford generators --------------------------------------------------

    def h(self, q: int) -> None:
        """Hadamard on qubit ``q``: swaps X and Z columns."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = (
            self.z[:, q].copy(),
            self.x[:, q].copy(),
        )

    def s(self, q: int) -> None:
        """Phase gate S on qubit ``q``."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, q: int) -> None:
        """S† = S Z."""
        self.s(q)
        self.z_gate(q)

    def x_gate(self, q: int) -> None:
        """Pauli X: flips signs of rows with a Z component on ``q``."""
        self.r ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        """Pauli Z: flips signs of rows with an X component on ``q``."""
        self.r ^= self.x[:, q]

    def y_gate(self, q: int) -> None:
        """Pauli Y = iXZ."""
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def cnot(self, control: int, target: int) -> None:
        """CNOT with the CHP sign rule."""
        a, b = control, target
        self.r ^= (
            self.x[:, a]
            & self.z[:, b]
            & (self.x[:, b] ^ self.z[:, a] ^ 1)
        )
        self.x[:, b] ^= self.x[:, a]
        self.z[:, a] ^= self.z[:, b]

    def cz(self, a: int, b: int) -> None:
        """CZ = H(b) CNOT(a,b) H(b)."""
        self.h(b)
        self.cnot(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        """SWAP via three CNOTs."""
        self.cnot(a, b)
        self.cnot(b, a)
        self.cnot(a, b)

    # -- row algebra ------------------------------------------------------------

    def _g(self, x1, z1, x2, z2) -> int:
        """Phase exponent of multiplying single-qubit Paulis (CHP g)."""
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:  # Y
            return int(z2) - int(x2)
        if x1 == 1 and z1 == 0:  # X
            return int(z2) * (2 * int(x2) - 1)
        return int(x2) * (1 - 2 * int(z2))  # Z

    def _rowsum(self, h: int, i: int) -> None:
        """Row h <- row h * row i, tracking the sign."""
        phase = 2 * int(self.r[h]) + 2 * int(self.r[i])
        for q in range(self.n):
            phase += self._g(
                self.x[i, q], self.z[i, q], self.x[h, q], self.z[h, q]
            )
        self.r[h] = (phase % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    # -- measurement --------------------------------------------------------------

    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Measure qubit ``q`` in Z, collapsing the tableau."""
        n = self.n
        p = None
        for i in range(n, 2 * n):
            if self.x[i, q]:
                p = i
                break
        if p is not None:
            # random outcome
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            outcome = int(rng.integers(0, 2))
            self.r[p] = outcome
            return outcome
        # deterministic outcome: scratch row accumulation
        scratch_x = np.zeros(self.n, dtype=np.uint8)
        scratch_z = np.zeros(self.n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if self.x[i, q]:
                phase = 2 * scratch_r + 2 * int(self.r[n + i])
                for k in range(self.n):
                    phase += self._g(
                        self.x[n + i, k],
                        self.z[n + i, k],
                        scratch_x[k],
                        scratch_z[k],
                    )
                scratch_r = (phase % 4) // 2
                scratch_x ^= self.x[n + i]
                scratch_z ^= self.z[n + i]
        return int(scratch_r)

    def reset(self, q: int, rng: np.random.Generator) -> int:
        """Reset qubit ``q`` to |0> (measure, flip on 1)."""
        outcome = self.measure(q, rng)
        if outcome == 1:
            self.x_gate(q)
        return outcome


def _apply_clifford(state: StabilizerState, gate) -> None:
    if isinstance(gate, Identity):
        return
    if isinstance(gate, Hadamard):
        state.h(gate.qubit)
        return
    if type(gate) is S:
        state.s(gate.qubit)
        return
    if type(gate) is Sdg:
        state.sdg(gate.qubit)
        return
    if isinstance(gate, PauliX):
        state.x_gate(gate.qubit)
        return
    if isinstance(gate, PauliY):
        state.y_gate(gate.qubit)
        return
    if isinstance(gate, PauliZ):
        state.z_gate(gate.qubit)
        return
    if isinstance(gate, CNOT) and gate.control_state == 1:
        state.cnot(gate.control, gate.target)
        return
    if isinstance(gate, CZ) and gate.control_state == 1:
        state.cz(gate.control, gate.target)
        return
    if isinstance(gate, SWAP):
        a, b = gate.qubits
        state.swap(a, b)
        return
    raise SimulationError(
        f"{type(gate).__name__} is not a supported Clifford gate for "
        "the stabilizer backend"
    )


def simulate_stabilizer(
    circuit: QCircuit, rng=None
) -> tuple:
    """One stabilizer run of a Clifford circuit.

    Returns ``(result_string, StabilizerState)``; random measurement
    outcomes are drawn from ``rng``.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    state = StabilizerState(circuit.nbQubits)
    outcomes: List[str] = []
    for op, off in circuit.operations():
        if isinstance(op, Barrier):
            continue
        if isinstance(op, Measurement):
            if op.basis != "z":
                raise SimulationError(
                    "stabilizer backend supports Z-basis measurements "
                    "only (conjugate with Cliffords instead)"
                )
            outcomes.append(str(state.measure(op.qubit + off, rng)))
            continue
        if isinstance(op, Reset):
            outcome = state.reset(op.qubit + off, rng)
            if op.record:
                outcomes.append(str(outcome))
            continue
        _apply_clifford(state, op.shifted(off))
    return "".join(outcomes), state


def stabilizer_counts(
    circuit: QCircuit, shots: int = 1000, seed=None
) -> Dict[str, int]:
    """Outcome histogram of a Clifford circuit over ``shots`` runs."""
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    counts: Dict[str, int] = {}
    for _ in range(int(shots)):
        result, _state = simulate_stabilizer(circuit, rng=rng)
        counts[result] = counts.get(result, 0) + 1
    return counts


from repro.simulation.backends import register_engine  # noqa: E402

register_engine("stabilizer", "stabilizer", simulate_stabilizer)
