"""Reduced state vectors and partial traces.

Implements the paper's ``reducedStatevector`` (used in the teleportation
example to verify that the state arrived on the receiver's qubit) and a
general partial trace for density-matrix work (tomography).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.exceptions import StateError
from repro.utils.bits import bit_length_for, gather_indices

__all__ = ["reducedStatevector", "partial_trace"]


def reducedStatevector(
    state: np.ndarray,
    qubits: Sequence[int],
    values: Union[str, Sequence[int]],
    atol: float = 1e-8,
) -> np.ndarray:
    """Extract the state of the *remaining* qubits given known qubits.

    Mirrors QCLAB's ``reducedStatevector(state, qubits, values)``: the
    qubits in ``qubits`` are known to be in the computational basis
    state spelled by ``values`` (a bitstring like ``'00'`` or a 0/1
    sequence); the function returns the normalized state vector of the
    other qubits.

    Raises :class:`~repro.exceptions.StateError` if the state has
    (more than ``atol``) support outside the asserted subspace — i.e.
    when the known qubits are *not* actually in that basis state — or if
    all qubits are listed as known.

    Examples
    --------
    >>> import numpy as np
    >>> psi = np.zeros(8); psi[0b001] = 1.0   # |0 0 1>
    >>> reducedStatevector(psi, [0, 1], '00')
    array([0.+0.j, 1.+0.j])
    """
    state = np.asarray(state, dtype=np.complex128).ravel()
    nb_qubits = bit_length_for(state.size)
    if isinstance(values, str):
        bits = [int(c) for c in values]
        if any(b not in (0, 1) for b in bits):
            raise StateError(f"invalid bitstring {values!r}")
    else:
        bits = [int(b) for b in values]
    if len(bits) != len(qubits):
        raise StateError(
            f"{len(qubits)} qubit(s) but {len(bits)} value bit(s)"
        )
    if len(qubits) >= nb_qubits:
        raise StateError("cannot reduce away every qubit")

    idx = gather_indices(nb_qubits, list(qubits), bits)
    sub = state[idx]
    norm = np.linalg.norm(sub)
    total = np.linalg.norm(state)
    if norm < atol:
        raise StateError(
            "state has no support on the asserted subspace "
            f"(qubits {list(qubits)} = {bits})"
        )
    if abs(norm - total) > atol * max(1.0, total):
        raise StateError(
            "state has support outside the asserted subspace; the known "
            "qubits are not in a definite basis state"
        )
    return sub / norm


def partial_trace(
    state_or_rho: np.ndarray,
    keep: Sequence[int],
    nb_qubits: int | None = None,
) -> np.ndarray:
    """Partial trace onto the qubits in ``keep`` (ascending output order).

    Accepts a state vector (length ``2**n``) or a density matrix
    (``2**n x 2**n``); returns the reduced density matrix over ``keep``.
    """
    arr = np.asarray(state_or_rho, dtype=np.complex128)
    if arr.ndim == 1:
        n = bit_length_for(arr.size)
        rho = None
    elif arr.ndim == 2 and arr.shape[0] == arr.shape[1]:
        n = bit_length_for(arr.shape[0])
        rho = arr
    else:
        raise StateError(
            f"expected a state vector or square density matrix, got shape "
            f"{arr.shape}"
        )
    if nb_qubits is not None and nb_qubits != n:
        raise StateError(
            f"nb_qubits={nb_qubits} does not match array size for {n} "
            "qubit(s)"
        )
    keep = sorted(set(int(q) for q in keep))
    if any(q < 0 or q >= n for q in keep):
        raise StateError(f"keep qubits {keep} out of range for {n} qubit(s)")
    if not keep:
        raise StateError("must keep at least one qubit")
    drop = [q for q in range(n) if q not in keep]
    k = len(keep)

    if rho is None:
        # psi as tensor, reshape into (kept, dropped) and contract.
        psi = arr.reshape((2,) * n)
        psi = np.transpose(psi, keep + drop).reshape(1 << k, -1)
        return psi @ psi.conj().T

    t = rho.reshape((2,) * (2 * n))
    perm = keep + drop + [n + q for q in keep] + [n + q for q in drop]
    t = np.transpose(t, perm).reshape(
        1 << k, 1 << (n - k), 1 << k, 1 << (n - k)
    )
    return np.einsum("arbr->ab", t)
