"""Initial-state construction and validation.

The paper (Section 3.1) lets a simulation start from either a bitstring
(``'00'``) or an explicit state vector (``[1; 0; 0; 0]``); both routes
are implemented here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StateError
from repro.utils.bits import bit_length_for, bitstring_to_index

__all__ = ["basis_state", "initial_state", "random_state"]


def basis_state(bits: str, dtype=np.complex128) -> np.ndarray:
    """The computational basis state for a bitstring (q0 first).

    >>> basis_state('10')
    array([0.+0.j, 0.+0.j, 1.+0.j, 0.+0.j])
    """
    index = bitstring_to_index(bits)
    state = np.zeros(1 << len(bits), dtype=dtype)
    state[index] = 1.0
    return state


def initial_state(start, nb_qubits: int, dtype=np.complex128) -> np.ndarray:
    """Build and validate the initial state of a simulation.

    Parameters
    ----------
    start:
        A bitstring of length ``nb_qubits`` or an array of length
        ``2**nb_qubits`` with unit 2-norm.
    nb_qubits:
        Register width.

    Returns
    -------
    numpy.ndarray
        A fresh, owned ``complex`` copy (safe to mutate in place).
    """
    if isinstance(start, str):
        if len(start) != nb_qubits:
            raise StateError(
                f"bitstring {start!r} has length {len(start)}, expected "
                f"{nb_qubits}"
            )
        return basis_state(start, dtype)
    state = np.array(start, dtype=dtype).ravel()
    if state.size != (1 << nb_qubits):
        raise StateError(
            f"state vector of length {state.size} does not fit "
            f"{nb_qubits} qubit(s) (expected {1 << nb_qubits})"
        )
    # tolerance follows the working precision (and the input's own, for
    # single-precision vectors passed into a double simulation)
    in_dtype = getattr(start, "dtype", None)
    single = np.dtype(dtype) == np.dtype(np.complex64) or (
        in_dtype is not None and in_dtype == np.dtype(np.complex64)
    )
    atol = 1e-5 if single else 1e-8
    norm = np.linalg.norm(state)
    if abs(norm - 1.0) > atol:
        raise StateError(
            f"initial state is not normalized (|state| = {norm:.6g})"
        )
    return state


def random_state(nb_qubits: int, rng=None, dtype=np.complex128) -> np.ndarray:
    """A Haar-ish random normalized state (Gaussian components).

    Used by the test-suite and the benchmarks; ``rng`` may be a seed or
    a :class:`numpy.random.Generator`.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    dim = 1 << nb_qubits
    state = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    state /= np.linalg.norm(state)
    return state.astype(dtype)


def nb_qubits_of(state: np.ndarray) -> int:
    """Number of qubits of a state vector (validates the length)."""
    return bit_length_for(np.asarray(state).ravel().size)
