"""Level-2 acceleration: the opt-in Numba JIT backend.

:class:`JitBackend` compiles bitwise statevector kernels with Numba
(``pip install .[accel]``) for the same step classes the Level-1
:class:`~repro.simulation.accel.StridedBackend` specializes — plus a
compiled gather/matmul/scatter loop for multi-qubit and controlled
steps, so every planned step class runs inside generated machine code:

* one-qubit steps: a single fused pass (read once, write once) over
  the ``(left, 2, right)`` index structure — no intermediate arrays,
  no BLAS dispatch overhead;
* diagonal steps: one fused elementwise multiply against the
  full-register multiplier prepared by the Level-1 tier;
* multi-qubit / controlled steps: an in-place gather -> dense
  mat-vec -> scatter loop over the plan's row tables.

Everything is import-guarded: when ``numba`` is not installed this
module still imports cleanly, :data:`HAVE_NUMBA` is ``False``, the
backend does NOT register (``'jit'`` absent from
:func:`~repro.simulation.available_backends`) and instantiating
:class:`JitBackend` raises a clear
:class:`~repro.exceptions.SimulationError`.  With ``numba``
available the backend registers itself via ``register_backend`` and
drops into the conformance matrix, ``InstrumentedBackend`` and the
flight recorder exactly like every other engine.  Kernels compile
lazily on first use and cache to disk (``cache=True``), so repeated
processes skip the JIT warm-up.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.simulation.accel import (
    _A1Q_BCAST,
    _A1Q_GEMM,
    _ADIAG,
    StridedBackend,
)
from repro.simulation.backends import register_backend

__all__ = ["JitBackend", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # the default install: Level 2 is simply absent
    njit = None
    HAVE_NUMBA = False

#: JIT-specific step.aux tag for the compiled one-qubit pass (the
#: diagonal tag is shared with the Level-1 tier).
_AJIT_1Q = "jit.1q"
#: JIT-specific tag for the compiled gather/matmul/scatter loop.
_AJIT_ROWS = "jit.rows"


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _jit_1q(src, dst, k00, k01, k10, k11, left, right):
        """Fused one-qubit apply on the (left, 2, right) structure."""
        width = 2 * right
        for block in range(left):
            base = block * width
            for r in range(right):
                i0 = base + r
                i1 = i0 + right
                a = src[i0]
                b = src[i1]
                dst[i0] = k00 * a + k01 * b
                dst[i1] = k10 * a + k11 * b

    @njit(cache=True)
    def _jit_1q_batched(src, dst, k00, k01, k10, k11, left, right):
        width = 2 * right
        for row in range(src.shape[0]):
            s = src[row]
            d = dst[row]
            for block in range(left):
                base = block * width
                for r in range(right):
                    i0 = base + r
                    i1 = i0 + right
                    a = s[i0]
                    b = s[i1]
                    d[i0] = k00 * a + k01 * b
                    d[i1] = k10 * a + k11 * b

    @njit(cache=True)
    def _jit_diag(src, dst, fd):
        """Fused full-register diagonal multiply (dst may be src)."""
        for i in range(src.shape[0]):
            dst[i] = src[i] * fd[i]

    @njit(cache=True)
    def _jit_diag_batched(src, dst, fd):
        for row in range(src.shape[0]):
            for i in range(src.shape[1]):
                dst[row, i] = src[row, i] * fd[i]

    @njit(cache=True)
    def _jit_rows(state, rows, kernel):
        """In-place gather -> dense mat-vec -> scatter over row tables."""
        groups, m = rows.shape
        tmp = np.empty(m, dtype=state.dtype)
        for g in range(groups):
            for i in range(m):
                tmp[i] = state[rows[g, i]]
            for i in range(m):
                acc = kernel[i, 0] * tmp[0]
                for j in range(1, m):
                    acc += kernel[i, j] * tmp[j]
                state[rows[g, i]] = acc

    @njit(cache=True)
    def _jit_rows_batched(states, rows, kernel):
        groups, m = rows.shape
        tmp = np.empty(m, dtype=states.dtype)
        for row in range(states.shape[0]):
            state = states[row]
            for g in range(groups):
                for i in range(m):
                    tmp[i] = state[rows[g, i]]
                for i in range(m):
                    acc = kernel[i, 0] * tmp[0]
                    for j in range(1, m):
                        acc += kernel[i, j] * tmp[j]
                    state[rows[g, i]] = acc


class JitBackend(StridedBackend):
    """Numba-compiled bitwise kernels (Level-2 acceleration tier)."""

    name = "jit"
    supports_out = True

    def __init__(self):
        if not HAVE_NUMBA:
            raise SimulationError(
                "the 'jit' backend needs numba; install the optional "
                "acceleration tier with: pip install .[accel]"
            )

    # -- plan hooks ----------------------------------------------------------

    def _prepare_strided(self, step, nb_qubits, tables):
        """Attach the JIT payload: kernel scalars for one-qubit steps,
        the shared full-register multiplier for diagonals, contiguous
        row tables + kernel for everything else."""
        super()._prepare_strided(step, nb_qubits, tables)
        aux = step.aux
        if isinstance(aux, tuple) and aux:
            if aux[0] == _A1Q_GEMM:
                # re-derive (left, right) from the GEMM payload; the
                # compiled pass wants the raw 2x2 entries, not kron
                left, width = aux[1], aux[2]
                step.aux = (
                    _AJIT_1Q, left, width // 2,
                    np.ascontiguousarray(step.kernel),
                )
                return
            if aux[0] == _A1Q_BCAST:
                step.aux = (_AJIT_1Q, aux[1], aux[2], aux[3])
                return
            if aux[0] == _ADIAG:
                return  # the full-register multiplier serves both tiers
        if step.rows is not None and not step.diagonal:
            step.aux = (
                _AJIT_ROWS,
                np.ascontiguousarray(step.rows),
                np.ascontiguousarray(step.kernel),
            )

    # -- planned applies -----------------------------------------------------

    def apply_planned(self, state, step, nb_qubits, out=None):
        """One compiled kernel over the jit tables; falls back to the
        strided (then kernel) implementation for step shapes the jit
        tier doesn't compile.  Honors the ``out=`` alias-safety
        contract of :class:`~repro.simulation.Backend`."""
        aux = step.aux
        if (
            not isinstance(aux, tuple)
            or not aux
            or state.ndim != 1
            or not state.flags.c_contiguous
        ):
            return super().apply_planned(state, step, nb_qubits, out=out)
        tag = aux[0]
        if tag == _AJIT_1Q:
            _, left, right, kernel = aux
            dest, copy_to = self._dest(state, out)
            _jit_1q(
                state, dest,
                kernel[0, 0], kernel[0, 1],
                kernel[1, 0], kernel[1, 1],
                left, right,
            )
            if copy_to is not None:
                np.copyto(copy_to, dest)
                return copy_to
            return dest
        if tag == _ADIAG:
            fd = aux[1]
            if out is None or out is state:
                _jit_diag(state, state, fd)
                return state
            if (
                not out.flags.c_contiguous
                or np.may_share_memory(out, state)
            ):
                np.copyto(out, state * fd)
                return out
            _jit_diag(state, out, fd)
            return out
        if tag == _AJIT_ROWS:
            _, rows, kernel = aux
            _jit_rows(state, rows, kernel)
            return state
        return super().apply_planned(state, step, nb_qubits, out=out)

    def apply_planned_batched(self, states, step, nb_qubits, out=None):
        """The batched twin of :meth:`apply_planned`: one compiled
        pass over the whole ``(B, 2**n)`` batch per plan step."""
        aux = step.aux
        if (
            not isinstance(aux, tuple)
            or not aux
            or not states.flags.c_contiguous
        ):
            return super().apply_planned_batched(
                states, step, nb_qubits, out=out
            )
        self._validate_batch(states, nb_qubits)
        tag = aux[0]
        if tag == _AJIT_1Q:
            _, left, right, kernel = aux
            dest, copy_to = self._dest(states, out)
            _jit_1q_batched(
                states, dest,
                kernel[0, 0], kernel[0, 1],
                kernel[1, 0], kernel[1, 1],
                left, right,
            )
            if copy_to is not None:
                np.copyto(copy_to, dest)
                return copy_to
            return dest
        if tag == _ADIAG:
            fd = aux[1]
            if out is None or out is states:
                _jit_diag_batched(states, states, fd)
                return states
            if (
                not out.flags.c_contiguous
                or np.may_share_memory(out, states)
            ):
                np.copyto(out, states * fd)
                return out
            _jit_diag_batched(states, out, fd)
            return out
        if tag == _AJIT_ROWS:
            _, rows, kernel = aux
            _jit_rows_batched(states, rows, kernel)
            return states
        return super().apply_planned_batched(
            states, step, nb_qubits, out=out
        )


if HAVE_NUMBA:  # registration is the availability switch
    register_backend(JitBackend)
