"""Interchangeable gate-application backends.

Three engines implement the same :class:`Backend` interface:

``SparseKronBackend``
    The paper's reference algorithm (Section 3.2): build the sparse
    extended operator ``I_l (x) U (x) I_r`` (generalized to non-adjacent
    and controlled gates) and multiply it with the state vector.  This
    is exactly what QCLAB does in MATLAB.

``KernelBackend``
    The QCLAB++-style optimized engine: never materializes a register
    operator.  One-qubit gates apply through a strided reshape; k-qubit
    and controlled gates gather only the active subspace with bitwise
    index maps; diagonal gates multiply amplitudes in place.

``EinsumBackend``
    A tensor-contraction engine (``reshape``/``tensordot``/``moveaxis``)
    used as a third point of comparison and as a cross-validation oracle
    in the test suite.

All backends accept states of shape ``(dim,)`` or batches ``(dim, m)``
(the latter powers :attr:`QCircuit.matrix`).  Backends may modify the
input array in place and/or return a new array; callers must use the
**returned** array and pass owned storage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SimulationError
from repro.gates.base import controlled_matrix
from repro.utils.bits import gather_indices, insert_bits, subindex_map

__all__ = [
    "Backend",
    "KernelBackend",
    "SparseKronBackend",
    "EinsumBackend",
    "get_backend",
    "default_backend",
    "available_backends",
]


class Backend(ABC):
    """Applies gate kernels to state vectors."""

    #: Registry name; subclasses override.
    name = "abstract"

    @abstractmethod
    def apply(
        self,
        state: np.ndarray,
        kernel: np.ndarray,
        targets: Sequence[int],
        nb_qubits: int,
        controls: Sequence[int] = (),
        control_states: Sequence[int] = (),
        diagonal: bool = False,
    ) -> np.ndarray:
        """Apply ``kernel`` on ``targets`` (ascending absolute qubits),
        restricted to the subspace where each control qubit holds its
        control state.  ``diagonal=True`` promises the kernel is
        diagonal, enabling in-place fast paths."""

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def _as_2d(state: np.ndarray):
        """View the state as ``(dim, m)``; returns (view, original shape)."""
        shape = state.shape
        if state.ndim == 1:
            return state.reshape(-1, 1), shape
        if state.ndim == 2:
            return state, shape
        raise SimulationError(
            f"state must be 1- or 2-dimensional, got shape {shape}"
        )

    @staticmethod
    def _validate(kernel, targets, nb_qubits, controls, control_states):
        t = len(targets)
        if kernel.shape != (1 << t, 1 << t):
            raise SimulationError(
                f"kernel shape {kernel.shape} does not match "
                f"{t} target qubit(s)"
            )
        if len(controls) != len(control_states):
            raise SimulationError(
                "controls and control_states must have equal length"
            )
        seen = set()
        for q in list(targets) + list(controls):
            if not 0 <= q < nb_qubits:
                raise SimulationError(
                    f"qubit {q} out of range for {nb_qubits} qubit(s)"
                )
            if q in seen:
                raise SimulationError(f"duplicate qubit {q} in gate")
            seen.add(q)
        if list(targets) != sorted(targets):
            raise SimulationError("targets must be sorted ascending")


class KernelBackend(Backend):
    """QCLAB++-style vectorized index kernels (the optimized engine)."""

    name = "kernel"

    def apply(
        self,
        state,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        state2d, shape = self._as_2d(state)
        kernel = np.asarray(kernel, dtype=state2d.dtype)

        if not controls:
            if len(targets) == 1:
                out = self._apply_1q(
                    state2d, kernel, targets[0], nb_qubits, diagonal
                )
            else:
                out = self._apply_kq(
                    state2d, kernel, targets, nb_qubits, diagonal
                )
            return out.reshape(shape)

        # Controlled path: restrict to the control-matching subspace,
        # then apply the kernel on the targets inside that subspace.
        sub = gather_indices(nb_qubits, list(controls), list(control_states))
        others = [q for q in range(nb_qubits) if q not in set(controls)]
        local_targets = [others.index(q) for q in targets]
        rows = sub[subindex_map(len(others), local_targets)]
        if diagonal:
            d = np.diag(kernel)
            state2d[rows.ravel()] *= np.repeat(d, rows.shape[1])[:, None]
            return state2d.reshape(shape)
        gathered = state2d[rows.ravel()].reshape(
            rows.shape[0], rows.shape[1] * state2d.shape[1]
        )
        state2d[rows.ravel()] = (kernel @ gathered).reshape(
            -1, state2d.shape[1]
        )
        return state2d.reshape(shape)

    @staticmethod
    def _apply_1q(state2d, kernel, target, nb_qubits, diagonal):
        m = state2d.shape[1]
        left = 1 << target
        right = 1 << (nb_qubits - 1 - target)
        view = state2d.reshape(left, 2, right * m)
        if diagonal:
            view[:, 0, :] *= kernel[0, 0]
            view[:, 1, :] *= kernel[1, 1]
            # reshape copies when state2d is non-contiguous (e.g. a
            # transposed density matrix); returning the mutated `view`
            # is correct in both cases, `state2d` only in the view case.
            return view.reshape(state2d.shape)
        out = np.einsum("ab,lbr->lar", kernel, view)
        return out.reshape(state2d.shape)

    @staticmethod
    def _apply_kq(state2d, kernel, targets, nb_qubits, diagonal):
        rows = subindex_map(nb_qubits, list(targets))
        if diagonal:
            d = np.diag(kernel)
            state2d[rows.ravel()] *= np.repeat(d, rows.shape[1])[:, None]
            return state2d
        m = state2d.shape[1]
        gathered = state2d[rows.ravel()].reshape(
            rows.shape[0], rows.shape[1] * m
        )
        state2d[rows.ravel()] = (kernel @ gathered).reshape(-1, m)
        return state2d


class SparseKronBackend(Backend):
    """The paper's reference algorithm: sparse extended operators.

    For a gate kernel ``U'`` the backend materializes the sparse matrix
    ``U = I_l (x) U' (x) I_r`` (generalized via bit-deposit index
    construction so that non-adjacent qubit sets and controls work the
    same way) and computes ``U @ state``.
    """

    name = "sparse"

    def apply(
        self,
        state,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        state2d, shape = self._as_2d(state)
        kernel = np.asarray(kernel, dtype=state2d.dtype)
        op = self.extended_operator(
            kernel, targets, nb_qubits, controls, control_states
        )
        out = np.asarray(op @ state2d, dtype=state2d.dtype)
        return out.reshape(shape)

    @staticmethod
    def extended_operator(
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
    ) -> sp.csr_matrix:
        """Build the full-register sparse operator for a gate.

        Controls are folded into the kernel (projector expansion), then
        every nonzero kernel entry ``(a, b)`` is deposited at the
        ``2**(n-k)`` register index pairs that agree on the spectator
        qubits — exactly the sparse ``I_l (x) U (x) I_r`` of the paper,
        generalized to arbitrary qubit subsets.
        """
        if controls:
            qubits_all = sorted(list(targets) + list(controls))
            full_kernel = controlled_matrix(
                kernel, qubits_all, list(controls), list(control_states),
                list(targets),
            )
        else:
            qubits_all = sorted(targets)
            full_kernel = kernel
        k = len(qubits_all)
        positions = [nb_qubits - 1 - q for q in qubits_all]
        coo = sp.coo_matrix(full_kernel)
        rest = np.arange(1 << (nb_qubits - k), dtype=np.int64)
        nrest = rest.size
        rows = np.empty(coo.nnz * nrest, dtype=np.int64)
        cols = np.empty(coo.nnz * nrest, dtype=np.int64)
        vals = np.empty(coo.nnz * nrest, dtype=np.complex128)
        for i, (a, b, v) in enumerate(zip(coo.row, coo.col, coo.data)):
            bits_a = [(int(a) >> (k - 1 - j)) & 1 for j in range(k)]
            bits_b = [(int(b) >> (k - 1 - j)) & 1 for j in range(k)]
            rows[i * nrest : (i + 1) * nrest] = insert_bits(
                rest, positions, bits_a
            )
            cols[i * nrest : (i + 1) * nrest] = insert_bits(
                rest, positions, bits_b
            )
            vals[i * nrest : (i + 1) * nrest] = v
        dim = 1 << nb_qubits
        return sp.csr_matrix((vals, (rows, cols)), shape=(dim, dim))


class EinsumBackend(Backend):
    """Tensor-contraction engine (cross-validation oracle)."""

    name = "einsum"

    def apply(
        self,
        state,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        state2d, shape = self._as_2d(state)
        kernel = np.asarray(kernel, dtype=state2d.dtype)
        if controls:
            qubits_all = sorted(list(targets) + list(controls))
            full_kernel = controlled_matrix(
                kernel, qubits_all, list(controls), list(control_states),
                list(targets),
            )
        else:
            qubits_all = sorted(targets)
            full_kernel = kernel
        k = len(qubits_all)
        m = state2d.shape[1]
        psi = state2d.reshape((2,) * nb_qubits + (m,))
        ut = full_kernel.reshape((2,) * (2 * k))
        contracted = np.tensordot(
            ut, psi, axes=(list(range(k, 2 * k)), list(qubits_all))
        )
        # tensordot puts the kernel's row axes first; move them back to
        # their register positions.
        out = np.moveaxis(contracted, list(range(k)), list(qubits_all))
        return np.ascontiguousarray(out).reshape(shape)


_REGISTRY = {
    KernelBackend.name: KernelBackend,
    SparseKronBackend.name: SparseKronBackend,
    EinsumBackend.name: EinsumBackend,
}

_DEFAULT = KernelBackend()


def available_backends() -> tuple:
    """Names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def get_backend(backend) -> Backend:
    """Resolve a backend name or instance to a :class:`Backend`."""
    if isinstance(backend, Backend):
        return backend
    try:
        return _REGISTRY[str(backend).lower()]()
    except KeyError:
        raise SimulationError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        ) from None


def default_backend() -> Backend:
    """The package default (the optimized kernel backend)."""
    return _DEFAULT
