"""Interchangeable gate-application backends.

Three engines implement the same :class:`Backend` interface:

``SparseKronBackend``
    The paper's reference algorithm (Section 3.2): build the sparse
    extended operator ``I_l (x) U (x) I_r`` (generalized to non-adjacent
    and controlled gates) and multiply it with the state vector.  This
    is exactly what QCLAB does in MATLAB.

``KernelBackend``
    The QCLAB++-style optimized engine: never materializes a register
    operator.  One-qubit gates apply through a strided reshape; k-qubit
    and controlled gates gather only the active subspace with bitwise
    index maps; diagonal gates multiply amplitudes in place.

``EinsumBackend``
    A tensor-contraction engine (``reshape``/``tensordot``/``moveaxis``)
    used as a third point of comparison and as a cross-validation oracle
    in the test suite.

All backends accept states of shape ``(dim,)`` or batches ``(dim, m)``
(the latter powers :attr:`QCircuit.matrix`).  Backends may modify the
input array in place and/or return a new array; callers must use the
**returned** array and pass owned storage.

The acceleration tier (:mod:`repro.simulation.accel`,
:mod:`repro.simulation.jit`) extends this protocol with an ``out=``
scratch-buffer convention on :meth:`Backend.apply_planned` and
:meth:`Backend.apply_planned_batched`: backends that set
``supports_out = True`` accept a preallocated destination buffer so
dispatch loops can double-buffer two arrays for a whole run instead of
allocating per step.  The default (``supports_out = False``,
``out=None``) keeps every existing backend — including third-party
subclasses with legacy three-argument overrides — working unchanged,
because callers only pass ``out=`` after checking ``supports_out``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SimulationError
from repro.gates.base import controlled_matrix
from repro.utils.bits import gather_indices, insert_bits, subindex_map

__all__ = [
    "Backend",
    "KernelBackend",
    "SparseKronBackend",
    "EinsumBackend",
    "get_backend",
    "default_backend",
    "available_backends",
    "register_backend",
    "register_engine",
    "get_engine",
]


class Backend(ABC):
    """Applies gate kernels to state vectors."""

    #: Registry name; subclasses override.
    name = "abstract"

    #: Engine-registry kind for gate-apply backends.
    kind = "statevector"

    #: Whether :meth:`apply_planned` / :meth:`apply_planned_batched`
    #: honor the ``out=`` scratch-buffer convention.  Callers must only
    #: pass ``out=`` when this is ``True``, which keeps third-party
    #: subclasses with legacy three-argument overrides working.  An
    #: opted-in backend guarantees: the returned array is ``state``,
    #: ``out`` or a fresh allocation, and results are correct even when
    #: ``out`` aliases or overlaps ``state`` (alias-safe).
    supports_out = False

    @abstractmethod
    def apply(
        self,
        state: np.ndarray,
        kernel: np.ndarray,
        targets: Sequence[int],
        nb_qubits: int,
        controls: Sequence[int] = (),
        control_states: Sequence[int] = (),
        diagonal: bool = False,
    ) -> np.ndarray:
        """Apply ``kernel`` on ``targets`` (ascending absolute qubits),
        restricted to the subspace where each control qubit holds its
        control state.  ``diagonal=True`` promises the kernel is
        diagonal, enabling in-place fast paths."""

    # -- compiled-plan hooks ------------------------------------------------

    def prepare_step(self, step, nb_qubits: int, tables: dict) -> None:
        """Precompute backend-specific data for one plan step.

        Called once at compile time by
        :func:`repro.simulation.plan.compile_circuit`; ``tables`` is a
        per-plan scratch cache so steps with identical index structure
        share their tables.  The default prepares nothing —
        :meth:`apply_planned` falls back to :meth:`apply`.
        """

    def refresh_step(self, step, nb_qubits: int, tables: dict) -> None:
        """Recompute the value-dependent pieces of an already-prepared
        step after its kernel changed (a parametric re-``bind``).

        The default conservatively clears every derived field and
        re-runs :meth:`prepare_step`; backends whose index tables are
        value-independent override this to refresh only what actually
        follows the kernel values.
        """
        step.rows = None
        step.flat_rows = None
        step.diag_rep = None
        step.diag_flat = None
        step.aux = None
        self.prepare_step(step, nb_qubits, tables)

    def planned_bytes(self, step, states, nb_qubits: int) -> int:
        """Approximate bytes read+written by one application of
        ``step`` to ``states`` (a ``(dim,)`` state or ``(B, dim)``
        batch).

        Feeds the per-op cost-attribution table
        (:meth:`repro.observability.ProfileReport.op_table`); the
        default assumes the whole state is streamed in and out once.
        Backends that touch only a gathered subspace override this.
        """
        return 2 * states.nbytes

    def apply_planned(self, state, step, nb_qubits: int, out=None):
        """Apply one compiled gate step (see
        :class:`repro.simulation.plan.PlanStep`).

        The default delegates to :meth:`apply` with the step's
        pre-resolved absolute qubits and dtype-cast kernel; optimized
        backends override this to reuse the index tables attached by
        :meth:`prepare_step`.

        ``out`` is an optional preallocated destination (same shape
        and dtype as ``state``).  The base implementation ignores it —
        only backends with :attr:`supports_out` set write into it, and
        callers must check that attribute before passing one.
        """
        return self.apply(
            state,
            step.kernel,
            step.targets,
            nb_qubits,
            controls=step.controls,
            control_states=step.control_states,
            diagonal=step.diagonal,
        )

    # -- batched (trajectory-ensemble) hooks --------------------------------
    #
    # A batch is ``B`` independent state vectors stacked on a leading
    # axis, shape ``(B, 2**nb_qubits)`` — the layout of the batched
    # trajectory engine (:mod:`repro.noise.trajectory`).  The defaults
    # loop over the batch rows; vectorized backends override them to
    # execute each kernel ONCE across the whole batch.

    def apply_batched(
        self,
        states: np.ndarray,
        kernel: np.ndarray,
        targets: Sequence[int],
        nb_qubits: int,
        controls: Sequence[int] = (),
        control_states: Sequence[int] = (),
        diagonal: bool = False,
    ) -> np.ndarray:
        """Apply ``kernel`` to every row of a ``(B, 2**n)`` batch.

        Semantics per row match :meth:`apply`; the batch may be
        modified in place and/or a new array returned — callers use
        the **returned** array.
        """
        self._validate_batch(states, nb_qubits)
        for i in range(states.shape[0]):
            states[i] = self.apply(
                states[i], kernel, targets, nb_qubits,
                controls=controls, control_states=control_states,
                diagonal=diagonal,
            )
        return states

    def apply_planned_batched(
        self, states: np.ndarray, step, nb_qubits: int, out=None
    ) -> np.ndarray:
        """Apply one compiled gate step to a ``(B, 2**n)`` batch.

        The default loops :meth:`apply_planned` over the rows;
        vectorized backends execute the step once across the batch.
        For :attr:`supports_out` backends the loop reuses ONE scratch
        row (the first row of ``out`` when given, a single fresh row
        otherwise) instead of letting every row apply allocate its own
        result, and rows whose apply ran in place skip the redundant
        self-assignment.
        """
        self._validate_batch(states, nb_qubits)
        row = None
        if self.supports_out and out is not None and out is not states:
            row = out[0]
        for i in range(states.shape[0]):
            src = states[i]
            if self.supports_out:
                if row is None:
                    row = np.empty_like(src)
                res = self.apply_planned(src, step, nb_qubits, out=row)
            else:
                res = self.apply_planned(src, step, nb_qubits)
            if res is not src:
                states[i] = res
        return states

    # -- parameter-axis (sweep) hooks ---------------------------------------
    #
    # A sweep batch is ``P`` parameter points stacked on a leading
    # axis, shape ``(P, 2**nb_qubits)``, with ``kernels`` holding one
    # kernel PER ROW, shape ``(P, 2**k, 2**k)`` — unlike the batched
    # hooks above, where one kernel serves every row.

    def apply_planned_sweep(
        self, states: np.ndarray, step, nb_qubits: int,
        kernels: np.ndarray,
    ) -> np.ndarray:
        """Apply a parametric plan step with per-row kernels across a
        ``(P, 2**n)`` parameter batch.

        ``kernels[i]`` is the dtype-cast target kernel for row ``i``
        (controls/targets/diagonality come from ``step``).  The default
        loops :meth:`apply` per row; vectorized backends contract the
        whole kernel stack at once.
        """
        self._validate_batch(states, nb_qubits)
        for i in range(states.shape[0]):
            states[i] = self.apply(
                states[i], kernels[i], step.targets, nb_qubits,
                controls=step.controls,
                control_states=step.control_states,
                diagonal=step.diagonal,
            )
        return states

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def _validate_batch(states: np.ndarray, nb_qubits: int) -> None:
        if states.ndim != 2 or states.shape[1] != (1 << nb_qubits):
            raise SimulationError(
                f"batch must have shape (B, {1 << nb_qubits}), got "
                f"{states.shape}"
            )

    @staticmethod
    def _as_2d(state: np.ndarray):
        """View the state as ``(dim, m)``; returns (view, original shape)."""
        shape = state.shape
        if state.ndim == 1:
            return state.reshape(-1, 1), shape
        if state.ndim == 2:
            return state, shape
        raise SimulationError(
            f"state must be 1- or 2-dimensional, got shape {shape}"
        )

    @staticmethod
    def _validate(kernel, targets, nb_qubits, controls, control_states):
        t = len(targets)
        if kernel.shape != (1 << t, 1 << t):
            raise SimulationError(
                f"kernel shape {kernel.shape} does not match "
                f"{t} target qubit(s)"
            )
        if len(controls) != len(control_states):
            raise SimulationError(
                "controls and control_states must have equal length"
            )
        seen = set()
        for q in list(targets) + list(controls):
            if not 0 <= q < nb_qubits:
                raise SimulationError(
                    f"qubit {q} out of range for {nb_qubits} qubit(s)"
                )
            if q in seen:
                raise SimulationError(f"duplicate qubit {q} in gate")
            seen.add(q)
        if list(targets) != sorted(targets):
            raise SimulationError("targets must be sorted ascending")


class KernelBackend(Backend):
    """QCLAB++-style vectorized index kernels (the optimized engine)."""

    name = "kernel"

    def prepare_step(self, step, nb_qubits, tables):
        """Attach gather-row index tables (shared via ``tables``)
        for multi-target/controlled steps; 1q steps need none."""
        if not step.controls:
            if len(step.targets) == 1:
                return  # strided-reshape fast path needs no tables
            key = ("sub", step.targets)
            rows = tables.get(key)
            if rows is None:
                rows = subindex_map(nb_qubits, list(step.targets))
                tables[key] = rows
        else:
            key = (
                "ctrl", step.targets, step.controls, step.control_states,
            )
            rows = tables.get(key)
            if rows is None:
                sub = gather_indices(
                    nb_qubits, list(step.controls),
                    list(step.control_states),
                )
                others = [
                    q for q in range(nb_qubits)
                    if q not in set(step.controls)
                ]
                local_targets = [others.index(q) for q in step.targets]
                rows = sub[subindex_map(len(others), local_targets)]
                tables[key] = rows
        step.rows = rows
        step.flat_rows = np.ascontiguousarray(rows).ravel()
        if step.diagonal:
            # the expanded diagonal is shared through the plan tables so
            # signature-equal diagonal steps reuse one allocation instead
            # of re-running np.repeat per step (or worse, per apply)
            dkey = ("diag_rep", key, step.diag.tobytes())
            rep = tables.get(dkey)
            if rep is None:
                rep = np.repeat(step.diag, rows.shape[1])[:, None]
                tables[dkey] = rep
            step.diag_rep = rep
            # flat view of the same buffer, broadcast over batch rows
            step.diag_flat = rep.ravel()

    def planned_bytes(self, step, states, nb_qubits):
        """Subspace-aware byte estimate: steps with gather-row tables
        touch only ``rows.size`` amplitudes per state; 1q strided steps
        stream the full state."""
        if step.rows is None:
            return 2 * states.nbytes
        dim = 1 << nb_qubits
        nb_states = states.size // dim
        return 2 * step.rows.size * states.itemsize * nb_states

    def refresh_step(self, step, nb_qubits, tables):
        """Value-only refresh after a parametric re-bind: the gather-row
        index tables depend only on the step's structure and are kept;
        only the expanded diagonal views follow the new kernel."""
        if step.diagonal and step.rows is not None:
            rep = np.repeat(step.diag, step.rows.shape[1])[:, None]
            step.diag_rep = rep
            step.diag_flat = rep.ravel()

    def apply_planned(self, state, step, nb_qubits):
        """Strided-reshape fast path for 1q steps; gather/matmul/
        scatter over the precomputed row tables otherwise."""
        state2d, shape = self._as_2d(state)
        rows = step.rows
        if rows is None:
            out = self._apply_1q(
                state2d, step.kernel, step.targets[0], nb_qubits,
                step.diagonal,
            )
            return out.reshape(shape)
        flat = step.flat_rows
        if step.diagonal:
            state2d[flat] *= step.diag_rep
            return state2d.reshape(shape)
        m = state2d.shape[1]
        gathered = state2d[flat].reshape(rows.shape[0], rows.shape[1] * m)
        state2d[flat] = (step.kernel @ gathered).reshape(-1, m)
        return state2d.reshape(shape)

    def apply_planned_batched(self, states, step, nb_qubits):
        """One vectorized kernel application across the whole
        ``(B, 2**n)`` batch, reusing the plan's row tables."""
        rows = step.rows
        B = states.shape[0]
        if rows is None:
            return self._apply_1q_batched(
                states, step.kernel, step.targets[0], step.diagonal
            )
        flat = step.flat_rows
        if step.diagonal:
            states[:, flat] *= step.diag_flat
            return states
        gathered = states[:, flat].reshape(B, rows.shape[0], rows.shape[1])
        states[:, flat] = np.matmul(step.kernel, gathered).reshape(B, -1)
        return states

    def apply_planned_sweep(self, states, step, nb_qubits, kernels):
        """Vectorized per-row kernels: a batched einsum on the strided
        1q view, or gather/batched-matmul/scatter with on-the-fly row
        tables for general targets and controls."""
        self._validate_batch(states, nb_qubits)
        P = states.shape[0]
        if not step.controls and len(step.targets) == 1:
            left = 1 << step.targets[0]
            view = states.reshape(P, left, 2, -1)
            if step.diagonal:
                d = np.einsum("pii->pi", kernels)
                view *= d[:, None, :, None]
                return states
            out = np.einsum("pab,plbr->plar", kernels, view)
            return np.ascontiguousarray(out).reshape(P, -1)
        # parametric steps are never prepare_step-ed, so build the row
        # tables here exactly as the uncompiled batched path does
        if not step.controls:
            rows = subindex_map(nb_qubits, list(step.targets))
        else:
            sub = gather_indices(
                nb_qubits, list(step.controls), list(step.control_states)
            )
            others = [
                q for q in range(nb_qubits)
                if q not in set(step.controls)
            ]
            local_targets = [others.index(q) for q in step.targets]
            rows = sub[subindex_map(len(others), local_targets)]
        flat = np.ascontiguousarray(rows).ravel()
        if step.diagonal:
            d = np.einsum("pii->pi", kernels)
            states[:, flat] *= np.repeat(d, rows.shape[1], axis=1)
            return states
        gathered = states[:, flat].reshape(P, rows.shape[0], rows.shape[1])
        states[:, flat] = np.matmul(kernels, gathered).reshape(P, -1)
        return states

    def apply_batched(
        self,
        states,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        """Uncompiled batched path: build the row tables on the fly
        and apply the kernel once across the batch."""
        self._validate_batch(states, nb_qubits)
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        kernel = np.asarray(kernel, dtype=states.dtype)
        if not controls and len(targets) == 1:
            return self._apply_1q_batched(
                states, kernel, targets[0], diagonal
            )
        if not controls:
            rows = subindex_map(nb_qubits, list(targets))
        else:
            sub = gather_indices(
                nb_qubits, list(controls), list(control_states)
            )
            others = [
                q for q in range(nb_qubits) if q not in set(controls)
            ]
            local_targets = [others.index(q) for q in targets]
            rows = sub[subindex_map(len(others), local_targets)]
        flat = np.ascontiguousarray(rows).ravel()
        B = states.shape[0]
        if diagonal:
            states[:, flat] *= np.repeat(np.diag(kernel), rows.shape[1])
            return states
        gathered = states[:, flat].reshape(B, rows.shape[0], rows.shape[1])
        states[:, flat] = np.matmul(kernel, gathered).reshape(B, -1)
        return states

    @staticmethod
    def _apply_1q_batched(states, kernel, target, diagonal):
        """One-qubit kernel across a ``(B, dim)`` batch: the serial
        strided reshape gains a leading batch axis and the einsum
        contracts once for all rows."""
        B = states.shape[0]
        left = 1 << target
        view = states.reshape(B, left, 2, -1)
        if diagonal:
            view[:, :, 0, :] *= kernel[0, 0]
            view[:, :, 1, :] *= kernel[1, 1]
            return states
        out = np.einsum("ab,cdbe->cdae", kernel, view)
        return out.reshape(B, -1)

    def apply(
        self,
        state,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        """Vectorized index-kernel application: strided reshape for
        one target, gather/matmul/scatter for general targets and
        controls, diagonal-aware in-place scaling throughout."""
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        state2d, shape = self._as_2d(state)
        kernel = np.asarray(kernel, dtype=state2d.dtype)

        if not controls:
            if len(targets) == 1:
                out = self._apply_1q(
                    state2d, kernel, targets[0], nb_qubits, diagonal
                )
            else:
                out = self._apply_kq(
                    state2d, kernel, targets, nb_qubits, diagonal
                )
            return out.reshape(shape)

        # Controlled path: restrict to the control-matching subspace,
        # then apply the kernel on the targets inside that subspace.
        sub = gather_indices(nb_qubits, list(controls), list(control_states))
        others = [q for q in range(nb_qubits) if q not in set(controls)]
        local_targets = [others.index(q) for q in targets]
        rows = sub[subindex_map(len(others), local_targets)]
        if diagonal:
            d = np.diag(kernel)
            state2d[rows.ravel()] *= np.repeat(d, rows.shape[1])[:, None]
            return state2d.reshape(shape)
        gathered = state2d[rows.ravel()].reshape(
            rows.shape[0], rows.shape[1] * state2d.shape[1]
        )
        state2d[rows.ravel()] = (kernel @ gathered).reshape(
            -1, state2d.shape[1]
        )
        return state2d.reshape(shape)

    @staticmethod
    def _apply_1q(state2d, kernel, target, nb_qubits, diagonal):
        m = state2d.shape[1]
        left = 1 << target
        right = 1 << (nb_qubits - 1 - target)
        view = state2d.reshape(left, 2, right * m)
        if diagonal:
            view[:, 0, :] *= kernel[0, 0]
            view[:, 1, :] *= kernel[1, 1]
            # reshape copies when state2d is non-contiguous (e.g. a
            # transposed density matrix); returning the mutated `view`
            # is correct in both cases, `state2d` only in the view case.
            return view.reshape(state2d.shape)
        out = np.einsum("ab,lbr->lar", kernel, view)
        return out.reshape(state2d.shape)

    @staticmethod
    def _apply_kq(state2d, kernel, targets, nb_qubits, diagonal):
        rows = subindex_map(nb_qubits, list(targets))
        if diagonal:
            d = np.diag(kernel)
            state2d[rows.ravel()] *= np.repeat(d, rows.shape[1])[:, None]
            return state2d
        m = state2d.shape[1]
        gathered = state2d[rows.ravel()].reshape(
            rows.shape[0], rows.shape[1] * m
        )
        state2d[rows.ravel()] = (kernel @ gathered).reshape(-1, m)
        return state2d


class SparseKronBackend(Backend):
    """The paper's reference algorithm: sparse extended operators.

    For a gate kernel ``U'`` the backend materializes the sparse matrix
    ``U = I_l (x) U' (x) I_r`` (generalized via bit-deposit index
    construction so that non-adjacent qubit sets and controls work the
    same way) and computes ``U @ state``.
    """

    name = "sparse"

    def prepare_step(self, step, nb_qubits, tables):
        """Materialize (and share via ``tables``) the sparse
        full-register operator for this step."""
        key = (
            "sparse", step.targets, step.controls, step.control_states,
            step.kernel.tobytes(),
        )
        op = tables.get(key)
        if op is None:
            op = self.extended_operator(
                step.kernel, step.targets, nb_qubits, step.controls,
                step.control_states,
            )
            tables[key] = op
        step.aux = op

    def planned_bytes(self, step, states, nb_qubits):
        """Full state in and out plus one pass over the sparse
        operator's stored entries."""
        nnz_bytes = (
            step.aux.data.nbytes if step.aux is not None else 0
        )
        return 2 * states.nbytes + nnz_bytes

    def apply_planned(self, state, step, nb_qubits):
        """One sparse matrix-vector product with the prebuilt
        extended operator."""
        state2d, shape = self._as_2d(state)
        out = np.asarray(step.aux @ state2d, dtype=state2d.dtype)
        return out.reshape(shape)

    def apply_planned_batched(self, states, step, nb_qubits):
        """One sparse multiply for the whole ``(B, 2**n)`` batch."""
        # one sparse multiply for the whole batch: (dim, dim) @ (dim, B)
        self._validate_batch(states, nb_qubits)
        out = np.asarray(step.aux @ states.T, dtype=states.dtype)
        return np.ascontiguousarray(out.T)

    def apply_batched(
        self,
        states,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        """Build the extended sparse operator and multiply it against
        the whole batch at once."""
        self._validate_batch(states, nb_qubits)
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        op = self.extended_operator(
            np.asarray(kernel, dtype=states.dtype), targets, nb_qubits,
            controls, control_states,
        )
        out = np.asarray(op @ states.T, dtype=states.dtype)
        return np.ascontiguousarray(out.T)

    def apply(
        self,
        state,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        """Apply via ``extended_operator(...) @ state`` — the paper's
        reference sparse-Kronecker algorithm."""
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        state2d, shape = self._as_2d(state)
        kernel = np.asarray(kernel, dtype=state2d.dtype)
        op = self.extended_operator(
            kernel, targets, nb_qubits, controls, control_states
        )
        out = np.asarray(op @ state2d, dtype=state2d.dtype)
        return out.reshape(shape)

    @staticmethod
    def extended_operator(
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
    ) -> sp.csr_matrix:
        """Build the full-register sparse operator for a gate.

        Controls are folded into the kernel (projector expansion), then
        every nonzero kernel entry ``(a, b)`` is deposited at the
        ``2**(n-k)`` register index pairs that agree on the spectator
        qubits — exactly the sparse ``I_l (x) U (x) I_r`` of the paper,
        generalized to arbitrary qubit subsets.
        """
        if controls:
            qubits_all = sorted(list(targets) + list(controls))
            full_kernel = controlled_matrix(
                kernel, qubits_all, list(controls), list(control_states),
                list(targets),
            )
        else:
            qubits_all = sorted(targets)
            full_kernel = kernel
        k = len(qubits_all)
        positions = [nb_qubits - 1 - q for q in qubits_all]
        coo = sp.coo_matrix(full_kernel)
        rest = np.arange(1 << (nb_qubits - k), dtype=np.int64)
        nrest = rest.size
        rows = np.empty(coo.nnz * nrest, dtype=np.int64)
        cols = np.empty(coo.nnz * nrest, dtype=np.int64)
        vals = np.empty(coo.nnz * nrest, dtype=np.complex128)
        for i, (a, b, v) in enumerate(zip(coo.row, coo.col, coo.data)):
            bits_a = [(int(a) >> (k - 1 - j)) & 1 for j in range(k)]
            bits_b = [(int(b) >> (k - 1 - j)) & 1 for j in range(k)]
            rows[i * nrest : (i + 1) * nrest] = insert_bits(
                rest, positions, bits_a
            )
            cols[i * nrest : (i + 1) * nrest] = insert_bits(
                rest, positions, bits_b
            )
            vals[i * nrest : (i + 1) * nrest] = v
        dim = 1 << nb_qubits
        return sp.csr_matrix((vals, (rows, cols)), shape=(dim, dim))


class EinsumBackend(Backend):
    """Tensor-contraction engine (cross-validation oracle)."""

    name = "einsum"

    def prepare_step(self, step, nb_qubits, tables):
        """Pre-reshape the (control-folded) kernel into the
        ``(2,)*2k`` tensor the contraction consumes."""
        if step.controls:
            qubits_all = sorted(step.targets + step.controls)
            full_kernel = controlled_matrix(
                step.kernel, qubits_all, list(step.controls),
                list(step.control_states), list(step.targets),
            )
        else:
            qubits_all = list(step.targets)
            full_kernel = step.kernel
        k = len(qubits_all)
        step.aux = (
            full_kernel.reshape((2,) * (2 * k)), tuple(qubits_all), k,
        )

    def planned_bytes(self, step, states, nb_qubits):
        """Full state streamed through the contraction, plus the
        (control-folded) kernel tensor."""
        kernel_bytes = (
            step.aux[0].nbytes if step.aux is not None else 0
        )
        return 2 * states.nbytes + kernel_bytes

    def apply_planned(self, state, step, nb_qubits):
        """``tensordot`` the prepared kernel tensor over the step's
        qubit axes, then move the result axes back in place."""
        state2d, shape = self._as_2d(state)
        ut, qubits_all, k = step.aux
        m = state2d.shape[1]
        psi = state2d.reshape((2,) * nb_qubits + (m,))
        contracted = np.tensordot(
            ut, psi, axes=(list(range(k, 2 * k)), list(qubits_all))
        )
        out = np.moveaxis(contracted, list(range(k)), list(qubits_all))
        return np.ascontiguousarray(out).reshape(shape)

    def apply_planned_batched(self, states, step, nb_qubits):
        """Single tensor contraction across the whole batch."""
        self._validate_batch(states, nb_qubits)
        ut, qubits_all, k = step.aux
        return self._contract_batched(states, ut, qubits_all, k, nb_qubits)

    def apply_planned_sweep(self, states, step, nb_qubits, kernels):
        """Per-row kernels via one batched matmul: move the target
        axes to the front, flatten, multiply the kernel stack, restore.
        Controlled steps fall back to the per-row loop (folding the
        controls would build ``P`` full-register kernels)."""
        if step.controls:
            return super().apply_planned_sweep(
                states, step, nb_qubits, kernels
            )
        self._validate_batch(states, nb_qubits)
        targets = list(step.targets)
        k = len(targets)
        P = states.shape[0]
        psi = states.reshape((P,) + (2,) * nb_qubits)
        axes = [q + 1 for q in targets]
        moved = np.moveaxis(psi, axes, list(range(1, k + 1)))
        flat = np.ascontiguousarray(moved).reshape(P, 1 << k, -1)
        out = np.matmul(kernels, flat)
        out = out.reshape((P,) + (2,) * nb_qubits)
        out = np.moveaxis(out, list(range(1, k + 1)), axes)
        return np.ascontiguousarray(out).reshape(P, -1)

    def apply_batched(
        self,
        states,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        """Fold controls into the kernel and contract once over the
        whole batch."""
        self._validate_batch(states, nb_qubits)
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        kernel = np.asarray(kernel, dtype=states.dtype)
        if controls:
            qubits_all = sorted(list(targets) + list(controls))
            full_kernel = controlled_matrix(
                kernel, qubits_all, list(controls), list(control_states),
                list(targets),
            )
        else:
            qubits_all = sorted(targets)
            full_kernel = kernel
        k = len(qubits_all)
        ut = full_kernel.reshape((2,) * (2 * k))
        return self._contract_batched(
            states, ut, tuple(qubits_all), k, nb_qubits
        )

    @staticmethod
    def _contract_batched(states, ut, qubits_all, k, nb_qubits):
        """Contract a full-register kernel over a batch: qubit axes sit
        one position right of the leading batch axis."""
        B = states.shape[0]
        psi = states.reshape((B,) + (2,) * nb_qubits)
        axes = [q + 1 for q in qubits_all]
        contracted = np.tensordot(
            ut, psi, axes=(list(range(k, 2 * k)), axes)
        )
        # kernel row axes land first; the batch axis follows them and
        # slides back to the front once the rows return to their slots
        out = np.moveaxis(contracted, list(range(k)), axes)
        return np.ascontiguousarray(out).reshape(B, -1)

    def apply(
        self,
        state,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        """Reshape the state into a rank-``n`` tensor and contract the
        (control-folded) kernel over the gate's qubit axes."""
        self._validate(
            np.asarray(kernel), targets, nb_qubits, controls, control_states
        )
        state2d, shape = self._as_2d(state)
        kernel = np.asarray(kernel, dtype=state2d.dtype)
        if controls:
            qubits_all = sorted(list(targets) + list(controls))
            full_kernel = controlled_matrix(
                kernel, qubits_all, list(controls), list(control_states),
                list(targets),
            )
        else:
            qubits_all = sorted(targets)
            full_kernel = kernel
        k = len(qubits_all)
        m = state2d.shape[1]
        psi = state2d.reshape((2,) * nb_qubits + (m,))
        ut = full_kernel.reshape((2,) * (2 * k))
        contracted = np.tensordot(
            ut, psi, axes=(list(range(k, 2 * k)), list(qubits_all))
        )
        # tensordot puts the kernel's row axes first; move them back to
        # their register positions.
        out = np.moveaxis(contracted, list(range(k)), list(qubits_all))
        return np.ascontiguousarray(out).reshape(shape)


#: Gate-apply (statevector) backends, name -> Backend subclass.
_REGISTRY: dict = {}

#: All simulation engines in one namespace, name -> descriptor dict
#: with keys ``kind`` (``'statevector'``, ``'density'``, ``'mps'``,
#: ``'stabilizer'``, ...) and ``entry`` (class or entry-point callable).
_ENGINES: dict = {}


def register_backend(cls=None, *, name: str = None):
    """Class decorator registering a gate-apply :class:`Backend`.

    Usage::

        @register_backend
        class MyBackend(Backend):
            name = "mine"
            def apply(self, ...): ...

    The backend becomes resolvable by name through
    :func:`get_backend` and is listed by :func:`available_backends`.
    Registering an existing name replaces it (latest wins), so users
    can shadow the built-ins.
    """

    def _register(klass):
        if not (isinstance(klass, type) and issubclass(klass, Backend)):
            raise SimulationError(
                "register_backend requires a Backend subclass, got "
                f"{klass!r}"
            )
        key = (name or klass.name or "").lower()
        if not key or key == "abstract":
            raise SimulationError(
                f"backend class {klass.__name__} needs a non-empty "
                "'name' attribute"
            )
        _REGISTRY[key] = klass
        _ENGINES[key] = {"kind": "statevector", "entry": klass}
        return klass

    if cls is None:
        return _register
    return _register(cls)


def register_engine(name: str, kind: str, entry) -> None:
    """Register a non-gate-apply simulation engine (density, MPS,
    stabilizer, ...) under the shared backend namespace.

    ``entry`` is the engine's entry point — typically its
    ``simulate_*`` function; retrieve it with :func:`get_engine`.
    """
    _ENGINES[str(name).lower()] = {"kind": str(kind), "entry": entry}


def get_engine(name: str):
    """The entry point registered for an engine name (any kind)."""
    try:
        return _ENGINES[str(name).lower()]["entry"]
    except KeyError:
        raise SimulationError(
            f"unknown engine {name!r}; available: {available_backends()}"
        ) from None


register_backend(KernelBackend)
register_backend(SparseKronBackend)
register_backend(EinsumBackend)

_DEFAULT = KernelBackend()


def available_backends(kind: str = None) -> tuple:
    """Names of registered engines.

    ``kind=None`` lists every engine in the unified namespace
    (statevector gate-apply backends plus the density, MPS and
    stabilizer engines once :mod:`repro.simulation` is imported);
    ``kind='statevector'`` restricts to gate-apply backends, and any
    other kind filters accordingly.
    """
    if kind is None:
        return tuple(sorted(_ENGINES))
    kind = str(kind).lower()
    return tuple(
        sorted(n for n, d in _ENGINES.items() if d["kind"] == kind)
    )


def get_backend(backend) -> Backend:
    """Resolve a backend name or instance to a gate-apply
    :class:`Backend` (names and instances are accepted uniformly)."""
    if isinstance(backend, Backend):
        return backend
    key = str(backend).lower()
    try:
        return _REGISTRY[key]()
    except KeyError:
        pass
    if key in _ENGINES:
        raise SimulationError(
            f"engine {backend!r} is a {_ENGINES[key]['kind']} engine, "
            "not a gate-apply statevector backend; use "
            f"get_engine({backend!r}) for its entry point"
        )
    raise SimulationError(
        f"unknown backend {backend!r}; available: "
        f"{available_backends('statevector')}"
    )


def default_backend() -> Backend:
    """The package default (the optimized kernel backend)."""
    return _DEFAULT
