"""Pauli-string observables and expectation values.

Expectation values are the bread and butter of variational workflows;
this module evaluates ``<psi| P |psi>`` for Pauli strings ``P`` without
ever materializing the ``2^n x 2^n`` operator: each non-identity letter
is applied through the optimized backend.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import StateError
from repro.simulation.backends import default_backend
from repro.utils.bits import bit_length_for
from repro.utils.linalg import kron_all

__all__ = ["pauli_matrix", "expectation", "variance", "PauliSum"]

#: register width up to which a :class:`PauliSum` caches its dense
#: operator (2^8 x 2^8 complex = 1 MiB) for fast repeated expectations.
_DENSE_CUTOFF = 8

_PAULI = {
    "i": np.eye(2, dtype=np.complex128),
    "x": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "z": np.diag([1.0, -1.0]).astype(np.complex128),
}


def _check_pauli(pauli: str) -> str:
    p = pauli.lower()
    if not p or any(c not in "ixyz" for c in p):
        raise StateError(
            f"invalid Pauli string {pauli!r}; expected letters from IXYZ"
        )
    return p


def pauli_matrix(pauli: str) -> np.ndarray:
    """The dense matrix of a Pauli string (first letter = ``q0``)."""
    p = _check_pauli(pauli)
    return kron_all([_PAULI[c] for c in p])


def _apply_pauli(state: np.ndarray, pauli: str) -> np.ndarray:
    n = bit_length_for(state.size)
    if len(pauli) != n:
        raise StateError(
            f"Pauli string of length {len(pauli)} does not match "
            f"{n} qubit(s)"
        )
    backend = default_backend()
    out = state.copy()
    for q, letter in enumerate(pauli):
        if letter == "i":
            continue
        out = backend.apply(
            out, _PAULI[letter], [q], n, diagonal=(letter == "z")
        )
    return out


def expectation(state, pauli: str) -> float:
    """``<psi| P |psi>`` for a Pauli string ``P`` (a real number).

    >>> expectation([1, 0], 'z')
    1.0
    """
    psi = np.asarray(state, dtype=np.complex128).ravel()
    p = _check_pauli(pauli)
    transformed = _apply_pauli(psi, p)
    return float(np.real(np.vdot(psi, transformed)))


def variance(state, pauli: str) -> float:
    """``<P^2> - <P>^2``; since ``P^2 = I`` this is ``1 - <P>^2``."""
    e = expectation(state, pauli)
    return max(0.0, 1.0 - e * e)


class PauliSum:
    """A real-weighted sum of Pauli strings (an observable/Hamiltonian).

    >>> h = PauliSum([(0.5, 'zz'), (-1.0, 'xi')])
    >>> round(h.expectation([1, 0, 0, 0]), 6)
    0.5
    """

    def __init__(self, terms: Sequence[Tuple[float, str]]):
        if not terms:
            raise StateError("PauliSum requires at least one term")
        lengths = {len(p) for _c, p in terms}
        if len(lengths) != 1:
            raise StateError(
                f"all Pauli strings must have equal length, got {lengths}"
            )
        self._terms = [
            (float(c), _check_pauli(p)) for c, p in terms
        ]
        self._dense = None

    @property
    def terms(self):
        """The ``(coefficient, pauli)`` terms."""
        return list(self._terms)

    @property
    def nbQubits(self) -> int:
        """Register width the observable acts on."""
        return len(self._terms[0][1])

    def matrix(self) -> np.ndarray:
        """The dense operator (small registers only)."""
        return sum(c * pauli_matrix(p) for c, p in self._terms)

    def _dense_operator(self):
        """The cached dense operator for small registers (else ``None``).

        Variational loops evaluate the same observable thousands of
        times; below :data:`_DENSE_CUTOFF` qubits one cached matrix
        turns each evaluation into a single mat-vec instead of one
        backend pass per Pauli letter per term.
        """
        if self._dense is None and self.nbQubits <= _DENSE_CUTOFF:
            self._dense = self.matrix()
        return self._dense

    def expectation(self, state) -> float:
        """``sum_k c_k <psi| P_k |psi>``."""
        dense = self._dense_operator()
        if dense is not None:
            psi = np.asarray(state, dtype=np.complex128).ravel()
            if psi.size != dense.shape[0]:
                raise StateError(
                    f"state of dimension {psi.size} does not match "
                    f"{self.nbQubits} qubit(s)"
                )
            return float(np.real(np.vdot(psi, dense @ psi)))
        return float(
            sum(c * expectation(state, p) for c, p in self._terms)
        )

    def expectations(self, states) -> np.ndarray:
        """Batched expectations over a ``(P, 2**n)`` stack of states.

        The vectorized companion of :meth:`expectation` for parameter
        sweeps: one call evaluates every row of a
        :meth:`~repro.circuit.QCircuit.sweep` state batch.

        >>> PauliSum([(1.0, 'z')]).expectations([[1, 0], [0, 1]])
        array([ 1., -1.])
        """
        s = np.asarray(states, dtype=np.complex128)
        if s.ndim == 1:
            s = s[None, :]
        dense = self._dense_operator()
        if dense is not None:
            if s.shape[1] != dense.shape[0]:
                raise StateError(
                    f"states of dimension {s.shape[1]} do not match "
                    f"{self.nbQubits} qubit(s)"
                )
            return np.sum(s.conj() * (s @ dense.T), axis=1).real
        return np.array([self.expectation(row) for row in s])

    def __repr__(self) -> str:
        inner = " + ".join(f"{c}*{p.upper()}" for c, p in self._terms)
        return f"PauliSum({inner})"
