"""Pauli-string observables and expectation values.

Expectation values are the bread and butter of variational workflows;
this module evaluates ``<psi| P |psi>`` for Pauli strings ``P`` without
ever materializing the ``2^n x 2^n`` operator: each non-identity letter
is applied through the optimized backend.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import StateError
from repro.simulation.backends import default_backend
from repro.utils.bits import bit_length_for
from repro.utils.linalg import kron_all

__all__ = ["pauli_matrix", "expectation", "variance", "PauliSum"]

_PAULI = {
    "i": np.eye(2, dtype=np.complex128),
    "x": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "z": np.diag([1.0, -1.0]).astype(np.complex128),
}


def _check_pauli(pauli: str) -> str:
    p = pauli.lower()
    if not p or any(c not in "ixyz" for c in p):
        raise StateError(
            f"invalid Pauli string {pauli!r}; expected letters from IXYZ"
        )
    return p


def pauli_matrix(pauli: str) -> np.ndarray:
    """The dense matrix of a Pauli string (first letter = ``q0``)."""
    p = _check_pauli(pauli)
    return kron_all([_PAULI[c] for c in p])


def _apply_pauli(state: np.ndarray, pauli: str) -> np.ndarray:
    n = bit_length_for(state.size)
    if len(pauli) != n:
        raise StateError(
            f"Pauli string of length {len(pauli)} does not match "
            f"{n} qubit(s)"
        )
    backend = default_backend()
    out = state.copy()
    for q, letter in enumerate(pauli):
        if letter == "i":
            continue
        out = backend.apply(
            out, _PAULI[letter], [q], n, diagonal=(letter == "z")
        )
    return out


def expectation(state, pauli: str) -> float:
    """``<psi| P |psi>`` for a Pauli string ``P`` (a real number).

    >>> expectation([1, 0], 'z')
    1.0
    """
    psi = np.asarray(state, dtype=np.complex128).ravel()
    p = _check_pauli(pauli)
    transformed = _apply_pauli(psi, p)
    return float(np.real(np.vdot(psi, transformed)))


def variance(state, pauli: str) -> float:
    """``<P^2> - <P>^2``; since ``P^2 = I`` this is ``1 - <P>^2``."""
    e = expectation(state, pauli)
    return max(0.0, 1.0 - e * e)


class PauliSum:
    """A real-weighted sum of Pauli strings (an observable/Hamiltonian).

    >>> h = PauliSum([(0.5, 'zz'), (-1.0, 'xi')])
    >>> round(h.expectation([1, 0, 0, 0]), 6)
    0.5
    """

    def __init__(self, terms: Sequence[Tuple[float, str]]):
        if not terms:
            raise StateError("PauliSum requires at least one term")
        lengths = {len(p) for _c, p in terms}
        if len(lengths) != 1:
            raise StateError(
                f"all Pauli strings must have equal length, got {lengths}"
            )
        self._terms = [
            (float(c), _check_pauli(p)) for c, p in terms
        ]

    @property
    def terms(self):
        """The ``(coefficient, pauli)`` terms."""
        return list(self._terms)

    @property
    def nbQubits(self) -> int:
        """Register width the observable acts on."""
        return len(self._terms[0][1])

    def matrix(self) -> np.ndarray:
        """The dense operator (small registers only)."""
        return sum(c * pauli_matrix(p) for c, p in self._terms)

    def expectation(self, state) -> float:
        """``sum_k c_k <psi| P_k |psi>``."""
        return float(
            sum(c * expectation(state, p) for c, p in self._terms)
        )

    def __repr__(self) -> str:
        inner = " + ".join(f"{c}*{p.upper()}" for c, p in self._terms)
        return f"PauliSum({inner})"
