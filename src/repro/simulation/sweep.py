"""Vectorized parameter sweeps over compiled plans.

:func:`sweep` evaluates a parametric circuit at a whole matrix of
parameter points in one pass: the circuit compiles once (the plan
cache keys parametric gates by slot identity), the ``(P, 2**n)`` state
batch initializes once, and every plan step executes a single
vectorized application across all ``P`` points — concrete steps
broadcast their one kernel over the batch, parametric steps apply a
per-point kernel stack via the backends' ``apply_planned_sweep`` hook.

This replaces both the deprecated mutate-``gate.theta``-and-resimulate
idiom and the bind-per-point loop when all points are known up front
(a VQE line search, a dissociation curve, a phase diagram).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.simulation.options import (
    SimulationOptions,
    resolve_simulation_options,
)

__all__ = ["SweepResult", "sweep"]


class SweepResult:
    """Final states of a parameter sweep, one row per point.

    Thin wrapper over the ``(P, 2**n)`` state matrix adding the
    parameter axis metadata and vectorized observable evaluation.
    """

    def __init__(self, states: np.ndarray, parameters: tuple, stats):
        self._states = states
        self._parameters = parameters
        self._stats = stats

    @property
    def states(self) -> np.ndarray:
        """The ``(P, 2**n)`` final states (row ``i`` = point ``i``)."""
        return self._states

    @property
    def parameters(self) -> tuple:
        """The plan's :class:`~repro.parameter.Parameter` slots, in
        the column order used for array-form value matrices."""
        return self._parameters

    @property
    def nb_points(self) -> int:
        """Number of parameter points swept."""
        return self._states.shape[0]

    @property
    def stats(self):
        """The :class:`~repro.simulation.plan.PlanStats` of the
        underlying plan lookup (one compile for the whole sweep)."""
        return self._stats

    def probabilities(self) -> np.ndarray:
        """Per-point computational-basis probabilities, ``(P, 2**n)``."""
        return np.abs(self._states) ** 2

    def expectation(self, observable) -> np.ndarray:
        """Per-point expectation values, shape ``(P,)``.

        ``observable`` is a Pauli string, a
        :class:`~repro.simulation.observables.PauliSum`, or a dense
        Hermitian matrix; evaluation is one einsum across all points.
        """
        from repro.simulation.observables import PauliSum, pauli_matrix

        if isinstance(observable, str):
            matrix = pauli_matrix(observable)
        elif isinstance(observable, PauliSum):
            matrix = observable.matrix()
        else:
            matrix = np.asarray(observable)
        dim = self._states.shape[1]
        if matrix.shape != (dim, dim):
            raise SimulationError(
                f"observable shape {matrix.shape} does not match state "
                f"dimension {dim}"
            )
        s = self._states
        return np.einsum("pi,ij,pj->p", s.conj(), matrix, s).real

    def __len__(self) -> int:
        return self.nb_points

    def __repr__(self) -> str:
        return (
            f"SweepResult(points={self.nb_points}, "
            f"dim={self._states.shape[1]}, "
            f"parameters={[p.name for p in self._parameters]!r})"
        )


def sweep(
    circuit,
    values,
    parameters=None,
    start=None,
    options: Optional[SimulationOptions] = None,
) -> SweepResult:
    """Evaluate a parametric circuit at many parameter points at once.

    Parameters
    ----------
    circuit:
        A measurement-free :class:`~repro.circuit.QCircuit` built over
        :class:`~repro.parameter.Parameter` slots.
    values:
        A ``(P, K)`` matrix whose columns follow ``parameters`` (1-D
        arrays are treated as a single column), or a mapping from
        Parameter/name to a length-``P`` value array.
    parameters:
        Optional explicit column order for the array form; defaults to
        the plan's first-appearance order.
    start:
        Initial state specifier (default: all-zeros).
    options:
        A :class:`~repro.simulation.SimulationOptions` (or dict)
        selecting backend, dtype and fusion, as in :func:`simulate`.

    Returns
    -------
    SweepResult
        The ``(P, 2**n)`` final states with observable helpers.

    >>> import numpy as np
    >>> from repro import Parameter, QCircuit
    >>> from repro.gates import RotationY
    >>> theta = Parameter("theta")
    >>> circuit = QCircuit(1)
    >>> _ = circuit.push_back(RotationY(0, theta))
    >>> result = circuit.sweep(np.linspace(0.0, np.pi, 5))
    >>> np.round(result.expectation('z'), 6)
    array([ 1.      ,  0.707107,  0.      , -0.707107, -1.      ])
    """
    from repro.execution.executor import default_executor
    from repro.execution.request import SWEEP, ExecutionRequest

    opts = resolve_simulation_options(
        options, (), {}, caller="sweep"
    )
    job = default_executor().submit(
        ExecutionRequest(
            circuit,
            kind=SWEEP,
            start=start,
            options=opts,
            values=values,
            parameters=parameters,
        )
    )
    return job.result()
