"""The simulation driver and :class:`Simulation` result object.

Implements the measurement model of the paper's Section 3.3:

* measurement probabilities are computed from amplitude magnitudes with
  bitwise index arithmetic;
* the state collapses branch-wise — after a mid-circuit measurement the
  evolution continues *independently for each branch*, each with its own
  collapsed state vector and probability;
* non-computational bases apply their basis change before the standard
  Z measurement and revert it afterwards;
* ``counts(shots)`` samples repeated experiments, ``reducedStates``
  exposes the state of unmeasured qubits after end-of-circuit
  measurements, and zero-probability branches are pruned.

Execution goes through the compiled-plan layer
(:mod:`repro.simulation.plan`) by default: the circuit is compiled once
into a :class:`~repro.simulation.plan.CompiledPlan` (memoized in an LRU
cache) and every branch replays the prepared steps.
``SimulationOptions(compile=False)`` forces the historical
walk-the-op-tree path.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional

import numpy as np

from repro.circuit.barrier import Barrier
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import SimulationError, UnboundParameterError
from repro.gates.base import QGate
from repro.observability.backend import InstrumentedBackend, step_kind
from repro.observability.instrument import (
    activate,
    current_instrumentation,
    resolve_instrumentation,
)
from repro.observability.metrics import (
    BRANCHES_MAX,
    MEASUREMENTS,
    RNG_DRAWS,
    SHOTS_SAMPLED,
    STATE_BYTES_MAX,
)
from repro.observability.recorder import (
    EV_ERROR,
    EV_STATE_HIGHWATER,
    EV_STEP_DISPATCH,
    record_event,
)
from repro.simulation.backends import Backend, get_backend
from repro.simulation.options import (
    SimulationOptions,
    resolve_simulation_options,
)
from repro.simulation.plan import GATE, MEASURE, PlanStats, get_plan
from repro.simulation.reduced import reducedStatevector
from repro.simulation.state import initial_state

__all__ = ["Branch", "Simulation", "simulate", "apply_operation"]


@dataclass
class Branch:
    """One measurement branch: a collapsed state with its probability
    and the concatenated outcomes observed along the way."""

    probability: float
    state: np.ndarray
    result: str


def apply_operation(
    backend: Backend,
    state: np.ndarray,
    gate: QGate,
    offset: int,
    nb_qubits: int,
) -> np.ndarray:
    """Apply one gate (shifted by ``offset``) to a state via ``backend``."""
    targets = [q + offset for q in gate.target_qubits()]
    controls = [q + offset for q in gate.controls()]
    return backend.apply(
        state,
        gate.target_matrix(),
        targets,
        nb_qubits,
        controls=controls,
        control_states=list(gate.control_states()),
        diagonal=gate.is_diagonal,
    )


def _branch_probabilities(state: np.ndarray, qubit: int, nb_qubits: int):
    """P(0), P(1) of measuring ``qubit`` — Section 3.3's amplitude sums."""
    left = 1 << qubit
    right = 1 << (nb_qubits - 1 - qubit)
    view = state.reshape(left, 2, right)
    mags = np.abs(view) ** 2
    p0 = float(np.sum(mags[:, 0, :]))
    p1 = float(np.sum(mags[:, 1, :]))
    return p0, p1


def _collapse(
    state: np.ndarray, qubit: int, nb_qubits: int, outcome: int, prob: float
) -> np.ndarray:
    """Collapsed, renormalized copy of ``state`` after observing ``outcome``."""
    left = 1 << qubit
    collapsed = state.copy()
    view = collapsed.reshape(left, 2, -1)
    view[:, 1 - outcome, :] = 0.0
    collapsed *= 1.0 / np.sqrt(prob)
    return collapsed


class Simulation:
    """Result of simulating a circuit.

    Mirrors the paper's ``simulate`` output object: ``results`` is the
    list of distinct measurement-outcome strings (in branch order),
    ``probabilities`` their probabilities, ``states`` the corresponding
    final state vectors, ``counts(shots)`` samples repeated experiments,
    and ``reducedStates`` gives the states of unmeasured qubits when the
    circuit ends with measurements on a subset of the register.
    """

    def __init__(
        self,
        nb_qubits: int,
        branches: List[Branch],
        measurements: list,
        end_measured: dict,
        backend_name: str,
        engine: Optional[Backend] = None,
        stats: Optional[PlanStats] = None,
        seed=None,
        instrumentation=None,
    ):
        self._nb_qubits = nb_qubits
        self._branches = branches
        self._measurements = measurements  # [(qubit, Measurement)] recorded
        self._end_measured = end_measured  # qubit -> (result index, Measurement)
        self._backend_name = backend_name
        self._engine = engine
        self._stats = stats
        self._seed = seed
        self._instrumentation = instrumentation

    # -- basic accessors ----------------------------------------------------

    @property
    def nbQubits(self) -> int:
        """Register width."""
        return self._nb_qubits

    @property
    def backend(self) -> str:
        """Name of the backend that produced this simulation."""
        return self._backend_name

    @property
    def stats(self) -> Optional[PlanStats]:
        """Compilation/execution statistics
        (:class:`~repro.simulation.plan.PlanStats`) of the run.

        Always populated: compiled runs carry the full plan stats
        (fusion counts, cache hit/miss, per-stage times); uncompiled
        runs (``compile=False``) carry a stats object with
        ``nb_source_ops``/``nb_steps`` equal to the number of executed
        ops, ``execute_seconds`` measured, and zero compile/signature
        time (nothing was compiled, so ``cache_hit`` is ``False``)."""
        return self._stats

    def report(self):
        """The run's :class:`~repro.observability.ProfileReport`.

        When the run was instrumented — via
        ``SimulationOptions(trace=..., metrics=...)`` or inside a
        :func:`repro.observability.instrument` block — the report
        covers the recorded spans and metrics; otherwise it falls back
        to the :attr:`stats` timings only.
        """
        from repro.observability.exporters import ProfileReport

        if self._instrumentation is not None:
            return self._instrumentation.report(stats=self._stats)
        return ProfileReport(stats=self._stats)

    @property
    def branches(self) -> List[Branch]:
        """All measurement branches (pruned of zero-probability ones)."""
        return list(self._branches)

    @property
    def nbBranches(self) -> int:
        """Number of surviving branches."""
        return len(self._branches)

    @property
    def results(self) -> List[str]:
        """Outcome strings, one per branch, in branch (lexicographic)
        order — e.g. ``['00', '01', '10', '11']`` for teleportation."""
        return [b.result for b in self._branches]

    @property
    def probabilities(self) -> np.ndarray:
        """Branch probabilities, aligned with :attr:`results`."""
        return np.array([b.probability for b in self._branches])

    @property
    def states(self) -> List[np.ndarray]:
        """Final full-register state vectors, aligned with :attr:`results`."""
        return [b.state for b in self._branches]

    @property
    def nbMeasurements(self) -> int:
        """Number of recorded measurement outcomes per branch."""
        return len(self._measurements)

    @property
    def measuredQubits(self) -> List[int]:
        """Qubits in recorded-measurement order (repeats possible)."""
        return [q for q, _m in self._measurements]

    # -- shots --------------------------------------------------------------

    def counts(self, shots: int, seed=None) -> np.ndarray:
        """Simulated outcome frequencies over ``shots`` repetitions.

        Returns a vector of length ``2**m`` (``m`` = number of recorded
        measurements) ordered lexicographically by outcome string — for
        a single measured qubit, ``[count_0, count_1]`` exactly as in
        the paper's tomography example.

        ``seed`` may be an int or a :class:`numpy.random.Generator`
        (the MATLAB listing's ``rng(1)`` becomes ``seed=1``); when
        omitted, the run's ``SimulationOptions.seed`` applies.

        Sampling here is exact and fully vectorized — one multinomial
        over the enumerated branch distribution plus a scatter-add, so
        measurement-free circuit tails cost nothing per shot.  Paths
        that genuinely need per-shot stochastic replay (noise models)
        route through the batched trajectory engine instead
        (:func:`repro.noise.noisy_counts`).
        """
        m = self.nbMeasurements
        if m == 0:
            raise SimulationError(
                "counts requires at least one measurement in the circuit"
            )
        if m > 24:
            raise SimulationError(
                f"counts vector for {m} measurements would have 2**{m} "
                "entries; use counts_dict instead"
            )
        if seed is None:
            seed = self._seed
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._record_shots(shots)
        probs = self.probabilities
        probs = probs / probs.sum()
        draws = rng.multinomial(int(shots), probs)
        # vectorized accumulation: one scatter-add over the branch
        # indices (several branches may share an outcome string)
        idx = np.fromiter(
            (int(b.result, 2) for b in self._branches),
            dtype=np.int64,
            count=len(self._branches),
        )
        out = np.zeros(1 << m, dtype=np.int64)
        np.add.at(out, idx, draws)
        return out

    def _record_shots(self, shots: int) -> None:
        """Record shot sampling into the run's (or ambient) metrics."""
        inst = self._instrumentation
        if inst is None or not inst.enabled:
            inst = current_instrumentation()
        if inst.enabled:
            inst.metrics.counter(
                SHOTS_SAMPLED, "shots sampled via counts()"
            ).inc(int(shots))
            inst.metrics.counter(
                RNG_DRAWS, "random draws consumed"
            ).inc()  # one multinomial draw over the branch distribution

    def counts_dict(self, shots: int, seed=None) -> dict:
        """Like :meth:`counts` but as ``{outcome: count}`` over observed
        outcomes only (scales to many measured qubits)."""
        if self.nbMeasurements == 0:
            raise SimulationError(
                "counts requires at least one measurement in the circuit"
            )
        if seed is None:
            seed = self._seed
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._record_shots(shots)
        probs = self.probabilities
        probs = probs / probs.sum()
        draws = rng.multinomial(int(shots), probs)
        return {
            b.result: int(n)
            for b, n in zip(self._branches, draws)
            if n > 0
        }

    # -- reduced states -------------------------------------------------------

    @property
    def reducedStates(self) -> Optional[List[np.ndarray]]:
        """States of the unmeasured qubits after end-circuit measurements.

        ``None`` when not applicable: no qubit's *final* operation is a
        measurement (mid-circuit only, as in teleportation) or every
        qubit is measured at the end.
        """
        if not self._end_measured:
            return None
        if len(self._end_measured) >= self._nb_qubits:
            return None
        backend = self._engine
        if backend is None:
            from repro.simulation.backends import default_backend

            backend = default_backend()
        qubits = sorted(self._end_measured)
        out = []
        for branch in self._branches:
            state = branch.state
            needs_copy = any(
                self._end_measured[q][1].basis != "z" for q in qubits
            )
            if needs_copy:
                state = state.copy()
                for q in qubits:
                    meas = self._end_measured[q][1]
                    if meas.basis != "z":
                        state = backend.apply(
                            state, meas.basis_change, [q], self._nb_qubits
                        )
            bits = [int(branch.result[self._end_measured[q][0]]) for q in qubits]
            out.append(reducedStatevector(state, qubits, bits))
        return out

    def expectation(self, pauli: str) -> float:
        """Ensemble expectation of a Pauli string over the branches.

        Computes ``sum_b p_b <psi_b| P |psi_b>`` — the expectation in
        the post-measurement mixed state.
        """
        from repro.simulation.observables import expectation as _exp

        return float(
            sum(
                b.probability * _exp(b.state, pauli)
                for b in self._branches
            )
        )

    def reduced_density(self, keep) -> np.ndarray:
        """Ensemble reduced density matrix over the kept qubits:
        ``sum_b p_b Tr_rest |psi_b><psi_b|``."""
        from repro.simulation.reduced import partial_trace

        out = None
        for b in self._branches:
            rho = b.probability * partial_trace(b.state, keep)
            out = rho if out is None else out + rho
        return out

    def __repr__(self) -> str:
        return (
            f"Simulation(nbQubits={self._nb_qubits}, "
            f"nbBranches={self.nbBranches}, "
            f"nbMeasurements={self.nbMeasurements}, "
            f"backend={self._backend_name!r})"
        )


def _run_plan(plan, state, atol):
    """Replay a compiled plan branch-wise from an initial state.

    Every step appends one ``step.dispatch`` event (op kind, qubit
    count, wall ns, branch count) to the always-on flight recorder —
    an O(1) ring append per *step*, not per branch, so the overhead
    stays in the noise (the guard test holds it under 5%).
    """
    engine = plan.engine
    nb_qubits = plan.nb_qubits
    branches = [Branch(1.0, state, "")]
    measurements = []
    highwater = state.nbytes
    for step in plan.steps:
        t0 = perf_counter()
        if step.kind == GATE:
            for branch in branches:
                branch.state = engine.apply_planned(
                    branch.state, step, nb_qubits
                )
            record_event(
                EV_STEP_DISPATCH,
                op=step_kind(step),
                nq=nb_qubits,
                ns=int((perf_counter() - t0) * 1e9),
                branches=len(branches),
            )
            continue
        if step.kind == MEASURE:
            measurements.append((step.qubit, step.op))
            branches = _measure(
                engine, branches, step.qubit, step.op, nb_qubits, atol,
                record=True,
            )
            op_kind = "measure"
        else:  # RESET
            if step.op.record:
                measurements.append((step.qubit, step.op))
            branches = _reset(
                engine, branches, step.qubit, nb_qubits, atol,
                record=step.op.record,
            )
            op_kind = "reset"
        record_event(
            EV_STEP_DISPATCH,
            op=op_kind,
            nq=nb_qubits,
            ns=int((perf_counter() - t0) * 1e9),
            branches=len(branches),
        )
        live = sum(b.state.nbytes for b in branches)
        if live > highwater:
            highwater = live
            record_event(
                EV_STATE_HIGHWATER, bytes=live, branches=len(branches)
            )
    return branches, measurements


def _run_plan_instrumented(plan, state, atol, inst):
    """:func:`_run_plan` with per-kernel timing and memory metrics.

    Gate applies go through an
    :class:`~repro.observability.InstrumentedBackend` (per-backend/kind
    counts and wall seconds); measurement/reset collapses are timed
    into the ``repro_measurements_total`` histogram; statevector bytes
    and branch counts record high-water gauges.  Kept separate from
    :func:`_run_plan` so the uninstrumented path pays nothing.
    """
    raw = plan.engine
    engine = InstrumentedBackend(raw, inst.metrics)
    nb_qubits = plan.nb_qubits
    meas_hist = inst.metrics.histogram(
        MEASUREMENTS, "wall seconds collapsing measurements/resets"
    )
    bytes_gauge = inst.metrics.gauge(
        STATE_BYTES_MAX, "high-water statevector bytes across branches"
    )
    branch_gauge = inst.metrics.gauge(
        BRANCHES_MAX, "high-water simultaneous measurement branches"
    )
    branches = [Branch(1.0, state, "")]
    measurements = []
    bytes_gauge.set_max(state.nbytes)
    branch_gauge.set_max(1)
    highwater = state.nbytes
    for step in plan.steps:
        t0 = perf_counter()
        if step.kind == GATE:
            for branch in branches:
                branch.state = engine.apply_planned(
                    branch.state, step, nb_qubits
                )
            record_event(
                EV_STEP_DISPATCH,
                op=step_kind(step),
                nq=nb_qubits,
                ns=int((perf_counter() - t0) * 1e9),
                branches=len(branches),
            )
            continue
        # basis changes inside _measure/_reset go through the raw
        # engine so kernel metrics count gate applies only
        if step.kind == MEASURE:
            measurements.append((step.qubit, step.op))
            branches = _measure(
                raw, branches, step.qubit, step.op, nb_qubits, atol,
                record=True,
            )
            dt = perf_counter() - t0
            meas_hist.observe(dt, kind="measure")
            op_kind = "measure"
        else:  # RESET
            if step.op.record:
                measurements.append((step.qubit, step.op))
            branches = _reset(
                raw, branches, step.qubit, nb_qubits, atol,
                record=step.op.record,
            )
            dt = perf_counter() - t0
            meas_hist.observe(dt, kind="reset")
            op_kind = "reset"
        record_event(
            EV_STEP_DISPATCH,
            op=op_kind,
            nq=nb_qubits,
            ns=int(dt * 1e9),
            branches=len(branches),
        )
        branch_gauge.set_max(len(branches))
        live = sum(b.state.nbytes for b in branches)
        bytes_gauge.set_max(live)
        if live > highwater:
            highwater = live
            record_event(
                EV_STATE_HIGHWATER, bytes=live, branches=len(branches)
            )
    return branches, measurements


def simulate(
    circuit,
    start="0",
    options: Optional[SimulationOptions] = None,
    *legacy_args,
    backend=None,
    atol: Optional[float] = None,
    dtype=None,
    seed=None,
    compile: Optional[bool] = None,
    fuse: Optional[bool] = None,
    _stacklevel: int = 3,
):
    """Simulate a :class:`~repro.circuit.QCircuit`.

    Configuration lives in ``options``
    (:class:`~repro.simulation.SimulationOptions`); the historical
    ``backend``/``atol``/``dtype`` keyword and positional forms keep
    working through a :class:`DeprecationWarning` shim.  See
    :meth:`repro.circuit.QCircuit.simulate` for the parameters; this is
    the underlying free function.

    ``_stacklevel`` is internal: wrappers that add a call frame (the
    ``QCircuit.simulate`` method) bump it so deprecation warnings point
    at the user's call site, firing once per call site.

    Parametric circuits simulate through their bound view: pass a
    :class:`~repro.circuit.bound.BoundCircuit` (from
    :meth:`QCircuit.bind`) and the cached compiled plan of the *base*
    circuit is re-bound in place — no recompilation per value set.  A
    parametric circuit passed directly (without values) raises
    :class:`~repro.exceptions.UnboundParameterError`.
    """
    from repro.circuit.bound import BoundCircuit

    param_values = None
    if isinstance(circuit, BoundCircuit):
        param_values = circuit.values
        circuit = circuit.base
    if options is not None and not isinstance(
        options, (SimulationOptions, dict)
    ):
        # legacy positional call: simulate(circuit, start, backend, ...)
        legacy_args = (options,) + tuple(legacy_args)
        options = None
    opts = resolve_simulation_options(
        options,
        tuple(legacy_args),
        {
            "backend": backend,
            "atol": atol,
            "dtype": dtype,
            "seed": seed,
            "compile": compile,
            "fuse": fuse,
        },
        caller="simulate",
        stacklevel=_stacklevel,
    )

    engine = get_backend(opts.backend)
    nb_qubits = circuit.nbQubits
    state = initial_state(start, nb_qubits, dtype=opts.dtype)
    inst = resolve_instrumentation(opts.trace, opts.metrics)

    with activate(inst), inst.span(
        "simulate",
        backend=engine.name,
        nb_qubits=nb_qubits,
        compiled=bool(opts.compile),
    ):
        if opts.compile:
            plan, stats = get_plan(
                circuit, engine, opts.dtype, fuse=opts.fuse
            )
            if plan.is_parametric:
                # always (re-)bind: a cached plan may carry kernels
                # from a previous binding's values
                if param_values is None:
                    raise UnboundParameterError(
                        "circuit has unbound parameter(s) "
                        + ", ".join(
                            repr(p.name) for p in plan.parameters
                        )
                        + "; simulate through circuit.bind(values)"
                    )
                plan.bind(param_values)
            t0 = perf_counter()
            try:
                if inst.enabled:
                    with inst.span(
                        "simulate.execute", backend=plan.engine.name
                    ):
                        branches, measurements = _run_plan_instrumented(
                            plan, state, opts.atol, inst
                        )
                else:
                    branches, measurements = _run_plan(
                        plan, state, opts.atol
                    )
            except Exception as exc:
                record_event(
                    EV_ERROR,
                    error=type(exc).__name__,
                    where="simulate.execute",
                )
                raise
            stats.execute_seconds = perf_counter() - t0
            return Simulation(
                nb_qubits,
                branches,
                measurements,
                plan.end_measured,
                plan.engine.name,
                engine=plan.engine,
                stats=stats,
                seed=opts.seed,
                instrumentation=inst if inst.enabled else None,
            )
        if param_values is not None:
            # the uncompiled walk reads gate matrices directly, so it
            # needs concrete value-carrying gates
            from repro.circuit.bound import _materialize

            circuit = _materialize(circuit, param_values)
        return _simulate_unplanned(
            circuit, engine, state, nb_qubits, opts, inst
        )


def _simulate_unplanned(circuit, engine, state, nb_qubits, opts, inst):
    """The historical walk-the-op-tree path (``compile=False``)."""
    ops = list(circuit.operations())

    # Which qubits end on a measurement (for reducedStates)?
    last_touch: dict = {}
    record_counter = 0
    record_index: dict = {}  # id(op) -> result-string position
    for op, off in ops:
        if isinstance(op, Barrier):
            continue
        recorded = isinstance(op, Measurement) or (
            isinstance(op, Reset) and op.record
        )
        if recorded:
            record_index[id(op)] = record_counter
            record_counter += 1
        for q in op.qubits:
            last_touch[q + off] = op
    end_measured = {}
    for q, op in last_touch.items():
        if isinstance(op, Measurement):
            end_measured[q] = (record_index[id(op)], op)

    branches = [Branch(1.0, state, "")]
    measurements = []

    # Gate applies go through the instrumented wrapper when tracing so
    # uncompiled runs are measurable too (ISSUE: stats for compile=False).
    apply_engine = (
        InstrumentedBackend(engine, inst.metrics)
        if inst.enabled
        else engine
    )
    nb_source_ops = 0
    nb_gates = 0
    t0 = perf_counter()
    with inst.span("simulate.execute", backend=engine.name):
        for op, off in ops:
            if isinstance(op, Barrier):
                continue
            nb_source_ops += 1
            if isinstance(op, QGate):
                nb_gates += 1
                for branch in branches:
                    branch.state = apply_operation(
                        apply_engine, branch.state, op, off, nb_qubits
                    )
                continue
            if isinstance(op, Measurement):
                qubit = op.qubit + off
                measurements.append((qubit, op))
                branches = _measure(
                    engine, branches, qubit, op, nb_qubits, opts.atol,
                    record=True,
                )
                continue
            if isinstance(op, Reset):
                qubit = op.qubit + off
                if op.record:
                    measurements.append((qubit, op))
                branches = _reset(
                    engine, branches, qubit, nb_qubits, opts.atol,
                    record=op.record,
                )
                continue
            raise SimulationError(
                f"cannot simulate circuit element {type(op).__name__}"
            )
    stats = PlanStats(
        nb_source_ops=nb_source_ops,
        nb_steps=nb_source_ops,
        nb_gate_steps=nb_gates,
        execute_seconds=perf_counter() - t0,
    )

    return Simulation(
        nb_qubits,
        branches,
        measurements,
        end_measured,
        engine.name,
        engine=engine,
        stats=stats,
        seed=opts.seed,
        instrumentation=inst if inst.enabled else None,
    )


def _measure(engine, branches, qubit, meas, nb_qubits, atol, record):
    """Split every branch on a measurement of ``qubit``."""
    non_z = meas.basis != "z"
    out = []
    for branch in branches:
        state = branch.state
        if non_z:
            state = engine.apply(
                state, meas.basis_change, [qubit], nb_qubits
            )
        p0, p1 = _branch_probabilities(state, qubit, nb_qubits)
        total = p0 + p1
        children = []
        for outcome, p in ((0, p0), (1, p1)):
            if p / total <= atol:
                continue
            collapsed = _collapse(state, qubit, nb_qubits, outcome, p / total)
            if non_z:
                collapsed = engine.apply(
                    collapsed,
                    meas.basis_change_dagger,
                    [qubit],
                    nb_qubits,
                )
            result = branch.result + (str(outcome) if record else "")
            children.append(
                Branch(branch.probability * (p / total), collapsed, result)
            )
        out.extend(children)
    return out


def _reset(engine, branches, qubit, nb_qubits, atol, record):
    """Reset ``qubit`` to |0> in every branch (measure + conditional X)."""
    out = []
    left = 1 << qubit
    for branch in branches:
        state = branch.state
        p0, p1 = _branch_probabilities(state, qubit, nb_qubits)
        total = p0 + p1
        for outcome, p in ((0, p0), (1, p1)):
            if p / total <= atol:
                continue
            collapsed = state.copy()
            view = collapsed.reshape(left, 2, -1)
            if outcome == 1:
                view[:, 0, :] = view[:, 1, :]
            view[:, 1, :] = 0.0
            collapsed *= 1.0 / np.sqrt(p / total)
            result = branch.result + (str(outcome) if record else "")
            out.append(
                Branch(branch.probability * (p / total), collapsed, result)
            )
    return out
