"""The :func:`simulate` entry point and :class:`Simulation` result.

Implements the measurement model of the paper's Section 3.3:

* measurement probabilities are computed from amplitude magnitudes with
  bitwise index arithmetic;
* the state collapses branch-wise — after a mid-circuit measurement the
  evolution continues *independently for each branch*, each with its own
  collapsed state vector and probability;
* non-computational bases apply their basis change before the standard
  Z measurement and revert it afterwards;
* ``counts(shots)`` samples repeated experiments, ``reducedStates``
  exposes the state of unmeasured qubits after end-of-circuit
  measurements, and zero-probability branches are pruned.

Execution routes through the unified execution core
(:mod:`repro.execution`): :func:`simulate` builds an
:class:`~repro.execution.ExecutionRequest`, submits it to the
process-wide :class:`~repro.execution.Executor`, and materializes the
:class:`Simulation` from the finished :class:`~repro.execution.Job`.
The executor compiles the circuit once into a
:class:`~repro.simulation.plan.CompiledPlan` (memoized in an LRU
cache) and replays the prepared steps through the single dispatch loop
in :mod:`repro.execution.dispatch`.
``SimulationOptions(compile=False)`` selects the historical
walk-the-op-tree path instead — still through the same executor.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.execution.dispatch import (
    Branch,
    apply_operation,
    record_shots,
)
from repro.simulation.backends import Backend
from repro.simulation.options import (
    SimulationOptions,
    resolve_simulation_options,
)
from repro.simulation.plan import PlanStats
from repro.simulation.reduced import reducedStatevector

__all__ = ["Branch", "Simulation", "simulate", "apply_operation"]


class Simulation:
    """Result of simulating a circuit.

    Mirrors the paper's ``simulate`` output object: ``results`` is the
    list of distinct measurement-outcome strings (in branch order),
    ``probabilities`` their probabilities, ``states`` the corresponding
    final state vectors, ``counts(shots)`` samples repeated experiments,
    and ``reducedStates`` gives the states of unmeasured qubits when the
    circuit ends with measurements on a subset of the register.

    Simulations come from :func:`simulate` /
    :meth:`~repro.circuit.QCircuit.simulate` (or, one level down, from
    a finished :class:`~repro.execution.Job`); constructing one by hand
    is deprecated.
    """

    def __init__(
        self,
        nb_qubits: int,
        branches: List[Branch],
        measurements: list,
        end_measured: dict,
        backend_name: str,
        engine: Optional[Backend] = None,
        stats: Optional[PlanStats] = None,
        seed=None,
        instrumentation=None,
    ):
        warnings.warn(
            "constructing Simulation(...) directly is deprecated; "
            "simulations are produced by simulate() / "
            "QCircuit.simulate() (or Executor.submit(...).result())",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(
            nb_qubits,
            branches,
            measurements,
            end_measured,
            backend_name,
            engine=engine,
            stats=stats,
            seed=seed,
            instrumentation=instrumentation,
        )

    def _init(
        self,
        nb_qubits,
        branches,
        measurements,
        end_measured,
        backend_name,
        engine=None,
        stats=None,
        seed=None,
        instrumentation=None,
    ):
        self._nb_qubits = nb_qubits
        self._branches = branches
        self._measurements = measurements  # [(qubit, Measurement)] recorded
        self._end_measured = end_measured  # qubit -> (result index, Measurement)
        self._backend_name = backend_name
        self._engine = engine
        self._stats = stats
        self._seed = seed
        self._instrumentation = instrumentation

    @classmethod
    def _from_run(
        cls,
        nb_qubits,
        branches,
        measurements,
        end_measured,
        backend_name,
        engine=None,
        stats=None,
        seed=None,
        instrumentation=None,
    ) -> "Simulation":
        """Internal constructor used by the executor pipelines —
        bypasses the deprecation shim on :meth:`__init__`."""
        sim = object.__new__(cls)
        sim._init(
            nb_qubits,
            branches,
            measurements,
            end_measured,
            backend_name,
            engine=engine,
            stats=stats,
            seed=seed,
            instrumentation=instrumentation,
        )
        return sim

    # -- basic accessors ----------------------------------------------------

    @property
    def nbQubits(self) -> int:
        """Register width."""
        return self._nb_qubits

    @property
    def backend(self) -> str:
        """Name of the backend that produced this simulation."""
        return self._backend_name

    @property
    def stats(self) -> Optional[PlanStats]:
        """Compilation/execution statistics
        (:class:`~repro.simulation.plan.PlanStats`) of the run.

        Always populated: compiled runs carry the full plan stats
        (fusion counts, cache hit/miss, per-stage times); uncompiled
        runs (``compile=False``) carry a stats object with
        ``nb_source_ops``/``nb_steps`` equal to the number of executed
        ops, ``execute_seconds`` measured, and zero compile/signature
        time (nothing was compiled, so ``cache_hit`` is ``False``)."""
        return self._stats

    def report(self):
        """The run's :class:`~repro.observability.ProfileReport`.

        When the run was instrumented — via
        ``SimulationOptions(trace=..., metrics=...)`` or inside a
        :func:`repro.observability.instrument` block — the report
        covers the recorded spans and metrics; otherwise it falls back
        to the :attr:`stats` timings only.
        """
        from repro.observability.exporters import ProfileReport

        if self._instrumentation is not None:
            return self._instrumentation.report(stats=self._stats)
        return ProfileReport(stats=self._stats)

    @property
    def branches(self) -> List[Branch]:
        """All measurement branches (pruned of zero-probability ones)."""
        return list(self._branches)

    @property
    def nbBranches(self) -> int:
        """Number of surviving branches."""
        return len(self._branches)

    @property
    def results(self) -> List[str]:
        """Outcome strings, one per branch, in branch (lexicographic)
        order — e.g. ``['00', '01', '10', '11']`` for teleportation."""
        return [b.result for b in self._branches]

    @property
    def probabilities(self) -> np.ndarray:
        """Branch probabilities, aligned with :attr:`results`."""
        return np.array([b.probability for b in self._branches])

    @property
    def states(self) -> List[np.ndarray]:
        """Final full-register state vectors, aligned with :attr:`results`."""
        return [b.state for b in self._branches]

    @property
    def nbMeasurements(self) -> int:
        """Number of recorded measurement outcomes per branch."""
        return len(self._measurements)

    @property
    def measuredQubits(self) -> List[int]:
        """Qubits in recorded-measurement order (repeats possible)."""
        return [q for q, _m in self._measurements]

    # -- shots --------------------------------------------------------------

    def counts(self, shots: int, seed=None) -> np.ndarray:
        """Simulated outcome frequencies over ``shots`` repetitions.

        Returns a vector of length ``2**m`` (``m`` = number of recorded
        measurements) ordered lexicographically by outcome string — for
        a single measured qubit, ``[count_0, count_1]`` exactly as in
        the paper's tomography example.

        ``seed`` may be an int or a :class:`numpy.random.Generator`
        (the MATLAB listing's ``rng(1)`` becomes ``seed=1``); when
        omitted, the run's ``SimulationOptions.seed`` applies.

        Sampling here is exact and fully vectorized — one multinomial
        over the enumerated branch distribution plus a scatter-add, so
        measurement-free circuit tails cost nothing per shot.  Paths
        that genuinely need per-shot stochastic replay (noise models)
        route through the batched trajectory engine instead
        (:func:`repro.noise.noisy_counts`).
        """
        m = self.nbMeasurements
        if m == 0:
            raise SimulationError(
                "counts requires at least one measurement in the circuit"
            )
        if m > 24:
            raise SimulationError(
                f"counts vector for {m} measurements would have 2**{m} "
                "entries; use counts_dict instead"
            )
        if seed is None:
            seed = self._seed
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        record_shots(self._instrumentation, shots)
        probs = self.probabilities
        probs = probs / probs.sum()
        draws = rng.multinomial(int(shots), probs)
        # vectorized accumulation: one scatter-add over the branch
        # indices (several branches may share an outcome string)
        idx = np.fromiter(
            (int(b.result, 2) for b in self._branches),
            dtype=np.int64,
            count=len(self._branches),
        )
        out = np.zeros(1 << m, dtype=np.int64)
        np.add.at(out, idx, draws)
        return out

    def counts_dict(self, shots: int, seed=None) -> dict:
        """Like :meth:`counts` but as ``{outcome: count}`` over observed
        outcomes only (scales to many measured qubits)."""
        if self.nbMeasurements == 0:
            raise SimulationError(
                "counts requires at least one measurement in the circuit"
            )
        if seed is None:
            seed = self._seed
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        record_shots(self._instrumentation, shots)
        probs = self.probabilities
        probs = probs / probs.sum()
        draws = rng.multinomial(int(shots), probs)
        return {
            b.result: int(n)
            for b, n in zip(self._branches, draws)
            if n > 0
        }

    # -- reduced states -------------------------------------------------------

    @property
    def reducedStates(self) -> Optional[List[np.ndarray]]:
        """States of the unmeasured qubits after end-circuit measurements.

        ``None`` when not applicable: no qubit's *final* operation is a
        measurement (mid-circuit only, as in teleportation) or every
        qubit is measured at the end.
        """
        if not self._end_measured:
            return None
        if len(self._end_measured) >= self._nb_qubits:
            return None
        backend = self._engine
        if backend is None:
            from repro.simulation.backends import default_backend

            backend = default_backend()
        qubits = sorted(self._end_measured)
        out = []
        for branch in self._branches:
            state = branch.state
            needs_copy = any(
                self._end_measured[q][1].basis != "z" for q in qubits
            )
            if needs_copy:
                state = state.copy()
                for q in qubits:
                    meas = self._end_measured[q][1]
                    if meas.basis != "z":
                        state = backend.apply(
                            state, meas.basis_change, [q], self._nb_qubits
                        )
            bits = [int(branch.result[self._end_measured[q][0]]) for q in qubits]
            out.append(reducedStatevector(state, qubits, bits))
        return out

    def expectation(self, pauli: str) -> float:
        """Ensemble expectation of a Pauli string over the branches.

        Computes ``sum_b p_b <psi_b| P |psi_b>`` — the expectation in
        the post-measurement mixed state.
        """
        from repro.simulation.observables import expectation as _exp

        return float(
            sum(
                b.probability * _exp(b.state, pauli)
                for b in self._branches
            )
        )

    def reduced_density(self, keep) -> np.ndarray:
        """Ensemble reduced density matrix over the kept qubits:
        ``sum_b p_b Tr_rest |psi_b><psi_b|``."""
        from repro.simulation.reduced import partial_trace

        out = None
        for b in self._branches:
            rho = b.probability * partial_trace(b.state, keep)
            out = rho if out is None else out + rho
        return out

    def __repr__(self) -> str:
        return (
            f"Simulation(nbQubits={self._nb_qubits}, "
            f"nbBranches={self.nbBranches}, "
            f"nbMeasurements={self.nbMeasurements}, "
            f"backend={self._backend_name!r})"
        )


def simulate(
    circuit,
    start="0",
    options: Optional[SimulationOptions] = None,
    *legacy_args,
    backend=None,
    atol: Optional[float] = None,
    dtype=None,
    seed=None,
    compile: Optional[bool] = None,
    fuse: Optional[bool] = None,
    _stacklevel: int = 3,
):
    """Simulate a :class:`~repro.circuit.QCircuit`.

    A thin wrapper over the unified execution core: resolves
    ``options``, submits one
    :class:`~repro.execution.ExecutionRequest` to the process-wide
    :class:`~repro.execution.Executor`, and materializes the
    :class:`Simulation` from the finished job — compilation, dispatch
    and instrumentation all happen inside the executor pipeline.

    Configuration lives in ``options``
    (:class:`~repro.simulation.SimulationOptions`); the historical
    ``backend``/``atol``/``dtype`` keyword and positional forms keep
    working through a :class:`DeprecationWarning` shim.  See
    :meth:`repro.circuit.QCircuit.simulate` for the parameters; this is
    the underlying free function.

    ``_stacklevel`` is internal: wrappers that add a call frame (the
    ``QCircuit.simulate`` method) bump it so deprecation warnings point
    at the user's call site, firing once per call site.

    Parametric circuits simulate through their bound view: pass a
    :class:`~repro.circuit.bound.BoundCircuit` (from
    :meth:`QCircuit.bind`) and the cached compiled plan of the *base*
    circuit is re-bound in place — no recompilation per value set.  A
    parametric circuit passed directly (without values) raises
    :class:`~repro.exceptions.UnboundParameterError`.
    """
    from repro.circuit.bound import BoundCircuit

    # lazy: repro.execution's package init imports this module's
    # siblings, so a module-level import here would cycle
    from repro.execution.executor import default_executor
    from repro.execution.request import ExecutionRequest

    param_values = None
    if isinstance(circuit, BoundCircuit):
        param_values = circuit.values
        circuit = circuit.base
    if options is not None and not isinstance(
        options, (SimulationOptions, dict)
    ):
        # legacy positional call: simulate(circuit, start, backend, ...)
        legacy_args = (options,) + tuple(legacy_args)
        options = None
    opts = resolve_simulation_options(
        options,
        tuple(legacy_args),
        {
            "backend": backend,
            "atol": atol,
            "dtype": dtype,
            "seed": seed,
            "compile": compile,
            "fuse": fuse,
        },
        caller="simulate",
        stacklevel=_stacklevel,
    )
    job = default_executor().submit(
        ExecutionRequest(
            circuit,
            start=start,
            options=opts,
            param_values=param_values,
        )
    )
    return job.result()
