"""Python reproduction of QCLAB — a toolbox for constructing,
representing and simulating quantum circuits.

The public API mirrors the paper's MATLAB listings one-to-one::

    import repro as qclab

    circuit = qclab.QCircuit(2)
    circuit.push_back(qclab.qgates.Hadamard(0))
    circuit.push_back(qclab.qgates.CNOT(0, 1))
    circuit.push_back(qclab.Measurement(0))
    circuit.push_back(qclab.Measurement(1))

    simulation = circuit.simulate('00')
    simulation.results          # ['00', '11']
    simulation.probabilities    # [0.5, 0.5]
    print(circuit.draw())       # command-window diagram
    print(circuit.toQASM())     # OpenQASM 2.0
    print(circuit.toTex())      # quantikz LaTeX

Sub-packages
------------
``repro.qgates``
    The full gate catalogue (``Hadamard``, ``CNOT``, ``MCX``, ...).
``repro.simulation``
    Backends, densities, reduced states, the ``Simulation`` object.
``repro.algorithms``
    Builders for the paper's examples (teleportation, tomography,
    Grover, QEC) plus QFT/QPE extensions.
``repro.io``
    Drawing, LaTeX export, OpenQASM 2.0 export **and import**.
``repro.observability``
    Tracing spans, metrics, Chrome-trace/Prometheus exporters and
    per-run profile reports (``instrument()``/``Simulation.report()``).
``repro.execution``
    The execution core every run entry point routes through:
    ``Executor.submit(ExecutionRequest) -> Job``.
"""

from repro import compilers, noise, observability, qgates
from repro.execution import ExecutionRequest, Executor, Job, default_executor
from repro.angle import QAngle, QRotation, turnover
from repro.circuit import Barrier, BoundCircuit, Measurement, QCircuit, Reset
from repro.exceptions import UnboundParameterError
from repro.parameter import Parameter, ParameterExpression
from repro.simulation import (
    PauliSum,
    Simulation,
    SweepResult,
    expectation,
    basis_state,
    density_matrix,
    fidelity,
    partial_trace,
    purity,
    pauli_matrix,
    random_state,
    reducedStatevector,
    simulate,
    sweep,
    trace_distance,
    variance,
)

__version__ = "1.0.0"

__all__ = [
    "QCircuit",
    "BoundCircuit",
    "Measurement",
    "Reset",
    "Barrier",
    "Parameter",
    "ParameterExpression",
    "UnboundParameterError",
    "sweep",
    "SweepResult",
    "qgates",
    "QAngle",
    "QRotation",
    "turnover",
    "simulate",
    "Simulation",
    "basis_state",
    "random_state",
    "reducedStatevector",
    "partial_trace",
    "density_matrix",
    "trace_distance",
    "fidelity",
    "purity",
    "expectation",
    "variance",
    "pauli_matrix",
    "PauliSum",
    "noise",
    "compilers",
    "observability",
    "Executor",
    "ExecutionRequest",
    "Job",
    "default_executor",
    "__version__",
]
