"""Circuit transformation passes (extension).

QCLAB's numerically stable rotation fusion (and its derived compilers,
paper refs [5, 6]) exist to *rewrite circuits without losing accuracy*.
This package packages those rewrites as composable passes:

* :func:`flatten` — expand nested sub-circuits into absolute qubits;
* :func:`fuse_rotations` — merge adjacent same-axis rotations/phases
  through the stable :class:`~repro.angle.QRotation` arithmetic;
* :func:`cancel_inverses` — drop adjacent gate pairs that multiply to
  the identity (H·H, CNOT·CNOT, S·S†, ...);
* :func:`merge_single_qubit_runs` — collapse runs of one-qubit gates
  into a single ``U3``;
* :func:`optimize` — the fixpoint pipeline;
* :func:`gate_counts` — per-gate-type statistics.

All passes preserve the circuit unitary exactly (up to global phase for
:func:`merge_single_qubit_runs`) — property-tested on random circuits.
"""

from repro.transforms.passes import (
    cancel_inverses,
    circuits_equivalent,
    flatten,
    fuse_rotations,
    gate_counts,
    merge_single_qubit_runs,
    optimize,
)

__all__ = [
    "flatten",
    "fuse_rotations",
    "cancel_inverses",
    "merge_single_qubit_runs",
    "optimize",
    "gate_counts",
    "circuits_equivalent",
]
