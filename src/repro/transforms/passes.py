"""Peephole optimization passes over :class:`QCircuit`.

This module is the circuit-level public API of the optimizer; since the
IR refactor every pass here is a thin wrapper that lowers the circuit
into the canonical :class:`~repro.ir.IRProgram` (see :mod:`repro.ir`),
runs the corresponding IR pass, and materializes a flat circuit back.
The dataflow rule is unchanged: two operations are *adjacent* when
every qubit of the later one last saw the earlier one — only then may
they be fused or cancelled, which guarantees unitary preservation even
across measurements (a measurement is an opaque "last toucher" that
nothing fuses across).
"""

from __future__ import annotations

import warnings
from collections import Counter

import numpy as np

from repro.circuit.circuit import QCircuit
from repro.exceptions import CircuitError

__all__ = [
    "flatten",
    "fuse_rotations",
    "cancel_inverses",
    "merge_single_qubit_runs",
    "optimize",
    "gate_counts",
    "circuits_equivalent",
]


def flatten(circuit: QCircuit) -> QCircuit:
    """Expand nested sub-circuits into a flat circuit on absolute qubits.

    Every element is copied via its ``shifted`` protocol, so the result
    shares no mutable state with the input.

    .. deprecated::
        Flattening a *nested* circuit by hand is no longer needed:
        every consumer (simulation, transforms, exporters) lowers
        through :func:`repro.ir.lower` and flattens on the fly with
        per-revision caching.  Materializing a flat copy of a nested
        circuit forfeits that cache; lower to an
        :class:`~repro.ir.IRProgram` instead.
    """
    from repro.ir.lower import lower

    program = lower(circuit)
    if any(isinstance(op, QCircuit) for op in circuit):
        warnings.warn(
            "transforms.flatten on a nested circuit is deprecated; "
            "consumers flatten on the fly via repro.ir.lower (cached "
            "per revision) — lower(circuit) gives the flat op stream "
            "without materializing a copy",
            DeprecationWarning,
            stacklevel=2,
        )
    return program.to_circuit()


def gate_counts(circuit: QCircuit) -> Counter:
    """Count operations by class name (recursing into sub-circuits)."""
    from repro.ir.lower import lower

    return lower(circuit).gate_counts()


def _run_ir(circuit: QCircuit, names) -> QCircuit:
    from repro.ir.passes import PassManager

    return PassManager(names).run_on(circuit).to_circuit()


def fuse_rotations(circuit: QCircuit, drop_identity: bool = True) -> QCircuit:
    """Merge adjacent same-axis rotation/phase gates stably.

    ``RX(a) RX(b) -> RX(a+b)`` (likewise RY/RZ/RXX/RYY/RZZ/Phase), with
    the sum evaluated on the ``(cos, sin)`` representation.  Fused gates
    whose angle becomes 0 (mod 4 pi for rotations) are dropped when
    ``drop_identity`` is set.
    """
    if not drop_identity:
        # the uncommon variant keeps identity-angle gates in place
        from repro.ir.lower import lower
        from repro.ir.passes import _adjacent_pairs, _fuse_rotations_combine

        program = _adjacent_pairs(
            lower(circuit),
            _fuse_rotations_combine(drop_identity=False),
            "fuse_rotations",
        )
        return program.to_circuit()
    return _run_ir(circuit, ["fuse_rotations"])


def cancel_inverses(circuit: QCircuit) -> QCircuit:
    """Remove adjacent gate pairs whose product is the identity.

    Covers self-inverse gates (H, X, CNOT, SWAP, ...) and explicit
    inverse pairs (S/S†, T/T†, any gates whose matrices multiply to I).
    Only small gates (up to 3 qubits) are checked, by dense product.
    """
    return _run_ir(circuit, ["cancel_inverses"])


def merge_single_qubit_runs(circuit: QCircuit) -> QCircuit:
    """Collapse adjacent one-qubit gates into a single ``U3``.

    The run's product is re-synthesized through the numerically robust
    ZYZ extraction of :func:`repro.io.qasm_export.u3_params`; the global
    phase is dropped (it is unobservable for an uncontrolled gate).
    Runs that multiply to the identity disappear entirely.
    """
    return _run_ir(circuit, ["fuse_1q"])


_DEFAULT_PASSES = ("fuse_rotations", "cancel_inverses")

#: circuit-level pass names accepted by :func:`optimize`, mapped to the
#: IR registry names they run as.
_PASS_TABLE = {
    "fuse_rotations": "fuse_rotations",
    "cancel_inverses": "cancel_inverses",
    "merge_single_qubit_runs": "fuse_1q",
}


def optimize(
    circuit: QCircuit,
    passes=_DEFAULT_PASSES,
    max_iterations: int = 20,
) -> QCircuit:
    """Run the given passes to a fixpoint (bounded by ``max_iterations``).

    The default pipeline (stable rotation fusion + inverse
    cancellation) preserves the circuit unitary *exactly*; add
    ``'merge_single_qubit_runs'`` for aggressive 1-qubit resynthesis
    (exact up to global phase).
    """
    from repro.ir.lower import lower
    from repro.ir.passes import PassManager

    for name in passes:
        if name not in _PASS_TABLE:
            raise CircuitError(
                f"unknown pass {name!r}; available: {sorted(_PASS_TABLE)}"
            )
    manager = PassManager([_PASS_TABLE[name] for name in passes])
    current = lower(circuit)
    for _ in range(max_iterations):
        before = len(current)
        current = manager.run(current)
        if len(current) >= before:
            break
    return current.to_circuit()


def circuits_equivalent(
    a: QCircuit,
    b: QCircuit,
    up_to_global_phase: bool = True,
    atol: float = 1e-10,
) -> bool:
    """Whether two measurement-free circuits implement the same unitary.

    Compares the dense matrices (small registers); with
    ``up_to_global_phase`` the comparison ignores an overall phase.
    """
    if a.nbQubits != b.nbQubits:
        return False
    ma, mb = a.matrix, b.matrix
    if not up_to_global_phase:
        return bool(np.allclose(ma, mb, atol=atol))
    k = int(np.argmax(np.abs(ma)))
    pivot = ma.flat[k]
    if abs(pivot) < atol:
        return bool(np.allclose(ma, mb, atol=atol))
    phase = mb.flat[k] / pivot
    if abs(abs(phase) - 1.0) > atol:
        return False
    return bool(np.allclose(ma * phase, mb, atol=atol))
