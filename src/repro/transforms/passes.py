"""Peephole optimization passes over :class:`QCircuit`.

Passes share a simple dataflow view: walking the operation list while
tracking, per qubit, the index of the last operation touching it.  Two
operations are *adjacent* when every qubit of the later one last saw
the earlier one — only then may they be fused or cancelled, which
guarantees unitary preservation even across measurements (a measurement
is an opaque "last toucher" that nothing fuses across).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

import numpy as np

from repro.circuit.circuit import QCircuit
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import CircuitError
from repro.gates import U3, Identity
from repro.gates.base import QGate
from repro.gates.parametric import Phase, RotationGate1, RotationGate2

__all__ = [
    "flatten",
    "fuse_rotations",
    "cancel_inverses",
    "merge_single_qubit_runs",
    "optimize",
    "gate_counts",
    "circuits_equivalent",
]


def flatten(circuit: QCircuit) -> QCircuit:
    """Expand nested sub-circuits into a flat circuit on absolute qubits.

    Every element is copied via its ``shifted`` protocol, so the result
    shares no mutable state with the input.
    """
    out = QCircuit(circuit.nbQubits)
    for op, off in circuit.operations():
        out.push_back(op.shifted(off))
    return out


def gate_counts(circuit: QCircuit) -> Counter:
    """Count operations by class name (recursing into sub-circuits)."""
    return Counter(
        type(op).__name__ for op, _off in circuit.operations()
    )


def _adjacent_pairs_pass(circuit: QCircuit, combine) -> QCircuit:
    """Shared engine: walk ops; ``combine(prev_op, op)`` may return a
    replacement list (possibly empty) when the two are adjacent."""
    ops: List[Optional[object]] = []
    last_touch: dict = {}  # qubit -> index into ops

    for op, off in circuit.operations():
        op = op.shifted(off)
        qubits = op.qubits
        prev_indices = {last_touch.get(q) for q in qubits}
        merged = False
        if len(prev_indices) == 1 and None not in prev_indices:
            (idx,) = prev_indices
            prev = ops[idx]
            if prev is not None and tuple(prev.qubits) == tuple(qubits):
                replacement = combine(prev, op)
                if replacement is not None:
                    ops[idx] = None
                    for q in qubits:
                        last_touch.pop(q, None)
                    for new_op in replacement:
                        ops.append(new_op)
                        for q in new_op.qubits:
                            last_touch[q] = len(ops) - 1
                    merged = True
        if not merged:
            ops.append(op)
            for q in qubits:
                last_touch[q] = len(ops) - 1

    out = QCircuit(circuit.nbQubits)
    for op in ops:
        if op is not None:
            out.push_back(op)
    return out


def fuse_rotations(circuit: QCircuit, drop_identity: bool = True) -> QCircuit:
    """Merge adjacent same-axis rotation/phase gates stably.

    ``RX(a) RX(b) -> RX(a+b)`` (likewise RY/RZ/RXX/RYY/RZZ/Phase), with
    the sum evaluated on the ``(cos, sin)`` representation.  Fused gates
    whose angle becomes 0 (mod 4 pi for rotations) are dropped when
    ``drop_identity`` is set.
    """

    def combine(prev, op):
        fusable = (RotationGate1, RotationGate2, Phase)
        if not isinstance(prev, fusable) or type(prev) is not type(op):
            return None
        fused = prev.shifted(0)  # fresh copy; fuse mutates in place
        fused.fuse(op)
        if drop_identity and _is_identity_rotation(fused):
            return []
        return [fused]

    return _adjacent_pairs_pass(circuit, combine)


def _is_identity_rotation(gate) -> bool:
    if isinstance(gate, Phase):
        a = gate.angle
        return abs(a.cos - 1.0) < 1e-14 and abs(a.sin) < 1e-14
    rot = gate.rotation
    return abs(rot.cos - 1.0) < 1e-14 and abs(rot.sin) < 1e-14


def cancel_inverses(circuit: QCircuit) -> QCircuit:
    """Remove adjacent gate pairs whose product is the identity.

    Covers self-inverse gates (H, X, CNOT, SWAP, ...) and explicit
    inverse pairs (S/S†, T/T†, any gates whose matrices multiply to I).
    Only small gates (up to 3 qubits) are checked, by dense product.
    """

    def combine(prev, op):
        if not isinstance(prev, QGate) or not isinstance(op, QGate):
            return None
        if prev.nbQubits > 3:
            return None
        product = op.matrix @ prev.matrix
        if np.allclose(product, np.eye(product.shape[0]), atol=1e-12):
            return []
        return None

    return _adjacent_pairs_pass(circuit, combine)


def merge_single_qubit_runs(circuit: QCircuit) -> QCircuit:
    """Collapse adjacent one-qubit gates into a single ``U3``.

    The run's product is re-synthesized through the numerically robust
    ZYZ extraction of :func:`repro.io.qasm_export.u3_params`; the global
    phase is dropped (it is unobservable for an uncontrolled gate).
    Runs that multiply to the identity disappear entirely.
    """
    from repro.io.qasm_export import u3_params

    def combine(prev, op):
        if not (
            isinstance(prev, QGate)
            and isinstance(op, QGate)
            and prev.nbQubits == 1
            and op.nbQubits == 1
        ):
            return None
        product = op.matrix @ prev.matrix
        theta, phi, lam, _alpha = u3_params(product)
        wrapped = (phi + lam) % (2 * np.pi)
        if abs(theta) < 1e-14 and min(wrapped, 2 * np.pi - wrapped) < 1e-12:
            return []
        return [U3(op.qubits[0], theta, phi, lam)]

    return _adjacent_pairs_pass(circuit, combine)


_DEFAULT_PASSES = ("fuse_rotations", "cancel_inverses")

_PASS_TABLE = {
    "fuse_rotations": fuse_rotations,
    "cancel_inverses": cancel_inverses,
    "merge_single_qubit_runs": merge_single_qubit_runs,
}


def optimize(
    circuit: QCircuit,
    passes=_DEFAULT_PASSES,
    max_iterations: int = 20,
) -> QCircuit:
    """Run the given passes to a fixpoint (bounded by ``max_iterations``).

    The default pipeline (stable rotation fusion + inverse
    cancellation) preserves the circuit unitary *exactly*; add
    ``'merge_single_qubit_runs'`` for aggressive 1-qubit resynthesis
    (exact up to global phase).
    """
    for name in passes:
        if name not in _PASS_TABLE:
            raise CircuitError(
                f"unknown pass {name!r}; available: {sorted(_PASS_TABLE)}"
            )
    current = flatten(circuit)
    for _ in range(max_iterations):
        before = len(current)
        for name in passes:
            current = _PASS_TABLE[name](current)
        if len(current) >= before:
            break
    return current


def circuits_equivalent(
    a: QCircuit,
    b: QCircuit,
    up_to_global_phase: bool = True,
    atol: float = 1e-10,
) -> bool:
    """Whether two measurement-free circuits implement the same unitary.

    Compares the dense matrices (small registers); with
    ``up_to_global_phase`` the comparison ignores an overall phase.
    """
    if a.nbQubits != b.nbQubits:
        return False
    ma, mb = a.matrix, b.matrix
    if not up_to_global_phase:
        return bool(np.allclose(ma, mb, atol=atol))
    k = int(np.argmax(np.abs(ma)))
    pivot = ma.flat[k]
    if abs(pivot) < atol:
        return bool(np.allclose(ma, mb, atol=atol))
    phase = mb.flat[k] / pivot
    if abs(abs(phase) - 1.0) > atol:
        return False
    return bool(np.allclose(ma * phase, mb, atol=atol))
