"""The service gateway: admission, queueing, execution, responses.

:class:`Gateway` is the synchronous heart of ``python -m repro.serve``
— transport-agnostic on purpose.  It exposes exactly one entry point,
:meth:`Gateway.handle`, taking the parsed pieces of an HTTP request
and returning ``(status, headers, body)``; the ASGI layer
(:mod:`repro.serve.asgi`) is a thin adapter over it, and tests can
drive the whole service without opening a socket.

One simulate request flows through five stages:

1. **Admission** — tenant quota (:class:`~repro.serve.quota.QuotaManager`,
   429 + ``Retry-After``), body limits and schema validation
   (:mod:`repro.serve.protocol`, 400/413).
2. **Result cache** — deterministic requests (exact runs, or sampled
   runs with an explicit seed) are answered from an LRU keyed by
   ``(circuit signature, options, start, shots, seed, expectations)``.
3. **Queue** — the job enters a bounded :class:`queue.Queue`; a full
   queue is backpressure, answered 429 + ``Retry-After`` immediately
   rather than letting latency grow unbounded.
4. **Execution** — a worker thread drives
   :meth:`~repro.execution.Executor.execute`.  Concurrent requests
   for the *same circuit shape* coalesce onto one compiled plan: the
   plan cache's locked lookup guarantees N signature-equal jobs cost
   exactly one compile (1 miss, N-1 hits).
5. **Completion** — the handler thread waits on
   :meth:`~repro.execution.Job.wait` up to the request deadline; on
   timeout it cancels the job (the pipeline aborts at its next
   per-step checkpoint, the executor stays reusable) and answers 504.

Everything the gateway does is observable: ``SERVICE_*`` metrics in
an owned :class:`~repro.observability.MetricsRegistry` (scraped at
``/metrics``) and ``request.*`` events in the process flight recorder
(dumped at ``/debug/recorder``).
"""

from __future__ import annotations

import json
import queue
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import JobCancelledError
from repro.execution import Executor
from repro.observability import (
    SERVICE_INFLIGHT,
    SERVICE_LATENCY,
    SERVICE_QUEUE_DEPTH,
    SERVICE_REQUESTS,
    SERVICE_RESULT_CACHE_HITS,
    SERVICE_RESULT_CACHE_MISSES,
    SERVICE_THROTTLES,
    SERVICE_TIMEOUTS,
    EV_REQUEST_ACCEPT,
    EV_REQUEST_DONE,
    EV_REQUEST_REJECT,
    EV_REQUEST_TIMEOUT,
    MetricsRegistry,
    flight_recorder,
    record_event,
    to_prometheus,
)
from repro.serve.protocol import (
    Limits,
    ParsedRequest,
    ServiceError,
    parse_simulation_request,
)
from repro.serve.quota import QuotaManager
from repro.simulation import plan_cache_info

__all__ = ["ServiceConfig", "Gateway", "DEFAULT_TENANT"]

#: Tenant id used when a request carries no ``X-Tenant`` header.
DEFAULT_TENANT = "anonymous"

#: Queue sentinel telling a worker thread to exit.
_STOP = object()


@dataclass
class ServiceConfig:
    """Operator-facing knobs of one gateway instance.

    ``workers`` sizes the execution pool (threads driving the shared
    executor), ``queue_size`` bounds the submission queue (the
    backpressure threshold), ``timeout``/``max_timeout`` the default
    and ceiling per-request deadlines in seconds, ``quota_rate`` /
    ``quota_burst`` the per-tenant token bucket (rate 0 disables
    quotas), and ``limits`` the protocol-level admission bounds.
    ``result_cache_size`` caps the deterministic-response LRU (0
    disables it).
    """

    host: str = "127.0.0.1"
    port: int = 8077
    workers: int = 4
    queue_size: int = 64
    timeout: float = 30.0
    max_timeout: float = 120.0
    quota_rate: float = 0.0
    quota_burst: int = 10
    result_cache_size: int = 256
    limits: Limits = field(default_factory=Limits)


class _ResultCache:
    """A tiny thread-safe LRU over serialized response bodies."""

    def __init__(self, capacity: int):
        from collections import OrderedDict

        self.capacity = int(capacity)
        self._entries: "OrderedDict[tuple, dict]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Optional[dict]:
        """The cached response for ``key``, refreshing its recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: tuple, value: dict) -> None:
        """Insert a response, evicting the least-recently-used."""
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class Gateway:
    """The simulation service, minus the transport.

    Owns a shared :class:`~repro.execution.Executor`, a worker pool
    pulling jobs off a bounded queue, the per-tenant quota manager,
    the result cache and the service metrics registry.  Thread-safe:
    :meth:`handle` is called concurrently from however many transport
    threads the server runs.

    Use as a context manager (or call :meth:`start` / :meth:`close`)
    so the worker threads are always reclaimed::

        with Gateway(ServiceConfig(workers=2)) as gw:
            status, headers, body = gw.handle(
                "POST", "/v1/simulate", b'{"qasm": "..."}', {}
            )
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        executor: Optional[Executor] = None,
    ):
        self.config = config or ServiceConfig()
        self.executor = executor or Executor()
        self.metrics = MetricsRegistry()
        self.quotas = QuotaManager(
            self.config.quota_rate, self.config.quota_burst
        )
        self._cache = _ResultCache(self.config.result_cache_size)
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=max(1, self.config.queue_size)
        )
        self._threads: list = []
        self._started = False
        self._lock = threading.Lock()
        m = self.metrics
        self._m_requests = m.counter(
            SERVICE_REQUESTS, "service requests by route and status"
        )
        self._m_latency = m.histogram(
            SERVICE_LATENCY, "end-to-end request wall seconds"
        )
        self._m_queue = m.gauge(
            SERVICE_QUEUE_DEPTH, "bounded submission queue depth"
        )
        self._m_inflight = m.gauge(
            SERVICE_INFLIGHT, "requests executing on workers"
        )
        self._m_throttles = m.counter(
            SERVICE_THROTTLES, "requests rejected by quota/backpressure"
        )
        self._m_timeouts = m.counter(
            SERVICE_TIMEOUTS, "requests cancelled at their deadline"
        )
        self._m_cache_hits = m.counter(
            SERVICE_RESULT_CACHE_HITS, "result cache hits"
        )
        self._m_cache_misses = m.counter(
            SERVICE_RESULT_CACHE_MISSES, "result cache misses"
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Gateway":
        """Spin up the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return self
            for i in range(max(1, self.config.workers)):
                t = threading.Thread(
                    target=self._worker,
                    name=f"repro-serve-worker-{i}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)
            self._started = True
        return self

    def close(self) -> None:
        """Stop the worker pool; queued jobs are drained first."""
        with self._lock:
            if not self._started:
                return
            for _ in self._threads:
                self._queue.put(_STOP)
            for t in self._threads:
                t.join(timeout=5.0)
            self._threads = []
            self._started = False

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _worker(self) -> None:
        """Worker loop: execute queued jobs until the stop sentinel."""
        while True:
            item = self._queue.get()
            self._m_queue.set(self._queue.qsize())
            if item is _STOP:
                return
            self._m_inflight.inc(1)
            try:
                self.executor.execute(item)
            finally:
                self._m_inflight.inc(-1)

    # -- routing ------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[dict] = None,
    ) -> Tuple[int, list, bytes]:
        """Serve one request; returns ``(status, headers, body)``.

        ``headers`` keys are matched case-insensitively.  Unknown
        paths answer 404, known paths with the wrong verb 405 — both
        with the same structured error body as every other failure.
        """
        headers = {
            k.lower(): v for k, v in (headers or {}).items()
        }
        t0 = perf_counter()
        route, status, out_headers, payload = self._route(
            method.upper(), path, body, headers
        )
        self._m_requests.inc(route=route, status=str(status))
        self._m_latency.observe(perf_counter() - t0, route=route)
        return status, out_headers, payload

    def _route(self, method, path, body, headers):
        """Dispatch to the endpoint; returns (route, status, hdrs, body)."""
        if path == "/v1/simulate":
            if method != "POST":
                return ("/v1/simulate",) + self._error(
                    ServiceError(405, "method-not-allowed",
                                 "use POST /v1/simulate")
                )
            try:
                status, hdrs, payload = self._simulate(body, headers)
            except ServiceError as exc:
                tenant = headers.get("x-tenant", DEFAULT_TENANT)
                record_event(
                    EV_REQUEST_REJECT, tenant=tenant, status=exc.status,
                    reason=exc.code,
                )
                return ("/v1/simulate",) + self._error(exc)
            return ("/v1/simulate", status, hdrs, payload)
        if path == "/healthz":
            if method != "GET":
                return ("/healthz",) + self._error(
                    ServiceError(405, "method-not-allowed",
                                 "use GET /healthz")
                )
            return ("/healthz",) + self._json(200, self._health())
        if path == "/metrics":
            text = to_prometheus(self.metrics).encode("utf-8")
            return (
                "/metrics", 200,
                [("content-type",
                  "text/plain; version=0.0.4; charset=utf-8")],
                text,
            )
        if path == "/debug/recorder":
            dump = flight_recorder().dump()
            return ("/debug/recorder",) + self._json(200, dump)
        if path == "/v1/stats":
            return ("/v1/stats",) + self._json(200, self._stats())
        return ("<unknown>",) + self._error(
            ServiceError(404, "not-found", f"no such endpoint: {path}")
        )

    # -- endpoints ----------------------------------------------------------

    def _simulate(self, body, headers):
        """POST /v1/simulate — the five-stage pipeline described in
        the module docstring."""
        tenant = headers.get("x-tenant", DEFAULT_TENANT)
        ok, retry = self.quotas.acquire(tenant)
        if not ok:
            self._m_throttles.inc(reason="quota")
            raise ServiceError(
                429, "quota-exceeded",
                f"tenant {tenant!r} is over its request quota",
                retry_after=retry,
            )
        parsed = parse_simulation_request(body, self.config.limits)
        timeout = self._timeout_for(headers)

        if parsed.cacheable:
            cached = self._cache.get(parsed.cache_key)
            if cached is not None:
                self._m_cache_hits.inc()
                record_event(
                    EV_REQUEST_DONE, tenant=tenant, status=200, ns=0,
                    cached=True,
                )
                return self._json(
                    200, dict(cached, cached=True),
                    extra=[("x-cache", "hit")],
                )
            self._m_cache_misses.inc()

        job = self.executor.prepare(parsed.request)
        job.deadline = perf_counter() + timeout
        record_event(
            EV_REQUEST_ACCEPT, id=job.id, tenant=tenant,
            pipeline=parsed.request.kind, qubits=parsed.nb_qubits,
        )
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._m_throttles.inc(reason="queue")
            raise ServiceError(
                429, "queue-full",
                "the submission queue is full; retry shortly",
                retry_after=max(1.0, timeout / 4),
            ) from None
        self._m_queue.set(self._queue.qsize())

        t0 = perf_counter()
        finished = job.wait(timeout)
        if not finished:
            job.cancel()
            # give the worker one beat to hit a cancellation
            # checkpoint so accounting (inflight gauge) settles
            job.wait(min(1.0, timeout))
            self._m_timeouts.inc()
            record_event(
                EV_REQUEST_TIMEOUT, id=job.id, tenant=tenant,
                ns=int((perf_counter() - t0) * 1e9),
            )
            raise ServiceError(
                504, "deadline-exceeded",
                f"request exceeded its {timeout:g}s deadline",
            )
        if not job.ok:
            if isinstance(job.error, JobCancelledError):
                self._m_timeouts.inc()
                record_event(
                    EV_REQUEST_TIMEOUT, id=job.id, tenant=tenant,
                    ns=int((perf_counter() - t0) * 1e9),
                )
                raise ServiceError(
                    504, "deadline-exceeded",
                    f"request exceeded its {timeout:g}s deadline",
                )
            raise ServiceError(
                500, "execution-failed",
                f"simulation failed: {type(job.error).__name__}: "
                f"{job.error}",
            )

        response = self._materialize(job, parsed)
        if parsed.cacheable:
            self._cache.put(parsed.cache_key, response)
        record_event(
            EV_REQUEST_DONE, id=job.id, tenant=tenant, status=200,
            ns=int((perf_counter() - t0) * 1e9), cached=False,
        )
        return self._json(
            200, dict(response, cached=False), extra=[("x-cache", "miss")]
        )

    def _timeout_for(self, headers) -> float:
        """Resolve the request deadline from ``X-Timeout`` (seconds),
        clamped to the configured ceiling."""
        raw = headers.get("x-timeout")
        if raw is None:
            return self.config.timeout
        try:
            timeout = float(raw)
        except ValueError:
            raise ServiceError(
                400, "bad-timeout",
                f"X-Timeout must be a number of seconds, got {raw!r}",
            ) from None
        if timeout <= 0:
            raise ServiceError(
                400, "bad-timeout", "X-Timeout must be > 0"
            )
        return min(timeout, self.config.max_timeout)

    def _materialize(self, job, parsed: ParsedRequest) -> dict:
        """Serialize a finished job into the JSON response body."""
        sim = job.result()
        out = {
            "id": job.id,
            "qubits": parsed.nb_qubits,
            "results": sim.results,
            "probabilities": [float(p) for p in sim.probabilities],
            "elapsed_ms": round(job.timings.total_seconds * 1e3, 3),
        }
        if parsed.shots > 0:
            if sim.nbMeasurements == 0:
                raise ServiceError(
                    400, "no-measurements",
                    "shots > 0 requires at least one Measurement in "
                    "the circuit",
                )
            out["counts"] = {
                k: int(v)
                for k, v in sim.counts_dict(
                    parsed.shots, seed=parsed.seed
                ).items()
            }
            out["shots"] = parsed.shots
        if parsed.expectations:
            out["expectations"] = {
                pauli: sim.expectation(pauli)
                for pauli in parsed.expectations
            }
        if parsed.return_state:
            out["states"] = [
                {
                    "result": result,
                    "probability": float(prob),
                    "re": np.real(state).tolist(),
                    "im": np.imag(state).tolist(),
                }
                for result, prob, state in zip(
                    sim.results, sim.probabilities, sim.states
                )
            ]
        return out

    def _health(self) -> dict:
        """The /healthz body: liveness plus coarse saturation signals."""
        return {
            "status": "ok",
            "workers": len(self._threads),
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
        }

    def _stats(self) -> dict:
        """The /v1/stats body: cache/quota/plan-cache introspection."""
        return {
            "result_cache": {
                "size": len(self._cache),
                "capacity": self._cache.capacity,
            },
            "plan_cache": plan_cache_info(),
            "quota": {
                "enabled": self.quotas.enabled,
                "rate": self.quotas.rate,
                "burst": self.quotas.burst,
                "tenants": self.quotas.snapshot(),
            },
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self._queue.maxsize,
            },
        }

    # -- response helpers ---------------------------------------------------

    @staticmethod
    def _json(status: int, payload: dict, extra: Optional[list] = None):
        """Encode a JSON response triple."""
        body = json.dumps(payload).encode("utf-8")
        headers = [("content-type", "application/json")]
        if extra:
            headers.extend(extra)
        return status, headers, body

    @staticmethod
    def _error(exc: ServiceError):
        """Encode a :class:`ServiceError` as its response triple."""
        headers = [("content-type", "application/json")]
        if exc.retry_after is not None:
            headers.append(
                ("retry-after", str(max(1, int(-(-exc.retry_after // 1)))))
            )
        body = json.dumps(exc.body()).encode("utf-8")
        return exc.status, headers, body
