"""Per-tenant token-bucket quotas for the simulation service.

A classic token bucket: each tenant holds up to ``burst`` tokens,
refilled continuously at ``rate`` tokens/second; a request spends one
token or is throttled with a precise ``Retry-After``.  The lazy-refill
formulation (tokens recomputed from the elapsed time at each acquire)
means an idle tenant costs nothing — no timers, no background refill
thread — which is what lets the :class:`QuotaManager` hold a bucket
per tenant without any eviction machinery.
"""

from __future__ import annotations

import math
import threading
from time import monotonic
from typing import Dict, Optional, Tuple

__all__ = ["TokenBucket", "QuotaManager"]


class TokenBucket:
    """One tenant's refillable budget of request tokens.

    ``rate`` is the steady-state requests/second, ``burst`` the
    maximum tokens banked while idle.  Not thread-safe on its own —
    the owning :class:`QuotaManager` serializes access.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: int):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.tokens = float(burst)
        # clock anchors on the first acquire, so injected test clocks
        # (acquire(now=...)) get a coherent timeline
        self.updated: Optional[float] = None

    def acquire(self, now: Optional[float] = None) -> Tuple[bool, float]:
        """Try to spend one token.

        Returns ``(True, 0.0)`` on success, or ``(False, retry_after)``
        where ``retry_after`` is the seconds until a full token will
        have refilled — the value the gateway puts in the
        ``Retry-After`` header.
        """
        if now is None:
            now = monotonic()
        if self.updated is None:
            self.updated = now
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class QuotaManager:
    """Token buckets keyed by tenant id.

    ``rate <= 0`` disables quotas entirely (every :meth:`acquire`
    succeeds), which is the single-user default of
    ``python -m repro.serve``.  Buckets materialize on first use and
    all mutation happens under one lock — bucket math is nanoseconds,
    so a shared lock beats per-bucket locking complexity.
    """

    def __init__(self, rate: float = 0.0, burst: int = 1):
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether quotas are being enforced at all."""
        return self.rate > 0

    def acquire(self, tenant: str) -> Tuple[bool, float]:
        """Spend one token for ``tenant``; see :meth:`TokenBucket.acquire`."""
        if not self.enabled:
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst
                )
            ok, retry = bucket.acquire()
        return ok, retry

    def retry_after_header(self, retry: float) -> str:
        """Format a retry interval for the ``Retry-After`` header
        (integer seconds, rounded up, at least 1)."""
        return str(max(1, int(math.ceil(retry))))

    def snapshot(self) -> Dict[str, float]:
        """``{tenant: tokens-remaining}`` for the stats endpoint."""
        with self._lock:
            return {t: round(b.tokens, 3) for t, b in self._buckets.items()}
