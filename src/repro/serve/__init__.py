"""Simulation-as-a-service: an HTTP gateway over the execution core.

``python -m repro.serve`` boots a zero-dependency HTTP service that
accepts circuits as OpenQASM or serialized JSON, runs them through the
shared :class:`~repro.execution.Executor`, and answers with branch
probabilities, sampled counts, Pauli expectations and (optionally)
state amplitudes.  The full endpoint reference lives in
``docs/serve.md``; the layering is:

:mod:`repro.serve.protocol`
    Pure request validation — JSON schema, circuit ingestion (QASM /
    serialized dict), option allowlist, admission limits, structured
    :class:`ServiceError` failures.
:mod:`repro.serve.quota`
    Per-tenant token buckets behind 429 + ``Retry-After``.
:mod:`repro.serve.gateway`
    The transport-free service: bounded queue, worker pool, result
    cache, request deadlines with mid-run cancellation, ``SERVICE_*``
    metrics and ``request.*`` flight-recorder events.
:mod:`repro.serve.asgi`
    An ASGI 3 adapter plus the stdlib ``asyncio`` HTTP server, and
    :func:`start_in_thread` for in-process testing/benchmarking.

Quick start, no socket required::

    from repro.serve import Gateway, ServiceConfig

    with Gateway(ServiceConfig(workers=2)) as gw:
        status, headers, body = gw.handle(
            "POST", "/v1/simulate",
            b'{"qasm": "OPENQASM 2.0; ..."}',
        )
"""

from repro.serve.asgi import ServerHandle, create_app, serve, start_in_thread
from repro.serve.gateway import DEFAULT_TENANT, Gateway, ServiceConfig
from repro.serve.protocol import (
    Limits,
    OPTION_KEYS,
    ParsedRequest,
    ServiceError,
    error_body,
    parse_simulation_request,
)
from repro.serve.quota import QuotaManager, TokenBucket

__all__ = [
    "Gateway",
    "ServiceConfig",
    "DEFAULT_TENANT",
    "Limits",
    "OPTION_KEYS",
    "ParsedRequest",
    "ServiceError",
    "error_body",
    "parse_simulation_request",
    "QuotaManager",
    "TokenBucket",
    "create_app",
    "serve",
    "start_in_thread",
    "ServerHandle",
]
