"""ASGI adapter and stdlib HTTP server for the simulation gateway.

Two ways to put a :class:`~repro.serve.gateway.Gateway` on the wire:

:func:`create_app`
    Wraps a gateway in a standards-compliant ASGI 3 callable.  Mount
    it under any ASGI server (``uvicorn repro.serve.asgi:app`` style)
    when one is installed — the gateway's synchronous :meth:`handle`
    runs on the event loop's thread pool via :func:`asyncio.to_thread`
    so slow simulations never block the accept loop.

:func:`serve` / :func:`start_in_thread`
    A minimal HTTP/1.1 server on :func:`asyncio.start_server` driving
    that same ASGI app — zero dependencies beyond the standard
    library, which is what lets ``python -m repro.serve`` boot
    anywhere the package imports.  It speaks exactly what the service
    needs (request line, headers, ``Content-Length`` bodies,
    keep-alive) and answers 400 to anything fancier (chunked uploads).

``start_in_thread`` is the test/benchmark entry point: it boots the
server on a background thread, waits for the bound port (``port=0``
picks a free one) and returns a :class:`ServerHandle` whose
``close()`` tears everything down deterministically.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional
from urllib.parse import unquote

from repro.serve.gateway import Gateway, ServiceConfig

__all__ = ["create_app", "serve", "start_in_thread", "ServerHandle"]

#: Cap on accepted request-body sizes at the transport layer; the
#: protocol layer enforces the (smaller) configured limit with a
#: structured 413, this one only guards the raw reader.
_MAX_WIRE_BODY = 64 * 1024 * 1024


def create_app(gateway: Gateway):
    """Build an ASGI 3 application over ``gateway``.

    Handles ``http`` scopes by collecting the body and delegating to
    :meth:`Gateway.handle` off-loop, and ``lifespan`` scopes by
    starting/closing the gateway's worker pool with the server.
    """

    async def app(scope, receive, send):
        """The ASGI callable (scope/receive/send protocol)."""
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    gateway.start()
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    gateway.close()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        if scope["type"] != "http":
            raise RuntimeError(
                f"unsupported ASGI scope type {scope['type']!r}"
            )
        body = b""
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                return
            body += message.get("body", b"")
            if not message.get("more_body", False):
                break
        headers = {
            k.decode("latin-1"): v.decode("latin-1")
            for k, v in scope.get("headers", [])
        }
        status, out_headers, payload = await asyncio.to_thread(
            gateway.handle,
            scope["method"],
            scope["path"],
            body,
            headers,
        )
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": [
                (k.encode("latin-1"), v.encode("latin-1"))
                for k, v in out_headers
            ] + [(b"content-length", str(len(payload)).encode())],
        })
        await send({"type": "http.response.body", "body": payload})

    return app


async def _read_request(reader):
    """Parse one HTTP/1.1 request off ``reader``.

    Returns ``(method, path, headers, body, keep_alive)`` or ``None``
    on a cleanly closed connection.  Raises ``ValueError`` on
    malformed framing (the caller answers 400 and hangs up).
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise ValueError("malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/"):
        raise ValueError("malformed request line")
    path = unquote(target.split("?", 1)[0])
    headers = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise ValueError("chunked request bodies are not supported")
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_WIRE_BODY:
        raise ValueError("unacceptable content-length")
    body = await reader.readexactly(length) if length else b""
    keep_alive = (
        headers.get("connection", "").lower() != "close"
        and version == "HTTP/1.1"
    )
    return method, path, headers, body, keep_alive


def _write_response(writer, status, headers, body, keep_alive):
    """Emit one HTTP/1.1 response onto ``writer``."""
    reason = {
        200: "OK", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 413: "Payload Too Large",
        429: "Too Many Requests", 500: "Internal Server Error",
        501: "Not Implemented", 504: "Gateway Timeout",
    }.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{k}: {v}" for k, v in headers]
    lines.append(f"content-length: {len(body)}")
    lines.append(
        "connection: keep-alive" if keep_alive else "connection: close"
    )
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    writer.write(body)


async def _handle_connection(gateway: Gateway, reader, writer):
    """Serve HTTP requests on one connection until close/EOF."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError):
                _write_response(
                    writer, 400,
                    [("content-type", "application/json")],
                    b'{"error": {"code": "bad-http", '
                    b'"message": "malformed HTTP request"}}',
                    keep_alive=False,
                )
                await writer.drain()
                break
            if request is None:
                break
            method, path, headers, body, keep_alive = request
            status, out_headers, payload = await asyncio.to_thread(
                gateway.handle, method, path, body, headers
            )
            _write_response(
                writer, status, out_headers, payload, keep_alive
            )
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionError, BrokenPipeError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


async def serve(
    config: Optional[ServiceConfig] = None,
    gateway: Optional[Gateway] = None,
    ready: Optional["threading.Event"] = None,
    bound: Optional[list] = None,
):
    """Run the stdlib server until cancelled.

    Boots (or adopts) a gateway, binds ``config.host:config.port``
    (port 0 = ephemeral) and serves forever.  ``ready``/``bound`` are
    the thread-handshake outputs used by :func:`start_in_thread`: the
    actually bound ``(host, port)`` is appended to ``bound`` before
    ``ready`` is set.
    """
    config = config or ServiceConfig()
    gw = gateway or Gateway(config)
    gw.start()
    # track per-connection tasks so shutdown can cancel idle
    # keep-alive readers instead of abandoning them to the dying loop
    connections: set = set()

    def _on_connection(reader, writer):
        task = asyncio.ensure_future(
            _handle_connection(gw, reader, writer)
        )
        connections.add(task)
        task.add_done_callback(connections.discard)

    server = await asyncio.start_server(
        _on_connection, host=config.host, port=config.port
    )
    try:
        sock = server.sockets[0].getsockname()
        if bound is not None:
            bound.append((sock[0], sock[1]))
        if ready is not None:
            ready.set()
        async with server:
            await server.serve_forever()
    finally:
        for task in list(connections):
            task.cancel()
        if connections:
            await asyncio.gather(
                *connections, return_exceptions=True
            )
        gw.close()


class ServerHandle:
    """A running background server: url, gateway, deterministic close.

    Returned by :func:`start_in_thread`; also usable as a context
    manager.  ``close()`` cancels the serve task on its loop, joins
    the thread and (through :func:`serve`'s ``finally``) stops the
    gateway workers.
    """

    def __init__(self, gateway, thread, loop, task, host, port):
        self.gateway = gateway
        self._thread = thread
        self._loop = loop
        self._task = task
        self.host = host
        self.port = port

    @property
    def url(self) -> str:
        """Base URL of the running server (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_in_thread(
    config: Optional[ServiceConfig] = None,
    gateway: Optional[Gateway] = None,
) -> ServerHandle:
    """Boot the service on a daemon thread and wait until it listens.

    The test/benchmark entry point::

        from repro.serve import ServiceConfig, start_in_thread

        with start_in_thread(ServiceConfig(port=0, workers=2)) as h:
            ...  # h.url is live, h.gateway is inspectable

    Raises ``RuntimeError`` when the server fails to come up within
    ten seconds (port in use, import failure on the thread, ...).
    """
    config = config or ServiceConfig()
    gw = gateway or Gateway(config)
    ready = threading.Event()
    bound: list = []
    box: dict = {}

    def _run():
        """Thread body: own loop running :func:`serve` to completion."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        task = loop.create_task(
            serve(config, gw, ready=ready, bound=bound)
        )
        box["task"] = task
        try:
            loop.run_until_complete(task)
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(
        target=_run, name="repro-serve", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=10.0):
        raise RuntimeError("service failed to start within 10s")
    host, port = bound[0]
    return ServerHandle(gw, thread, box["loop"], box["task"], host, port)
