"""Wire protocol of the simulation service: schemas, limits, errors.

This module is the *pure* half of the gateway — no threads, no
sockets.  It turns an HTTP request body (bytes) into a validated
:class:`ParsedRequest` wrapping a ready-to-run
:class:`~repro.execution.ExecutionRequest`, and turns every failure
mode into a :class:`ServiceError` carrying an HTTP status plus a
stable machine-readable ``code`` so clients can branch on failures
without parsing prose.

A simulate request body is a JSON object::

    {
      "circuit": {"qasm": "..."}        # or {"json": {...}} —
                                        #   serialized circuit dict
      "shots": 0,                       # 0 = exact amplitudes
      "seed": 1234,                     # required for cacheable shots
      "start": "00",                    # optional initial bitstring
      "expectations": ["ZZ", "XI"],     # optional Pauli strings
      "return_state": false,            # include amplitudes in reply
      "options": {"backend": "kernel", "atol": 1e-12,
                  "dtype": "complex128", "compile": true,
                  "fuse": true}
    }

``{"qasm": "..."}`` at the top level is accepted as shorthand for
``{"circuit": {"qasm": "..."}}``.  Every field other than the circuit
is optional.  The accepted ``options`` keys are exactly the
:data:`OPTION_KEYS` subset of
:class:`~repro.simulation.SimulationOptions` that is safe to expose to
untrusted callers (notably *not* ``max_workers`` — process fan-out is
an operator decision, not a request knob).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.exceptions import QCLabError
from repro.execution import ExecutionRequest
from repro.io import fromQASM, circuit_from_dict
from repro.simulation import SimulationOptions
from repro.simulation.plan import circuit_signature

__all__ = [
    "ServiceError",
    "ParsedRequest",
    "Limits",
    "OPTION_KEYS",
    "parse_body",
    "parse_simulation_request",
    "error_body",
]

#: ``options`` keys a request may set; everything else is operator-only.
OPTION_KEYS = ("backend", "atol", "dtype", "compile", "fuse")

#: Service-facing dtype spellings -> numpy complex types.
_DTYPES = {
    "complex128": np.complex128,
    "complex64": np.complex64,
}

_PAULI_RE = re.compile(r"^[IXYZ]+$")
_BITSTRING_RE = re.compile(r"^[01]+$")


class ServiceError(QCLabError):
    """A request failure mapped to an HTTP response.

    Carries the HTTP ``status``, a stable machine-readable ``code``
    (kebab-case, e.g. ``bad-json``, ``quota-exceeded``), a human
    ``message`` and an optional ``detail`` payload.  ``retry_after``
    (seconds) is surfaced as a ``Retry-After`` header on throttling
    responses.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Any = None,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.detail = detail
        self.retry_after = retry_after

    def body(self) -> dict:
        """The structured JSON error body for this failure."""
        return error_body(self.code, self.message, self.detail)


def error_body(code: str, message: str, detail: Any = None) -> dict:
    """Build the canonical ``{"error": {...}}`` response body."""
    err: dict = {"code": code, "message": message}
    if detail is not None:
        err["detail"] = detail
    return {"error": err}


@dataclass(frozen=True)
class Limits:
    """Admission limits the protocol layer enforces per request.

    ``max_body_bytes`` bounds the raw HTTP body, ``max_qubits`` the
    circuit width (statevector memory is ``2**n``), ``max_shots`` the
    sampling work, and ``max_expectations`` the number of Pauli
    observables evaluated per request.
    """

    max_body_bytes: int = 1_000_000
    max_qubits: int = 22
    max_shots: int = 1_000_000
    max_expectations: int = 64


@dataclass(frozen=True)
class ParsedRequest:
    """A fully validated simulate request, ready for the executor.

    ``request`` is the :class:`~repro.execution.ExecutionRequest` to
    submit; ``cache_key`` is a hashable key over everything that
    determines the response (circuit signature, options, start, seed,
    shots, expectations, state flag); ``cacheable`` is ``True`` only
    when the response is deterministic — exact runs, or sampled runs
    with an explicit seed.
    """

    request: ExecutionRequest
    shots: int
    seed: Optional[int]
    expectations: Tuple[str, ...]
    return_state: bool
    cache_key: tuple
    cacheable: bool
    nb_qubits: int


def parse_body(raw: bytes, limits: Limits) -> dict:
    """Decode a request body into a JSON object, or raise 4xx.

    Oversized bodies raise 413; undecodable/ill-typed ones raise 400
    with codes ``bad-json`` / ``bad-request`` so clients can tell
    transport corruption from schema mistakes.
    """
    if len(raw) > limits.max_body_bytes:
        raise ServiceError(
            413, "body-too-large",
            f"request body exceeds {limits.max_body_bytes} bytes",
        )
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(
            400, "bad-json", f"request body is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise ServiceError(
            400, "bad-request",
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}",
        )
    return payload


def _parse_circuit(payload: dict):
    """Materialize the circuit from ``qasm`` or serialized ``json``."""
    spec = payload.get("circuit")
    if spec is None and "qasm" in payload:
        spec = {"qasm": payload["qasm"]}
    if spec is None:
        raise ServiceError(
            400, "missing-circuit",
            'request must carry a circuit: {"circuit": {"qasm": ...}} '
            'or {"circuit": {"json": {...}}}',
        )
    if not isinstance(spec, dict):
        raise ServiceError(
            400, "bad-circuit",
            f"circuit must be an object, got {type(spec).__name__}",
        )
    if ("qasm" in spec) == ("json" in spec):
        raise ServiceError(
            400, "bad-circuit",
            'circuit must carry exactly one of "qasm" or "json"',
        )
    try:
        if "qasm" in spec:
            if not isinstance(spec["qasm"], str):
                raise ServiceError(
                    400, "bad-circuit", "circuit.qasm must be a string"
                )
            return fromQASM(spec["qasm"])
        return circuit_from_dict(spec["json"])
    except ServiceError:
        raise
    except QCLabError as exc:
        raise ServiceError(
            400, "bad-circuit", f"circuit failed to parse: {exc}"
        ) from None
    except (TypeError, ValueError, KeyError, AttributeError) as exc:
        raise ServiceError(
            400, "bad-circuit",
            f"circuit failed to parse: {type(exc).__name__}: {exc}",
        ) from None


def _parse_options(payload: dict) -> Tuple[SimulationOptions, tuple]:
    """Resolve the ``options`` object and its canonical cache key."""
    raw = payload.get("options", {})
    if not isinstance(raw, dict):
        raise ServiceError(
            400, "bad-options",
            f"options must be an object, got {type(raw).__name__}",
        )
    unknown = sorted(set(raw) - set(OPTION_KEYS))
    if unknown:
        raise ServiceError(
            400, "bad-options",
            f"unknown option(s): {', '.join(unknown)}",
            detail={"allowed": list(OPTION_KEYS)},
        )
    fields = dict(raw)
    if "backend" in fields and not isinstance(fields["backend"], str):
        raise ServiceError(
            400, "bad-options", "options.backend must be a string"
        )
    if "dtype" in fields:
        dt = fields["dtype"]
        if dt not in _DTYPES:
            raise ServiceError(
                400, "bad-options",
                f"options.dtype must be one of {sorted(_DTYPES)}, "
                f"got {dt!r}",
            )
        fields["dtype"] = _DTYPES[dt]
    try:
        options = SimulationOptions(**fields)
    except QCLabError as exc:
        raise ServiceError(
            400, "bad-options", f"invalid options: {exc}"
        ) from None
    key = (
        options.backend if isinstance(options.backend, str) else
        type(options.backend).__name__,
        options.atol,
        np.dtype(options.dtype).name,
        options.compile,
        options.fuse,
    )
    return options, key


def _parse_int(payload: dict, name: str, default, minimum, maximum):
    """Pull an optional bounded integer field, or raise 400."""
    value = payload.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(
            400, f"bad-{name}", f"{name} must be an integer"
        )
    if not (minimum <= value <= maximum):
        raise ServiceError(
            400, f"bad-{name}",
            f"{name} must be between {minimum} and {maximum}, "
            f"got {value}",
        )
    return value


def parse_simulation_request(
    raw: bytes, limits: Limits
) -> ParsedRequest:
    """Validate a simulate body end to end into a :class:`ParsedRequest`.

    Performs every admission check that does not require running the
    circuit: JSON shape, circuit parse, width limit, option allowlist,
    shot/seed bounds, expectation Pauli strings and the initial
    bitstring.  Anything that fails raises :class:`ServiceError` with
    a 4xx status — by the time this returns, the only remaining
    failure modes are executor-side (and those get captured on the
    job, not raised).
    """
    payload = parse_body(raw, limits)
    circuit = _parse_circuit(payload)
    nb_qubits = circuit.nbQubits
    if nb_qubits > limits.max_qubits:
        raise ServiceError(
            400, "circuit-too-large",
            f"circuit has {nb_qubits} qubits; this service accepts at "
            f"most {limits.max_qubits}",
        )
    options, options_key = _parse_options(payload)
    shots = _parse_int(payload, "shots", 0, 0, limits.max_shots) or 0
    seed = _parse_int(payload, "seed", None, 0, 2**63 - 1)

    start = payload.get("start")
    if start is not None:
        if not isinstance(start, str) or not _BITSTRING_RE.match(start):
            raise ServiceError(
                400, "bad-start",
                "start must be a bitstring of 0s and 1s",
            )
        if len(start) != nb_qubits:
            raise ServiceError(
                400, "bad-start",
                f"start has {len(start)} bits for a {nb_qubits}-qubit "
                "circuit",
            )

    expectations = payload.get("expectations", [])
    if not isinstance(expectations, list):
        raise ServiceError(
            400, "bad-expectations", "expectations must be a list"
        )
    if len(expectations) > limits.max_expectations:
        raise ServiceError(
            400, "bad-expectations",
            f"at most {limits.max_expectations} expectations per "
            f"request, got {len(expectations)}",
        )
    for pauli in expectations:
        if not isinstance(pauli, str) or not _PAULI_RE.match(pauli):
            raise ServiceError(
                400, "bad-expectations",
                f"expectation {pauli!r} is not a Pauli string over "
                "I/X/Y/Z",
            )
        if len(pauli) != nb_qubits:
            raise ServiceError(
                400, "bad-expectations",
                f"expectation {pauli!r} has {len(pauli)} factors for "
                f"a {nb_qubits}-qubit circuit",
            )

    return_state = payload.get("return_state", False)
    if not isinstance(return_state, bool):
        raise ServiceError(
            400, "bad-return_state", "return_state must be a boolean"
        )

    request = ExecutionRequest(
        circuit=circuit, start=start, options=options, seed=seed
    )
    cache_key = (
        circuit_signature(circuit),
        options_key,
        start,
        shots,
        seed,
        tuple(expectations),
        return_state,
    )
    # sampled runs without a seed are nondeterministic by design;
    # caching one would silently freeze its randomness
    cacheable = shots == 0 or seed is not None
    return ParsedRequest(
        request=request,
        shots=shots,
        seed=seed,
        expectations=tuple(expectations),
        return_state=return_state,
        cache_key=cache_key,
        cacheable=cacheable,
        nb_qubits=nb_qubits,
    )
