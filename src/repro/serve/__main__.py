"""``python -m repro.serve`` — boot the simulation service.

Runs the stdlib ``asyncio`` HTTP server over a freshly configured
:class:`~repro.serve.gateway.Gateway`.  Every operator knob of
:class:`~repro.serve.gateway.ServiceConfig` maps to a flag::

    python -m repro.serve --port 8077 --workers 4 --timeout 30 \\
        --quota-rate 10 --quota-burst 20

Ctrl-C shuts down cleanly (workers drained and joined).  See
``docs/serve.md`` for the endpoint reference and client quickstart.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional

from repro.serve.asgi import serve
from repro.serve.gateway import ServiceConfig
from repro.serve.protocol import Limits

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="HTTP simulation service over the repro executor",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8077,
        help="bind port; 0 picks a free one (default 8077)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="execution worker threads (default 4)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded submission queue size (default 64)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-request deadline, seconds (default 30)",
    )
    parser.add_argument(
        "--max-timeout", type=float, default=120.0,
        help="ceiling on client-requested X-Timeout (default 120)",
    )
    parser.add_argument(
        "--quota-rate", type=float, default=0.0,
        help="per-tenant requests/second; 0 disables quotas (default)",
    )
    parser.add_argument(
        "--quota-burst", type=int, default=10,
        help="per-tenant token-bucket burst (default 10)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache entries; 0 disables caching (default 256)",
    )
    parser.add_argument(
        "--max-qubits", type=int, default=22,
        help="largest accepted circuit width (default 22)",
    )
    parser.add_argument(
        "--max-body-bytes", type=int, default=1_000_000,
        help="largest accepted request body (default 1000000)",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        timeout=args.timeout,
        max_timeout=args.max_timeout,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        result_cache_size=args.cache_size,
        limits=Limits(
            max_body_bytes=args.max_body_bytes,
            max_qubits=args.max_qubits,
        ),
    )
    print(
        f"repro.serve listening on http://{config.host}:{config.port} "
        f"({config.workers} worker(s), queue {config.queue_size}, "
        f"timeout {config.timeout:g}s)",
        flush=True,
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:
        print("repro.serve: shutting down", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
