"""Named two-qubit gates: the controlled family and SWAP/iSWAP.

Constructors follow QCLAB's ``(control, target)`` signature from the
paper — ``CNOT(0, 1)`` is a CNOT with control ``q0`` and target ``q1``
(an optional ``control_state`` selects open controls).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.gates.base import DrawElement, DrawSpec, QGate
from repro.gates.controlled import ControlledGate, ControlledGate1
from repro.gates.fixed import Hadamard, PauliX, PauliY, PauliZ
from repro.gates.parametric import Phase, RotationX, RotationY, RotationZ
from repro.utils.validation import check_qubits

__all__ = [
    "CNOT",
    "CX",
    "CY",
    "CZ",
    "CH",
    "CPhase",
    "CRotationX",
    "CRotationY",
    "CRotationZ",
    "SWAP",
    "iSWAP",
    "CSwap",
]


class CNOT(ControlledGate1):
    """Controlled-NOT: flips ``target`` when ``control`` matches its state."""

    _QASM = "cx"

    def __init__(self, control: int, target: int, control_state: int = 1):
        super().__init__(PauliX(target), control, control_state)

    def ctranspose(self) -> "CNOT":
        return CNOT(self.control, self.target, self.control_state)


#: ``CX`` is an alias of :class:`CNOT` (both names appear in the QCLAB docs).
CX = CNOT


class CY(ControlledGate1):
    """Controlled Pauli-Y."""

    _QASM = "cy"

    def __init__(self, control: int, target: int, control_state: int = 1):
        super().__init__(PauliY(target), control, control_state)

    def ctranspose(self) -> "CY":
        return CY(self.control, self.target, self.control_state)


class CZ(ControlledGate1):
    """Controlled Pauli-Z (symmetric in control and target)."""

    _QASM = "cz"

    def __init__(self, control: int, target: int, control_state: int = 1):
        super().__init__(PauliZ(target), control, control_state)

    def ctranspose(self) -> "CZ":
        return CZ(self.control, self.target, self.control_state)


class CH(ControlledGate1):
    """Controlled Hadamard."""

    _QASM = "ch"

    def __init__(self, control: int, target: int, control_state: int = 1):
        super().__init__(Hadamard(target), control, control_state)

    def ctranspose(self) -> "CH":
        return CH(self.control, self.target, self.control_state)


class CPhase(ControlledGate1):
    """Controlled phase gate ``diag(1, 1, 1, e^{i theta})`` (for state-1
    control with control < target)."""

    _QASM = "cu1"

    def __init__(
        self, control: int, target: int, *args, control_state: int = 1
    ):
        super().__init__(Phase(target, *args), control, control_state)

    @property
    def theta(self) -> float:
        """The phase angle in radians."""
        return self.gate.theta

    @theta.setter
    def theta(self, value: float) -> None:
        self.gate._set_theta(value)

    @property
    def angle(self):
        """The phase angle as a :class:`~repro.angle.QAngle`."""
        return self.gate.angle

    def _qasm_params(self) -> str:
        return f"({self.theta!r})"

    def ctranspose(self) -> "CPhase":
        expr = self.gate.parameter_expression
        if expr is not None:
            return CPhase(
                self.control, self.target, -expr,
                control_state=self.control_state,
            )
        a = self.gate.angle
        return CPhase(
            self.control,
            self.target,
            a.cos,
            -a.sin,
            control_state=self.control_state,
        )


class _CRotation(ControlledGate1):
    """Shared implementation of the controlled rotations."""

    _ROT = None

    def __init__(
        self, control: int, target: int, *args, control_state: int = 1
    ):
        super().__init__(self._ROT(target, *args), control, control_state)

    @property
    def theta(self) -> float:
        """The rotation angle in radians."""
        return self.gate.theta

    @theta.setter
    def theta(self, value: float) -> None:
        self.gate._set_theta(value)

    @property
    def rotation(self):
        """The rotation as a :class:`~repro.angle.QRotation`."""
        return self.gate.rotation

    def _qasm_params(self) -> str:
        return f"({self.theta!r})"

    def ctranspose(self):
        expr = self.gate.parameter_expression
        if expr is not None:
            return type(self)(
                self.control, self.target, -expr,
                control_state=self.control_state,
            )
        return type(self)(
            self.control,
            self.target,
            self.gate.rotation.inv(),
            control_state=self.control_state,
        )


class CRotationX(_CRotation):
    """Controlled ``RX(theta)``."""

    _QASM = "crx"
    _ROT = RotationX


class CRotationY(_CRotation):
    """Controlled ``RY(theta)``."""

    _QASM = "cry"
    _ROT = RotationY


class CRotationZ(_CRotation):
    """Controlled ``RZ(theta)``."""

    _QASM = "crz"
    _ROT = RotationZ


class SWAP(QGate):
    """The SWAP gate: exchanges two qubits."""

    _MATRIX = np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
        dtype=np.complex128,
    )

    def __init__(self, qubit0: int, qubit1: int):
        qs = check_qubits([qubit0, qubit1])
        self._qubits = tuple(sorted(qs))

    @property
    def qubits(self) -> tuple:
        """The two exchanged qubits, in ascending order."""
        return self._qubits

    @property
    def matrix(self) -> np.ndarray:
        """The 4x4 SWAP unitary."""
        return self._MATRIX

    def ctranspose(self) -> "SWAP":
        """The inverse gate (SWAP is self-inverse)."""
        return SWAP(*self._qubits)

    def draw_spec(self) -> DrawSpec:
        """Drawing layout: a connected cross on each qubit."""
        el = DrawElement("cross")
        return DrawSpec(elements={q: el for q in self._qubits}, connect=True)

    def toQASM(self, offset: int = 0) -> str:
        """The OpenQASM 2.0 statement, qubits shifted by ``offset``."""
        a, b = (q + offset for q in self._qubits)
        return f"swap q[{a}],q[{b}];"

    def shifted(self, offset: int):
        """A copy of the gate acting ``offset`` qubits lower down."""
        out = copy.copy(self)
        out._qubits = tuple(q + int(offset) for q in self._qubits)
        return out

    def __repr__(self) -> str:
        return f"SWAP({self._qubits[0]}, {self._qubits[1]})"


class iSWAP(QGate):
    """The iSWAP gate: exchanges two qubits with an ``i`` phase on the
    swapped amplitudes."""

    _MATRIX = np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]],
        dtype=np.complex128,
    )

    def __init__(self, qubit0: int, qubit1: int):
        qs = check_qubits([qubit0, qubit1])
        self._qubits = tuple(sorted(qs))

    @property
    def qubits(self) -> tuple:
        """The two exchanged qubits, in ascending order."""
        return self._qubits

    @property
    def matrix(self) -> np.ndarray:
        """The 4x4 iSWAP unitary (``i`` on the swapped amplitudes)."""
        return self._MATRIX

    def ctranspose(self) -> "_iSWAPdg":
        """The inverse gate (iSWAP-dagger, ``-i`` phases)."""
        return _iSWAPdg(*self._qubits)

    def draw_spec(self) -> DrawSpec:
        """Drawing layout: a connected ``iSW`` box on each qubit."""
        el = DrawElement("box", "iSW")
        return DrawSpec(elements={q: el for q in self._qubits}, connect=True)

    def toQASM(self, offset: int = 0) -> str:
        """The OpenQASM 2.0 statement, qubits shifted by ``offset``."""
        a, b = (q + offset for q in self._qubits)
        return f"iswap q[{a}],q[{b}];"

    def shifted(self, offset: int):
        """A copy of the gate acting ``offset`` qubits lower down."""
        out = copy.copy(self)
        out._qubits = tuple(q + int(offset) for q in self._qubits)
        return out

    def __repr__(self) -> str:
        return f"iSWAP({self._qubits[0]}, {self._qubits[1]})"


class _iSWAPdg(QGate):
    """The inverse of :class:`iSWAP`."""

    _MATRIX = np.array(
        [[1, 0, 0, 0], [0, 0, -1j, 0], [0, -1j, 0, 0], [0, 0, 0, 1]],
        dtype=np.complex128,
    )

    def __init__(self, qubit0: int, qubit1: int):
        qs = check_qubits([qubit0, qubit1])
        self._qubits = tuple(sorted(qs))

    @property
    def qubits(self) -> tuple:
        return self._qubits

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    def ctranspose(self) -> "iSWAP":
        return iSWAP(*self._qubits)

    def draw_spec(self) -> DrawSpec:
        el = DrawElement("box", "iSW†")
        return DrawSpec(elements={q: el for q in self._qubits}, connect=True)

    def toQASM(self, offset: int = 0) -> str:
        a, b = (q + offset for q in self._qubits)
        return f"iswapdg q[{a}],q[{b}];"

    def shifted(self, offset: int):
        out = copy.copy(self)
        out._qubits = tuple(q + int(offset) for q in self._qubits)
        return out


class CSwap(ControlledGate):
    """The Fredkin gate: a controlled SWAP.

    ``CSwap(control, target0, target1)`` exchanges the two targets when
    the control matches its state (``qelib1``'s ``cswap``).
    """

    def __init__(
        self, control: int, target0: int, target1: int,
        control_state: int = 1,
    ):
        super().__init__(SWAP(target0, target1), control, control_state)

    def ctranspose(self) -> "CSwap":
        t0, t1 = self.gate.qubits
        return CSwap(self.control, t0, t1, self.control_state)

    def draw_spec(self) -> DrawSpec:
        elements = {
            q: DrawElement("cross") for q in self.gate.qubits
        }
        elements[self.control] = DrawElement(
            "ctrl1" if self.control_state else "ctrl0"
        )
        return DrawSpec(elements=elements, connect=True)

    def toQASM(self, offset: int = 0) -> str:
        c = self.control + offset
        t0, t1 = (q + offset for q in self.gate.qubits)
        lines = []
        if self.control_state == 0:
            lines.append(f"x q[{c}];")
        lines.append(f"cswap q[{c}],q[{t0}],q[{t1}];")
        if self.control_state == 0:
            lines.append(f"x q[{c}];")
        return "\n".join(lines)
