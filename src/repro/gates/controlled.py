"""Generic singly-controlled one-qubit gates.

:class:`ControlledGate1` wraps any one-qubit gate with one control qubit
and a configurable *control state* (``1`` = filled dot, the default;
``0`` = open dot, i.e. the gate fires when the control is ``|0>``).
The named two-qubit gates in :mod:`repro.gates.two_qubit` (CNOT, CZ,
CPhase, ...) specialize this class.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.exceptions import GateError
from repro.gates.base import (
    DrawElement,
    DrawSpec,
    QGate,
    controlled_matrix,
)
from repro.gates.qgate1 import QGate1
from repro.utils.validation import check_qubit

__all__ = ["ControlledGate1", "ControlledGate"]


class ControlledGate1(QGate):
    """A one-qubit gate with a single control qubit.

    Parameters
    ----------
    gate:
        The target one-qubit gate; its ``qubit`` is the target.
    control:
        The control qubit (distinct from the target).
    control_state:
        ``1`` (default) applies the gate when the control is ``|1>``;
        ``0`` when it is ``|0>``.
    """

    _QASM = None  # OpenQASM name for named subclasses (e.g. "cx")

    def __init__(self, gate, control: int, control_state: int = 1):
        if not isinstance(gate, QGate) or gate.nbQubits != 1:
            raise GateError(
                "ControlledGate1 requires a one-qubit target gate, got "
                f"{type(gate).__name__}"
            )
        control = check_qubit(control)
        if control == gate.qubit:
            raise GateError(
                f"control qubit {control} equals target qubit {gate.qubit}"
            )
        if control_state not in (0, 1):
            raise GateError(f"control state {control_state!r} is not 0 or 1")
        self._gate = gate
        self._control = control
        self._control_state = int(control_state)

    # -- structure ----------------------------------------------------------

    @property
    def gate(self) -> QGate1:
        """The wrapped target gate."""
        return self._gate

    @property
    def control(self) -> int:
        """The control qubit."""
        return self._control

    @property
    def target(self) -> int:
        """The target qubit."""
        return self._gate.qubit

    @property
    def control_state(self) -> int:
        """The control state (0 or 1)."""
        return self._control_state

    @property
    def qubits(self) -> tuple:
        return tuple(sorted((self._control, self._gate.qubit)))

    def controls(self) -> tuple:
        return (self._control,)

    def control_states(self) -> tuple:
        return (self._control_state,)

    def target_qubits(self) -> tuple:
        return (self._gate.qubit,)

    def target_matrix(self) -> np.ndarray:
        return self._gate.matrix

    # -- matrix -------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        return controlled_matrix(
            self._gate.matrix,
            self.qubits,
            (self._control,),
            (self._control_state,),
            (self._gate.qubit,),
        )

    @property
    def is_diagonal(self) -> bool:
        return self._gate.is_diagonal

    @property
    def is_fixed(self) -> bool:
        return self._gate.is_fixed

    @property
    def is_bound(self) -> bool:
        """Whether the wrapped gate's angle is concrete."""
        return self._gate.is_bound

    @property
    def parameter(self):
        """The wrapped gate's unresolved slot, or ``None``."""
        return self._gate.parameter

    @property
    def parameter_expression(self):
        """Slot expression of the wrapped gate, or ``None``."""
        return getattr(self._gate, "parameter_expression", None)

    def kernel_values(self, thetas) -> np.ndarray:
        """Stacked *target* kernels for a batch of angle values
        (controls are index structure, not part of the kernel)."""
        return self._gate.kernel_values(thetas)

    def bind_parameters(self, values) -> "ControlledGate1":
        """A copy whose wrapped gate has its slot resolved from
        ``values`` (``self`` when already bound)."""
        if self._gate.is_bound:
            return self
        out = copy.copy(self)
        out._gate = self._gate.bind_parameters(values)
        return out

    def _param_signature(self):
        # the generic wrapper's identity is its inner gate's identity
        return self._gate.signature()

    # -- behaviour ----------------------------------------------------------

    def ctranspose(self) -> "ControlledGate1":
        return ControlledGate1(
            self._gate.ctranspose(), self._control, self._control_state
        )

    def draw_spec(self) -> DrawSpec:
        ctrl = DrawElement("ctrl1" if self._control_state else "ctrl0")
        target_el = self._target_draw_element()
        return DrawSpec(
            elements={self._control: ctrl, self._gate.qubit: target_el},
            connect=True,
        )

    def _target_draw_element(self) -> DrawElement:
        from repro.gates.fixed import PauliX

        if type(self._gate) is PauliX:
            return DrawElement("oplus")
        return DrawElement("box", self._gate.label)

    def toQASM(self, offset: int = 0) -> str:
        lines = []
        c = self._control + offset
        if self._control_state == 0:
            lines.append(f"x q[{c}];")
        lines.append(self._qasm_core(offset))
        if self._control_state == 0:
            lines.append(f"x q[{c}];")
        return "\n".join(lines)

    def _qasm_core(self, offset: int) -> str:
        """The controlled operation itself (control assumed state-1)."""
        if self._QASM is None:
            from repro.io.qasm_export import controlled_gate_qasm

            return controlled_gate_qasm(self, offset)
        c = self._control + offset
        t = self._gate.qubit + offset
        params = self._qasm_params()
        return f"{self._QASM}{params} q[{c}],q[{t}];"

    def _qasm_params(self) -> str:
        return ""

    def shifted(self, offset: int) -> "ControlledGate1":
        out = copy.copy(self)
        out._control = self._control + int(offset)
        out._gate = self._gate.shifted(offset)
        return out

    def __eq__(self, other):
        if not isinstance(other, ControlledGate1):
            return NotImplemented
        return (
            self._control == other._control
            and self._control_state == other._control_state
            and self._gate == other._gate
        )

    __hash__ = QGate.__hash__

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(control={self._control}, "
            f"target={self.target}, control_state={self._control_state})"
        )


class ControlledGate(QGate):
    """A k-qubit gate with a single control qubit (generic wrapper).

    Generalizes :class:`ControlledGate1` to multi-qubit target gates —
    e.g. a controlled SWAP (Fredkin, :class:`~repro.gates.CSwap`) wraps
    ``SWAP`` with one control.
    """

    _QASM = None

    def __init__(self, gate: QGate, control: int, control_state: int = 1):
        if not isinstance(gate, QGate):
            raise GateError(
                f"ControlledGate requires a gate, got {type(gate).__name__}"
            )
        control = check_qubit(control)
        if control in gate.qubits:
            raise GateError(
                f"control qubit {control} overlaps target qubits "
                f"{gate.qubits}"
            )
        if gate.controls():
            raise GateError(
                "ControlledGate cannot wrap an already-controlled gate; "
                "use MCGate for multiple controls of a one-qubit gate"
            )
        if control_state not in (0, 1):
            raise GateError(f"control state {control_state!r} is not 0 or 1")
        self._gate = gate
        self._control = control
        self._control_state = int(control_state)

    @property
    def gate(self) -> QGate:
        """The wrapped target gate."""
        return self._gate

    @property
    def control(self) -> int:
        """The control qubit."""
        return self._control

    @property
    def control_state(self) -> int:
        """The control state (0 or 1)."""
        return self._control_state

    @property
    def qubits(self) -> tuple:
        return tuple(sorted((self._control,) + self._gate.qubits))

    def controls(self) -> tuple:
        return (self._control,)

    def control_states(self) -> tuple:
        return (self._control_state,)

    def target_qubits(self) -> tuple:
        return self._gate.qubits

    def target_matrix(self):
        return self._gate.matrix

    @property
    def matrix(self):
        return controlled_matrix(
            self._gate.matrix,
            self.qubits,
            (self._control,),
            (self._control_state,),
            self._gate.qubits,
        )

    @property
    def is_diagonal(self) -> bool:
        return self._gate.is_diagonal

    @property
    def is_fixed(self) -> bool:
        return self._gate.is_fixed

    @property
    def is_bound(self) -> bool:
        """Whether the wrapped gate's angle is concrete."""
        return self._gate.is_bound

    @property
    def parameter(self):
        """The wrapped gate's unresolved slot, or ``None``."""
        return self._gate.parameter

    @property
    def parameter_expression(self):
        """Slot expression of the wrapped gate, or ``None``."""
        return getattr(self._gate, "parameter_expression", None)

    def kernel_values(self, thetas) -> np.ndarray:
        """Stacked *target* kernels for a batch of angle values
        (controls are index structure, not part of the kernel)."""
        return self._gate.kernel_values(thetas)

    def bind_parameters(self, values) -> "ControlledGate":
        """A copy whose wrapped gate has its slot resolved from
        ``values`` (``self`` when already bound)."""
        if self._gate.is_bound:
            return self
        out = copy.copy(self)
        out._gate = self._gate.bind_parameters(values)
        return out

    def _param_signature(self):
        return self._gate.signature()

    def ctranspose(self) -> "ControlledGate":
        return ControlledGate(
            self._gate.ctranspose(), self._control, self._control_state
        )

    def draw_spec(self) -> DrawSpec:
        elements = dict(self._gate.draw_spec().elements)
        elements[self._control] = DrawElement(
            "ctrl1" if self._control_state else "ctrl0"
        )
        return DrawSpec(elements=elements, connect=True)

    def toQASM(self, offset: int = 0) -> str:
        from repro.exceptions import QASMError

        raise QASMError(
            "no OpenQASM 2.0 encoding for a generic controlled "
            f"{type(self._gate).__name__}; decompose it first"
        )

    def shifted(self, offset: int) -> "ControlledGate":
        out = copy.copy(self)
        out._control = self._control + int(offset)
        out._gate = self._gate.shifted(offset)
        return out

    def __eq__(self, other):
        if not isinstance(other, ControlledGate):
            return NotImplemented
        return (
            self._control == other._control
            and self._control_state == other._control_state
            and self._gate == other._gate
        )

    __hash__ = QGate.__hash__

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(control={self._control}, "
            f"gate={self._gate!r}, control_state={self._control_state})"
        )
