"""Parameterized gates: phase, one-qubit rotations, U2/U3 and the
two-qubit coupling rotations RotationXX/YY/ZZ.

All rotation gates store their parameter as a numerically stable
:class:`~repro.angle.QRotation` (cosine/sine of the half angle) and the
phase gate as a :class:`~repro.angle.QAngle`; see :mod:`repro.angle` for
why.  Rotation gates are *mutable handles*: :meth:`RotationGate1.fuse`
merges a same-axis rotation into the receiver in place, mirroring
QCLAB's fusion API used by its derived compilers.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.angle import QAngle, QRotation, turnover
from repro.exceptions import GateError, UnboundParameterError
from repro.gates.base import (
    DrawElement,
    DrawSpec,
    QGate,
    bump_mutation_epoch,
)
from repro.gates.qgate1 import QGate1
from repro.parameter import Parameter, ParameterExpression, as_expression
from repro.utils.validation import check_qubit, check_qubits

__all__ = [
    "Phase",
    "RotationGate1",
    "RotationX",
    "RotationY",
    "RotationZ",
    "RotationGate2",
    "RotationXX",
    "RotationYY",
    "RotationZZ",
    "U2",
    "U3",
    "turnover_gates",
]


def _as_rotation(*args):
    """Coerce ``(theta)``, ``(QRotation)``, ``(QAngle)``, ``(cos, sin)``
    or a symbolic ``(Parameter)`` to a QRotation / ParameterExpression."""
    if len(args) == 1:
        if isinstance(args[0], QRotation):
            return args[0]
        if isinstance(args[0], QAngle):
            return QRotation(args[0].theta)
        if isinstance(args[0], (Parameter, ParameterExpression)):
            return as_expression(args[0])
    return QRotation(*args)


def _as_angle(*args):
    """Coerce ``(theta)``, ``(QAngle)``, ``(QRotation)``, ``(cos, sin)``
    or a symbolic ``(Parameter)`` to a QAngle / ParameterExpression."""
    if len(args) == 1:
        if isinstance(args[0], QAngle):
            return args[0]
        if isinstance(args[0], QRotation):
            return QAngle(args[0].theta)
        if isinstance(args[0], (Parameter, ParameterExpression)):
            return as_expression(args[0])
    return QAngle(*args)


def _add_symbolic(a, b) -> ParameterExpression:
    """Sum of two stored angle values where at least one is symbolic.

    Two expressions fuse only on the *same* slot (affine closure);
    a symbolic plus a concrete value folds into the offset.
    """
    ea = a if isinstance(a, ParameterExpression) else None
    eb = b if isinstance(b, ParameterExpression) else None
    if ea is not None and eb is not None:
        if ea.parameter is not eb.parameter:
            raise GateError(
                "cannot fuse rotations bound to distinct parameters "
                f"({ea.parameter.name!r} and {eb.parameter.name!r})"
            )
        return ea + eb
    if ea is not None:
        return ea + b.theta
    return eb + a.theta


def _warn_theta_mutation(stacklevel: int = 4) -> None:
    """The deprecation shim for the in-place sweep idiom."""
    bump_mutation_epoch()
    warnings.warn(
        "mutating gate.theta in place as a sweep idiom is deprecated; "
        "build the circuit over a repro.Parameter slot and evaluate it "
        "with QCircuit.bind(values) or sweep(values) — no recompile per "
        "point",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


class Phase(QGate1):
    """The phase gate ``P(theta) = diag(1, e^{i theta})``.

    Accepts ``Phase(qubit, theta)``, ``Phase(qubit, QAngle)``,
    ``Phase(qubit, QRotation)``, ``Phase(qubit, cos, sin)`` or the
    symbolic ``Phase(qubit, Parameter)`` (an *unbound* gate whose
    numeric accessors raise
    :class:`~repro.exceptions.UnboundParameterError` until bound).
    """

    _QASM = "u1"

    def __init__(self, qubit: int = 0, *args) -> None:
        super().__init__(qubit)
        self._angle = _as_angle(*args) if args else QAngle()

    @property
    def is_bound(self) -> bool:
        """``False`` while the angle is an unresolved
        :class:`~repro.parameter.Parameter` slot."""
        return not isinstance(self._angle, ParameterExpression)

    @property
    def parameter(self):
        """The unresolved :class:`~repro.parameter.Parameter` slot,
        or ``None`` when the gate is bound."""
        if isinstance(self._angle, ParameterExpression):
            return self._angle.parameter
        return None

    @property
    def parameter_expression(self):
        """The stored affine slot expression, or ``None`` when bound."""
        if isinstance(self._angle, ParameterExpression):
            return self._angle
        return None

    def _require_bound(self, what: str):
        if isinstance(self._angle, ParameterExpression):
            raise UnboundParameterError(
                f"{type(self).__name__} on qubit {self.qubit} holds the "
                f"unbound parameter {self._angle.label!r}; bind a value "
                f"before reading .{what}"
            )

    @property
    def angle(self) -> QAngle:
        """The phase angle as a :class:`QAngle`."""
        self._require_bound("angle")
        return self._angle

    @angle.setter
    def angle(self, value) -> None:
        bump_mutation_epoch()
        self._angle = _as_angle(value)

    @property
    def theta(self) -> float:
        """The phase angle in radians."""
        self._require_bound("theta")
        return self._angle.theta

    @theta.setter
    def theta(self, value: float) -> None:
        self._set_theta(value)

    def _set_theta(self, value: float) -> None:
        """Deprecated in-place mutation shim shared with the controlled
        wrappers (keeps the warning pointing at the user's call site)."""
        _warn_theta_mutation()
        self._angle = QAngle(float(value))

    @property
    def matrix(self) -> np.ndarray:
        self._require_bound("matrix")
        c, s = self._angle.cos, self._angle.sin
        return np.array([[1, 0], [0, complex(c, s)]], dtype=np.complex128)

    def kernel_values(self, thetas) -> np.ndarray:
        """Stacked ``(P, 2, 2)`` kernels for a batch of angle values
        (independent of the gate's own stored angle/slot)."""
        thetas = np.asarray(thetas, dtype=float).ravel()
        out = np.zeros((thetas.size, 2, 2), dtype=np.complex128)
        out[:, 0, 0] = 1.0
        out[:, 1, 1] = np.cos(thetas) + 1j * np.sin(thetas)
        return out

    def bind_parameters(self, values) -> "Phase":
        """A concrete copy with the slot resolved from ``values``
        (``self`` when already bound)."""
        if self.is_bound:
            return self
        return Phase(self.qubit, self._angle.resolve(values))

    @property
    def is_diagonal(self) -> bool:
        return True

    @property
    def is_fixed(self) -> bool:
        return False

    def _param_signature(self):
        if isinstance(self._angle, ParameterExpression):
            return ("slot",) + self._angle.signature()
        return (self._angle.cos, self._angle.sin)

    @property
    def label(self) -> str:
        if not self.is_bound:
            return f"P({self._angle.label})"
        return f"P({self.theta:.4g})"

    def fuse(self, other: "Phase") -> "Phase":
        """Merge another phase gate into this one (angles add stably;
        symbolic angles fold affinely on a shared slot)."""
        if not isinstance(other, Phase):
            raise GateError(f"cannot fuse Phase with {type(other).__name__}")
        bump_mutation_epoch()
        if self.is_bound and other.is_bound:
            self._angle = self._angle + other._angle
        else:
            self._angle = _add_symbolic(self._angle, other._angle)
        return self

    def ctranspose(self) -> "Phase":
        a = self._angle
        if isinstance(a, ParameterExpression):
            return Phase(self.qubit, -a)
        return Phase(self.qubit, a.cos, -a.sin)

    def toQASM(self, offset: int = 0) -> str:
        return f"u1({self.theta!r}) q[{self.qubit + offset}];"

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        if self.is_bound != other.is_bound:
            return False
        if not self.is_bound:
            return self.qubits == other.qubits and self._angle == other._angle
        return self.qubits == other.qubits and self._angle.isclose(
            other._angle
        )

    __hash__ = QGate1.__hash__


class RotationGate1(QGate1):
    """Base class for the one-qubit rotations RX, RY, RZ.

    Accepts ``(qubit, theta)``, ``(qubit, QRotation)``,
    ``(qubit, QAngle)``, ``(qubit, cos, sin)`` — ``cos``/``sin`` of the
    half angle — or the symbolic ``(qubit, Parameter)`` form (an
    *unbound* gate whose numeric accessors raise
    :class:`~repro.exceptions.UnboundParameterError` until bound).
    """

    _AXIS = "?"

    def __init__(self, qubit: int = 0, *args) -> None:
        super().__init__(qubit)
        self._rotation = _as_rotation(*args) if args else QRotation()

    @property
    def axis(self) -> str:
        """Rotation axis: ``'x'``, ``'y'`` or ``'z'``."""
        return self._AXIS

    @property
    def is_bound(self) -> bool:
        """``False`` while the angle is an unresolved
        :class:`~repro.parameter.Parameter` slot."""
        return not isinstance(self._rotation, ParameterExpression)

    @property
    def parameter(self):
        """The unresolved :class:`~repro.parameter.Parameter` slot,
        or ``None`` when the gate is bound."""
        if isinstance(self._rotation, ParameterExpression):
            return self._rotation.parameter
        return None

    @property
    def parameter_expression(self):
        """The stored affine slot expression, or ``None`` when bound."""
        if isinstance(self._rotation, ParameterExpression):
            return self._rotation
        return None

    def _require_bound(self, what: str):
        if isinstance(self._rotation, ParameterExpression):
            raise UnboundParameterError(
                f"{type(self).__name__} on qubit(s) {self.qubits} holds "
                f"the unbound parameter {self._rotation.label!r}; bind a "
                f"value before reading .{what}"
            )

    @property
    def rotation(self) -> QRotation:
        """The rotation value object."""
        self._require_bound("rotation")
        return self._rotation

    @rotation.setter
    def rotation(self, value) -> None:
        bump_mutation_epoch()
        self._rotation = _as_rotation(value)

    @property
    def theta(self) -> float:
        """The rotation angle in radians."""
        self._require_bound("theta")
        return self._rotation.theta

    @theta.setter
    def theta(self, value: float) -> None:
        self._set_theta(value)

    def _set_theta(self, value: float) -> None:
        """Deprecated in-place mutation shim shared with the controlled
        wrappers (keeps the warning pointing at the user's call site)."""
        _warn_theta_mutation()
        self._rotation = QRotation(float(value))

    @property
    def cos(self) -> float:
        """``cos(theta/2)``."""
        self._require_bound("cos")
        return self._rotation.cos

    @property
    def sin(self) -> float:
        """``sin(theta/2)``."""
        self._require_bound("sin")
        return self._rotation.sin

    @property
    def is_fixed(self) -> bool:
        return False

    def _param_signature(self):
        if isinstance(self._rotation, ParameterExpression):
            return ("slot",) + self._rotation.signature()
        return (self._rotation.cos, self._rotation.sin)

    @property
    def label(self) -> str:
        if not self.is_bound:
            return f"R{self._AXIS.upper()}({self._rotation.label})"
        return f"R{self._AXIS.upper()}({self.theta:.4g})"

    def kernel_values(self, thetas) -> np.ndarray:
        """Stacked ``(P, 2, 2)`` kernels for a batch of angle values
        (independent of the gate's own stored rotation/slot)."""
        thetas = np.asarray(thetas, dtype=float).ravel()
        return self._kernel_batch(
            np.cos(0.5 * thetas), np.sin(0.5 * thetas)
        )

    @staticmethod
    def _kernel_batch(c: np.ndarray, s: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def bind_parameters(self, values) -> "RotationGate1":
        """A concrete copy with the slot resolved from ``values``
        (``self`` when already bound)."""
        if self.is_bound:
            return self
        return type(self)(self.qubit, self._rotation.resolve(values))

    def fuse(self, other: "RotationGate1") -> "RotationGate1":
        """Merge a same-axis rotation into this one: ``R(t1) R(t2) =
        R(t1+t2)`` (symbolic angles fold affinely on a shared slot)."""
        if type(other) is not type(self):
            raise GateError(
                f"cannot fuse {type(self).__name__} with "
                f"{type(other).__name__}"
            )
        bump_mutation_epoch()
        if self.is_bound and other.is_bound:
            self._rotation = self._rotation * other._rotation
        else:
            self._rotation = _add_symbolic(self._rotation, other._rotation)
        return self

    def ctranspose(self):
        if isinstance(self._rotation, ParameterExpression):
            return type(self)(self.qubit, -self._rotation)
        return type(self)(self.qubit, self._rotation.inv())

    def toQASM(self, offset: int = 0) -> str:
        return f"r{self._AXIS}({self.theta!r}) q[{self.qubit + offset}];"

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        if self.is_bound != other.is_bound:
            return False
        if not self.is_bound:
            return (
                self.qubits == other.qubits
                and self._rotation == other._rotation
            )
        return self.qubits == other.qubits and self._rotation.isclose(
            other._rotation
        )

    __hash__ = QGate1.__hash__

    def __repr__(self) -> str:
        if not self.is_bound:
            return (
                f"{type(self).__name__}({self.qubit}, "
                f"<{self._rotation.label}>)"
            )
        return f"{type(self).__name__}({self.qubit}, {self.theta!r})"


class RotationX(RotationGate1):
    """``RX(theta) = exp(-i theta/2 X)``."""

    _AXIS = "x"

    @property
    def matrix(self) -> np.ndarray:
        c, s = self.cos, self.sin
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)

    @staticmethod
    def _kernel_batch(c, s):
        out = np.zeros((c.size, 2, 2), dtype=np.complex128)
        out[:, 0, 0] = c
        out[:, 1, 1] = c
        out[:, 0, 1] = -1j * s
        out[:, 1, 0] = -1j * s
        return out


class RotationY(RotationGate1):
    """``RY(theta) = exp(-i theta/2 Y)``."""

    _AXIS = "y"

    @property
    def matrix(self) -> np.ndarray:
        c, s = self.cos, self.sin
        return np.array([[c, -s], [s, c]], dtype=np.complex128)

    @staticmethod
    def _kernel_batch(c, s):
        out = np.zeros((c.size, 2, 2), dtype=np.complex128)
        out[:, 0, 0] = c
        out[:, 1, 1] = c
        out[:, 0, 1] = -s
        out[:, 1, 0] = s
        return out


class RotationZ(RotationGate1):
    """``RZ(theta) = exp(-i theta/2 Z) = diag(e^{-i theta/2}, e^{i theta/2})``."""

    _AXIS = "z"

    @property
    def matrix(self) -> np.ndarray:
        c, s = self.cos, self.sin
        return np.array(
            [[complex(c, -s), 0], [0, complex(c, s)]], dtype=np.complex128
        )

    @staticmethod
    def _kernel_batch(c, s):
        out = np.zeros((c.size, 2, 2), dtype=np.complex128)
        out[:, 0, 0] = c - 1j * s
        out[:, 1, 1] = c + 1j * s
        return out

    @property
    def is_diagonal(self) -> bool:
        return True


class U2(QGate1):
    """The ``u2(phi, lambda)`` gate: a pi/2 X-rotation between two frame
    changes; ``u2(phi, lam) = u3(pi/2, phi, lam)``."""

    def __init__(self, qubit: int = 0, phi: float = 0.0, lam: float = 0.0):
        super().__init__(qubit)
        self._phi = QAngle(float(phi))
        self._lam = QAngle(float(lam))

    @property
    def phi(self) -> float:
        """The ``phi`` frame angle in radians."""
        return self._phi.theta

    @property
    def lam(self) -> float:
        """The ``lambda`` frame angle in radians."""
        return self._lam.theta

    @property
    def is_fixed(self) -> bool:
        return False

    def _param_signature(self):
        return (
            self._phi.cos, self._phi.sin, self._lam.cos, self._lam.sin,
        )

    @property
    def label(self) -> str:
        return f"U2({self.phi:.3g},{self.lam:.3g})"

    @property
    def matrix(self) -> np.ndarray:
        ephi = complex(self._phi.cos, self._phi.sin)
        elam = complex(self._lam.cos, self._lam.sin)
        return np.array(
            [[1.0, -elam], [ephi, ephi * elam]], dtype=np.complex128
        ) / np.sqrt(2.0)

    def ctranspose(self) -> "U3":
        return U3(self.qubit, -np.pi / 2, -self.lam, -self.phi)

    def toQASM(self, offset: int = 0) -> str:
        return f"u2({self.phi!r},{self.lam!r}) q[{self.qubit + offset}];"

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        return (
            self.qubits == other.qubits
            and self._phi.isclose(other._phi)
            and self._lam.isclose(other._lam)
        )

    __hash__ = QGate1.__hash__


class U3(QGate1):
    """The general one-qubit gate ``u3(theta, phi, lambda)``.

    ``u3`` parameterizes any element of U(2) up to global phase:
    ``u3 = [[cos(t/2), -e^{i lam} sin(t/2)],
    [e^{i phi} sin(t/2), e^{i(phi+lam)} cos(t/2)]]``.
    """

    def __init__(
        self,
        qubit: int = 0,
        theta: float = 0.0,
        phi: float = 0.0,
        lam: float = 0.0,
    ):
        super().__init__(qubit)
        self._rot = QRotation(float(theta))
        self._phi = QAngle(float(phi))
        self._lam = QAngle(float(lam))

    @property
    def theta(self) -> float:
        """The ``theta`` rotation angle in radians."""
        return self._rot.theta

    @property
    def phi(self) -> float:
        """The ``phi`` frame angle in radians."""
        return self._phi.theta

    @property
    def lam(self) -> float:
        """The ``lambda`` frame angle in radians."""
        return self._lam.theta

    @property
    def is_fixed(self) -> bool:
        return False

    def _param_signature(self):
        return (
            self._rot.cos, self._rot.sin,
            self._phi.cos, self._phi.sin,
            self._lam.cos, self._lam.sin,
        )

    @property
    def label(self) -> str:
        return f"U3({self.theta:.3g},{self.phi:.3g},{self.lam:.3g})"

    @property
    def matrix(self) -> np.ndarray:
        c, s = self._rot.cos, self._rot.sin
        ephi = complex(self._phi.cos, self._phi.sin)
        elam = complex(self._lam.cos, self._lam.sin)
        return np.array(
            [[c, -elam * s], [ephi * s, ephi * elam * c]],
            dtype=np.complex128,
        )

    def ctranspose(self) -> "U3":
        return U3(self.qubit, -self.theta, -self.lam, -self.phi)

    def toQASM(self, offset: int = 0) -> str:
        return (
            f"u3({self.theta!r},{self.phi!r},{self.lam!r}) "
            f"q[{self.qubit + offset}];"
        )

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        return (
            self.qubits == other.qubits
            and self._rot.isclose(other._rot)
            and self._phi.isclose(other._phi)
            and self._lam.isclose(other._lam)
        )

    __hash__ = QGate1.__hash__


class RotationGate2(QGate):
    """Base class for the two-qubit coupling rotations RXX, RYY, RZZ.

    ``R_aa(theta) = exp(-i theta/2 sigma_a (x) sigma_a)``; these are the
    workhorse gates of QCLAB's derived time-evolution compiler F3C.
    The matrix is symmetric under qubit exchange, so qubits are stored
    sorted without any reordering of the kernel.
    """

    _AXIS = "?"
    _PAULI2 = None  # sigma_a (x) sigma_a, set by subclasses

    def __init__(self, qubit0: int, qubit1: int, *args) -> None:
        qs = check_qubits([qubit0, qubit1])
        self._qubits = tuple(sorted(qs))
        self._rotation = _as_rotation(*args) if args else QRotation()

    @property
    def qubits(self) -> tuple:
        return self._qubits

    @property
    def axis(self) -> str:
        """Coupling axis: both Paulis are ``sigma_axis``."""
        return self._AXIS

    @property
    def is_bound(self) -> bool:
        """``False`` while the angle is an unresolved
        :class:`~repro.parameter.Parameter` slot."""
        return not isinstance(self._rotation, ParameterExpression)

    @property
    def parameter(self):
        """The unresolved :class:`~repro.parameter.Parameter` slot,
        or ``None`` when the gate is bound."""
        if isinstance(self._rotation, ParameterExpression):
            return self._rotation.parameter
        return None

    @property
    def parameter_expression(self):
        """The stored affine slot expression, or ``None`` when bound."""
        if isinstance(self._rotation, ParameterExpression):
            return self._rotation
        return None

    def _require_bound(self, what: str):
        if isinstance(self._rotation, ParameterExpression):
            raise UnboundParameterError(
                f"{type(self).__name__} on qubits {self._qubits} holds "
                f"the unbound parameter {self._rotation.label!r}; bind a "
                f"value before reading .{what}"
            )

    @property
    def rotation(self) -> QRotation:
        """The rotation value object."""
        self._require_bound("rotation")
        return self._rotation

    @rotation.setter
    def rotation(self, value) -> None:
        bump_mutation_epoch()
        self._rotation = _as_rotation(value)

    @property
    def theta(self) -> float:
        """The rotation angle in radians."""
        self._require_bound("theta")
        return self._rotation.theta

    @theta.setter
    def theta(self, value: float) -> None:
        self._set_theta(value)

    def _set_theta(self, value: float) -> None:
        """Deprecated in-place mutation shim shared with the controlled
        wrappers (keeps the warning pointing at the user's call site)."""
        _warn_theta_mutation()
        self._rotation = QRotation(float(value))

    @property
    def is_fixed(self) -> bool:
        return False

    def _param_signature(self):
        if isinstance(self._rotation, ParameterExpression):
            return ("slot",) + self._rotation.signature()
        return (self._rotation.cos, self._rotation.sin)

    @property
    def matrix(self) -> np.ndarray:
        self._require_bound("matrix")
        c, s = self._rotation.cos, self._rotation.sin
        return c * np.eye(4, dtype=np.complex128) - 1j * s * self._PAULI2

    def kernel_values(self, thetas) -> np.ndarray:
        """Stacked ``(P, 4, 4)`` kernels for a batch of angle values
        (independent of the gate's own stored rotation/slot)."""
        thetas = np.asarray(thetas, dtype=float).ravel()
        c = np.cos(0.5 * thetas)
        s = np.sin(0.5 * thetas)
        eye = np.eye(4, dtype=np.complex128)
        return (
            c[:, None, None] * eye
            - 1j * s[:, None, None] * self._PAULI2
        )

    def bind_parameters(self, values) -> "RotationGate2":
        """A concrete copy with the slot resolved from ``values``
        (``self`` when already bound)."""
        if self.is_bound:
            return self
        return type(self)(*self._qubits, self._rotation.resolve(values))

    @property
    def label(self) -> str:
        a = self._AXIS.upper()
        if not self.is_bound:
            return f"R{a}{a}({self._rotation.label})"
        return f"R{a}{a}({self.theta:.4g})"

    def draw_spec(self) -> DrawSpec:
        el = DrawElement("box", self.label)
        return DrawSpec(
            elements={q: el for q in self._qubits}, connect=True
        )

    def fuse(self, other: "RotationGate2") -> "RotationGate2":
        """Merge a same-axis, same-qubits coupling rotation into this one."""
        if type(other) is not type(self) or other.qubits != self.qubits:
            raise GateError(
                "fuse requires the same coupling axis and qubit pair"
            )
        bump_mutation_epoch()
        if self.is_bound and other.is_bound:
            self._rotation = self._rotation * other._rotation
        else:
            self._rotation = _add_symbolic(self._rotation, other._rotation)
        return self

    def ctranspose(self):
        if isinstance(self._rotation, ParameterExpression):
            return type(self)(*self._qubits, -self._rotation)
        return type(self)(*self._qubits, self._rotation.inv())

    def toQASM(self, offset: int = 0) -> str:
        a, b = (q + offset for q in self._qubits)
        return f"r{self._AXIS}{self._AXIS}({self.theta!r}) q[{a}],q[{b}];"

    def shifted(self, offset: int):
        import copy

        out = copy.copy(self)
        out._qubits = tuple(q + int(offset) for q in self._qubits)
        return out

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        if self.is_bound != other.is_bound:
            return False
        if not self.is_bound:
            return (
                self.qubits == other.qubits
                and self._rotation == other._rotation
            )
        return self.qubits == other.qubits and self._rotation.isclose(
            other._rotation
        )

    __hash__ = QGate.__hash__

    def __repr__(self) -> str:
        if not self.is_bound:
            return (
                f"{type(self).__name__}({self._qubits[0]}, "
                f"{self._qubits[1]}, <{self._rotation.label}>)"
            )
        return (
            f"{type(self).__name__}({self._qubits[0]}, {self._qubits[1]}, "
            f"{self.theta!r})"
        )


_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.diag([1, -1]).astype(np.complex128)


class RotationXX(RotationGate2):
    """``RXX(theta) = exp(-i theta/2 X (x) X)``."""

    _AXIS = "x"
    _PAULI2 = np.kron(_X, _X)


class RotationYY(RotationGate2):
    """``RYY(theta) = exp(-i theta/2 Y (x) Y)``."""

    _AXIS = "y"
    _PAULI2 = np.kron(_Y, _Y)


class RotationZZ(RotationGate2):
    """``RZZ(theta) = exp(-i theta/2 Z (x) Z)`` (diagonal)."""

    _AXIS = "z"
    _PAULI2 = np.kron(_Z, _Z)

    @property
    def is_diagonal(self) -> bool:
        return True


def turnover_gates(g1, g2, g3):
    """Turn over a V-shaped pattern of three rotation gates.

    Rewrites the circuit-order sequence ``g1, g2, g3`` — where ``g1`` and
    ``g3`` are equal-type rotations on the same qubit(s) and ``g2`` is a
    rotation about a different axis on the same qubit(s) — into the
    equivalent sequence with the axis pattern swapped, returning three
    **new** gates.  This is QCLAB's turnover operation (used by F3C).

    Circuit order means ``g1`` acts first, i.e. the operator product is
    ``g3.matrix @ g2.matrix @ g1.matrix``.
    """
    one_qubit = isinstance(g1, RotationGate1)
    two_qubit = isinstance(g1, RotationGate2)
    if not (one_qubit or two_qubit):
        raise GateError("turnover requires rotation gates")
    if type(g3) is not type(g1) or not isinstance(
        g2, RotationGate1 if one_qubit else RotationGate2
    ):
        raise GateError(
            "turnover requires the axis pattern a-b-a of rotation gates"
        )
    if g1.qubits != g2.qubits or g1.qubits != g3.qubits:
        raise GateError("turnover requires all gates on the same qubit(s)")
    if g2.axis == g1.axis:
        raise GateError("turnover requires two distinct axes")

    mid_cls = type(g1)
    out_cls = type(g2)
    qs = g1.qubits

    if two_qubit:
        # Same-pair coupling rotations sigma_a(x)sigma_a and
        # sigma_b(x)sigma_b COMMUTE, so the "turnover" is a trivial
        # reorder: fuse the outer pair and move the middle gate out.
        fused = g1.rotation * g3.rotation
        return (
            out_cls(qs[0], qs[1], g2.rotation),
            mid_cls(qs[0], qs[1], fused),
            out_cls(qs[0], qs[1], QRotation()),
        )

    # Operator product is g3 g2 g1; turnover() works on the matrix-order
    # triple (outer=g3-axis, inner=g2-axis, outer), returning p1 p2 p3 in
    # matrix order.  Circuit order of the result is therefore p3, p2, p1.
    p1, p2, p3 = turnover(
        g3.rotation,
        g2.rotation,
        g1.rotation,
        g1.axis,
        g2.axis,
    )
    return out_cls(qs[0], p3), mid_cls(qs[0], p2), out_cls(qs[0], p1)
