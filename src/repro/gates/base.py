"""Abstract interfaces shared by every circuit element.

QCLAB's object-oriented architecture (paper, Section 2) rests on a small
interface implemented by gates, measurements, resets, barriers and whole
sub-circuits alike.  :class:`QObject` is that interface;
:class:`QGate` refines it for unitary operations.

Key conventions
---------------
* ``qubits`` always lists the qubits an object acts on **in ascending
  order**, relative to the object's own frame (a circuit applies its
  ``offset`` on top).
* ``matrix`` (for gates) is expressed in that ascending order with the
  lowest-numbered qubit as the most significant sub-index bit, matching
  the register convention where ``q0`` is the most significant bit.
* Gates additionally expose a *controlled-structure decomposition*
  (:meth:`QGate.controls`, :meth:`QGate.control_states`,
  :meth:`QGate.target_qubits`, :meth:`QGate.target_matrix`) so optimized
  backends can apply only the active subspace, QCLAB++-style.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import GateError
from repro.utils.linalg import closeto, dagger, is_unitary

__all__ = [
    "QObject",
    "QGate",
    "DrawElement",
    "DrawSpec",
    "reorder_matrix",
    "mutation_epoch",
    "bump_mutation_epoch",
]

#: Global counter bumped by every *in-place* mutation of a pushed
#: operation (gate angle setters, qubit reassignment, measurement
#: retargeting).  Such mutations never bump a circuit's structural
#: ``revision``, so caches derived from gate state — the IR program's
#: structural signature, its parameter-slot list — key their entries on
#: this counter instead of re-walking the op tree per call.
_MUTATION_EPOCH = 0


def mutation_epoch() -> int:
    """The current global in-place-mutation counter."""
    return _MUTATION_EPOCH


def bump_mutation_epoch() -> None:
    """Record an in-place mutation of some circuit element.

    Called by every setter that changes an op's simulation semantics
    without a structural circuit edit; conservatively invalidates every
    epoch-keyed cache in the process.
    """
    global _MUTATION_EPOCH
    _MUTATION_EPOCH += 1


@dataclass(frozen=True)
class DrawElement:
    """What to render on one wire of a circuit diagram.

    ``kind`` is one of ``'box'`` (labelled gate box), ``'ctrl1'`` /
    ``'ctrl0'`` (filled / open control dot), ``'oplus'`` (CNOT target),
    ``'cross'`` (SWAP cross), ``'meas'`` (measurement box), ``'reset'``,
    ``'barrier'`` or ``'block'`` (multi-wire sub-circuit box).
    """

    kind: str
    label: str = ""


@dataclass(frozen=True)
class DrawSpec:
    """Per-qubit draw elements for one circuit column entry.

    ``elements`` maps a qubit (relative to the object's frame) to its
    :class:`DrawElement`; ``connect`` asks the renderer to join the span
    with a vertical line (controls, SWAP, multi-qubit blocks).
    """

    elements: dict = field(default_factory=dict)
    connect: bool = False


class QObject(ABC):
    """Anything that can be pushed onto a :class:`~repro.circuit.QCircuit`."""

    @property
    @abstractmethod
    def qubits(self) -> tuple:
        """Qubits the object acts on, ascending, in the object's own frame."""

    @property
    def qubit(self) -> int:
        """The first (lowest) qubit the object acts on."""
        return self.qubits[0]

    @property
    def nbQubits(self) -> int:
        """Number of qubits the object acts on."""
        return len(self.qubits)

    @abstractmethod
    def draw_spec(self) -> DrawSpec:
        """Rendering instructions for the circuit drawer."""

    def toQASM(self, offset: int = 0) -> str:
        """OpenQASM 2.0 text for this object (may span several lines).

        ``offset`` shifts all qubit indices (used when the object sits in
        a nested circuit).  Objects with no QASM counterpart raise
        :class:`~repro.exceptions.QASMError`.
        """
        raise NotImplementedError

    def shifted(self, offset: int) -> "QObject":
        """A copy of this object acting ``offset`` qubits higher.

        Used by :mod:`repro.transforms` to flatten nested circuits into
        absolute qubit indices.  Subclasses override; the base
        implementation refuses.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support shifting"
        )


class QGate(QObject):
    """A unitary gate.

    Subclasses must implement :attr:`qubits`, :attr:`matrix` and
    :meth:`ctranspose`; the controlled-structure accessors default to the
    "no controls" decomposition and are overridden by controlled gates.
    """

    @property
    @abstractmethod
    def matrix(self) -> np.ndarray:
        """Unitary matrix on :attr:`qubits` (ascending order)."""

    @abstractmethod
    def ctranspose(self) -> "QGate":
        """A new gate representing the conjugate transpose (inverse)."""

    # -- controlled-structure decomposition (backend fast path) ------------

    def controls(self) -> tuple:
        """Control qubits (ascending); empty for ordinary gates."""
        return ()

    def control_states(self) -> tuple:
        """Required control bit per control qubit (parallel to controls)."""
        return ()

    def target_qubits(self) -> tuple:
        """Non-control qubits (ascending)."""
        return self.qubits

    def target_matrix(self) -> np.ndarray:
        """Kernel acting on :meth:`target_qubits` when controls are active."""
        return self.matrix

    # -- structure hints ----------------------------------------------------

    @property
    def is_diagonal(self) -> bool:
        """``True`` when :attr:`matrix` is diagonal (enables fast paths)."""
        return False

    @property
    def is_fixed(self) -> bool:
        """``True`` when the gate carries no continuous parameter."""
        return True

    # -- symbolic-parameter hooks -------------------------------------------

    @property
    def parameter(self):
        """The :class:`~repro.parameter.Parameter` slot this gate is
        bound to, or ``None`` for concrete gates (the default)."""
        return None

    @property
    def is_bound(self) -> bool:
        """``False`` only while the gate holds a symbolic
        :class:`~repro.parameter.Parameter` slot instead of a value."""
        return True

    def bind_parameters(self, values) -> "QGate":
        """A concrete copy with parameter slots resolved from
        ``{Parameter: value}``; concrete gates return ``self``."""
        return self

    # -- plan-compilation hooks ---------------------------------------------

    def signature(self, offset: int = 0) -> tuple:
        """Structural identity of this gate at absolute offset ``offset``.

        Used by :mod:`repro.simulation.plan` to key the compiled-plan
        cache: two gates with equal signatures apply identically, so a
        parameter update (which changes the signature) invalidates any
        cached plan.  Hashable and cheap to compute.
        """
        return (
            type(self).__qualname__,
            tuple(q + offset for q in self.qubits),
            tuple(q + offset for q in self.controls()),
            tuple(self.control_states()),
            self._param_signature(),
        )

    def _param_signature(self):
        """Fingerprint of the gate's continuous parameters.

        Fixed gates are fully identified by their class; parametric
        gates override this with a cheap tuple of parameter values.  The
        fallback hashes the exact matrix bytes, which is always correct
        but costs a matrix build.
        """
        if self.is_fixed:
            return None
        return np.asarray(self.matrix).tobytes()

    # -- generic behaviour ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self.qubits == other.qubits and closeto(
            self.matrix, other.matrix, atol=1e-12
        )

    def __hash__(self):  # gates are mutable handles; identity hash
        return id(self)

    def __repr__(self) -> str:
        qs = ",".join(str(q) for q in self.qubits)
        return f"{type(self).__name__}({qs})"


def reorder_matrix(
    matrix: np.ndarray,
    src_order: Sequence[int],
    dst_order: Sequence[int],
) -> np.ndarray:
    """Re-express a k-qubit matrix from one qubit ordering to another.

    ``matrix`` acts on the qubits listed in ``src_order`` with
    ``src_order[0]`` as the most significant sub-index bit; the result
    acts on the same set listed as ``dst_order``.
    """
    src = list(src_order)
    dst = list(dst_order)
    if sorted(src) != sorted(dst):
        raise GateError(
            f"orders {src!r} and {dst!r} are not permutations of each other"
        )
    k = len(src)
    if matrix.shape != (1 << k, 1 << k):
        raise GateError(
            f"matrix shape {matrix.shape} does not match {k} qubit(s)"
        )
    if src == dst:
        return matrix
    perm = [src.index(q) for q in dst]
    tensor = matrix.reshape((2,) * (2 * k))
    axes = perm + [k + p for p in perm]
    return tensor.transpose(axes).reshape(1 << k, 1 << k)


def controlled_matrix(
    kernel: np.ndarray,
    qubits_all: Sequence[int],
    controls: Sequence[int],
    control_states: Sequence[int],
    targets: Sequence[int],
) -> np.ndarray:
    """Full matrix of a controlled gate over ``qubits_all`` (ascending).

    ``kernel`` acts on ``targets`` (ascending order assumed); the result
    applies ``kernel`` on the subspace where every control qubit holds
    its required control state and is the identity elsewhere.
    """
    from repro.utils.bits import gather_indices

    k = len(qubits_all)
    if sorted(qubits_all) != list(qubits_all):
        raise GateError("qubits_all must be sorted ascending")
    # positions of control qubits inside the local k-qubit register
    local = {q: i for i, q in enumerate(qubits_all)}
    ctrl_local = [local[c] for c in controls]
    tgt_local = [local[t] for t in targets]
    # rows where all control bits match, enumerated by ascending target
    # sub-index (gather_indices enumerates remaining bits MSB-first,
    # which matches the kernel's ordering because targets are ascending)
    del tgt_local  # ordering argument above; kept for clarity
    rows = gather_indices(k, ctrl_local, list(control_states))
    full = np.eye(1 << k, dtype=np.asarray(kernel).dtype)
    full[np.ix_(rows, rows)] = kernel
    return full


def validate_unitary(matrix: np.ndarray, what: str = "gate") -> np.ndarray:
    """Coerce to a complex ndarray and require unitarity."""
    m = np.asarray(matrix, dtype=np.complex128)
    if not is_unitary(m):
        raise GateError(f"{what} matrix is not unitary")
    return m


def dagger_matrix(matrix: np.ndarray) -> np.ndarray:
    """Conjugate transpose (re-exported for gate implementations)."""
    return dagger(matrix)
