"""Quantum gate objects (the ``qclab.qgates`` namespace of the paper).

The module mirrors QCLAB's comprehensive gate catalogue: fixed one-qubit
gates, parameterized rotations built on the numerically stable
:class:`~repro.angle.QRotation`, controlled and multi-controlled gates
with arbitrary control states, two-qubit primitives (SWAP, iSWAP,
RotationXX/YY/ZZ) and arbitrary-unitary custom gates.

Everything here is re-exported as :mod:`repro.qgates` so paper listings
such as ``qclab.qgates.Hadamard(0)`` translate directly to
``repro.qgates.Hadamard(0)``.
"""

from repro.gates.base import QGate, QObject
from repro.gates.fixed import (
    Hadamard,
    Identity,
    PauliX,
    PauliY,
    PauliZ,
    Phase45,
    Phase90,
    S,
    Sdg,
    SqrtX,
    T,
    Tdg,
)
from repro.gates.parametric import (
    Phase,
    RotationX,
    RotationXX,
    RotationY,
    RotationYY,
    RotationZ,
    RotationZZ,
    U2,
    U3,
)
from repro.gates.matrix_gate import MatrixGate
from repro.gates.controlled import ControlledGate, ControlledGate1
from repro.gates.two_qubit import (
    CH,
    CNOT,
    CPhase,
    CRotationX,
    CRotationY,
    CRotationZ,
    CSwap,
    CX,
    CY,
    CZ,
    SWAP,
    iSWAP,
)
from repro.gates.multi_controlled import (
    MCGate,
    MCPhase,
    MCRotationX,
    MCRotationY,
    MCRotationZ,
    MCX,
    MCY,
    MCZ,
)

__all__ = [
    "QObject",
    "QGate",
    # fixed
    "Identity",
    "Hadamard",
    "PauliX",
    "PauliY",
    "PauliZ",
    "S",
    "Sdg",
    "T",
    "Tdg",
    "SqrtX",
    "Phase45",
    "Phase90",
    # parametric
    "Phase",
    "RotationX",
    "RotationY",
    "RotationZ",
    "RotationXX",
    "RotationYY",
    "RotationZZ",
    "U2",
    "U3",
    # custom
    "MatrixGate",
    # controlled / two-qubit
    "ControlledGate",
    "ControlledGate1",
    "CSwap",
    "CNOT",
    "CX",
    "CY",
    "CZ",
    "CH",
    "CPhase",
    "CRotationX",
    "CRotationY",
    "CRotationZ",
    "SWAP",
    "iSWAP",
    # multi-controlled
    "MCGate",
    "MCX",
    "MCY",
    "MCZ",
    "MCPhase",
    "MCRotationX",
    "MCRotationY",
    "MCRotationZ",
]
