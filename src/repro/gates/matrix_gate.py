"""Arbitrary-unitary custom gates.

The paper highlights that QCLAB's *"object-oriented architecture enables
users to implement custom quantum gates"* (Section 2).
:class:`MatrixGate` is the direct route: wrap any unitary matrix on any
set of qubits.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.exceptions import GateError
from repro.gates.base import (
    DrawElement,
    DrawSpec,
    QGate,
    reorder_matrix,
    validate_unitary,
)
from repro.utils.linalg import dagger
from repro.utils.validation import check_qubits

__all__ = ["MatrixGate"]


class MatrixGate(QGate):
    """A gate defined by an explicit unitary matrix.

    Parameters
    ----------
    qubits:
        A single qubit index or a sequence of distinct qubit indices.
        The order given defines the matrix's sub-index significance
        (first listed qubit = most significant bit); internally the gate
        is normalized to ascending qubit order.
    matrix:
        A ``2**k x 2**k`` unitary.
    label:
        Short name used in circuit diagrams (default ``'U'``).

    Examples
    --------
    >>> import numpy as np
    >>> g = MatrixGate([2, 0], np.eye(4))  # acts on q0 and q2
    >>> g.qubits
    (0, 2)
    """

    def __init__(
        self,
        qubits: Union[int, Sequence[int]],
        matrix: np.ndarray,
        label: str = "U",
    ) -> None:
        if isinstance(qubits, (int, np.integer)):
            given = [int(qubits)]
        else:
            given = list(qubits)
        given = check_qubits(given)
        m = validate_unitary(matrix, "MatrixGate")
        if m.shape[0] != (1 << len(given)):
            raise GateError(
                f"matrix of shape {m.shape} does not act on "
                f"{len(given)} qubit(s)"
            )
        self._qubits = tuple(sorted(given))
        self._matrix = reorder_matrix(m, given, list(self._qubits))
        self._label = str(label)
        self._diagonal = bool(
            np.allclose(self._matrix, np.diag(np.diag(self._matrix)))
        )

    @property
    def qubits(self) -> tuple:
        return self._qubits

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix

    @property
    def label(self) -> str:
        """The diagram label."""
        return self._label

    @property
    def is_diagonal(self) -> bool:
        return self._diagonal

    @property
    def is_fixed(self) -> bool:
        return False

    def ctranspose(self) -> "MatrixGate":
        return MatrixGate(self._qubits, dagger(self._matrix), self._label + "†")

    def draw_spec(self) -> DrawSpec:
        el = DrawElement("box", self._label)
        return DrawSpec(
            elements={q: el for q in self._qubits},
            connect=len(self._qubits) > 1,
        )

    def toQASM(self, offset: int = 0) -> str:
        from repro.io.qasm_export import matrix_gate_qasm

        return matrix_gate_qasm(self, offset)

    def shifted(self, offset: int) -> "MatrixGate":
        import copy

        out = copy.copy(self)
        out._qubits = tuple(q + int(offset) for q in self._qubits)
        return out

    def __repr__(self) -> str:
        return f"MatrixGate({list(self._qubits)!r}, label={self._label!r})"
