"""Multi-controlled gates with per-control control states.

The paper's QEC example (Section 5.4) uses
``qclab.qgates.MCX([3,4], 2, [0,1])`` — a multi-controlled X whose
controls ``q3``/``q4`` must read ``0``/``1`` respectively.  The same
constructor signature is used here: ``MCX(controls, target,
control_states)``, with the control-state vector defaulting to all ones.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.exceptions import GateError
from repro.gates.base import (
    DrawElement,
    DrawSpec,
    QGate,
    controlled_matrix,
)
from repro.gates.fixed import PauliX, PauliY, PauliZ
from repro.gates.parametric import Phase, RotationX, RotationY, RotationZ
from repro.gates.qgate1 import QGate1
from repro.utils.validation import check_control_states, check_qubits

__all__ = [
    "MCGate",
    "MCX",
    "MCY",
    "MCZ",
    "MCPhase",
    "MCRotationX",
    "MCRotationY",
    "MCRotationZ",
]


class MCGate(QGate):
    """A one-qubit gate with any number of controls.

    Parameters
    ----------
    gate:
        The target one-qubit gate (its ``qubit`` is the target).
    controls:
        Control qubit indices (distinct from each other and the target).
    control_states:
        One ``0``/``1`` entry per control; defaults to all ones.
    """

    def __init__(self, gate, controls, control_states=None):
        if not isinstance(gate, QGate) or gate.nbQubits != 1:
            raise GateError(
                "MCGate requires a one-qubit target gate, got "
                f"{type(gate).__name__}"
            )
        ctrls = check_qubits(list(controls))
        if not ctrls:
            raise GateError("MCGate requires at least one control qubit")
        if gate.qubit in ctrls:
            raise GateError(
                f"target qubit {gate.qubit} appears among controls {ctrls}"
            )
        if control_states is None:
            control_states = [1] * len(ctrls)
        states = check_control_states(control_states, len(ctrls))
        # store controls sorted, permuting states alongside
        order = sorted(range(len(ctrls)), key=lambda i: ctrls[i])
        self._controls = tuple(ctrls[i] for i in order)
        self._control_states = tuple(states[i] for i in order)
        self._gate = gate

    # -- structure ----------------------------------------------------------

    @property
    def gate(self) -> QGate1:
        """The wrapped target gate."""
        return self._gate

    @property
    def target(self) -> int:
        """The target qubit."""
        return self._gate.qubit

    @property
    def qubits(self) -> tuple:
        return tuple(sorted(self._controls + (self._gate.qubit,)))

    def controls(self) -> tuple:
        return self._controls

    def control_states(self) -> tuple:
        return self._control_states

    def target_qubits(self) -> tuple:
        return (self._gate.qubit,)

    def target_matrix(self) -> np.ndarray:
        return self._gate.matrix

    # -- matrix -------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        return controlled_matrix(
            self._gate.matrix,
            self.qubits,
            self._controls,
            self._control_states,
            (self._gate.qubit,),
        )

    @property
    def is_diagonal(self) -> bool:
        return self._gate.is_diagonal

    @property
    def is_fixed(self) -> bool:
        return self._gate.is_fixed

    def _param_signature(self):
        return self._gate.signature()

    # -- behaviour ----------------------------------------------------------

    def ctranspose(self) -> "MCGate":
        return MCGate(
            self._gate.ctranspose(), self._controls, self._control_states
        )

    def draw_spec(self) -> DrawSpec:
        elements = {
            c: DrawElement("ctrl1" if s else "ctrl0")
            for c, s in zip(self._controls, self._control_states)
        }
        elements[self._gate.qubit] = self._target_draw_element()
        return DrawSpec(elements=elements, connect=True)

    def _target_draw_element(self) -> DrawElement:
        if type(self._gate) is PauliX:
            return DrawElement("oplus")
        return DrawElement("box", self._gate.label)

    def toQASM(self, offset: int = 0) -> str:
        from repro.io.qasm_export import multi_controlled_qasm

        return multi_controlled_qasm(self, offset)

    def shifted(self, offset: int) -> "MCGate":
        out = copy.copy(self)
        out._controls = tuple(c + int(offset) for c in self._controls)
        out._gate = self._gate.shifted(offset)
        return out

    def __eq__(self, other):
        if not isinstance(other, MCGate):
            return NotImplemented
        return (
            self._controls == other._controls
            and self._control_states == other._control_states
            and self._gate == other._gate
        )

    __hash__ = QGate.__hash__

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(controls={list(self._controls)!r}, "
            f"target={self.target}, "
            f"control_states={list(self._control_states)!r})"
        )


class MCX(MCGate):
    """Multi-controlled X (generalized Toffoli), paper signature
    ``MCX(controls, target, control_states)``."""

    def __init__(self, controls, target: int, control_states=None):
        super().__init__(PauliX(target), controls, control_states)

    def ctranspose(self) -> "MCX":
        return MCX(self._controls, self.target, self._control_states)


class MCY(MCGate):
    """Multi-controlled Pauli-Y."""

    def __init__(self, controls, target: int, control_states=None):
        super().__init__(PauliY(target), controls, control_states)

    def ctranspose(self) -> "MCY":
        return MCY(self._controls, self.target, self._control_states)


class MCZ(MCGate):
    """Multi-controlled Pauli-Z (diagonal)."""

    def __init__(self, controls, target: int, control_states=None):
        super().__init__(PauliZ(target), controls, control_states)

    def ctranspose(self) -> "MCZ":
        return MCZ(self._controls, self.target, self._control_states)


class MCPhase(MCGate):
    """Multi-controlled phase gate (diagonal)."""

    def __init__(self, controls, target: int, *args, control_states=None):
        super().__init__(Phase(target, *args), controls, control_states)

    @property
    def theta(self) -> float:
        """The phase angle in radians."""
        return self.gate.theta

    def ctranspose(self) -> "MCPhase":
        a = self.gate.angle
        return MCPhase(
            self._controls,
            self.target,
            a.cos,
            -a.sin,
            control_states=self._control_states,
        )


class _MCRotation(MCGate):
    """Shared implementation of the multi-controlled rotations."""

    _ROT = None

    def __init__(self, controls, target: int, *args, control_states=None):
        super().__init__(self._ROT(target, *args), controls, control_states)

    @property
    def theta(self) -> float:
        """The rotation angle in radians."""
        return self.gate.theta

    def ctranspose(self):
        return type(self)(
            self._controls,
            self.target,
            self.gate.rotation.inv(),
            control_states=self._control_states,
        )


class MCRotationX(_MCRotation):
    """Multi-controlled ``RX(theta)``."""

    _ROT = RotationX


class MCRotationY(_MCRotation):
    """Multi-controlled ``RY(theta)``."""

    _ROT = RotationY


class MCRotationZ(_MCRotation):
    """Multi-controlled ``RZ(theta)`` (diagonal)."""

    _ROT = RotationZ
