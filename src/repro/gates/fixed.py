"""Fixed (parameter-free) one-qubit gates.

The catalogue matches QCLAB's ``qclab.qgates`` fixed gates: identity,
Hadamard, the three Paulis, the phase gates S/S†/T/T† (QCLAB's
``Phase90``/``Phase45``) and the square-root-of-X gate.

Every class stores its (immutable) unitary as a class attribute, so
``matrix`` never recomputes trigonometry and equal gates share storage.
"""

from __future__ import annotations

import numpy as np

from repro.gates.qgate1 import QGate1

__all__ = [
    "Identity",
    "Hadamard",
    "PauliX",
    "PauliY",
    "PauliZ",
    "S",
    "Sdg",
    "T",
    "Tdg",
    "SqrtX",
    "Phase90",
    "Phase45",
]

_SQRT2 = np.sqrt(2.0)


class Identity(QGate1):
    """The identity gate ``I``."""

    _LABEL = "I"
    _QASM = "id"
    _MATRIX = np.eye(2, dtype=np.complex128)

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    @property
    def is_diagonal(self) -> bool:
        return True

    def ctranspose(self) -> "Identity":
        return Identity(self.qubit)


class Hadamard(QGate1):
    """The Hadamard gate ``H = (X + Z)/sqrt(2)``."""

    _LABEL = "H"
    _QASM = "h"
    _MATRIX = np.array([[1, 1], [1, -1]], dtype=np.complex128) / _SQRT2

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    def ctranspose(self) -> "Hadamard":
        return Hadamard(self.qubit)


class PauliX(QGate1):
    """The Pauli-X (NOT) gate."""

    _LABEL = "X"
    _QASM = "x"
    _MATRIX = np.array([[0, 1], [1, 0]], dtype=np.complex128)

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    def ctranspose(self) -> "PauliX":
        return PauliX(self.qubit)


class PauliY(QGate1):
    """The Pauli-Y gate."""

    _LABEL = "Y"
    _QASM = "y"
    _MATRIX = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    def ctranspose(self) -> "PauliY":
        return PauliY(self.qubit)


class PauliZ(QGate1):
    """The Pauli-Z gate."""

    _LABEL = "Z"
    _QASM = "z"
    _MATRIX = np.diag([1, -1]).astype(np.complex128)

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    @property
    def is_diagonal(self) -> bool:
        return True

    def ctranspose(self) -> "PauliZ":
        return PauliZ(self.qubit)


class S(QGate1):
    """The S gate ``diag(1, i)`` — a 90-degree phase (QCLAB's ``Phase90``)."""

    _LABEL = "S"
    _QASM = "s"
    _MATRIX = np.diag([1, 1j]).astype(np.complex128)

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    @property
    def is_diagonal(self) -> bool:
        return True

    def ctranspose(self) -> "Sdg":
        return Sdg(self.qubit)


class Sdg(QGate1):
    """The S-dagger gate ``diag(1, -i)``."""

    _LABEL = "S†"
    _QASM = "sdg"
    _MATRIX = np.diag([1, -1j]).astype(np.complex128)

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    @property
    def is_diagonal(self) -> bool:
        return True

    def ctranspose(self) -> "S":
        return S(self.qubit)


class T(QGate1):
    """The T gate ``diag(1, e^{i pi/4})`` (QCLAB's ``Phase45``)."""

    _LABEL = "T"
    _QASM = "t"
    _MATRIX = np.diag([1, np.exp(1j * np.pi / 4)]).astype(np.complex128)

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    @property
    def is_diagonal(self) -> bool:
        return True

    def ctranspose(self) -> "Tdg":
        return Tdg(self.qubit)


class Tdg(QGate1):
    """The T-dagger gate ``diag(1, e^{-i pi/4})``."""

    _LABEL = "T†"
    _QASM = "tdg"
    _MATRIX = np.diag([1, np.exp(-1j * np.pi / 4)]).astype(np.complex128)

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    @property
    def is_diagonal(self) -> bool:
        return True

    def ctranspose(self) -> "T":
        return T(self.qubit)


class SqrtX(QGate1):
    """The square root of Pauli-X, ``SX^2 = X``."""

    _LABEL = "√X"
    _QASM = "sx"
    _MATRIX = 0.5 * np.array(
        [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128
    )

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    def ctranspose(self) -> "_SqrtXdg":
        return _SqrtXdg(self.qubit)


class _SqrtXdg(QGate1):
    """The inverse of :class:`SqrtX` (``sxdg`` in OpenQASM)."""

    _LABEL = "√X†"
    _QASM = "sxdg"
    _MATRIX = 0.5 * np.array(
        [[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=np.complex128
    )

    @property
    def matrix(self) -> np.ndarray:
        return self._MATRIX

    def ctranspose(self) -> "SqrtX":
        return SqrtX(self.qubit)


#: QCLAB naming aliases: ``Phase90`` is S, ``Phase45`` is T.
Phase90 = S
Phase45 = T
