"""Base class for one-qubit gates."""

from __future__ import annotations

import copy

import numpy as np

from repro.gates.base import (
    DrawElement,
    DrawSpec,
    QGate,
    bump_mutation_epoch,
)
from repro.utils.validation import check_qubit

__all__ = ["QGate1"]


class QGate1(QGate):
    """A gate acting on a single qubit.

    Subclasses provide ``_LABEL`` (drawing) and ``_QASM`` (OpenQASM name)
    class attributes plus a :attr:`matrix` implementation.
    """

    _LABEL = "?"
    _QASM = "?"

    def __init__(self, qubit: int = 0) -> None:
        self._qubit = check_qubit(qubit)

    @property
    def qubits(self) -> tuple:
        return (self._qubit,)

    @property
    def qubit(self) -> int:
        """The qubit this gate acts on (settable)."""
        return self._qubit

    @qubit.setter
    def qubit(self, value: int) -> None:
        bump_mutation_epoch()
        self._qubit = check_qubit(value)

    def setQubit(self, value: int) -> None:
        """QCLAB-style setter for the acted-on qubit."""
        self.qubit = value

    @property
    def label(self) -> str:
        """Short label used in circuit diagrams."""
        return self._LABEL

    def draw_spec(self) -> DrawSpec:
        return DrawSpec(
            elements={self._qubit: DrawElement("box", self.label)},
            connect=False,
        )

    def toQASM(self, offset: int = 0) -> str:
        return f"{self._QASM} q[{self._qubit + offset}];"

    def shifted(self, offset: int) -> "QGate1":
        out = copy.copy(self)
        out._qubit = self._qubit + int(offset)
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._qubit})"

    def _matrix_as(self, dtype=np.complex128) -> np.ndarray:
        return np.asarray(self.matrix, dtype=dtype)
