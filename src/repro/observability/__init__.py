"""Instrumentation: tracing spans, metrics, exporters, profiles.

A zero-dependency observability layer for the simulator, in four
pieces:

:class:`Tracer` / :class:`Span`
    Nested, thread-safe timing spans with attributes; near-zero
    overhead when disabled.
:class:`MetricsRegistry`
    Counters, gauges and fixed-bucket histograms (gate applies by
    kind, kernel seconds, plan-cache hits/misses, statevector bytes
    high-water, RNG draws, shots sampled, ...).
Exporters
    :func:`to_json`, :func:`to_chrome_trace` (``chrome://tracing`` /
    Perfetto), :func:`to_prometheus` (text exposition),
    :func:`to_collapsed_stacks` (speedscope / ``flamegraph.pl``) and
    the human-readable :class:`ProfileReport`.
:class:`FlightRecorder`
    An always-on bounded ring buffer of structured events (plan-cache
    traffic, per-step kernel dispatches, trajectory batches, memory
    high-water marks); dump on demand or on exception, read back with
    ``python -m repro.obs``.
:func:`instrument`
    Context manager activating ambient instrumentation that every
    simulation seam — plan compilation, plan execution, backend
    kernels, density/trajectory engines, shot sampling, QASM io —
    reports into::

        from repro.observability import instrument

        with instrument() as inst:
            simulation = circuit.simulate('00')
        print(inst.report())                      # profile table
        trace = to_chrome_trace(inst.tracer)      # chrome://tracing

    The same machinery activates per run through
    ``SimulationOptions(trace=True, metrics=True)``, in which case
    ``Simulation.report()`` returns the run's profile.
"""

from repro.observability.backend import (
    InstrumentedBackend,
    gate_kind,
    step_kind,
)
from repro.observability.exporters import (
    ProfileReport,
    dumps_json,
    to_chrome_trace,
    to_collapsed_stacks,
    to_json,
    to_prometheus,
)
from repro.observability.instrument import (
    Instrumentation,
    activate,
    current_instrumentation,
    instrument,
    resolve_instrumentation,
)
from repro.observability.metrics import (
    BATCH_SIZE,
    BATCH_WORKERS,
    BATCHED_SHOTS,
    BRANCHES_MAX,
    CONFORMANCE_CHECKS,
    CONFORMANCE_CIRCUITS,
    CONFORMANCE_FAILURES,
    Counter,
    FUSED_STEPS,
    GATE_APPLIES,
    Gauge,
    Histogram,
    KERNEL_BYTES,
    KERNEL_SECONDS,
    MEASUREMENTS,
    MetricsRegistry,
    PLAN_CACHE_HITS,
    PLAN_CACHE_MISSES,
    PLAN_PREP_SECONDS,
    RNG_DRAWS,
    SERVICE_INFLIGHT,
    SERVICE_LATENCY,
    SERVICE_QUEUE_DEPTH,
    SERVICE_REQUESTS,
    SERVICE_RESULT_CACHE_HITS,
    SERVICE_RESULT_CACHE_MISSES,
    SERVICE_THROTTLES,
    SERVICE_TIMEOUTS,
    SHOTS_SAMPLED,
    STATE_BYTES_MAX,
    TRAJECTORIES,
)
from repro.observability.recorder import (
    DEFAULT_CAPACITY,
    EV_BATCH_EXECUTE,
    EV_BATCH_FANOUT,
    EV_ERROR,
    EV_JOB_DONE,
    EV_JOB_SUBMIT,
    EV_REQUEST_ACCEPT,
    EV_REQUEST_DONE,
    EV_REQUEST_REJECT,
    EV_REQUEST_TIMEOUT,
    EV_PLAN_BIND,
    EV_PLAN_COMPILE,
    EV_PLAN_EVICT,
    EV_PLAN_HIT,
    EV_PLAN_MISS,
    EV_PLAN_SWEEP,
    EV_STATE_HIGHWATER,
    EV_STEP_DISPATCH,
    EV_TRAJECTORY,
    FlightRecorder,
    RecorderEvent,
    flight_recorder,
    record_event,
)
from repro.observability.tracer import Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "instrument",
    "activate",
    "current_instrumentation",
    "resolve_instrumentation",
    "InstrumentedBackend",
    "gate_kind",
    "step_kind",
    "ProfileReport",
    "to_json",
    "dumps_json",
    "to_chrome_trace",
    "to_prometheus",
    "to_collapsed_stacks",
    "FlightRecorder",
    "RecorderEvent",
    "flight_recorder",
    "record_event",
    "DEFAULT_CAPACITY",
    "EV_PLAN_COMPILE",
    "EV_PLAN_HIT",
    "EV_PLAN_MISS",
    "EV_PLAN_EVICT",
    "EV_PLAN_BIND",
    "EV_PLAN_SWEEP",
    "EV_STEP_DISPATCH",
    "EV_BATCH_EXECUTE",
    "EV_BATCH_FANOUT",
    "EV_TRAJECTORY",
    "EV_STATE_HIGHWATER",
    "EV_JOB_SUBMIT",
    "EV_JOB_DONE",
    "EV_ERROR",
    "EV_REQUEST_ACCEPT",
    "EV_REQUEST_DONE",
    "EV_REQUEST_REJECT",
    "EV_REQUEST_TIMEOUT",
    "GATE_APPLIES",
    "KERNEL_SECONDS",
    "KERNEL_BYTES",
    "PLAN_PREP_SECONDS",
    "FUSED_STEPS",
    "PLAN_CACHE_HITS",
    "PLAN_CACHE_MISSES",
    "STATE_BYTES_MAX",
    "RNG_DRAWS",
    "SHOTS_SAMPLED",
    "TRAJECTORIES",
    "MEASUREMENTS",
    "BRANCHES_MAX",
    "BATCHED_SHOTS",
    "BATCH_SIZE",
    "BATCH_WORKERS",
    "CONFORMANCE_CIRCUITS",
    "CONFORMANCE_CHECKS",
    "CONFORMANCE_FAILURES",
    "SERVICE_REQUESTS",
    "SERVICE_LATENCY",
    "SERVICE_QUEUE_DEPTH",
    "SERVICE_INFLIGHT",
    "SERVICE_THROTTLES",
    "SERVICE_TIMEOUTS",
    "SERVICE_RESULT_CACHE_HITS",
    "SERVICE_RESULT_CACHE_MISSES",
]
