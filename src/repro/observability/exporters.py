"""Exporters: JSON, Chrome trace-event, Prometheus text, and the
human-readable :class:`ProfileReport`.

All exporters are pure functions of a :class:`~repro.observability.Tracer`
and/or :class:`~repro.observability.MetricsRegistry` — they never mutate
what they read, so exporting mid-run is safe.

* :func:`to_json` — one dict holding the span list and the metrics
  snapshot; round-trips through ``json``.
* :func:`to_chrome_trace` — the ``chrome://tracing`` / Perfetto
  trace-event format (``X`` complete events, microsecond timestamps).
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` plus ``_bucket``/``_sum``/``_count`` series
  for histograms).
* :func:`to_collapsed_stacks` — the collapsed-stack text format
  (``root;child;leaf <self-time-us>`` lines) consumed by
  https://speedscope.app and ``flamegraph.pl``.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.observability.metrics import (
    GATE_APPLIES,
    KERNEL_BYTES,
    KERNEL_SECONDS,
    MEASUREMENTS,
    MetricsRegistry,
    PLAN_PREP_SECONDS,
    PLAN_CACHE_HITS,
    PLAN_CACHE_MISSES,
    STATE_BYTES_MAX,
    Counter,
    Gauge,
    Histogram,
)
from repro.observability.tracer import Span, Tracer

__all__ = [
    "to_json",
    "dumps_json",
    "to_chrome_trace",
    "to_prometheus",
    "to_collapsed_stacks",
    "ProfileReport",
]


# -- JSON ---------------------------------------------------------------------


def to_json(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> dict:
    """Spans and metrics as one JSON-serializable dict."""
    out: dict = {"format": "repro-observability", "version": 1}
    if tracer is not None:
        out["spans"] = [s.to_dict() for s in tracer.spans]
    if metrics is not None:
        out["metrics"] = metrics.snapshot()
    return out


def dumps_json(tracer=None, metrics=None, indent: int = 2) -> str:
    """:func:`to_json`, serialized."""
    return json.dumps(to_json(tracer, metrics), indent=indent)


# -- Chrome trace-event -------------------------------------------------------


def to_chrome_trace(tracer: Tracer) -> dict:
    """Spans in Chrome trace-event JSON (open via ``chrome://tracing``
    or https://ui.perfetto.dev).

    Each span becomes one ``"ph": "X"`` complete event; timestamps are
    microseconds relative to the earliest recorded span.
    """
    spans = tracer.spans
    t0 = min((s.start for s in spans), default=0.0)
    events = []
    for s in spans:
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "ts": (s.start - t0) * 1e6,
                "dur": s.wall_seconds * 1e6,
                "pid": 0,
                "tid": s.thread_id,
                "cat": "repro",
                "args": {
                    str(k): v for k, v in s.attributes.items()
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- collapsed stacks (speedscope / flamegraph.pl) ----------------------------


def to_collapsed_stacks(tracer: Tracer) -> str:
    """Spans in the collapsed-stack text format.

    One line per unique root-to-span path, ``a;b;c <self-us>``, where
    the weight is the span's *self* time (wall time minus child wall
    time) in integer microseconds.  The output drops straight into
    https://speedscope.app or Brendan Gregg's ``flamegraph.pl``.
    Identical paths (e.g. repeated ``simulate.execute`` calls) merge
    into one line with summed weight; zero-weight paths are kept only
    when the span has no children, so leaf spans never vanish.
    """
    weights: dict = {}

    def visit(span: Span, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        children = tracer.children(span)
        child_wall = sum(c.wall_seconds for c in children)
        self_us = int(round(max(0.0, span.wall_seconds - child_wall) * 1e6))
        if self_us > 0 or not children:
            weights[path] = weights.get(path, 0) + self_us
        for child in children:
            visit(child, path)

    for root in tracer.roots():
        visit(root, "")
    lines = [f"{path} {us}" for path, us in sorted(weights.items())]
    return "\n".join(lines) + ("\n" if lines else "")


# -- Prometheus text exposition ----------------------------------------------


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(v: float) -> str:
    return repr(int(v)) if float(v).is_integer() else repr(float(v))


def to_prometheus(metrics: MetricsRegistry) -> str:
    """Metrics in the Prometheus text exposition format."""
    lines: List[str] = []
    for inst in metrics.instruments():
        if inst.help:
            lines.append(f"# HELP {inst.name} {inst.help}")
        lines.append(f"# TYPE {inst.name} {inst.kind}")
        if isinstance(inst, Histogram):
            for labels in inst.labelsets():
                counts = inst.bucket_counts(**labels)
                cumulative = 0
                for bound, c in zip(inst.buckets, counts):
                    cumulative += c
                    le = dict(labels, le=repr(float(bound)))
                    lines.append(
                        f"{inst.name}_bucket{_fmt_labels(le)} "
                        f"{cumulative}"
                    )
                cumulative += counts[-1]
                le = dict(labels, le="+Inf")
                lines.append(
                    f"{inst.name}_bucket{_fmt_labels(le)} {cumulative}"
                )
                lines.append(
                    f"{inst.name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(inst.sum(**labels))}"
                )
                lines.append(
                    f"{inst.name}_count{_fmt_labels(labels)} "
                    f"{inst.count(**labels)}"
                )
        elif isinstance(inst, (Counter, Gauge)):
            for labels in inst.labelsets():
                lines.append(
                    f"{inst.name}{_fmt_labels(labels)} "
                    f"{_fmt_value(inst.value(**labels))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# -- the human-readable profile report ---------------------------------------


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:8.3f} s "
    if s >= 1e-3:
        return f"{s * 1e3:8.3f} ms"
    return f"{s * 1e6:8.1f} us"


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"


class ProfileReport:
    """Per-run profile: the span tree plus a kernel-time breakdown.

    Render with ``str(report)`` (or ``print(report)``); the structured
    accessors (:attr:`wall_seconds`, :meth:`kernel_seconds`,
    :meth:`coverage`) back the acceptance tests.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        stats=None,
    ):
        self.tracer = tracer
        self.metrics = metrics
        #: Optional :class:`~repro.simulation.PlanStats` of the run.
        self.stats = stats

    # -- structured accessors ------------------------------------------------

    def _named_spans(self, name: str) -> List[Span]:
        if self.tracer is None:
            return []
        return [s for s in self.tracer.spans if s.name == name]

    @property
    def wall_seconds(self) -> float:
        """Total wall time of the root span(s); falls back to
        ``PlanStats`` stage times when the run was not traced."""
        if self.tracer is not None and len(self.tracer):
            return sum(s.wall_seconds for s in self.tracer.roots())
        if self.stats is not None:
            return (
                self.stats.signature_seconds
                + self.stats.compile_seconds
                + self.stats.execute_seconds
            )
        return 0.0

    @property
    def execute_seconds(self) -> float:
        """Wall time of the execution span(s) (plan replay)."""
        total = sum(
            s.wall_seconds for s in self._named_spans("simulate.execute")
        )
        if total == 0.0 and self.stats is not None:
            return self.stats.execute_seconds
        return total

    def kernel_seconds(self, backend: Optional[str] = None) -> float:
        """Wall seconds measured inside backend kernels, optionally
        restricted to one backend name."""
        if self.metrics is None:
            return 0.0
        hist = self.metrics.get(KERNEL_SECONDS)
        if not isinstance(hist, Histogram):
            return 0.0
        total = 0.0
        for labels in hist.labelsets():
            if backend is not None and labels.get("backend") != backend:
                continue
            total += hist.sum(**labels)
        return total

    def kernel_breakdown(self) -> List[dict]:
        """Rows ``{backend, kind, calls, seconds}``, slowest first."""
        if self.metrics is None:
            return []
        hist = self.metrics.get(KERNEL_SECONDS)
        counter = self.metrics.get(GATE_APPLIES)
        if not isinstance(hist, Histogram):
            return []
        rows = []
        for labels in hist.labelsets():
            calls = hist.count(**labels)
            if isinstance(counter, Counter):
                calls = int(counter.value(**labels)) or calls
            rows.append(
                {
                    "backend": labels.get("backend", "?"),
                    "kind": labels.get("kind", "?"),
                    "calls": calls,
                    "seconds": hist.sum(**labels),
                }
            )
        rows.sort(key=lambda r: -r["seconds"])
        return rows

    def op_table(self) -> List[dict]:
        """The per-op cost attribution table: rows ``{backend, kind,
        calls, seconds, bytes, prep_seconds}``, slowest first.

        Extends :meth:`kernel_breakdown` with the approximate bytes
        touched per (backend, kind) series from
        ``repro_kernel_bytes_total`` and the compile-time cost per
        (backend, kind) from ``repro_plan_prepare_seconds`` (summed
        over the ``prepare``/``refresh`` stages), so hot kernels can
        be ranked by time, memory traffic, or prepare overhead.
        Combinations that only ever prepared (never applied) appear
        as rows with ``calls=0``.
        """
        rows = self.kernel_breakdown()
        nbytes = (
            self.metrics.get(KERNEL_BYTES)
            if self.metrics is not None
            else None
        )
        for r in rows:
            r["bytes"] = (
                int(nbytes.value(backend=r["backend"], kind=r["kind"]))
                if isinstance(nbytes, Counter)
                else 0
            )
        prep = (
            self.metrics.get(PLAN_PREP_SECONDS)
            if self.metrics is not None
            else None
        )
        prep_rows: dict = {}
        if isinstance(prep, Histogram):
            for labels in prep.labelsets():
                key = (
                    labels.get("backend", "?"),
                    labels.get("kind", "?"),
                )
                prep_rows[key] = prep_rows.get(key, 0.0) + prep.sum(
                    **labels
                )
        for r in rows:
            r["prep_seconds"] = prep_rows.pop(
                (r["backend"], r["kind"]), 0.0
            )
        for (backend, kind), secs in sorted(prep_rows.items()):
            rows.append(
                {
                    "backend": backend,
                    "kind": kind,
                    "calls": 0,
                    "seconds": 0.0,
                    "bytes": 0,
                    "prep_seconds": secs,
                }
            )
        return rows

    def coverage(self) -> float:
        """Fraction of execution wall time accounted for by kernel +
        measurement timings (1.0 = fully explained)."""
        exe = self.execute_seconds
        if exe <= 0.0:
            return 0.0
        accounted = self.kernel_seconds()
        if self.metrics is not None:
            meas = self.metrics.get(MEASUREMENTS)
            if isinstance(meas, Histogram):
                accounted += meas.total_sum()
        return accounted / exe

    # -- rendering -----------------------------------------------------------

    def _render_span(self, span: Span, depth: int, lines: List[str]):
        attrs = ""
        interesting = {
            k: v
            for k, v in span.attributes.items()
            if k in ("backend", "nb_qubits", "steps", "cache_hit",
                     "error", "shots", "nb_ops")
        }
        if interesting:
            attrs = "  " + ", ".join(
                f"{k}={v}" for k, v in sorted(interesting.items())
            )
        lines.append(
            f"  {_fmt_seconds(span.wall_seconds)}  "
            f"{'  ' * depth}{span.name}{attrs}"
        )
        for child in self.tracer.children(span):
            self._render_span(child, depth + 1, lines)

    def lines(self) -> List[str]:
        """The rendered report, one string per line."""
        out: List[str] = ["ProfileReport"]
        if self.stats is not None:
            st = self.stats
            out.append(
                f"  plan: {st.nb_source_ops} source ops -> "
                f"{st.nb_steps} steps ({st.nb_fused} fused), "
                f"cache_hit={st.cache_hit}"
            )
        if self.tracer is not None and len(self.tracer):
            out.append("  spans (wall time):")
            for root in self.tracer.roots():
                self._render_span(root, 1, out)
        rows = self.op_table()
        if rows:
            out.append("  kernel time by backend/kind:")
            for r in rows:
                mem = (
                    f", {_fmt_bytes(r['bytes'])}" if r["bytes"] else ""
                )
                out.append(
                    f"  {_fmt_seconds(r['seconds'])}  "
                    f"{r['backend']}/{r['kind']}  "
                    f"({r['calls']} applies{mem})"
                )
            exe = self.execute_seconds
            if exe > 0:
                out.append(
                    f"  kernels account for {100 * self.coverage():.1f}% "
                    f"of execute wall time ({_fmt_seconds(exe).strip()})"
                )
        if self.metrics is not None:
            extras = []
            for name, label in (
                (PLAN_CACHE_HITS, "plan-cache hits"),
                (PLAN_CACHE_MISSES, "plan-cache misses"),
            ):
                c = self.metrics.get(name)
                if isinstance(c, Counter) and c.total():
                    extras.append(f"{label}={int(c.total())}")
            g = self.metrics.get(STATE_BYTES_MAX)
            if isinstance(g, Gauge) and g.value():
                extras.append(
                    f"statevector high-water={int(g.value())} bytes"
                )
            if extras:
                out.append("  " + ", ".join(extras))
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())

    def __repr__(self) -> str:
        return (
            f"ProfileReport(wall={self.wall_seconds * 1e3:.3f}ms, "
            f"kernels={self.kernel_seconds() * 1e3:.3f}ms)"
        )
