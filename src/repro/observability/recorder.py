"""The flight recorder: an always-on bounded ring of structured events.

Unlike the :class:`~repro.observability.Tracer` (opt-in, unbounded,
span-shaped), the flight recorder is *always on*: a process-wide
bounded ring buffer that every simulation seam appends lightweight
structured events into — plan-cache traffic (compile / hit / miss /
evict), per-step kernel dispatches (op kind, qubit count, wall
nanoseconds), parametric bind / sweep passes, trajectory batches and
allocation high-water marks.  Because the buffer is bounded
(:data:`DEFAULT_CAPACITY` events, oldest dropped first) and an append
is a couple of attribute lookups plus one ``deque.append``, the
recorder can stay enabled in production at negligible cost and still
answer *"what was the engine doing just before this?"* — dump it on
demand with :meth:`FlightRecorder.dump`, or automatically on a crash
with :meth:`FlightRecorder.dump_on_exception`::

    from repro.observability import flight_recorder

    rec = flight_recorder()
    with rec.dump_on_exception("crash_dump.json"):
        simulate(circuit, "0000")
    print(rec.summary())

The global recorder is shared by the whole process; ``python -m
repro.obs`` reads its dumps back and prints the hot-kernel / cache /
memory digest.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
from collections import Counter, deque
from time import perf_counter
from typing import Any, Dict, List, Optional

__all__ = [
    "RecorderEvent",
    "FlightRecorder",
    "flight_recorder",
    "record_event",
    "DEFAULT_CAPACITY",
    "EV_PLAN_COMPILE",
    "EV_PLAN_HIT",
    "EV_PLAN_MISS",
    "EV_PLAN_EVICT",
    "EV_PLAN_BIND",
    "EV_PLAN_SWEEP",
    "EV_STEP_DISPATCH",
    "EV_BATCH_EXECUTE",
    "EV_BATCH_FANOUT",
    "EV_TRAJECTORY",
    "EV_STATE_HIGHWATER",
    "EV_JOB_SUBMIT",
    "EV_JOB_DONE",
    "EV_ERROR",
    "EV_REQUEST_ACCEPT",
    "EV_REQUEST_DONE",
    "EV_REQUEST_REJECT",
    "EV_REQUEST_TIMEOUT",
]

#: Default ring capacity (events); the oldest events drop first.
DEFAULT_CAPACITY = 4096

# -- canonical event kinds ----------------------------------------------------

#: A plan was compiled (payload: backend, ops, steps, fused, ns,
#: table_bytes).
EV_PLAN_COMPILE = "plan.compile"
#: Plan-cache lookup outcomes (payload: backend, signature).
EV_PLAN_HIT = "plan.hit"
EV_PLAN_MISS = "plan.miss"
#: A plan fell off the LRU (payload: backend, signature).
EV_PLAN_EVICT = "plan.evict"
#: A parametric plan was re-bound in place (payload: params, steps, ns).
EV_PLAN_BIND = "plan.bind"
#: A vectorized parameter sweep ran (payload: points, backend, ns).
EV_PLAN_SWEEP = "plan.sweep"
#: One compiled plan step executed (payload: op, nq, ns, branches).
EV_STEP_DISPATCH = "step.dispatch"
#: One trajectory batch executed (payload: batch, ns).
EV_BATCH_EXECUTE = "batch.execute"
#: Fan-out decision for a trajectory batch (payload: shots, requested,
#: workers, floor, inline).
EV_BATCH_FANOUT = "batch.fanout"
#: One serial trajectory executed (payload: nq, ns).
EV_TRAJECTORY = "trajectory"
#: Statevector allocation high-water mark rose (payload: bytes,
#: branches).
EV_STATE_HIGHWATER = "state.highwater"
#: A job entered the executor (payload: id, pipeline, backend).
EV_JOB_SUBMIT = "job.submit"
#: A job reached a terminal state (payload: id, pipeline, state, ns).
EV_JOB_DONE = "job.done"
#: An exception escaped an instrumented seam (payload: error, where).
EV_ERROR = "error"
#: A service request was admitted by the gateway (payload: id, tenant,
#: pipeline, qubits).
EV_REQUEST_ACCEPT = "request.accept"
#: A service request finished (payload: id, tenant, status, ns,
#: cached).
EV_REQUEST_DONE = "request.done"
#: A service request was rejected before execution (payload: tenant,
#: status, reason).
EV_REQUEST_REJECT = "request.reject"
#: A service request was cancelled at its deadline (payload: id,
#: tenant, ns).
EV_REQUEST_TIMEOUT = "request.timeout"


class RecorderEvent:
    """One recorded event: monotonic sequence number, timestamp
    (``perf_counter`` seconds, process-relative), kind string and a
    small payload dict."""

    __slots__ = ("seq", "ts", "kind", "data")

    def __init__(self, seq: int, ts: float, kind: str, data: Dict[str, Any]):
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.data = data

    def to_dict(self) -> dict:
        """Plain-dict form used by :meth:`FlightRecorder.dump`."""
        out = {"seq": self.seq, "ts": self.ts, "kind": self.kind}
        out.update(self.data)
        return out

    def __repr__(self) -> str:
        return f"RecorderEvent({self.seq}, {self.kind!r}, {self.data!r})"


class FlightRecorder:
    """A bounded, thread-safe ring buffer of :class:`RecorderEvent` s.

    Appends are O(1) and rely on the atomicity of
    ``deque.append``/``itertools.count`` under the GIL, so the hot
    path takes no lock; snapshots (:meth:`events`, :meth:`dump`) copy
    the ring under a lock.  When the ring is full the oldest events
    drop silently — :attr:`dropped` counts how many.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.enabled = bool(enabled)
        self._capacity = int(capacity)
        self._events: deque = deque(maxlen=self._capacity)
        # itertools.count: the one GIL-atomic counter — appends take no
        # lock, so the sequence number doubles as the total-appended tally
        self._seq = itertools.count(1)
        self._base = 0  # `recorded` watermark at the last clear()
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------

    def record(self, kind: str, **data) -> None:
        """Append one event (no-op when disabled).

        ``data`` values should be small JSON-serializable scalars; the
        recorder never inspects them.
        """
        if not self.enabled:
            return
        self._events.append(
            RecorderEvent(next(self._seq), perf_counter(), kind, data)
        )

    # -- inspection ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return self._capacity

    @property
    def recorded(self) -> int:
        """Total events ever appended (including dropped ones)."""
        # the counter pickles as (count, (next_value,)): read it back
        # without consuming a value
        return self._seq.__reduce__()[1][0] - 1

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound since the last clear."""
        return max(0, self.recorded - self._base - len(self._events))

    def events(self, kind: Optional[str] = None) -> List[RecorderEvent]:
        """Retained events oldest-first, optionally of one kind."""
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [e for e in snapshot if e.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        """``{kind: retained-event count}``, sorted by kind."""
        return dict(sorted(Counter(e.kind for e in self.events()).items()))

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop every retained event and reset the drop counter (the
        sequence numbers keep running)."""
        with self._lock:
            self._events.clear()
            self._base = self.recorded

    # -- dumping ------------------------------------------------------------

    def dump(self) -> dict:
        """The whole ring as one JSON-serializable dict."""
        return {
            "format": "repro-flight-recorder",
            "version": 1,
            "capacity": self._capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": [e.to_dict() for e in self.events()],
        }

    def dump_json(self, path=None, indent: int = 2) -> str:
        """Serialize :meth:`dump`; also write it to ``path`` if given.

        The write is atomic (tempfile + ``os.replace`` in the target's
        directory), so a reader — ``python -m repro.obs --dump`` against
        a still-running process — never observes a half-written file.
        """
        text = json.dumps(self.dump(), indent=indent) + "\n"
        if path is not None:
            path = os.fspath(path)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        return text

    @contextlib.contextmanager
    def dump_on_exception(self, path):
        """Context manager writing the ring to ``path`` when an
        exception escapes the block (the exception still propagates)::

            with flight_recorder().dump_on_exception("crash.json"):
                simulate(circuit, "00")
        """
        try:
            yield self
        except BaseException as exc:
            self.record(EV_ERROR, error=type(exc).__name__)
            self.dump_json(path)
            raise

    # -- digesting ----------------------------------------------------------

    def summary_lines(self) -> List[str]:
        """A short human-readable digest of the retained events."""
        lines = [
            f"FlightRecorder: {len(self)} event(s) retained "
            f"(capacity {self._capacity}, {self.dropped} dropped)"
        ]
        counts = self.counts_by_kind()
        if counts:
            lines.append(
                "  by kind: "
                + ", ".join(f"{k}={n}" for k, n in counts.items())
            )
        steps = self.events(EV_STEP_DISPATCH)
        if steps:
            per_op: Dict[str, List[float]] = {}
            for e in steps:
                per_op.setdefault(e.data.get("op", "?"), []).append(
                    float(e.data.get("ns", 0))
                )
            rows = sorted(
                per_op.items(), key=lambda kv: -sum(kv[1])
            )
            lines.append("  step dispatch ns by op kind:")
            for op, ns in rows:
                lines.append(
                    f"    {op:<12} {len(ns):>6} dispatch(es)  "
                    f"{int(sum(ns)):>12} ns"
                )
        hw = self.events(EV_STATE_HIGHWATER)
        if hw:
            peak = max(int(e.data.get("bytes", 0)) for e in hw)
            lines.append(f"  statevector high-water: {peak} bytes")
        return lines

    def summary(self) -> str:
        """:meth:`summary_lines`, joined."""
        return "\n".join(self.summary_lines())

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"FlightRecorder({state}, {len(self)}/{self._capacity} "
            f"event(s), {self.dropped} dropped)"
        )


#: The process-wide recorder every simulation seam reports into.
_GLOBAL = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-wide :class:`FlightRecorder` singleton."""
    return _GLOBAL


def record_event(kind: str, **data) -> None:
    """Append one event to the global recorder (module-level helper
    so hot paths skip the singleton lookup)."""
    _GLOBAL.record(kind, **data)
