"""Nested tracing spans with near-zero overhead when disabled.

A :class:`Tracer` records :class:`Span` s — named, timed regions with
attributes and parent links — forming one tree per thread.  Opening a
span is a context manager::

    tracer = Tracer()
    with tracer.span("simulate", backend="kernel"):
        with tracer.span("execute"):
            ...

Spans capture wall time (``perf_counter``) and CPU time
(``process_time``), survive exceptions (the span is closed and tagged
with the exception type before it propagates), and are recorded
thread-safely: each thread keeps its own open-span stack while the
completed-span list is shared under a lock.

A disabled tracer (``Tracer(enabled=False)``) returns one shared no-op
context manager from :meth:`Tracer.span`, so the cost of instrumenting
a code path that is not being traced is a single attribute check.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter, process_time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed region: name, wall/CPU interval, attributes, parent.

    ``span_id``/``parent_id`` encode the tree (``parent_id`` is ``None``
    for roots); ``thread_id`` is the ``ident`` of the recording thread.
    Times are ``perf_counter``/``process_time`` values — durations are
    exact, absolute values are process-relative.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "thread_id", "attributes",
        "start", "end", "cpu_start", "cpu_end",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        thread_id: int,
        attributes: Dict[str, Any],
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.attributes = attributes
        self.start = 0.0
        self.end = 0.0
        self.cpu_start = 0.0
        self.cpu_end = 0.0

    @property
    def wall_seconds(self) -> float:
        """Elapsed wall-clock time of the span."""
        return self.end - self.start

    @property
    def cpu_seconds(self) -> float:
        """Elapsed process CPU time of the span."""
        return self.cpu_end - self.cpu_start

    def to_dict(self) -> dict:
        """Plain-dict form (used by the JSON exporter)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "end": self.end,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, wall={self.wall_seconds * 1e3:.3f}ms, "
            f"id={self.span_id}, parent={self.parent_id})"
        )


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attributes):
        return self


#: The singleton no-op span; safe to share across threads (stateless).
NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens/closes one :class:`Span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def set(self, **attributes) -> "_SpanHandle":
        """Attach/overwrite attributes on the open span."""
        self._span.attributes.update(attributes)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self._span)
        self._span.cpu_start = process_time()
        self._span.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._span.end = perf_counter()
        self._span.cpu_end = process_time()
        if exc_type is not None:
            self._span.attributes["error"] = exc_type.__name__
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Thread-safe recorder of nested spans.

    ``enabled=False`` makes :meth:`span` return a shared no-op context
    manager — the instrumented code path costs one attribute check and
    no allocation.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attributes):
        """Open a named span as a context manager (no-op if disabled)."""
        if not self.enabled:
            return NULL_SPAN
        tid = threading.get_ident()
        stack = getattr(self._local, "stack", None)
        parent_id = stack[-1].span_id if stack else None
        return _SpanHandle(
            self, Span(name, next(self._ids), parent_id, tid, attributes)
        )

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._local.stack
        # Unwind to this span: exceptions can abandon children, so close
        # the tree back to (and including) the span being exited.
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            self._spans.append(span)

    # -- inspection ---------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Completed spans in completion order (children before
        parents, as in any post-order traversal)."""
        with self._lock:
            return list(self._spans)

    def roots(self) -> List[Span]:
        """Completed spans with no parent, in completion order."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        """Completed direct children of ``span``, by start time."""
        kids = [s for s in self.spans if s.parent_id == span.span_id]
        return sorted(kids, key=lambda s: s.start)

    def clear(self) -> None:
        """Drop all completed spans (open ones are unaffected)."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self)} span(s))"
