"""A :class:`Backend` decorator that measures every kernel application.

:class:`InstrumentedBackend` wraps any gate-apply backend and records,
into a :class:`~repro.observability.MetricsRegistry`:

* ``repro_gate_applies_total{backend,kind}`` — application counts,
* ``repro_kernel_seconds{backend,kind}`` — wall time per application,
* ``repro_kernel_bytes_total{backend,kind}`` — approximate bytes
  read+written per application (the backend's ``planned_bytes``
  estimate for planned steps, full-state streaming otherwise),
* ``repro_plan_prepare_seconds{backend,stage}`` — wall time inside
  the ``prepare_step``/``refresh_step`` compile-time hooks,

where ``kind`` classifies the gate structurally (``1q`` / ``diag`` /
``kq`` / ``controlled``), matching the gate classes benchmarked by
``bench_b2``.  Together the three kernel series back the per-op cost
attribution table (:meth:`~repro.observability.ProfileReport.op_table`).
The wrapper is applied by the simulation drivers only when
instrumentation is enabled, so the uninstrumented hot path never sees
it.
"""

from __future__ import annotations

from time import perf_counter

from repro.observability.metrics import (
    GATE_APPLIES,
    KERNEL_BYTES,
    KERNEL_SECONDS,
    PLAN_PREP_SECONDS,
    MetricsRegistry,
)

__all__ = ["InstrumentedBackend", "step_kind", "gate_kind"]


def gate_kind(targets, controls, diagonal) -> str:
    """Structural gate class: ``diag``, ``controlled``, ``1q``, ``kq``."""
    if diagonal:
        return "diag"
    if controls:
        return "controlled"
    if len(targets) == 1:
        return "1q"
    return "kq"


def step_kind(step) -> str:
    """Structural class of a compiled :class:`PlanStep`."""
    return gate_kind(step.targets, step.controls, step.diagonal)


class InstrumentedBackend:
    """Wraps a backend; delegates everything, timing each apply.

    Deliberately *not* a :class:`~repro.simulation.Backend` subclass —
    it duck-types the ``prepare_step``/``apply_planned``/``apply``
    surface instead, which keeps :mod:`repro.observability` free of
    simulation imports (the simulation layer imports observability,
    not the other way around).
    """

    kind = "statevector"

    def __init__(self, inner, metrics: MetricsRegistry):
        self.inner = inner
        self.name = inner.name
        self._applies = metrics.counter(
            GATE_APPLIES, "gate-kernel applications by backend and kind"
        )
        self._seconds = metrics.histogram(
            KERNEL_SECONDS, "wall seconds inside backend kernels"
        )
        self._bytes = metrics.counter(
            KERNEL_BYTES, "approximate bytes touched by backend kernels"
        )
        self._prep = metrics.histogram(
            PLAN_PREP_SECONDS,
            "wall seconds inside prepare_step/refresh_step hooks",
        )
        # pre-bound label children per gate kind: keeps the per-apply
        # recording gap (which lands inside the execute span but outside
        # the timed kernel region) as small as possible
        self._handles = {
            kind: (
                self._applies.labels(backend=self.name, kind=kind),
                self._seconds.labels(backend=self.name, kind=kind),
                self._bytes.labels(backend=self.name, kind=kind),
            )
            for kind in ("1q", "diag", "kq", "controlled")
        }

    @property
    def supports_out(self):
        """Whether the wrapped backend honors the ``out=`` buffer
        convention — dispatch loops double-buffer through the wrapper
        exactly as they would through ``inner`` directly."""
        return bool(getattr(self.inner, "supports_out", False))

    def planned_bytes(self, step, states, nb_qubits):
        """Delegate the byte estimate to ``inner``."""
        return self.inner.planned_bytes(step, states, nb_qubits)

    def prepare_step(self, step, nb_qubits, tables):
        """Timed pass-through to ``inner.prepare_step``, labelled by
        the step's structural kind for per-kind attribution."""
        t0 = perf_counter()
        self.inner.prepare_step(step, nb_qubits, tables)
        self._prep.observe(
            perf_counter() - t0, backend=self.name, stage="prepare",
            kind=step_kind(step),
        )

    def refresh_step(self, step, nb_qubits, tables):
        """Timed pass-through to ``inner.refresh_step``, labelled by
        the step's structural kind for per-kind attribution."""
        t0 = perf_counter()
        self.inner.refresh_step(step, nb_qubits, tables)
        self._prep.observe(
            perf_counter() - t0, backend=self.name, stage="refresh",
            kind=step_kind(step),
        )

    def apply_planned(self, state, step, nb_qubits, out=None):
        """Timed pass-through to ``inner.apply_planned``; forwards
        the scratch buffer only when one was given, so wrapped legacy
        backends keep their three-argument overrides."""
        applies, seconds, nbytes = self._handles[step_kind(step)]
        t0 = perf_counter()
        if out is None:
            res = self.inner.apply_planned(state, step, nb_qubits)
        else:
            res = self.inner.apply_planned(
                state, step, nb_qubits, out=out
            )
        dt = perf_counter() - t0
        applies.inc()
        seconds.observe(dt)
        nbytes.inc(self.inner.planned_bytes(step, res, nb_qubits))
        return res

    def apply_planned_batched(self, states, step, nb_qubits, out=None):
        """Timed pass-through to ``inner.apply_planned_batched``;
        counts one apply per batch row."""
        # one batched call applies the kernel to B trajectories; count
        # B applies so per-shot accounting matches the serial runner
        applies, seconds, nbytes = self._handles[step_kind(step)]
        batch = states.shape[0]
        t0 = perf_counter()
        if out is None:
            res = self.inner.apply_planned_batched(
                states, step, nb_qubits
            )
        else:
            res = self.inner.apply_planned_batched(
                states, step, nb_qubits, out=out
            )
        dt = perf_counter() - t0
        applies.inc(batch)
        seconds.observe(dt)
        nbytes.inc(self.inner.planned_bytes(step, res, nb_qubits))
        return res

    def apply_batched(
        self,
        states,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        """Timed pass-through to ``inner.apply_batched``; counts one
        apply per batch row."""
        applies, seconds, nbytes = self._handles[
            gate_kind(targets, controls, diagonal)
        ]
        batch = states.shape[0]
        t0 = perf_counter()
        out = self.inner.apply_batched(
            states,
            kernel,
            targets,
            nb_qubits,
            controls=controls,
            control_states=control_states,
            diagonal=diagonal,
        )
        dt = perf_counter() - t0
        applies.inc(batch)
        seconds.observe(dt)
        nbytes.inc(2 * out.nbytes)  # unplanned: full-batch streaming
        return out

    def apply(
        self,
        state,
        kernel,
        targets,
        nb_qubits,
        controls=(),
        control_states=(),
        diagonal=False,
    ):
        """Timed pass-through to ``inner.apply``, metering applies,
        kernel seconds and bytes by gate kind."""
        applies, seconds, nbytes = self._handles[
            gate_kind(targets, controls, diagonal)
        ]
        t0 = perf_counter()
        out = self.inner.apply(
            state,
            kernel,
            targets,
            nb_qubits,
            controls=controls,
            control_states=control_states,
            diagonal=diagonal,
        )
        dt = perf_counter() - t0
        applies.inc()
        seconds.observe(dt)
        nbytes.inc(2 * out.nbytes)  # unplanned: full-state streaming
        return out

    def __repr__(self) -> str:
        return f"InstrumentedBackend({self.inner!r})"
