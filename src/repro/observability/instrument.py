"""The ambient :class:`Instrumentation` context.

One :class:`Instrumentation` bundles a tracer and a metrics registry.
The *ambient* instrumentation is held in a :class:`contextvars.ContextVar`
so it flows naturally into nested calls (and into threads started with
a copied context); every instrumented seam in the simulator reads it
through :func:`current_instrumentation` — which returns a shared
disabled singleton when nothing is active, so the uninstrumented cost
is one context-variable lookup at entry points (never per gate).

Two ways to activate it:

* the :func:`instrument` context manager::

      with instrument() as inst:
          circuit.simulate('00')
      print(inst.report())

* per run, through ``SimulationOptions(trace=True, metrics=True)`` —
  the simulation entry points resolve those fields with
  :func:`resolve_instrumentation` and activate the result for the
  duration of the call, attaching it to the returned ``Simulation`` so
  ``Simulation.report()`` works.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Optional

from repro.observability.exporters import ProfileReport
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer

__all__ = [
    "Instrumentation",
    "instrument",
    "current_instrumentation",
    "activate",
    "resolve_instrumentation",
]


class Instrumentation:
    """A tracer + metrics registry pair with a master enable switch.

    ``enabled`` is checked once at each instrumented seam; when it is
    ``False`` both members are inert (the tracer returns no-op spans)
    and nothing ever records.
    """

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ):
        self.enabled = bool(enabled)
        self.tracer = tracer if tracer is not None else Tracer(
            enabled=self.enabled
        )
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )

    def span(self, name: str, **attributes):
        """Open a span on the bundled tracer (no-op when disabled)."""
        return self.tracer.span(name, **attributes)

    def report(self, stats=None) -> ProfileReport:
        """A :class:`~repro.observability.ProfileReport` over the
        recorded spans and metrics."""
        return ProfileReport(self.tracer, self.metrics, stats=stats)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Instrumentation({state}, {len(self.tracer)} span(s))"


#: Shared inert singleton returned when nothing is active.
_DISABLED = Instrumentation(
    tracer=Tracer(enabled=False), metrics=MetricsRegistry(), enabled=False
)

_CURRENT: ContextVar[Instrumentation] = ContextVar(
    "repro_instrumentation", default=_DISABLED
)


def current_instrumentation() -> Instrumentation:
    """The ambient instrumentation (a disabled singleton if none)."""
    return _CURRENT.get()


@contextlib.contextmanager
def activate(inst: Instrumentation):
    """Make ``inst`` ambient for the duration of the ``with`` block.

    Used internally by the simulation entry points; user code normally
    reaches for :func:`instrument` instead.
    """
    token = _CURRENT.set(inst)
    try:
        yield inst
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def instrument(
    trace: bool = True,
    metrics: bool = True,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
):
    """Activate instrumentation for a block and yield it::

        from repro.observability import instrument

        with instrument() as inst:
            simulation = circuit.simulate('00')
        print(inst.report())

    ``trace=False`` records metrics only; ``metrics=True`` always
    allocates a fresh registry unless an explicit ``registry`` is
    given (pass one to accumulate across blocks).
    """
    inst = Instrumentation(
        tracer=tracer if tracer is not None else Tracer(enabled=trace),
        metrics=registry if registry is not None else MetricsRegistry(),
        enabled=bool(trace or metrics or tracer or registry),
    )
    with activate(inst):
        yield inst


def resolve_instrumentation(trace, metrics) -> Instrumentation:
    """Resolve ``SimulationOptions.trace``/``.metrics`` field values.

    ``None``/``False`` for both -> the ambient instrumentation (which
    is the disabled singleton when nothing is active).  Otherwise a
    fresh :class:`Instrumentation` is built: ``True`` allocates a new
    :class:`Tracer`/:class:`MetricsRegistry`, an explicit instance is
    used as-is (so runs can share a registry).
    """
    # explicit None/False checks: a freshly-created (empty) Tracer is
    # falsy through __len__, but passing one still opts in to tracing
    if trace in (None, False) and metrics in (None, False):
        return current_instrumentation()
    if isinstance(trace, Tracer):
        tracer = trace
    else:
        tracer = Tracer(enabled=bool(trace))
    registry = metrics if isinstance(metrics, MetricsRegistry) else None
    return Instrumentation(tracer=tracer, metrics=registry, enabled=True)
