"""Counters, gauges and fixed-bucket histograms in a registry.

The model follows Prometheus conventions (instrument name + label set
-> numeric series) without any dependency: a :class:`MetricsRegistry`
get-or-creates instruments by name, every instrument keeps one value
per label set, and all mutation is lock-protected so concurrent
trajectory shots can record safely.

The canonical instrument names used by the simulation seams live here
as module constants (``GATE_APPLIES``, ``PLAN_CACHE_HITS``, ...) so
exporters, reports and tests agree on spelling.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GATE_APPLIES",
    "KERNEL_SECONDS",
    "KERNEL_BYTES",
    "PLAN_PREP_SECONDS",
    "FUSED_STEPS",
    "PLAN_CACHE_HITS",
    "PLAN_CACHE_MISSES",
    "PARAM_BINDS",
    "SWEEP_POINTS",
    "IR_PASS_RUNS",
    "IR_PIPELINE_CACHE_HITS",
    "IR_PIPELINE_CACHE_MISSES",
    "STATE_BYTES_MAX",
    "RNG_DRAWS",
    "SHOTS_SAMPLED",
    "TRAJECTORIES",
    "MEASUREMENTS",
    "BRANCHES_MAX",
    "BATCHED_SHOTS",
    "BATCH_SIZE",
    "BATCH_WORKERS",
    "CONFORMANCE_CIRCUITS",
    "CONFORMANCE_CHECKS",
    "CONFORMANCE_FAILURES",
    "SERVICE_REQUESTS",
    "SERVICE_LATENCY",
    "SERVICE_QUEUE_DEPTH",
    "SERVICE_INFLIGHT",
    "SERVICE_THROTTLES",
    "SERVICE_TIMEOUTS",
    "SERVICE_RESULT_CACHE_HITS",
    "SERVICE_RESULT_CACHE_MISSES",
]

# -- canonical instrument names ----------------------------------------------

#: Gate-kernel applications, labelled by ``backend`` and ``kind``
#: (``1q`` / ``diag`` / ``kq`` / ``controlled``).
GATE_APPLIES = "repro_gate_applies_total"
#: Wall seconds spent inside backend kernels (same labels).
KERNEL_SECONDS = "repro_kernel_seconds"
#: Approximate bytes read+written by backend kernels (same labels).
KERNEL_BYTES = "repro_kernel_bytes_total"
#: Wall seconds spent in backend ``prepare_step``/``refresh_step``
#: hooks, labelled by ``backend`` and ``stage``.
PLAN_PREP_SECONDS = "repro_plan_prepare_seconds"
#: Source gates merged away by plan fusion, labelled by ``kind``.
FUSED_STEPS = "repro_fused_steps_total"
#: Plan-cache hits / misses observed by instrumented runs.
PLAN_CACHE_HITS = "repro_plan_cache_hits_total"
PLAN_CACHE_MISSES = "repro_plan_cache_misses_total"
#: Parameter-binding passes over compiled plans (one per ``bind``).
PARAM_BINDS = "repro_param_binds_total"
#: Parameter points executed through vectorized ``sweep`` runs.
SWEEP_POINTS = "repro_sweep_points_total"
#: IR pass executions, labelled by ``pass`` name.
IR_PASS_RUNS = "repro_ir_pass_runs_total"
#: Per-circuit IR pass-pipeline cache hits / misses.
IR_PIPELINE_CACHE_HITS = "repro_ir_pipeline_cache_hits_total"
IR_PIPELINE_CACHE_MISSES = "repro_ir_pipeline_cache_misses_total"
#: High-water mark of statevector bytes live across branches.
STATE_BYTES_MAX = "repro_statevector_bytes_max"
#: Random draws consumed (trajectory Kraus/measurement sampling, shots).
RNG_DRAWS = "repro_rng_draws_total"
#: Shots sampled through ``counts``/``counts_dict``/``noisy_counts``.
SHOTS_SAMPLED = "repro_shots_sampled_total"
#: Monte-Carlo trajectories executed.
TRAJECTORIES = "repro_trajectories_total"
#: Measurement/reset collapses performed, labelled by ``kind``.
MEASUREMENTS = "repro_measurements_total"
#: High-water mark of simultaneous measurement branches.
BRANCHES_MAX = "repro_branches_max"
#: Shots executed through the batched trajectory engine.
BATCHED_SHOTS = "repro_batched_shots_total"
#: High-water mark of the trajectory batch size in use.
BATCH_SIZE = "repro_batch_size"
#: High-water mark of the worker-process fan-out in use.
BATCH_WORKERS = "repro_batch_workers"
#: Circuits generated and oracled by the conformance harness.
CONFORMANCE_CIRCUITS = "repro_conformance_circuits_total"
#: Conformance check groups executed, labelled by ``check`` family.
CONFORMANCE_CHECKS = "repro_conformance_checks_total"
#: Conformance failures detected, labelled by ``check`` name.
CONFORMANCE_FAILURES = "repro_conformance_failures_total"
#: Service gateway requests, labelled by ``route`` and ``status``.
SERVICE_REQUESTS = "repro_service_requests_total"
#: End-to-end service request wall seconds, labelled by ``route``.
SERVICE_LATENCY = "repro_service_request_seconds"
#: Current depth of the gateway's bounded submission queue.
SERVICE_QUEUE_DEPTH = "repro_service_queue_depth"
#: Requests currently executing on gateway workers.
SERVICE_INFLIGHT = "repro_service_inflight"
#: Requests rejected by quota or backpressure, labelled by ``reason``.
SERVICE_THROTTLES = "repro_service_throttles_total"
#: Requests cancelled because they overran their deadline.
SERVICE_TIMEOUTS = "repro_service_timeouts_total"
#: Service result-cache hits / misses.
SERVICE_RESULT_CACHE_HITS = "repro_service_result_cache_hits_total"
SERVICE_RESULT_CACHE_MISSES = "repro_service_result_cache_misses_total"

#: Default histogram bucket upper bounds (seconds): 1 us .. 10 s.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def _label_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared name/help/label bookkeeping for all instrument types."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[tuple, object] = {}

    def labelsets(self) -> List[dict]:
        """Recorded label sets, as plain dicts."""
        with self._lock:
            return [dict(k) for k in self._series]


class _BoundCounter:
    """A :class:`Counter` child with its label key pre-resolved.

    Hot paths (per-gate recording) use this to skip the label sort and
    keyword plumbing of :meth:`Counter.inc`.
    """

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: tuple):
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        counter = self._counter
        with counter._lock:
            counter._series[self._key] = (
                counter._series.get(self._key, 0.0) + amount
            )


class Counter(_Instrument):
    """Monotonically increasing per-labelset totals."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def labels(self, **labels) -> _BoundCounter:
        """A bound child for repeated increments of one label set."""
        return _BoundCounter(self, _label_key(labels))

    def value(self, **labels) -> float:
        """Current total of the labelled series (0.0 if never hit)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return float(sum(self._series.values()))


class Gauge(_Instrument):
    """Last-write-wins values, with a high-water-mark helper."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def set_max(self, value: float, **labels) -> None:
        """Raise the labelled series to ``value`` if it is larger."""
        key = _label_key(labels)
        with self._lock:
            cur = self._series.get(key)
            if cur is None or value > cur:
                self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of the labelled series (0.0 if never set)."""
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))


class _BoundHistogram:
    """A :class:`Histogram` child with its label key pre-resolved."""

    __slots__ = ("_hist", "_key")

    def __init__(self, hist: "Histogram", key: tuple):
        self._hist = hist
        self._key = key

    def observe(self, value: float) -> None:
        hist = self._hist
        idx = bisect_left(hist.buckets, value)
        with hist._lock:
            series = hist._series.get(self._key)
            if series is None:
                series = hist._series[self._key] = (
                    [0] * (len(hist.buckets) + 1), 0.0, 0,
                )
            counts, total, n = series
            counts[idx] += 1
            hist._series[self._key] = (counts, total + value, n + 1)


class Histogram(_Instrument):
    """Fixed-bucket histogram: cumulative counts, sum and count.

    ``buckets`` are ascending upper bounds; an implicit ``+Inf`` bucket
    catches the rest (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(self, name, help="", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled series."""
        key = _label_key(labels)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                # [per-bucket counts..., +Inf count, sum, count]
                series = self._series[key] = (
                    [0] * (len(self.buckets) + 1), 0.0, 0,
                )
            counts, total, n = series
            counts[idx] += 1
            self._series[key] = (counts, total + value, n + 1)

    def sum(self, **labels) -> float:
        """Sum of observations of the labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return float(series[1]) if series else 0.0

    def count(self, **labels) -> int:
        """Number of observations of the labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return int(series[2]) if series else 0

    def bucket_counts(self, **labels) -> List[int]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` last."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return [0] * (len(self.buckets) + 1)
            return list(series[0])

    def labels(self, **labels) -> _BoundHistogram:
        """A bound child for repeated observations of one label set."""
        return _BoundHistogram(self, _label_key(labels))

    def total_sum(self) -> float:
        """Sum of observations over every label set."""
        with self._lock:
            return float(sum(s[1] for s in self._series.values()))


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Re-requesting a name returns the existing instrument; asking for it
    as a different type raises.  ``snapshot()`` flattens everything into
    plain dicts for export.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, cls, name, help, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name, help, **kwargs)
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the named :class:`Histogram`."""
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        """The named instrument, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> List[_Instrument]:
        """All instruments, sorted by name."""
        with self._lock:
            return sorted(
                self._instruments.values(), key=lambda i: i.name
            )

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> dict:
        """Plain-dict dump: ``{name: {kind, help, series: [...]}}``.

        Histogram series carry ``buckets``/``counts``/``sum``/``count``;
        counter and gauge series carry ``value``.
        """
        out = {}
        for inst in self.instruments():
            series = []
            if isinstance(inst, Histogram):
                for labels in inst.labelsets():
                    series.append(
                        {
                            "labels": labels,
                            "buckets": list(inst.buckets),
                            "counts": inst.bucket_counts(**labels),
                            "sum": inst.sum(**labels),
                            "count": inst.count(**labels),
                        }
                    )
            else:
                for labels in inst.labelsets():
                    series.append(
                        {"labels": labels, "value": inst.value(**labels)}
                    )
            out[inst.name] = {
                "kind": inst.kind,
                "help": inst.help,
                "series": series,
            }
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self.instruments())} instrument(s))"
