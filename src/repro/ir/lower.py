"""The one circuit-tree lowering path.

:func:`iter_elements` is the **only** walker over a
:class:`~repro.circuit.QCircuit`'s nested op tree in the package; every
consumer — plan compilation, transforms, layout/draw/LaTeX, QASM
export, serialization — reaches the flattened stream through it (most
via :func:`lower`, which adds typed :class:`~repro.ir.IROp` records and
a per-revision cache).

Three expansion modes cover every historical walker:

``expand='all'``
    Recurse into every nested circuit; absolute qubits for simulation,
    transforms and QASM export (what ``QCircuit.operations()`` yields).
``expand='blocks'``
    Recurse into nested circuits *except* those marked
    :meth:`~repro.circuit.QCircuit.asBlock`, which stay whole — the
    drawer and LaTeX exporter render them as labelled boxes.
``expand='none'``
    Yield only the circuit's direct children (the serializer's
    structure-preserving view).

Offset convention: a yielded ``(op, offset)`` pair means "``op``'s own
qubits shift up by ``offset``".  A non-expanded sub-circuit is yielded
with the *enclosing* accumulated offset only, because its own
``offset`` is part of its qubit coordinates already.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.circuit.barrier import Barrier
from repro.circuit.circuit import QCircuit
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.gates.base import QGate
from repro.ir.program import (
    BARRIER,
    BLOCK,
    GATE,
    MEASURE,
    RESET,
    IRError,
    IROp,
    IRProgram,
)

__all__ = ["iter_elements", "lower", "make_ir_op", "clear_lowering_cache"]

_MODES = ("all", "blocks", "none")


def iter_elements(
    circuit: QCircuit, expand: str = "all", base_offset: int = 0
) -> Iterator[Tuple[object, int]]:
    """Yield ``(op, total_offset)`` pairs from the circuit tree.

    The total offset accumulates this circuit's own offset with every
    enclosing circuit's.  See the module docstring for the three
    ``expand`` modes.
    """
    if expand not in _MODES:
        raise IRError(
            f"unknown expand mode {expand!r}; expected one of {_MODES}"
        )
    off = base_offset + circuit.offset
    for op in circuit:
        if isinstance(op, QCircuit) and (
            expand == "all" or (expand == "blocks" and not op.is_block)
        ):
            yield from iter_elements(op, expand, off)
        else:
            yield op, off


def make_ir_op(op, offset: int) -> IROp:
    """Build the typed :class:`IROp` record for one flattened element."""
    if isinstance(op, QGate):
        return IROp(
            GATE,
            op,
            offset,
            qubits=tuple(q + offset for q in op.qubits),
            targets=tuple(q + offset for q in op.target_qubits()),
            controls=tuple(q + offset for q in op.controls()),
            control_states=tuple(int(s) for s in op.control_states()),
        )
    if isinstance(op, Measurement):
        q = (op.qubit + offset,)
        return IROp(MEASURE, op, offset, qubits=q, targets=q)
    if isinstance(op, Reset):
        q = (op.qubit + offset,)
        return IROp(RESET, op, offset, qubits=q, targets=q)
    if isinstance(op, Barrier):
        qs = tuple(q + offset for q in op.qubits)
        return IROp(BARRIER, op, offset, qubits=qs, targets=qs)
    if isinstance(op, QCircuit):
        qs = tuple(q + offset for q in op.qubits)
        return IROp(BLOCK, op, offset, qubits=qs, targets=qs)
    raise IRError(
        f"cannot lower circuit element {type(op).__name__}"
    )


def _collect(circuit: QCircuit, expand: str, base_offset: int):
    """Lower eagerly, recording nested-circuit revision dependencies."""
    ops = []
    deps = []

    def walk(c, base):
        off = base + c.offset
        for op in c:
            if isinstance(op, QCircuit) and (
                expand == "all"
                or (expand == "blocks" and not op.is_block)
            ):
                deps.append((op, op.revision))
                walk(op, off)
            else:
                if isinstance(op, QCircuit):
                    # kept whole, but content edits must still
                    # invalidate the parent's cached lowering
                    deps.append((op, op.revision))
                ops.append(make_ir_op(op, off))

    walk(circuit, base_offset)
    return tuple(ops), tuple(deps)


def lower(
    circuit: QCircuit, expand: str = "all", base_offset: int = 0
) -> IRProgram:
    """Lower a circuit into an :class:`IRProgram`, cached per revision.

    The cache key is the circuit's :attr:`~repro.circuit.QCircuit.revision`
    counter plus the revision of every nested sub-circuit, so structural
    edits anywhere in the tree invalidate the cached lowering while
    repeated lowerings of an unchanged circuit are free.  Gate
    *parameter* mutations do not bump revisions and do not need to:
    IR ops read kernels and parameters through their source-op
    back-pointers.  Only ``base_offset == 0`` lowerings are cached.
    """
    if expand not in _MODES:
        raise IRError(
            f"unknown expand mode {expand!r}; expected one of {_MODES}"
        )
    if base_offset != 0:
        ops, _deps = _collect(circuit, expand, base_offset)
        return IRProgram(circuit.nbQubits, ops)

    cache = getattr(circuit, "_ir_lower_cache", None)
    if cache is not None:
        entry = cache.get(expand)
        if entry is not None:
            rev, deps, program = entry
            if rev == circuit.revision and all(
                c.revision == r for c, r in deps
            ):
                return program

    ops, deps = _collect(circuit, expand, 0)
    program = IRProgram(circuit.nbQubits, ops)
    if cache is None:
        cache = {}
        try:
            circuit._ir_lower_cache = cache
        except AttributeError:  # exotic QCircuit subclass with slots
            return program
    cache[expand] = (circuit.revision, deps, program)
    return program


def clear_lowering_cache(circuit: QCircuit) -> None:
    """Drop any cached lowerings attached to ``circuit``."""
    if getattr(circuit, "_ir_lower_cache", None) is not None:
        circuit._ir_lower_cache = None
