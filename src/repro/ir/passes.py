"""IR passes and the :class:`PassManager` pipeline.

A *pass* maps an :class:`~repro.ir.IRProgram` to a new program.  The
built-in registry mirrors (and now backs) the historical
:mod:`repro.transforms` peephole optimizer:

``flatten``
    Expand ``BLOCK`` ops (sub-circuits kept whole by a
    ``expand='blocks'`` lowering) into their contents.
``fuse_rotations``
    Merge adjacent same-axis rotation/phase gates on the stable
    ``(cos, sin)`` representation.
``cancel_inverses``
    Drop adjacent gate pairs whose product is the identity.
``fuse_1q`` (alias ``merge_single_qubit_runs``)
    Collapse adjacent one-qubit gates into a single ``U3``.
``coalesce_diagonals``
    Merge runs of diagonal gates into one diagonal
    :class:`~repro.gates.MatrixGate` while the qubit union stays small.
``inject_noise``
    Attach :class:`~repro.noise.NoiseChannel` refs from a
    :class:`~repro.noise.NoiseModel` to each gate op (consumed by the
    trajectory runner).

Adjacency uses the same dataflow rule as the historical transforms:
two ops may combine only when every qubit of the later one last saw
the earlier one — measurements, resets, barriers and blocks are opaque
"last touchers" nothing combines across.

:class:`PassManager` runs an ordered pipeline with an observability
span per pass, plus a per-circuit pipeline cache validated by the
program's structural signature (lowering itself is cached by the
circuit revision counter, see :func:`repro.ir.lower.lower`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import GateError
from repro.gates.base import QGate, controlled_matrix
from repro.gates.parametric import Phase, RotationGate1, RotationGate2
from repro.ir.lower import lower, make_ir_op
from repro.ir.program import BLOCK, GATE, IRError, IROp, IRProgram
from repro.observability.instrument import current_instrumentation
from repro.observability.metrics import (
    IR_PASS_RUNS,
    IR_PIPELINE_CACHE_HITS,
    IR_PIPELINE_CACHE_MISSES,
)
from repro.utils.linalg import expand_diag

__all__ = [
    "PassManager",
    "available_passes",
    "register_pass",
    "flatten_blocks",
    "fuse_rotations",
    "cancel_inverses",
    "merge_single_qubit_runs",
    "coalesce_diagonals",
    "InjectNoise",
]

#: Diagonal runs are coalesced while their qubit union stays this small.
MAX_DIAG_COALESCE_QUBITS = 4


# -- the adjacency engine ----------------------------------------------------


def _adjacent_pairs(program: IRProgram, combine, pass_name: str) -> IRProgram:
    """Shared engine: walk the op stream tracking, per qubit, the last
    op touching it; ``combine(prev, cur)`` (both :class:`IROp` gate
    records on identical absolute qubit tuples) may return a
    replacement list of new ``QObject`` s at absolute qubits."""
    ops: List[Optional[IROp]] = []
    last_touch: dict = {}  # absolute qubit -> index into ops

    for irop in program.ops:
        qubits = irop.qubits
        merged = False
        if irop.kind == GATE:
            prev_indices = {last_touch.get(q) for q in qubits}
            if len(prev_indices) == 1 and None not in prev_indices:
                (idx,) = prev_indices
                prev = ops[idx]
                if (
                    prev is not None
                    and prev.kind == GATE
                    and prev.qubits == qubits
                ):
                    replacement = combine(prev, irop)
                    if replacement is not None:
                        ops[idx] = None
                        for q in qubits:
                            last_touch.pop(q, None)
                        for new_op in replacement:
                            new_ir = make_ir_op(new_op, 0)
                            ops.append(new_ir)
                            for q in new_ir.qubits:
                                last_touch[q] = len(ops) - 1
                        merged = True
        if not merged:
            ops.append(irop)
            for q in qubits:
                last_touch[q] = len(ops) - 1

    return program.replace_ops(
        [op for op in ops if op is not None], pass_name
    )


# -- built-in passes ---------------------------------------------------------


def flatten_blocks(program: IRProgram) -> IRProgram:
    """Expand ``BLOCK`` ops into their flattened contents."""
    if not any(irop.kind == BLOCK for irop in program.ops):
        return program.replace_ops(program.ops, "flatten")
    ops: List[IROp] = []
    for irop in program.ops:
        if irop.kind == BLOCK:
            ops.extend(lower(irop.op, base_offset=irop.offset).ops)
        else:
            ops.append(irop)
    return program.replace_ops(ops, "flatten")


def _fuse_rotations_combine(drop_identity: bool = True):
    """The ``fuse_rotations`` combine rule, parameterized on whether
    fused identity-angle gates are dropped."""

    def combine(prev: IROp, cur: IROp):
        fusable = (RotationGate1, RotationGate2, Phase)
        if not isinstance(prev.op, fusable) or type(prev.op) is not type(
            cur.op
        ):
            return None
        fused = prev.shifted_op()  # fresh absolute copy; fuse mutates
        try:
            fused.fuse(cur.shifted_op())
        except GateError:
            # symbolic rotations over *distinct* parameter slots have no
            # single-slot affine sum; leave the pair untouched
            return None
        if drop_identity and _is_identity_rotation(fused):
            return []
        return [fused]

    return combine


def fuse_rotations(program: IRProgram) -> IRProgram:
    """Merge adjacent same-axis rotation/phase gates stably.

    ``RX(a) RX(b) -> RX(a+b)`` (likewise RY/RZ/RXX/RYY/RZZ/Phase), with
    the sum evaluated on the ``(cos, sin)`` representation.  Fused
    gates whose angle becomes the identity are dropped.
    """
    return _adjacent_pairs(
        program, _fuse_rotations_combine(), "fuse_rotations"
    )


def _is_identity_rotation(gate) -> bool:
    if not gate.is_bound:
        # a symbolic angle has no value; never drop the gate
        return False
    if isinstance(gate, Phase):
        a = gate.angle
        return abs(a.cos - 1.0) < 1e-14 and abs(a.sin) < 1e-14
    rot = gate.rotation
    return abs(rot.cos - 1.0) < 1e-14 and abs(rot.sin) < 1e-14


def cancel_inverses(program: IRProgram) -> IRProgram:
    """Remove adjacent gate pairs whose product is the identity.

    Covers self-inverse gates (H, X, CNOT, SWAP, ...) and explicit
    inverse pairs (S/S†, T/T†, any gates whose matrices multiply to I).
    Only small gates (up to 3 qubits) are checked, by dense product.
    """

    def combine(prev: IROp, cur: IROp):
        if not isinstance(prev.op, QGate) or not isinstance(cur.op, QGate):
            return None
        if not (prev.is_bound and cur.is_bound):
            return None  # unbound slots have no matrix to multiply
        if prev.op.nbQubits > 3:
            return None
        product = cur.op.matrix @ prev.op.matrix
        if np.allclose(product, np.eye(product.shape[0]), atol=1e-12):
            return []
        return None

    return _adjacent_pairs(program, combine, "cancel_inverses")


def merge_single_qubit_runs(program: IRProgram) -> IRProgram:
    """Collapse adjacent one-qubit gates into a single ``U3``.

    The run's product is re-synthesized through the numerically robust
    ZYZ extraction of :func:`repro.io.qasm_export.u3_params`; the
    global phase is dropped (unobservable for an uncontrolled gate).
    Runs that multiply to the identity disappear entirely.
    """
    from repro.gates import U3
    from repro.io.qasm_export import u3_params

    def combine(prev: IROp, cur: IROp):
        if not (
            isinstance(prev.op, QGate)
            and isinstance(cur.op, QGate)
            and prev.op.nbQubits == 1
            and cur.op.nbQubits == 1
        ):
            return None
        if not (prev.is_bound and cur.is_bound):
            return None  # a symbolic rotation cannot collapse into U3
        product = cur.op.matrix @ prev.op.matrix
        theta, phi, lam, _alpha = u3_params(product)
        wrapped = (phi + lam) % (2 * np.pi)
        if abs(theta) < 1e-14 and min(wrapped, 2 * np.pi - wrapped) < 1e-12:
            return []
        return [U3(cur.qubits[0], theta, phi, lam)]

    return _adjacent_pairs(program, combine, "fuse_1q")


def _op_diag(irop: IROp):
    """``(absolute qubits, diagonal)`` of a diagonal gate op, with
    controls folded in (a controlled diagonal kernel is itself diagonal
    on the control+target union)."""
    kernel = irop.kernel()
    if not irop.controls:
        return irop.targets, np.ascontiguousarray(np.diag(kernel))
    qubits_all = tuple(sorted(irop.targets + irop.controls))
    full = controlled_matrix(
        kernel, qubits_all, list(irop.controls),
        list(irop.control_states), list(irop.targets),
    )
    return qubits_all, np.ascontiguousarray(np.diag(full))


def coalesce_diagonals(program: IRProgram) -> IRProgram:
    """Merge runs of diagonal gates into single diagonal
    :class:`~repro.gates.MatrixGate` s.

    Diagonal gates commute with each other and with any gate on
    disjoint qubits, so a run may extend past disjoint non-diagonal
    gates; it is flushed by measurements, resets, barriers, blocks, or
    a non-diagonal gate sharing a qubit.  Runs merge only while the
    qubit union stays within ``MAX_DIAG_COALESCE_QUBITS``.
    """
    from repro.gates import MatrixGate

    ops: List[IROp] = []
    pending: List[IROp] = []
    pending_qubits: set = set()

    def flush():
        nonlocal pending, pending_qubits
        if len(pending) < 2:
            ops.extend(pending)
        else:
            union = tuple(sorted(pending_qubits))
            diag = np.ones(1 << len(union), dtype=np.complex128)
            for irop in pending:
                qs, d = _op_diag(irop)
                diag = diag * expand_diag(d, qs, union, np.complex128)
            merged = MatrixGate(union, np.diag(diag), label="D")
            ops.append(make_ir_op(merged, 0))
        pending = []
        pending_qubits = set()

    for irop in program.ops:
        if irop.kind == GATE and irop.is_diagonal and irop.is_bound:
            union = pending_qubits | set(irop.qubits)
            if len(union) > MAX_DIAG_COALESCE_QUBITS:
                flush()
                union = set(irop.qubits)
            pending.append(irop)
            pending_qubits = union
            continue
        if (
            irop.kind == GATE
            and pending
            and not (set(irop.qubits) & pending_qubits)
        ):
            # disjoint non-diagonal gate: the pending diagonals commute
            # past it, so emit it now and keep the run open
            ops.append(irop)
            continue
        flush()
        ops.append(irop)
    flush()
    return program.replace_ops(ops, "coalesce_diagonals")


class InjectNoise:
    """Attach per-gate noise channels from a
    :class:`~repro.noise.NoiseModel` to the program's gate ops.

    Produces a program whose gate :class:`IROp` s carry
    ``channel`` refs (``None`` when the model assigns no or identity
    noise); the trajectory runner samples one Kraus operator per
    noisy qubit after applying each such gate.
    """

    name = "inject_noise"

    def __init__(self, model):
        self.model = model

    def __call__(self, program: IRProgram) -> IRProgram:
        model = self.model
        ops = []
        changed = False
        for irop in program.ops:
            channel = (
                model.channel_for(irop.op) if irop.kind == GATE else None
            )
            if channel is not None and channel.is_identity:
                channel = None
            if channel is None:
                ops.append(irop)
                continue
            changed = True
            ops.append(
                IROp(
                    irop.kind, irop.op, irop.offset, irop.qubits,
                    irop.targets, irop.controls, irop.control_states,
                    condition=irop.condition, channel=channel,
                )
            )
        if not changed:
            return program.replace_ops(program.ops, self.name)
        return program.replace_ops(ops, self.name)


# -- registry and manager -----------------------------------------------------

_REGISTRY: Dict[str, Callable[[IRProgram], IRProgram]] = {}


def register_pass(name: str, fn: Callable[[IRProgram], IRProgram]) -> None:
    """Register a named pass for :class:`PassManager` pipelines."""
    _REGISTRY[str(name)] = fn


def available_passes() -> tuple:
    """Sorted names of all registered passes."""
    return tuple(sorted(_REGISTRY))


register_pass("flatten", flatten_blocks)
register_pass("fuse_rotations", fuse_rotations)
register_pass("cancel_inverses", cancel_inverses)
register_pass("fuse_1q", merge_single_qubit_runs)
register_pass("merge_single_qubit_runs", merge_single_qubit_runs)
register_pass("coalesce_diagonals", coalesce_diagonals)


class PassManager:
    """An ordered, named pass pipeline over :class:`IRProgram` s.

    Parameters
    ----------
    passes:
        A sequence of registry names (``'fuse_rotations'``), pass
        instances with a ``name`` attribute (:class:`InjectNoise`), or
        bare callables.

    :meth:`run` applies the pipeline to a program, recording an
    ``ir.pipeline`` span with one nested ``ir.pass.<name>`` span per
    pass when instrumentation is ambient.  :meth:`run_on` lowers a
    circuit first and memoizes the pipeline result on the circuit,
    validated by the program's structural signature (so gate parameter
    mutations — which never bump the revision counter — still
    invalidate correctly).
    """

    def __init__(self, passes=()):
        self._passes = []
        for p in passes:
            if isinstance(p, str):
                if p not in _REGISTRY:
                    raise IRError(
                        f"unknown pass {p!r}; available: "
                        f"{list(available_passes())}"
                    )
                self._passes.append((p, _REGISTRY[p]))
            elif callable(p):
                self._passes.append(
                    (getattr(p, "name", getattr(p, "__name__", "pass")), p)
                )
            else:
                raise IRError(
                    f"pass must be a registry name or callable, got "
                    f"{type(p).__name__}"
                )

    @property
    def pass_names(self) -> tuple:
        """Names of the pipeline's passes, in run order."""
        return tuple(name for name, _fn in self._passes)

    def _cache_key(self):
        """Pipeline identity for the per-circuit cache; ``None`` when
        any stage is an anonymous callable (uncacheable)."""
        parts = []
        for name, fn in self._passes:
            if fn in _REGISTRY.values():
                parts.append(name)
            else:
                # parameterized/anonymous stages (InjectNoise, ad-hoc
                # callables) are uncacheable: their identity says
                # nothing about their output and their parameters may
                # mutate between runs
                return None
        return tuple(parts)

    def run(self, program: IRProgram) -> IRProgram:
        """Apply every pass in order and return the final program."""
        inst = current_instrumentation()
        if not inst.enabled:
            for _name, fn in self._passes:
                program = fn(program)
            return program
        runs = inst.metrics.counter(
            IR_PASS_RUNS, "IR pass executions"
        )
        with inst.span(
            "ir.pipeline", passes=list(self.pass_names)
        ) as sp:
            nb_in = len(program)
            for name, fn in self._passes:
                with inst.span("ir.pass." + name, ops_in=len(program)) as p:
                    program = fn(program)
                    p.set(ops_out=len(program))
                runs.inc(**{"pass": name})
            sp.set(ops_in=nb_in, ops_out=len(program))
            return program

    def run_on(self, circuit, expand: str = "all") -> IRProgram:
        """Lower ``circuit`` and run the pipeline, with caching.

        The result is memoized on the circuit keyed by the pipeline
        identity; a cached entry is reused only when the freshly
        lowered program's structural signature still matches (the
        lowering itself is revision-cached, so an unchanged circuit
        costs one signature walk)."""
        program = lower(circuit, expand)
        key = self._cache_key()
        if key is None:
            return self.run(program)
        key = (key, expand)
        sig = program.signature()
        inst = current_instrumentation()
        cache = getattr(circuit, "_ir_pipeline_cache", None)
        if cache is not None:
            entry = cache.get(key)
            if entry is not None and entry[0] == sig:
                if inst.enabled:
                    inst.metrics.counter(
                        IR_PIPELINE_CACHE_HITS, "IR pipeline cache hits"
                    ).inc()
                return entry[1]
        if inst.enabled:
            inst.metrics.counter(
                IR_PIPELINE_CACHE_MISSES, "IR pipeline cache misses"
            ).inc()
        result = self.run(program)
        if cache is None:
            cache = {}
            try:
                circuit._ir_pipeline_cache = cache
            except AttributeError:
                return result
        cache[key] = (sig, result)
        return result

    def __repr__(self) -> str:
        return f"PassManager({list(self.pass_names)!r})"
