"""Canonical circuit IR: one lowering path for every consumer.

This package holds the single implementation of circuit-tree lowering
(:mod:`repro.ir.lower`), the typed flattened program it produces
(:mod:`repro.ir.program`) and the pass pipeline that transforms it
(:mod:`repro.ir.passes`).  Plan compilation, transforms, the drawer,
the LaTeX/QASM exporters and the serializer all consume circuits
through here; see README's Architecture section for the diagram.
"""

from repro.ir.lower import (
    clear_lowering_cache,
    iter_elements,
    lower,
    make_ir_op,
)
from repro.ir.passes import (
    InjectNoise,
    PassManager,
    available_passes,
    register_pass,
)
from repro.ir.program import (
    BARRIER,
    BLOCK,
    GATE,
    KIND_NAMES,
    MEASURE,
    RESET,
    IRError,
    IROp,
    IRProgram,
)

__all__ = [
    "GATE",
    "MEASURE",
    "RESET",
    "BARRIER",
    "BLOCK",
    "KIND_NAMES",
    "IRError",
    "IROp",
    "IRProgram",
    "iter_elements",
    "lower",
    "make_ir_op",
    "clear_lowering_cache",
    "PassManager",
    "InjectNoise",
    "available_passes",
    "register_pass",
]
