"""The canonical circuit IR: a typed, flattened op stream.

Historically every consumer of a :class:`~repro.circuit.QCircuit` —
the compiled-plan layer, the transforms, the drawer/LaTeX layout, the
serializer and the QASM exporters — walked the nested op tree itself,
each re-implementing qubit-offset accumulation and block handling.
This module defines the one shared representation those walkers now
lower into:

:class:`IROp`
    One flattened circuit element with its **absolute** qubits
    resolved: kind tag, target/control qubits, control states,
    classical-condition and noise-channel metadata slots, and a
    back-pointer to the source :class:`~repro.gates.base.QObject`
    (kernels and parameters are always read *through* the back-pointer,
    so an IR program never goes stale when a gate parameter mutates).

:class:`IRProgram`
    An immutable sequence of :class:`IROp` records for one register
    width, carrying the list of pass names that produced it.

Lowering lives in :mod:`repro.ir.lower`; the pass pipeline in
:mod:`repro.ir.passes`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import QCLabError

__all__ = [
    "GATE",
    "MEASURE",
    "RESET",
    "BARRIER",
    "BLOCK",
    "KIND_NAMES",
    "IRError",
    "IROp",
    "IRProgram",
]

#: IR op kinds.  ``GATE``/``MEASURE``/``RESET`` match the plan-step
#: kind values so the plan compiler can translate without a mapping.
GATE, MEASURE, RESET, BARRIER, BLOCK = 0, 1, 2, 3, 4

KIND_NAMES = {
    GATE: "gate",
    MEASURE: "measure",
    RESET: "reset",
    BARRIER: "barrier",
    BLOCK: "block",
}


class IRError(QCLabError):
    """A failure while lowering or transforming the circuit IR."""


class IROp:
    """One element of an :class:`IRProgram` on absolute qubits.

    Attributes
    ----------
    kind:
        ``GATE``, ``MEASURE``, ``RESET``, ``BARRIER`` or ``BLOCK``
        (a sub-circuit kept whole for drawing).
    op:
        Back-pointer to the source :class:`~repro.gates.base.QObject`
        (or sub-:class:`~repro.circuit.QCircuit` for ``BLOCK``).
    offset:
        The accumulated absolute offset of the enclosing circuits; the
        source op's own (relative) qubits plus ``offset`` give the
        absolute indices below.
    qubits:
        All absolute qubits the op acts on, ascending.
    targets / controls / control_states:
        The controlled-structure decomposition on absolute qubits
        (empty controls for plain gates; targets == qubits for
        non-gate kinds).
    condition:
        Classical-condition metadata (reserved: OpenQASM ``if`` is not
        yet importable, but backend lowering passes key off this slot).
    channel:
        Noise-channel attached by the ``inject_noise`` pass; ``None``
        on freshly lowered programs.
    """

    __slots__ = (
        "kind", "op", "offset", "qubits", "targets", "controls",
        "control_states", "condition", "channel",
    )

    def __init__(
        self,
        kind: int,
        op,
        offset: int,
        qubits: tuple,
        targets: tuple = (),
        controls: tuple = (),
        control_states: tuple = (),
        condition=None,
        channel=None,
    ):
        self.kind = kind
        self.op = op
        self.offset = offset
        self.qubits = qubits
        self.targets = targets
        self.controls = controls
        self.control_states = control_states
        self.condition = condition
        self.channel = channel

    # -- views through the back-pointer --------------------------------------

    @property
    def qubit(self) -> int:
        """The first (lowest) absolute qubit."""
        return self.qubits[0]

    @property
    def is_diagonal(self) -> bool:
        """Whether a gate op's kernel is diagonal (``False`` otherwise)."""
        return self.kind == GATE and bool(self.op.is_diagonal)

    @property
    def is_bound(self) -> bool:
        """``False`` only for gate ops holding an unresolved
        :class:`~repro.parameter.Parameter` slot."""
        if self.kind != GATE:
            return True
        return bool(getattr(self.op, "is_bound", True))

    @property
    def parameter_expression(self):
        """The op's :class:`~repro.parameter.ParameterExpression`
        (``None`` for concrete ops and non-gate kinds)."""
        if self.kind != GATE:
            return None
        return getattr(self.op, "parameter_expression", None)

    def kernel(self, dtype=np.complex128) -> np.ndarray:
        """The gate's target kernel cast to ``dtype`` (gates only)."""
        if self.kind != GATE:
            raise IRError(
                f"{KIND_NAMES[self.kind]} ops have no kernel"
            )
        return np.asarray(self.op.target_matrix(), dtype=dtype)

    def shifted_op(self):
        """A detached copy of the source op on absolute qubits."""
        return self.op.shifted(self.offset)

    def signature(self) -> tuple:
        """Structural identity of this op at its absolute position.

        Mirrors the contract of :meth:`repro.gates.base.QGate.signature`:
        equal signatures imply identical simulation semantics, so the
        plan cache and the pass-pipeline cache key off the per-op
        signatures (parameter mutations change them)."""
        from repro.circuit.measurement import Measurement

        op, off = self.op, self.offset
        if self.kind == GATE:
            return op.signature(off)
        if self.kind == MEASURE:
            extra = (
                op.basis_change.tobytes() if op.basis == "custom" else None
            )
            return ("measure", op.qubit + off, op.basis, extra)
        if self.kind == RESET:
            return ("reset", op.qubit + off, bool(op.record))
        if self.kind == BARRIER:
            return ("barrier",) + self.qubits
        # BLOCK: identity is the block's own flattened content
        from repro.ir.lower import lower

        return ("block", self.qubits, op.block_label) + tuple(
            sub.signature()
            for sub in lower(op, base_offset=self.offset)
        )

    def __repr__(self) -> str:
        name = KIND_NAMES.get(self.kind, "?")
        src = type(self.op).__name__
        return f"IROp({name} {src} on {self.qubits})"


class IRProgram:
    """A lowered circuit: register width + ordered :class:`IROp` s.

    Programs are immutable; passes produce new programs via
    :meth:`replace_ops`.  ``passes`` records the pipeline that produced
    this program (``()`` for a raw lowering).
    """

    __slots__ = (
        "nb_qubits", "ops", "passes", "_signature_cache",
        "_parameters_cache",
    )

    def __init__(
        self,
        nb_qubits: int,
        ops: tuple,
        passes: tuple = (),
    ):
        self.nb_qubits = int(nb_qubits)
        self.ops = tuple(ops)
        self.passes = tuple(passes)
        self._signature_cache = None
        self._parameters_cache = None

    def __iter__(self) -> Iterator[IROp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, index):
        return self.ops[index]

    def flat(self) -> Iterator[Tuple[object, int]]:
        """The legacy ``(source op, absolute offset)`` view."""
        return ((irop.op, irop.offset) for irop in self.ops)

    def replace_ops(self, ops, pass_name: Optional[str] = None) -> "IRProgram":
        """A new program with ``ops``; appends ``pass_name`` to history."""
        passes = self.passes + ((pass_name,) if pass_name else ())
        return IRProgram(self.nb_qubits, tuple(ops), passes)

    def gate_counts(self) -> Counter:
        """Count ops by source class name (blocks counted recursively)."""
        from repro.ir.lower import lower

        counts: Counter = Counter()
        for irop in self.ops:
            if irop.kind == BLOCK:
                counts.update(lower(irop.op).gate_counts())
            else:
                counts[type(irop.op).__name__] += 1
        return counts

    def parameters(self) -> tuple:
        """Distinct unbound :class:`~repro.parameter.Parameter` slots in
        first-appearance order (blocks walked recursively).

        Cached per :func:`~repro.gates.base.mutation_epoch` — a pushed
        gate can become concrete in place (the deprecated ``theta``
        setter), which bumps the epoch and invalidates the cache."""
        from repro.gates.base import mutation_epoch
        from repro.ir.lower import lower

        epoch = mutation_epoch()
        cached = self._parameters_cache
        if cached is not None and cached[0] == epoch:
            return cached[1]
        seen: dict = {}
        for irop in self.ops:
            if irop.kind == BLOCK:
                for p in lower(
                    irop.op, base_offset=irop.offset
                ).parameters():
                    seen.setdefault(p, None)
            else:
                expr = irop.parameter_expression
                if expr is not None:
                    seen.setdefault(expr.parameter, None)
        params = tuple(seen)
        self._parameters_cache = (epoch, params)
        return params

    def signature(self) -> tuple:
        """Structural signature: width + every op's signature.

        Equal signatures guarantee identical semantics.  The program is
        immutable but the *gates* it points at are mutable handles, so
        the result cannot be cached unconditionally: every in-place
        mutation path (angle/qubit setters, in-place ``fuse``) bumps
        the global :func:`~repro.gates.base.mutation_epoch`, and the
        walk is recomputed whenever the epoch moved — the plan cache
        and the pass-pipeline cache still notice parameter mutations,
        while signature-stable workloads (parametric ``bind()`` loops)
        pay the walk once."""
        from repro.gates.base import mutation_epoch

        epoch = mutation_epoch()
        cached = self._signature_cache
        if cached is not None and cached[0] == epoch:
            return cached[1]
        parts = [("n", self.nb_qubits)]
        for irop in self.ops:
            parts.append(irop.signature())
        sig = tuple(parts)
        self._signature_cache = (epoch, sig)
        return sig

    def to_circuit(self):
        """Materialize a flat :class:`~repro.circuit.QCircuit`.

        Every element is copied through its ``shifted`` protocol, so
        the result shares no mutable state with the source circuit.
        ``BLOCK`` ops have no shifted form and must be expanded first
        (the ``flatten`` pass)."""
        from repro.circuit.circuit import QCircuit

        out = QCircuit(self.nb_qubits)
        for irop in self.ops:
            if irop.kind == BLOCK:
                raise IRError(
                    "cannot materialize a program containing BLOCK ops; "
                    "run the 'flatten' pass first"
                )
            out.push_back(irop.shifted_op())
        return out

    def __repr__(self) -> str:
        tail = f", passes={list(self.passes)!r}" if self.passes else ""
        return (
            f"IRProgram(nbQubits={self.nb_qubits}, "
            f"nbOps={len(self.ops)}{tail})"
        )
