"""Statevector dispatch loops — THE place compiled plans execute.

Historically every run path (planned and unplanned statevector,
instrumented and not) carried its own copy of the step-dispatch loop,
each with its own instrumentation and recorder plumbing.  This module
is the collapse: :func:`run_plan` is the single branch-replay loop —
parameterized by instrumentation instead of duplicated for it — and
:func:`run_unplanned` the single walk-the-op-tree fallback.  Every
``step.dispatch`` flight-recorder event, kernel metric and state
high-water mark the statevector engines emit comes from here.

The loops return raw data (branches, recorded measurements, stats);
materializing user-facing result objects is the caller's job — see
:meth:`repro.execution.Executor.submit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Mapping

import numpy as np

from repro.circuit.barrier import Barrier
from repro.circuit.measurement import Measurement
from repro.circuit.reset import Reset
from repro.exceptions import SimulationError
from repro.gates.base import QGate
from repro.observability.backend import InstrumentedBackend, step_kind
from repro.observability.instrument import current_instrumentation
from repro.observability.metrics import (
    BRANCHES_MAX,
    MEASUREMENTS,
    RNG_DRAWS,
    SHOTS_SAMPLED,
    STATE_BYTES_MAX,
    SWEEP_POINTS,
)
from repro.observability.recorder import (
    EV_PLAN_SWEEP,
    EV_STATE_HIGHWATER,
    EV_STEP_DISPATCH,
    record_event,
)
from repro.simulation.backends import Backend
from repro.simulation.plan import GATE, MEASURE, PlanStats

__all__ = [
    "Branch",
    "apply_operation",
    "run_plan",
    "run_unplanned",
    "run_sweep",
    "run_unitary",
    "record_shots",
]


@dataclass
class Branch:
    """One measurement branch: a collapsed state with its probability
    and the concatenated outcomes observed along the way."""

    probability: float
    state: np.ndarray
    result: str


def apply_operation(
    backend: Backend,
    state: np.ndarray,
    gate: QGate,
    offset: int,
    nb_qubits: int,
) -> np.ndarray:
    """Apply one gate (shifted by ``offset``) to a state via ``backend``."""
    targets = [q + offset for q in gate.target_qubits()]
    controls = [q + offset for q in gate.controls()]
    return backend.apply(
        state,
        gate.target_matrix(),
        targets,
        nb_qubits,
        controls=controls,
        control_states=list(gate.control_states()),
        diagonal=gate.is_diagonal,
    )


def _branch_probabilities(state: np.ndarray, qubit: int, nb_qubits: int):
    """P(0), P(1) of measuring ``qubit`` — Section 3.3's amplitude sums."""
    left = 1 << qubit
    right = 1 << (nb_qubits - 1 - qubit)
    view = state.reshape(left, 2, right)
    mags = np.abs(view) ** 2
    p0 = float(np.sum(mags[:, 0, :]))
    p1 = float(np.sum(mags[:, 1, :]))
    return p0, p1


def _collapse(
    state: np.ndarray, qubit: int, nb_qubits: int, outcome: int, prob: float
) -> np.ndarray:
    """Collapsed, renormalized copy of ``state`` after observing ``outcome``."""
    left = 1 << qubit
    collapsed = state.copy()
    view = collapsed.reshape(left, 2, -1)
    view[:, 1 - outcome, :] = 0.0
    collapsed *= 1.0 / np.sqrt(prob)
    return collapsed


def _measure(engine, branches, qubit, meas, nb_qubits, atol, record):
    """Split every branch on a measurement of ``qubit``."""
    non_z = meas.basis != "z"
    out = []
    for branch in branches:
        state = branch.state
        if non_z:
            state = engine.apply(
                state, meas.basis_change, [qubit], nb_qubits
            )
        p0, p1 = _branch_probabilities(state, qubit, nb_qubits)
        total = p0 + p1
        children = []
        for outcome, p in ((0, p0), (1, p1)):
            if p / total <= atol:
                continue
            collapsed = _collapse(state, qubit, nb_qubits, outcome, p / total)
            if non_z:
                collapsed = engine.apply(
                    collapsed,
                    meas.basis_change_dagger,
                    [qubit],
                    nb_qubits,
                )
            result = branch.result + (str(outcome) if record else "")
            children.append(
                Branch(branch.probability * (p / total), collapsed, result)
            )
        out.extend(children)
    return out


def _reset(engine, branches, qubit, nb_qubits, atol, record):
    """Reset ``qubit`` to |0> in every branch (measure + conditional X)."""
    out = []
    left = 1 << qubit
    for branch in branches:
        state = branch.state
        p0, p1 = _branch_probabilities(state, qubit, nb_qubits)
        total = p0 + p1
        for outcome, p in ((0, p0), (1, p1)):
            if p / total <= atol:
                continue
            collapsed = state.copy()
            view = collapsed.reshape(left, 2, -1)
            if outcome == 1:
                view[:, 0, :] = view[:, 1, :]
            view[:, 1, :] = 0.0
            collapsed *= 1.0 / np.sqrt(p / total)
            result = branch.result + (str(outcome) if record else "")
            out.append(
                Branch(branch.probability * (p / total), collapsed, result)
            )
    return out


def run_plan(plan, state, atol, inst=None, check=None):
    """Replay a compiled plan branch-wise from an initial state.

    THE dispatch loop — the only place planned statevector steps
    execute.  ``inst`` parameterizes instrumentation: with an enabled
    :class:`~repro.observability.instrument.Instrumentation`, gate
    applies route through an
    :class:`~repro.observability.InstrumentedBackend` (per-kernel
    counts/seconds/bytes), collapses land in the measurement
    histogram, and state/branch high-water gauges update; with
    ``None`` (or a disabled bundle) the loop pays none of that.

    ``check`` is the cancellation hook: a zero-argument callable
    invoked once per plan step (not per branch) that raises to abort
    the replay — the executor threads
    :meth:`repro.execution.Job.check_cancelled` through here for jobs
    carrying a deadline or a cancel request, which is how a service
    request timeout interrupts a simulation *mid-execution*.  ``None``
    (every ordinary run) costs nothing.

    Either way every step appends one ``step.dispatch`` event (op
    kind, qubit count, wall ns, branch count) to the always-on flight
    recorder — an O(1) ring append per *step*, not per branch, so the
    overhead stays in the noise (the guard test holds it under 5%).
    """
    enabled = inst is not None and inst.enabled
    raw = plan.engine
    nb_qubits = plan.nb_qubits
    if enabled:
        engine = InstrumentedBackend(raw, inst.metrics)
        meas_hist = inst.metrics.histogram(
            MEASUREMENTS, "wall seconds collapsing measurements/resets"
        )
        bytes_gauge = inst.metrics.gauge(
            STATE_BYTES_MAX, "high-water statevector bytes across branches"
        )
        branch_gauge = inst.metrics.gauge(
            BRANCHES_MAX, "high-water simultaneous measurement branches"
        )
        bytes_gauge.set_max(state.nbytes)
        branch_gauge.set_max(1)
    else:
        engine = raw
    branches = [Branch(1.0, state, "")]
    measurements = []
    highwater = state.nbytes
    # double-buffered scratch pair for out=-aware backends: one spare
    # statevector flips with each branch state per step, so the whole
    # planned run allocates no per-step result arrays.  The invariant
    # (the spare never aliases any branch's current state) holds
    # because a swap always retires the buffer the branch just left.
    use_out = bool(getattr(engine, "supports_out", False))
    spare = None
    for step in plan.steps:
        if check is not None:
            check()
        t0 = perf_counter()
        if step.kind == GATE:
            for branch in branches:
                if use_out:
                    if (
                        spare is None
                        or spare.shape != branch.state.shape
                        or spare.dtype != branch.state.dtype
                    ):
                        spare = np.empty_like(branch.state)
                    res = engine.apply_planned(
                        branch.state, step, nb_qubits, out=spare
                    )
                    if res is spare:
                        spare = branch.state
                    branch.state = res
                else:
                    branch.state = engine.apply_planned(
                        branch.state, step, nb_qubits
                    )
            record_event(
                EV_STEP_DISPATCH,
                op=step_kind(step),
                nq=nb_qubits,
                ns=int((perf_counter() - t0) * 1e9),
                branches=len(branches),
            )
            continue
        # basis changes inside _measure/_reset go through the raw
        # engine so kernel metrics count gate applies only
        if step.kind == MEASURE:
            measurements.append((step.qubit, step.op))
            branches = _measure(
                raw, branches, step.qubit, step.op, nb_qubits, atol,
                record=True,
            )
            op_kind = "measure"
        else:  # RESET
            if step.op.record:
                measurements.append((step.qubit, step.op))
            branches = _reset(
                raw, branches, step.qubit, nb_qubits, atol,
                record=step.op.record,
            )
            op_kind = "reset"
        dt = perf_counter() - t0
        record_event(
            EV_STEP_DISPATCH,
            op=op_kind,
            nq=nb_qubits,
            ns=int(dt * 1e9),
            branches=len(branches),
        )
        if enabled:
            meas_hist.observe(dt, kind=op_kind)
            branch_gauge.set_max(len(branches))
        live = sum(b.state.nbytes for b in branches)
        if enabled:
            bytes_gauge.set_max(live)
        if live > highwater:
            highwater = live
            record_event(
                EV_STATE_HIGHWATER, bytes=live, branches=len(branches)
            )
    return branches, measurements


def run_unplanned(circuit, engine, state, nb_qubits, atol, inst):
    """The historical walk-the-op-tree path (``compile=False``).

    Returns ``(branches, measurements, end_measured, stats)`` — the
    same raw payload :func:`run_plan` feeds the executor, with
    ``end_measured`` rebuilt from the op walk (no plan exists to carry
    it).
    """
    ops = list(circuit.operations())

    # Which qubits end on a measurement (for reducedStates)?
    last_touch: dict = {}
    record_counter = 0
    record_index: dict = {}  # id(op) -> result-string position
    for op, off in ops:
        if isinstance(op, Barrier):
            continue
        recorded = isinstance(op, Measurement) or (
            isinstance(op, Reset) and op.record
        )
        if recorded:
            record_index[id(op)] = record_counter
            record_counter += 1
        for q in op.qubits:
            last_touch[q + off] = op
    end_measured = {}
    for q, op in last_touch.items():
        if isinstance(op, Measurement):
            end_measured[q] = (record_index[id(op)], op)

    branches = [Branch(1.0, state, "")]
    measurements = []

    # Gate applies go through the instrumented wrapper when tracing so
    # uncompiled runs are measurable too.
    apply_engine = (
        InstrumentedBackend(engine, inst.metrics)
        if inst.enabled
        else engine
    )
    nb_source_ops = 0
    nb_gates = 0
    t0 = perf_counter()
    with inst.span("simulate.execute", backend=engine.name):
        for op, off in ops:
            if isinstance(op, Barrier):
                continue
            nb_source_ops += 1
            if isinstance(op, QGate):
                nb_gates += 1
                for branch in branches:
                    branch.state = apply_operation(
                        apply_engine, branch.state, op, off, nb_qubits
                    )
                continue
            if isinstance(op, Measurement):
                qubit = op.qubit + off
                measurements.append((qubit, op))
                branches = _measure(
                    engine, branches, qubit, op, nb_qubits, atol,
                    record=True,
                )
                continue
            if isinstance(op, Reset):
                qubit = op.qubit + off
                if op.record:
                    measurements.append((qubit, op))
                branches = _reset(
                    engine, branches, qubit, nb_qubits, atol,
                    record=op.record,
                )
                continue
            raise SimulationError(
                f"cannot simulate circuit element {type(op).__name__}"
            )
    stats = PlanStats(
        nb_source_ops=nb_source_ops,
        nb_steps=nb_source_ops,
        nb_gate_steps=nb_gates,
        execute_seconds=perf_counter() - t0,
    )
    return branches, measurements, end_measured, stats


def run_sweep(plan, cols: Mapping, nb_points: int, start=None) -> np.ndarray:
    """Execute a plan for a whole matrix of parameter points.

    One vectorized pass per plan step runs all ``nb_points`` points at
    once: concrete steps broadcast their single kernel over the
    ``(P, 2**n)`` state batch, parametric steps apply a per-point
    kernel stack along the parameter axis.  ``cols`` maps each
    :class:`~repro.parameter.Parameter` to its length-``P`` value
    column (validated by :meth:`~repro.simulation.CompiledPlan.sweep`,
    which is the public entry).  Emits the ``param.sweep`` span,
    the swept-points metric and the ``plan.sweep`` recorder event —
    all from this one loop.
    """
    from repro.simulation.state import initial_state

    dtype = plan.dtype
    nb_qubits = plan.nb_qubits
    if start is None:
        start = "0" * nb_qubits
    init = initial_state(start, nb_qubits, dtype=dtype)
    states = np.tile(init, (nb_points, 1))
    engine = plan.engine
    inst = current_instrumentation()
    t_sweep = perf_counter()
    with inst.span(
        "param.sweep",
        points=nb_points,
        backend=engine.name,
        nb_params=len(cols),
    ):
        # concrete steps double-buffer the whole (P, 2**n) batch for
        # out=-aware backends — same zero-allocation flip as run_plan
        use_out = bool(getattr(engine, "supports_out", False))
        spare = np.empty_like(states) if use_out else None
        for step in plan.steps:
            if step.param is None:
                if spare is not None:
                    res = engine.apply_planned_batched(
                        states, step, nb_qubits, out=spare
                    )
                    if res is spare:
                        spare = states
                    states = res
                else:
                    states = engine.apply_planned_batched(
                        states, step, nb_qubits
                    )
                continue
            thetas = step.param.resolve_batch(cols)
            kernels = np.ascontiguousarray(
                step.op.kernel_values(thetas).astype(dtype, copy=False)
            )
            states = engine.apply_planned_sweep(
                states, step, nb_qubits, kernels
            )
        if inst.enabled:
            inst.metrics.counter(
                SWEEP_POINTS,
                "parameter points executed by vectorized sweeps",
            ).inc(nb_points)
    record_event(
        EV_PLAN_SWEEP,
        points=nb_points,
        backend=engine.name,
        ns=int((perf_counter() - t_sweep) * 1e9),
    )
    return states


def run_unitary(plan) -> np.ndarray:
    """Accumulate a measurement-free plan's ``2**n x 2**n`` unitary.

    Applies each prepared step to the columns of the identity through
    the plan's backend, so no full gate operator is ever materialized.
    Backs :attr:`repro.circuit.QCircuit.matrix`.
    """
    nb_qubits = plan.nb_qubits
    state = np.eye(1 << nb_qubits, dtype=np.complex128)
    for step in plan.steps:
        state = plan.engine.apply_planned(state, step, nb_qubits)
    return state


def record_shots(inst, shots: int) -> None:
    """Record shot sampling into a run's (or the ambient) metrics.

    The one emission point for the ``counts()``-style sampling
    metrics — :meth:`Simulation.counts`, :meth:`Simulation.counts_dict`
    and the noisy-counts path all funnel through here.
    """
    if inst is None or not inst.enabled:
        inst = current_instrumentation()
    if inst.enabled:
        inst.metrics.counter(
            SHOTS_SAMPLED, "shots sampled via counts()"
        ).inc(int(shots))
        inst.metrics.counter(
            RNG_DRAWS, "random draws consumed"
        ).inc()  # one multinomial draw over the branch distribution
