"""The :class:`Job` handle — one submitted execution, observable end to end.

A job is what :meth:`~repro.execution.Executor.submit` returns: a
small state machine that travels through the pipeline stages

``PENDING -> COMPILED -> RUNNING -> DONE`` (or ``FAILED``)

carrying the compiled plan, the per-stage wall timings, the run
statistics and — crucially — any error *captured* instead of raised
mid-pipeline.  Callers decide when (and whether) an error surfaces by
calling :meth:`Job.result`, which re-raises the original exception
with its traceback intact.  This is the decoupling the service
gateway needs: submission never throws, and a finished job is a plain
value that can cross thread (and, later, process/network) boundaries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Optional

from repro.exceptions import JobCancelledError, SimulationError

__all__ = [
    "PENDING",
    "COMPILED",
    "RUNNING",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "JobTimings",
    "Job",
]

#: Job lifecycle states, in pipeline order.
PENDING = "PENDING"
COMPILED = "COMPILED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"

#: Every legal state, in lifecycle order.
JOB_STATES = (PENDING, COMPILED, RUNNING, DONE, FAILED)


@dataclass
class JobTimings:
    """Per-stage wall timings of one job (seconds).

    ``submitted_at`` is ``perf_counter``-relative (process-local);
    ``compile_seconds`` covers plan lookup + compilation (zero on a
    cache hit does *not* hold — the lookup itself is timed),
    ``execute_seconds`` covers the dispatch loop, and
    ``total_seconds`` the whole submit pipeline including result
    materialization.
    """

    submitted_at: float = field(default_factory=perf_counter)
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0


class Job:
    """Handle for one execution submitted to an :class:`Executor`.

    The executor drives the state transitions; user code observes them
    through :attr:`state` and collects the outcome through
    :meth:`result` / :meth:`stats` / :attr:`timings`.  A job whose
    pipeline raised holds the exception in :attr:`error` (state
    ``FAILED``) — nothing escapes ``submit()`` itself.
    """

    __slots__ = (
        "id", "request", "state", "plan", "error", "timings",
        "deadline", "_result", "_stats", "_instrumentation", "_stage",
        "_cancelled", "_done_event",
    )

    def __init__(self, request, job_id: int = 0):
        self.id = job_id
        self.request = request
        self.state = PENDING
        #: the :class:`~repro.simulation.CompiledPlan` once compiled
        #: (``None`` for uncompiled / walk-the-tree runs).
        self.plan = None
        #: the captured exception when :attr:`state` is ``FAILED``.
        self.error: Optional[BaseException] = None
        self.timings = JobTimings()
        #: optional absolute ``perf_counter`` deadline — set by callers
        #: (the service gateway) before execution; the pipeline aborts
        #: with :class:`~repro.exceptions.JobCancelledError` at the
        #: first cancellation checkpoint past it.
        self.deadline: Optional[float] = None
        self._result: Any = None
        self._stats = None
        self._instrumentation = None
        #: pipeline stage label for error attribution (``where`` on the
        #: recorder's ``error`` event).
        self._stage: Optional[str] = None
        self._cancelled = False
        self._done_event = threading.Event()

    # -- state transitions (driven by the executor) -------------------------

    def _compiled(self, plan, stats) -> None:
        self.plan = plan
        self._stats = stats
        self.state = COMPILED

    def _running(self) -> None:
        self.state = RUNNING

    def _finish(self, result) -> None:
        self._result = result
        self.state = DONE
        self._done_event.set()

    def _fail(self, error: BaseException) -> None:
        self.error = error
        self.state = FAILED
        self._done_event.set()

    # -- cancellation --------------------------------------------------------

    def cancel(self) -> bool:
        """Request cancellation of a not-yet-finished job.

        Cancellation is *cooperative*: the flag is observed at the
        pipeline's cancellation checkpoints (stage boundaries and, for
        planned statevector runs, every plan step), where the run
        aborts with :class:`~repro.exceptions.JobCancelledError`.
        Returns ``False`` when the job already reached a terminal
        state (too late to cancel), ``True`` otherwise.
        """
        if self.done:
            return False
        self._cancelled = True
        return True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was requested (terminal or not)."""
        return self._cancelled

    def check_cancelled(self) -> None:
        """Raise :class:`~repro.exceptions.JobCancelledError` when the
        job was cancelled or its :attr:`deadline` has passed.

        Called by the executor at stage boundaries and threaded into
        the plan dispatch loop as its per-step ``check`` hook; a no-op
        for jobs with no deadline and no cancel request.
        """
        if self._cancelled:
            raise JobCancelledError(f"job {self.id} cancelled")
        if self.deadline is not None and perf_counter() > self.deadline:
            self._cancelled = True
            raise JobCancelledError(
                f"job {self.id} exceeded its deadline"
            )

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state.

        Returns ``True`` when the job finished within ``timeout``
        seconds (``None`` = wait forever), ``False`` on timeout.  Only
        meaningful for jobs executed on another thread (the service
        gateway's worker pool); ``Executor.submit`` returns finished
        jobs, for which this returns immediately.
        """
        return self._done_event.wait(timeout)

    # -- outcome ------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state (DONE or FAILED)."""
        return self.state in (DONE, FAILED)

    @property
    def ok(self) -> bool:
        """Whether the job finished successfully."""
        return self.state == DONE

    def result(self):
        """The materialized result of a finished job.

        Returns the kind-specific result object (a
        :class:`~repro.simulation.Simulation`,
        :class:`~repro.simulation.DensitySimulation`,
        :class:`~repro.noise.trajectory.BatchedTrajectoryResult`, ...).
        Re-raises the captured exception — original traceback
        preserved — when the pipeline failed, and raises
        :class:`~repro.exceptions.SimulationError` on a job that never
        ran to completion.
        """
        if self.state == FAILED:
            raise self.error
        if self.state != DONE:
            raise SimulationError(
                f"job {self.id} has no result (state {self.state})"
            )
        return self._result

    def stats(self):
        """The run's :class:`~repro.simulation.PlanStats` (``None``
        until the compile stage finished)."""
        return self._stats

    def report(self):
        """The job's :class:`~repro.observability.ProfileReport` —
        instrumented spans/metrics when the run was traced, otherwise
        the plan-stats timings alone."""
        from repro.observability.exporters import ProfileReport

        if self._instrumentation is not None:
            return self._instrumentation.report(stats=self._stats)
        return ProfileReport(stats=self._stats)

    def __repr__(self) -> str:
        kind = getattr(self.request, "kind", "?")
        return f"Job(id={self.id}, kind={kind!r}, state={self.state})"
