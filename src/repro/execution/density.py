"""Density-matrix dispatch — the exact open-system step loop.

Moved here from :mod:`repro.simulation.density_sim` so the execution
core owns every plan-replay loop: :func:`run_density_plan` walks a
compiled plan once per branch set, applying gates as
``U rho U^dagger``, channels exactly as ``sum_k K_k rho K_k^dagger``,
and measurements selectively.  The public entry point and the
:class:`~repro.simulation.DensitySimulation` result object stay in
``density_sim``; this module returns raw branches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.measurement import Measurement
from repro.exceptions import StateError
from repro.simulation.plan import GATE, MEASURE
from repro.simulation.state import initial_state
from repro.utils.bits import gather_indices

__all__ = ["DensityBranch", "initial_density", "run_density_plan"]


@dataclass
class DensityBranch:
    """One measurement branch of a density-matrix simulation."""

    probability: float
    rho: np.ndarray
    result: str


def _conjugate_apply(engine, rho, kernel, qubits, nb_qubits):
    """``K rho K^dagger`` via two batched backend applications."""
    left = engine.apply(rho, kernel, qubits, nb_qubits)
    # right-multiplication by K^dagger: (K left^dagger)^dagger
    return engine.apply(
        np.ascontiguousarray(left.conj().T), kernel, qubits, nb_qubits
    ).conj().T


def _apply_channel(engine, rho, kraus, qubit, nb_qubits):
    """Exact channel action ``sum_k K_k rho K_k^dagger``."""
    out = np.zeros_like(rho)
    for k in kraus:
        out += _conjugate_apply(engine, rho.copy(), k, [qubit], nb_qubits)
    return out


def _measure_density(engine, branches, meas, qubit, nb_qubits, atol):
    """Selective measurement: split every branch on the outcome."""
    out = []
    non_z = meas.basis != "z"
    for branch in branches:
        rho = branch.rho
        if non_z:
            rho = _conjugate_apply(
                engine, rho.copy(), meas.basis_change, [qubit], nb_qubits
            )
        for outcome in (0, 1):
            idx = gather_indices(nb_qubits, [qubit], [outcome])
            projected = np.zeros_like(rho)
            projected[np.ix_(idx, idx)] = rho[np.ix_(idx, idx)]
            p = float(np.real(np.trace(projected)))
            if p <= atol:
                continue
            collapsed = projected / p
            if non_z:
                collapsed = _conjugate_apply(
                    engine,
                    collapsed,
                    meas.basis_change_dagger,
                    [qubit],
                    nb_qubits,
                )
            out.append(
                DensityBranch(
                    branch.probability * p,
                    collapsed,
                    branch.result + str(outcome),
                )
            )
    return out


def _flip_readouts(branches, p):
    """Classical readout error: each branch splits into kept/flipped."""
    out = []
    for b in branches:
        kept = DensityBranch(b.probability * (1 - p), b.rho, b.result)
        flipped_result = b.result[:-1] + ("1" if b.result[-1] == "0" else "0")
        flipped = DensityBranch(b.probability * p, b.rho, flipped_result)
        out.extend([kept, flipped])
    return out


def _reset_density(engine, branches, op, qubit, nb_qubits, atol):
    """Non-selective reset: project both outcomes, map 1 -> 0, merge."""
    from repro.gates import PauliX

    meas = Measurement(op.qubit)
    split = _measure_density(
        engine,
        [DensityBranch(b.probability, b.rho, b.result) for b in branches],
        meas,
        qubit,
        nb_qubits,
        atol,
    )
    out = []
    for b in split:
        outcome = b.result[-1]
        rho = b.rho
        if outcome == "1":
            x = PauliX(0).matrix
            rho = _conjugate_apply(engine, rho.copy(), x, [qubit], nb_qubits)
        result = b.result if op.record else b.result[:-1]
        out.append(DensityBranch(b.probability, rho, result))
    return out


def initial_density(start, nb_qubits, dtype) -> np.ndarray:
    """Initial ``2^n x 2^n`` density matrix from a start specifier
    (bitstring, state vector, or density matrix; ``None`` = all zeros)."""
    dim = 1 << nb_qubits
    if start is None:
        start = "0" * nb_qubits
    arr = np.asarray(start) if not isinstance(start, str) else None
    if arr is not None and arr.ndim == 2:
        rho0 = np.array(arr, dtype=dtype)
        if rho0.shape != (dim, dim):
            raise StateError(
                f"density matrix of shape {rho0.shape}; expected "
                f"({dim}, {dim})"
            )
        if abs(np.trace(rho0) - 1.0) > 1e-8:
            raise StateError("density matrix must have unit trace")
        return rho0
    psi = initial_state(start, nb_qubits, dtype=dtype)
    return np.outer(psi, psi.conj())


def run_density_plan(plan, engine, rho0, noise, atol):
    """Replay a compiled plan on a density matrix, branch-wise.

    ``engine`` is passed separately from ``plan.engine`` so
    instrumented runs can route every ``K rho K^dagger`` conjugation
    through an
    :class:`~repro.observability.InstrumentedBackend` wrapper.
    Channels resolve per source gate via ``noise.channel_for``; readout
    errors mix branch probabilities classically after each measurement.
    Returns the final :class:`DensityBranch` list.
    """
    nb_qubits = plan.nb_qubits
    branches = [DensityBranch(1.0, rho0, "")]

    for step in plan.steps:
        if step.kind == GATE:
            for branch in branches:
                # U rho U^dagger via two planned applies (column- then
                # row-wise through the conjugate transpose)
                left = engine.apply_planned(branch.rho, step, nb_qubits)
                right = engine.apply_planned(
                    np.ascontiguousarray(left.conj().T), step,
                    nb_qubits,
                )
                branch.rho = right.conj().T
            channel = (
                noise.channel_for(step.op)
                if step.op is not None
                else None
            )
            if channel is not None and not channel.is_identity:
                for q in step.noise_qubits:
                    for branch in branches:
                        branch.rho = _apply_channel(
                            engine, branch.rho, channel.kraus, q,
                            nb_qubits,
                        )
            continue
        if step.kind == MEASURE:
            branches = _measure_density(
                engine, branches, step.op, step.qubit, nb_qubits, atol
            )
            if noise.readout_error > 0.0:
                branches = _flip_readouts(branches, noise.readout_error)
            continue
        # RESET
        branches = _reset_density(
            engine, branches, step.op, step.qubit, nb_qubits, atol
        )
    return branches
