"""The :class:`Executor`: one submit path for every execution pipeline.

The executor is the seam the whole refactor exists for: submission
(:meth:`Executor.submit`) takes an
:class:`~repro.execution.ExecutionRequest`, drives it through the
compile -> bind -> dispatch -> materialize stages, and returns a
finished :class:`~repro.execution.Job` — never raising.  Every public
run entry point (``simulate``, ``simulate_density``,
``run_trajectory``, ``run_trajectories_batched``, ``sweep``) is a thin
wrapper over one submit, so plan-cache traffic, spans, flight-recorder
events and seed handling are emitted in exactly one place per stage.

Thread safety: ``submit`` may be called from many threads sharing one
executor.  Plan-cache lookups serialize inside
:func:`repro.simulation.plan.get_plan` (exact hit/miss accounting),
non-parametric plans replay read-only state, and parametric plans
bind+execute under their per-plan lock (binding mutates kernels in
place).  Instrumentation activates per calling thread via a
context-variable, so concurrent instrumented runs keep separate span
trees.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter

import numpy as np

from repro.exceptions import SimulationError, UnboundParameterError
from repro.execution import trajectory as traj
from repro.execution.dispatch import run_plan, run_unplanned
from repro.execution.density import initial_density, run_density_plan
from repro.execution.job import DONE, FAILED, PENDING, Job
from repro.execution.request import (
    DENSITY,
    STATEVECTOR,
    SWEEP,
    TRAJECTORY,
    TRAJECTORY_BATCH,
    ExecutionRequest,
)
from repro.observability.backend import InstrumentedBackend
from repro.observability.instrument import (
    activate,
    resolve_instrumentation,
)
from repro.observability.metrics import (
    BATCH_SIZE,
    BATCH_WORKERS,
    BATCHED_SHOTS,
    RNG_DRAWS,
    TRAJECTORIES,
)
from repro.observability.recorder import (
    EV_BATCH_EXECUTE,
    EV_BATCH_FANOUT,
    EV_ERROR,
    EV_JOB_DONE,
    EV_JOB_SUBMIT,
    EV_TRAJECTORY,
    record_event,
)
from repro.simulation.backends import get_backend
from repro.simulation.plan import (
    clear_plan_cache,
    get_plan,
    plan_cache_info,
)
from repro.simulation.state import initial_state

__all__ = ["Executor", "default_executor"]


class Executor:
    """Owns the compile -> dispatch -> materialize pipeline.

    One executor (usually the process-wide :func:`default_executor`)
    serves every engine: the request ``kind`` selects the pipeline and
    the executor guarantees the shared pieces — plan-cache access,
    backend resolution, instrumentation activation, recorder events,
    error capture — behave identically across all of them.
    """

    def __init__(self):
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._runners = {
            STATEVECTOR: Executor._run_statevector,
            DENSITY: Executor._run_density,
            TRAJECTORY: Executor._run_trajectory,
            TRAJECTORY_BATCH: Executor._run_trajectory_batch,
            SWEEP: Executor._run_sweep,
        }

    # -- the submit path -----------------------------------------------------

    def prepare(self, request: ExecutionRequest) -> Job:
        """Create a :class:`Job` handle for a request *without* running
        it.

        The prepare/execute split exists for callers that queue work
        and need the handle up front — the service gateway hands the
        prepared job to a waiting HTTP handler (so it can ``wait()``,
        set a ``deadline`` or ``cancel()``) while a worker thread
        drives :meth:`execute`.  :meth:`submit` is the inline
        composition of the two.
        """
        return Job(request, next(self._ids))

    def execute(self, job: Job) -> Job:
        """Drive a prepared :class:`Job` through its full pipeline;
        returns the same job in a terminal state (``DONE`` or
        ``FAILED``).

        Never raises: pipeline exceptions — including
        :class:`~repro.exceptions.JobCancelledError` from a
        ``cancel()`` or an expired ``deadline`` — are captured on the
        job and surface only through :meth:`Job.result`.  A job may
        execute at most once.
        """
        request = job.request
        if job.state != PENDING:
            raise SimulationError(
                f"job {job.id} already executed (state {job.state})"
            )
        with self._lock:
            self._submitted += 1
        record_event(
            EV_JOB_SUBMIT,
            id=job.id,
            pipeline=request.kind,
            backend=request.options.backend
            if isinstance(request.options.backend, str)
            else getattr(request.options.backend, "name", "?"),
        )
        t0 = perf_counter()
        inst = resolve_instrumentation(
            request.options.trace, request.options.metrics
        )
        job._instrumentation = inst if inst.enabled else None
        try:
            job.check_cancelled()
            with activate(inst):
                result = self._runners[request.kind](self, job, inst)
            job._finish(result)
            with self._lock:
                self._completed += 1
        except Exception as exc:  # noqa: BLE001 — captured, not lost
            record_event(
                EV_ERROR,
                error=type(exc).__name__,
                where=job._stage or f"executor.{request.kind}",
            )
            job._fail(exc)
            with self._lock:
                self._failed += 1
        job.timings.total_seconds = perf_counter() - t0
        record_event(
            EV_JOB_DONE,
            id=job.id,
            pipeline=request.kind,
            state=DONE if job.state == DONE else FAILED,
            ns=int(job.timings.total_seconds * 1e9),
        )
        return job

    def submit(self, request: ExecutionRequest) -> Job:
        """Execute one request through its full pipeline; returns the
        finished :class:`Job` (state ``DONE`` or ``FAILED``).

        Never raises: pipeline exceptions are captured on the job and
        surface when (and only when) :meth:`Job.result` is called.
        Safe under concurrent callers sharing this executor — see the
        module docstring for the locking contract.
        """
        return self.execute(self.prepare(request))

    def run(self, request: ExecutionRequest):
        """Submit and immediately materialize: returns the result
        object, re-raising any captured pipeline error."""
        return self.submit(request).result()

    # -- bookkeeping ---------------------------------------------------------

    def stats(self) -> dict:
        """Executor-level counters plus the shared plan-cache view."""
        with self._lock:
            out = {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
            }
        out["plan_cache"] = self.cache_info()
        return out

    def cache_info(self) -> dict:
        """The shared compiled-plan cache counters (see
        :func:`repro.simulation.plan_cache_info`)."""
        return plan_cache_info()

    def clear_cache(self) -> None:
        """Empty the shared compiled-plan cache."""
        clear_plan_cache()

    # -- pipelines -----------------------------------------------------------

    def _run_statevector(self, job: Job, inst):
        req = job.request
        opts = req.options
        circuit = req.circuit
        engine = get_backend(opts.backend)
        nb_qubits = circuit.nbQubits
        start = "0" * nb_qubits if req.start is None else req.start
        state = initial_state(start, nb_qubits, dtype=opts.dtype)
        from repro.simulation.simulate import Simulation

        with inst.span(
            "simulate",
            backend=engine.name,
            nb_qubits=nb_qubits,
            compiled=bool(opts.compile),
        ):
            if not opts.compile:
                if req.param_values is not None:
                    # the uncompiled walk reads gate matrices directly,
                    # so it needs concrete value-carrying gates
                    from repro.circuit.bound import _materialize

                    circuit = _materialize(circuit, req.param_values)
                job._running()
                job._stage = "simulate.execute"
                branches, measurements, end_measured, stats = (
                    run_unplanned(
                        circuit, engine, state, nb_qubits, opts.atol,
                        inst,
                    )
                )
                job._stats = stats
                job.timings.execute_seconds = stats.execute_seconds
                return Simulation._from_run(
                    nb_qubits, branches, measurements, end_measured,
                    engine.name, engine=engine, stats=stats,
                    seed=req.seed,
                    instrumentation=inst if inst.enabled else None,
                )
            job._stage = "plan.get"
            t_c = perf_counter()
            plan, stats = get_plan(
                circuit, engine, opts.dtype, fuse=opts.fuse
            )
            job.timings.compile_seconds = perf_counter() - t_c
            job._compiled(plan, stats)
            # per-step cancellation only engages for deadline/cancel
            # jobs, so plain simulate() wrappers pay nothing extra
            check = (
                job.check_cancelled
                if job.deadline is not None or job.cancelled
                else None
            )
            if check is not None:
                check()
            if plan.is_parametric and req.param_values is None:
                raise UnboundParameterError(
                    "circuit has unbound parameter(s) "
                    + ", ".join(repr(p.name) for p in plan.parameters)
                    + "; simulate through circuit.bind(values)"
                )
            # binding mutates the plan's kernels in place, so a
            # parametric plan binds AND executes under its lock;
            # non-parametric replay is read-only and runs lock-free
            with plan.lock if plan.is_parametric else _NULL_LOCK:
                if plan.is_parametric:
                    # always (re-)bind: a cached plan may carry kernels
                    # from a previous binding's values
                    job._stage = "param.bind"
                    plan.bind(req.param_values)
                job._running()
                job._stage = "simulate.execute"
                t0 = perf_counter()
                if inst.enabled:
                    with inst.span(
                        "simulate.execute", backend=plan.engine.name
                    ):
                        branches, measurements = run_plan(
                            plan, state, opts.atol, inst, check=check
                        )
                else:
                    branches, measurements = run_plan(
                        plan, state, opts.atol, check=check
                    )
                stats.execute_seconds = perf_counter() - t0
            job._stats = stats
            job.timings.execute_seconds = stats.execute_seconds
            return Simulation._from_run(
                nb_qubits, branches, measurements, plan.end_measured,
                plan.engine.name, engine=plan.engine, stats=stats,
                seed=req.seed,
                instrumentation=inst if inst.enabled else None,
            )

    def _run_density(self, job: Job, inst):
        req = job.request
        opts = req.options
        circuit = req.circuit
        noise = req.noise if req.noise is not None else _trivial_noise()
        nb_qubits = circuit.nbQubits
        from repro.simulation.density_sim import DensitySimulation

        with inst.span(
            "simulate_density", nb_qubits=nb_qubits
        ) as span:
            # gate fusion would merge the per-gate channel attach
            # points away, so it is on only for trivial noise
            use_fuse = opts.fuse and noise.is_trivial
            job._stage = "plan.get"
            t_c = perf_counter()
            plan, stats = get_plan(
                circuit, opts.backend, opts.dtype, fuse=use_fuse
            )
            job.timings.compile_seconds = perf_counter() - t_c
            job._compiled(plan, stats)
            job.check_cancelled()
            engine = plan.engine
            span.set(backend=engine.name)
            if inst.enabled:
                # every K rho K^dagger conjugation is a gate apply;
                # route them through the instrumented wrapper
                engine = InstrumentedBackend(engine, inst.metrics)
            rho0 = initial_density(req.start, nb_qubits, opts.dtype)
            job._running()
            job._stage = "simulate_density"
            t0 = perf_counter()
            branches = run_density_plan(
                plan, engine, rho0, noise, opts.atol
            )
            stats.execute_seconds = perf_counter() - t0
            job._stats = stats
            job.timings.execute_seconds = stats.execute_seconds
            return DensitySimulation(nb_qubits, branches)

    def _run_trajectory(self, job: Job, inst):
        req = job.request
        opts = req.options
        circuit = req.circuit
        noise = req.noise if req.noise is not None else _trivial_noise()
        rng = (
            req.seed
            if isinstance(req.seed, np.random.Generator)
            else np.random.default_rng(req.seed)
        )
        nb_qubits = circuit.nbQubits
        channels = (
            req.channels
            if req.channels is not None
            else traj.channel_map(circuit, noise)
        )
        from repro.noise.trajectory import TrajectoryResult

        t_traj = perf_counter()
        with inst.span("trajectory", nb_qubits=nb_qubits) as span:
            use_fuse = opts.fuse and noise.is_trivial
            job._stage = "plan.get"
            t_c = perf_counter()
            plan, stats = get_plan(
                circuit, opts.backend, opts.dtype, fuse=use_fuse
            )
            job.timings.compile_seconds = perf_counter() - t_c
            job._compiled(plan, stats)
            job.check_cancelled()
            engine = plan.engine
            if inst.enabled:
                span.set(backend=engine.name)
                engine = InstrumentedBackend(engine, inst.metrics)
                inst.metrics.counter(
                    TRAJECTORIES, "Monte-Carlo trajectories executed"
                ).inc()
                rng = traj.CountingRNG(rng)
            job._running()
            job._stage = "trajectory"
            t0 = perf_counter()
            result, state = traj.run_trajectory_plan(
                plan, engine, channels, noise, req.start, rng
            )
            stats.execute_seconds = perf_counter() - t0
            job._stats = stats
            job.timings.execute_seconds = stats.execute_seconds
            if isinstance(rng, traj.CountingRNG) and rng.draws:
                inst.metrics.counter(
                    RNG_DRAWS, "random draws consumed"
                ).inc(rng.draws)
            record_event(
                EV_TRAJECTORY,
                nq=nb_qubits,
                ns=int((perf_counter() - t_traj) * 1e9),
            )
            return TrajectoryResult(result=result, state=state)

    def _run_trajectory_batch(self, job: Job, inst):
        req = job.request
        opts = req.options
        circuit = req.circuit
        noise = req.noise if req.noise is not None else _trivial_noise()
        shots = int(req.shots)
        rng = (
            req.seed
            if isinstance(req.seed, np.random.Generator)
            else np.random.default_rng(req.seed)
        )
        nb_qubits = circuit.nbQubits
        return_states = bool(req.return_states)
        from repro.noise.trajectory import BatchedTrajectoryResult

        with inst.span(
            "batch.trajectories", shots=shots, nb_qubits=nb_qubits
        ) as span:
            use_fuse = opts.fuse and noise.is_trivial
            job._stage = "plan.get"
            t_c = perf_counter()
            plan, stats = get_plan(
                circuit, opts.backend, opts.dtype, fuse=use_fuse
            )
            job.timings.compile_seconds = perf_counter() - t_c
            job._compiled(plan, stats)
            job.check_cancelled()
            channels = (
                req.channels
                if req.channels is not None
                else traj.channel_map(circuit, noise)
            )
            draws_per_shot = traj.draws_per_shot(plan, channels, noise)
            batch_size = opts.batch_size or traj.default_batch_size(
                shots, nb_qubits
            )
            sizes = [
                min(batch_size, shots - done)
                for done in range(0, shots, batch_size)
            ] or []
            # the parent owns the stream: every batch's uniforms are
            # drawn here, in order, so workers receive randomness
            # instead of seeds
            draw_blocks = [
                rng.random((size, draws_per_shot)) for size in sizes
            ]

            requested = min(int(opts.max_workers), max(1, len(sizes)))
            workers = requested
            floor = int(opts.min_shots_per_worker)
            if requested > 1 and shots < requested * floor:
                # process start-up + per-worker pickling costs a fixed
                # ~100ms each; below the floor the fan-out is slower
                # than just simulating inline, so shrink it
                workers = max(1, shots // floor)
            if inst.enabled:
                # instrumented runs execute in-process so every kernel
                # application lands in this run's registry
                workers = 1
            record_event(
                EV_BATCH_FANOUT,
                shots=shots,
                requested=requested,
                workers=workers,
                floor=floor,
                inline=workers <= 1,
            )
            engine = plan.engine
            if inst.enabled:
                span.set(
                    backend=engine.name,
                    batch_size=batch_size,
                    workers=workers,
                    draws_per_shot=draws_per_shot,
                )
                engine = InstrumentedBackend(engine, inst.metrics)
                inst.metrics.counter(
                    TRAJECTORIES, "Monte-Carlo trajectories executed"
                ).inc(shots)
                inst.metrics.counter(
                    BATCHED_SHOTS, "shots executed by the batched engine"
                ).inc(shots)
                inst.metrics.gauge(
                    BATCH_SIZE, "high-water trajectory batch size"
                ).set_max(batch_size)
                inst.metrics.gauge(
                    BATCH_WORKERS, "high-water batch worker fan-out"
                ).set_max(workers)
                if shots and draws_per_shot:
                    inst.metrics.counter(
                        RNG_DRAWS, "random draws consumed"
                    ).inc(shots * draws_per_shot)

            job._running()
            job._stage = "batch.execute"
            t_exec = perf_counter()
            results: list = []
            state_blocks: list = []
            if workers > 1:
                import concurrent.futures

                child_opts = opts.replace(trace=None, metrics=None)
                payloads = [
                    (circuit, noise, channels, req.start, child_opts,
                     use_fuse, block, return_states)
                    for block in draw_blocks
                ]
                t_pool = perf_counter()
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers
                ) as pool:
                    for res, states in pool.map(
                        traj.batch_worker, payloads
                    ):
                        results.extend(res)
                        if return_states:
                            state_blocks.append(states)
                # child processes own their rings; one parent-side
                # event summarizes the whole fan-out
                record_event(
                    EV_BATCH_EXECUTE,
                    batch=shots,
                    workers=workers,
                    ns=int((perf_counter() - t_pool) * 1e9),
                )
            else:
                for block in draw_blocks:
                    t_block = perf_counter()
                    with inst.span(
                        "batch.execute", batch=block.shape[0]
                    ):
                        res, states = traj.execute_batch(
                            plan, engine, channels, noise, req.start,
                            block, opts.dtype,
                        )
                    record_event(
                        EV_BATCH_EXECUTE,
                        batch=block.shape[0],
                        workers=1,
                        ns=int((perf_counter() - t_block) * 1e9),
                    )
                    results.extend(res)
                    if return_states:
                        state_blocks.append(states)
            stats.execute_seconds = perf_counter() - t_exec
            job._stats = stats
            job.timings.execute_seconds = stats.execute_seconds

            return BatchedTrajectoryResult(
                results=results,
                shots=shots,
                batch_size=batch_size,
                workers=workers,
                states=(
                    np.concatenate(state_blocks, axis=0)
                    if return_states and state_blocks
                    else None
                ),
            )

    def _run_sweep(self, job: Job, inst):
        req = job.request
        opts = req.options
        from repro.simulation.sweep import SweepResult

        job._stage = "plan.get"
        t_c = perf_counter()
        plan, stats = get_plan(
            req.circuit, opts.backend, opts.dtype, fuse=opts.fuse
        )
        job.timings.compile_seconds = perf_counter() - t_c
        job._compiled(plan, stats)
        job.check_cancelled()
        job._running()
        job._stage = "param.sweep"
        t0 = perf_counter()
        # a sweep never mutates the plan's bound kernels (it broadcasts
        # the value columns per step), but it must not interleave with a
        # concurrent bind+execute on the same cached plan object
        with plan.lock if plan.is_parametric else _NULL_LOCK:
            states = plan.sweep(
                req.values, parameters=req.parameters, start=req.start
            )
        stats.execute_seconds = perf_counter() - t0
        job._stats = stats
        job.timings.execute_seconds = stats.execute_seconds
        return SweepResult(states, plan.parameters, stats)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Executor(submitted={self._submitted}, "
                f"completed={self._completed}, failed={self._failed})"
            )


class _NullLock:
    """No-op context manager for the lock-free (read-only) replay path."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_LOCK = _NullLock()


def _trivial_noise():
    """The shared no-noise model (lazy: repro.noise imports us)."""
    from repro.noise.model import NoiseModel

    return NoiseModel()


_DEFAULT: Executor = None
_DEFAULT_LOCK = threading.Lock()


def default_executor() -> Executor:
    """The process-wide executor every thin wrapper submits through."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = Executor()
    return _DEFAULT
