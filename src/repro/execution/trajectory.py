"""Monte-Carlo trajectory dispatch — serial and batched step loops.

Moved here from :mod:`repro.noise.trajectory` so the execution core
owns every plan-replay loop.  Two engines share this module:

:func:`run_trajectory_plan`
    One shot, one ``(2**n,)`` state — the reference path.

:func:`execute_batch`
    ``B`` shots as one ``(B, 2**n)`` array; every compiled plan step
    executes once across the whole batch and all stochastic choices
    (Kraus selection, measurement collapse, readout flips) are
    vectorized over the batch axis.

Both consume the SAME underlying uniform stream in the same order, so
for a fixed seed the batched engine is shot-for-shot reproducible
against a serial loop sharing one generator —
:func:`draws_per_shot` states the contract.  The public entry points
and result objects stay in ``repro.noise.trajectory``; this module
returns raw outcome strings and states.

Deliberately imports nothing from :mod:`repro.noise` at module level
(the noise model arrives duck-typed) — ``repro.noise.trajectory``
imports *us*, and a module-level back-edge would deadlock package
initialization.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.circuit.measurement import Measurement
from repro.exceptions import SimulationError
from repro.simulation.plan import GATE, MEASURE, get_plan
from repro.simulation.state import initial_state

__all__ = [
    "run_trajectory_plan",
    "execute_batch",
    "batch_worker",
    "channel_map",
    "draws_per_shot",
    "default_batch_size",
    "CountingRNG",
]

#: Auto batch sizing: keep one batch around this many amplitudes ...
BATCH_TARGET_ELEMS = 1 << 22
#: ... and never wider than this many rows.
BATCH_MAX_ROWS = 4096


class CountingRNG:
    """Thin proxy counting ``random()`` draws (instrumented runs)."""

    __slots__ = ("rng", "draws")

    def __init__(self, rng):
        self.rng = rng
        self.draws = 0

    def random(self):
        """One uniform draw from the wrapped generator, counted."""
        self.draws += 1
        return self.rng.random()


def channel_map(circuit, noise) -> dict:
    """``{gate class: NoiseChannel}`` for every noisy gate of the circuit.

    Built by running the ``inject_noise`` IR pass over the canonical
    (revision-cached) lowering.  Batch runs build this once, so every
    shot resolves channels with one dict lookup per gate instead of
    re-matching the noise model's rules.

    Keyed by gate *class*, matching :meth:`NoiseModel.channel_for`'s
    resolution — deliberately not by gate identity: the plan cache may
    hand back a plan compiled from a different but signature-equal
    circuit, whose step back-pointers are different objects of the same
    classes.
    """
    if noise.is_trivial:
        return {}
    from repro.ir.lower import lower
    from repro.ir.passes import InjectNoise, PassManager

    program = PassManager([InjectNoise(noise)]).run(lower(circuit))
    return {
        type(irop.op): irop.channel
        for irop in program
        if irop.channel is not None
    }


def default_batch_size(shots: int, nb_qubits: int) -> int:
    """Memory-aware batch width: aim for :data:`BATCH_TARGET_ELEMS`
    amplitudes per batch, capped at :data:`BATCH_MAX_ROWS` rows."""
    rows = max(1, BATCH_TARGET_ELEMS >> nb_qubits)
    return max(1, min(int(shots), rows, BATCH_MAX_ROWS))


def draws_per_shot(plan, channels: dict, noise) -> int:
    """Uniform variates one trajectory consumes, in plan order.

    This is the contract that keeps the batched engine shot-for-shot
    reproducible against the serial loop: every shot consumes a FIXED
    number of draws (Kraus sites with >1 operator, measurements,
    readout checks, resets), so shot ``i`` owns variates
    ``[i*D, (i+1)*D)`` of the stream in both engines.
    """
    draws = 0
    readout = 1 if noise.readout_error > 0.0 else 0
    for step in plan.steps:
        if step.kind == GATE:
            channel = (
                channels.get(type(step.op))
                if step.op is not None
                else None
            )
            if channel is not None and len(channel.kraus) > 1:
                draws += len(step.noise_qubits)
        elif step.kind == MEASURE:
            draws += 1 + readout
        else:  # RESET
            draws += 1
    return draws


# -- the serial engine -------------------------------------------------------


def _apply_kraus(engine, state, kraus, qubit, nb_qubits, rng):
    """Select and apply one Kraus operator (Monte-Carlo branch)."""
    if len(kraus) == 1:
        out = engine.apply(state, kraus[0], [qubit], nb_qubits)
        norm = np.linalg.norm(out)
        return out / norm
    r = float(rng.random())
    acc = 0.0
    for k in kraus:
        candidate = engine.apply(state.copy(), k, [qubit], nb_qubits)
        p = float(np.linalg.norm(candidate) ** 2)
        acc += p
        if r < acc or k is kraus[-1]:
            if p <= 1e-300:
                continue  # zero-probability op; keep scanning
            return candidate / np.sqrt(p)
    raise SimulationError("Kraus sampling failed to select an operator")


def _sample_measurement(engine, state, meas, qubit, nb_qubits, rng):
    """Collapse one measurement randomly; returns (outcome, state)."""
    if meas.basis != "z":
        state = engine.apply(state, meas.basis_change, [qubit], nb_qubits)
    left = 1 << qubit
    view = state.reshape(left, 2, -1)
    p1 = float(np.sum(np.abs(view[:, 1, :]) ** 2))
    outcome = 1 if rng.random() < p1 else 0
    prob = p1 if outcome == 1 else 1.0 - p1
    view[:, 1 - outcome, :] = 0.0
    state = state * (1.0 / np.sqrt(prob))
    if meas.basis != "z":
        state = engine.apply(
            state, meas.basis_change_dagger, [qubit], nb_qubits
        )
    return outcome, state


def run_trajectory_plan(plan, engine, channels, noise, start, rng):
    """Sample ONE noisy path through a compiled plan.

    Returns ``(result, state)`` — the recorded outcome string and the
    final ``(2**n,)`` state.  ``engine`` is passed separately from
    ``plan.engine`` so instrumented runs route gate applies through the
    wrapper while collapse bookkeeping stays raw.
    """
    nb_qubits = plan.nb_qubits
    if start is None:
        start = "0" * nb_qubits
    state = initial_state(start, nb_qubits, dtype=plan.dtype)
    outcomes = []

    for step in plan.steps:
        if step.kind == GATE:
            state = engine.apply_planned(state, step, nb_qubits)
            channel = (
                channels.get(type(step.op))
                if step.op is not None
                else None
            )
            if channel is not None:
                for q in step.noise_qubits:
                    state = _apply_kraus(
                        engine, state, channel.kraus, q, nb_qubits, rng
                    )
            continue
        if step.kind == MEASURE:
            outcome, state = _sample_measurement(
                engine, state, step.op, step.qubit, nb_qubits, rng
            )
            if noise.readout_error > 0.0 and (
                rng.random() < noise.readout_error
            ):
                outcome = 1 - outcome
            outcomes.append(str(outcome))
            continue
        # RESET
        meas = Measurement(step.op.qubit)
        outcome, state = _sample_measurement(
            engine, state, meas, step.qubit, nb_qubits, rng
        )
        if outcome == 1:
            from repro.gates import PauliX

            state = engine.apply(
                state, PauliX(0).matrix, [step.qubit], nb_qubits
            )
        if step.op.record:
            outcomes.append(str(outcome))

    return "".join(outcomes), state


# -- the batched engine ------------------------------------------------------


def _apply_kraus_batched(engine, states, kraus, qubit, nb_qubits, r):
    """Vectorized Monte-Carlo Kraus branch over a ``(B, dim)`` batch.

    ``r`` is one uniform variate per row (``None`` for single-operator
    channels, which draw nothing).  Selection replays the serial
    scan — first operator with cumulative probability past ``r`` (or
    the last), skipping zero-probability branches — via boolean masks.
    """
    if len(kraus) == 1:
        out = engine.apply_batched(states, kraus[0], [qubit], nb_qubits)
        norms = np.linalg.norm(out, axis=1)
        out /= norms[:, None]
        return out
    batch = states.shape[0]
    acc = np.zeros(batch)
    assigned = np.zeros(batch, dtype=bool)
    out = np.empty_like(states)
    last = len(kraus) - 1
    for i, k in enumerate(kraus):
        candidate = engine.apply_batched(
            states.copy(), k, [qubit], nb_qubits
        )
        p = np.linalg.norm(candidate, axis=1) ** 2
        acc += p
        sel = ~assigned & ((r < acc) | (i == last)) & (p > 1e-300)
        if sel.any():
            out[sel] = candidate[sel] / np.sqrt(p[sel])[:, None]
            assigned |= sel
    if not assigned.all():
        raise SimulationError("Kraus sampling failed to select an operator")
    return out


def _sample_measurement_batched(engine, states, meas, qubit, nb_qubits, r):
    """Collapse one measurement across the batch; returns
    ``(outcomes, states)`` with ``outcomes`` a ``(B,)`` int array."""
    if meas.basis != "z":
        states = engine.apply_batched(
            states, meas.basis_change, [qubit], nb_qubits
        )
    batch = states.shape[0]
    left = 1 << qubit
    view = states.reshape(batch, left, 2, -1)
    p1 = np.sum(np.abs(view[:, :, 1, :]) ** 2, axis=(1, 2))
    outcomes = (r < p1).astype(np.int64)
    ones = outcomes.astype(bool)
    view[ones, :, 0, :] = 0.0
    view[~ones, :, 1, :] = 0.0
    prob = np.where(ones, p1, 1.0 - p1)
    states *= (1.0 / np.sqrt(prob))[:, None]
    if meas.basis != "z":
        states = engine.apply_batched(
            states, meas.basis_change_dagger, [qubit], nb_qubits
        )
    return outcomes, states


def _bit_matrix_to_strings(columns: list, batch: int) -> List[str]:
    """Recorded outcome columns -> per-shot result strings."""
    if not columns:
        return [""] * batch
    mat = np.stack(columns, axis=1).astype(np.uint8) + ord("0")
    return [bytes(row).decode("ascii") for row in mat]


def execute_batch(plan, engine, channels, noise, start, draws, dtype):
    """Run one batch of trajectories through a compiled plan.

    ``draws`` is the pre-drawn ``(B, draws_per_shot)`` uniform matrix;
    column ``j`` holds every row's ``j``-th stochastic choice, matching
    the serial engine's shot-major consumption of the same stream.
    """
    nb_qubits = plan.nb_qubits
    batch = draws.shape[0]
    base = initial_state(
        start if start is not None else "0" * nb_qubits,
        nb_qubits,
        dtype=dtype,
    )
    states = np.tile(base, (batch, 1))
    col = 0
    recorded: list = []
    x_kernel = None
    # double-buffered scratch pair for out=-aware backends: gate steps
    # flip between `states` and one spare (B, dim) array, so the gate
    # loop allocates nothing per step.  Noise/measurement paths below
    # may rebind `states` to fresh arrays; the spare stays disjoint
    # either way (a swap only ever retires the buffer states just left)
    use_out = bool(getattr(engine, "supports_out", False))
    spare = np.empty_like(states) if use_out else None

    for step in plan.steps:
        if step.kind == GATE:
            if spare is not None:
                new = engine.apply_planned_batched(
                    states, step, nb_qubits, out=spare
                )
                if new is spare:
                    spare = states
                states = new
            else:
                states = engine.apply_planned_batched(
                    states, step, nb_qubits
                )
            channel = (
                channels.get(type(step.op))
                if step.op is not None
                else None
            )
            if channel is not None:
                kraus = channel.kraus
                needs_draw = len(kraus) > 1
                for q in step.noise_qubits:
                    r = None
                    if needs_draw:
                        r = draws[:, col]
                        col += 1
                    states = _apply_kraus_batched(
                        engine, states, kraus, q, nb_qubits, r
                    )
            continue
        if step.kind == MEASURE:
            outcomes, states = _sample_measurement_batched(
                engine, states, step.op, step.qubit, nb_qubits,
                draws[:, col],
            )
            col += 1
            if noise.readout_error > 0.0:
                flips = draws[:, col] < noise.readout_error
                col += 1
                outcomes = outcomes ^ flips.astype(np.int64)
            recorded.append(outcomes)
            continue
        # RESET
        meas = Measurement(step.op.qubit)
        outcomes, states = _sample_measurement_batched(
            engine, states, meas, step.qubit, nb_qubits, draws[:, col]
        )
        col += 1
        ones = outcomes.astype(bool)
        if ones.any():
            if x_kernel is None:
                from repro.gates import PauliX

                x_kernel = PauliX(0).matrix
            states[ones] = engine.apply_batched(
                np.ascontiguousarray(states[ones]), x_kernel,
                [step.qubit], nb_qubits,
            )
        if step.op.record:
            recorded.append(outcomes)

    return _bit_matrix_to_strings(recorded, batch), states


def batch_worker(payload):
    """Process-pool entry point: run one pre-seeded batch.

    Receives everything it needs (circuit, channels, the pre-drawn
    uniform matrix) so results do not depend on which worker — or how
    many workers — execute the batch.  Compiled plans memoize per
    process, so a worker pays compilation at most once per circuit.
    """
    (circuit, noise, channels, start, opts, use_fuse, draws,
     keep_states) = payload
    plan, _stats = get_plan(
        circuit, opts.backend, opts.dtype, fuse=use_fuse
    )
    results, states = execute_batch(
        plan, plan.engine, channels, noise, start, draws, opts.dtype
    )
    return results, (states if keep_states else None)
