"""The unified execution core: request -> job -> result.

Every run path of the toolbox — state-vector (planned and unplanned),
density-matrix, serial and batched Monte-Carlo trajectories, and
vectorized parameter sweeps — executes through this package:

:class:`ExecutionRequest`
    One run as plain data: circuit reference, resolved
    :class:`~repro.simulation.SimulationOptions`, seed, parameter
    bindings, and kind-specific extras.

:class:`Job`
    The handle :meth:`Executor.submit` returns: a
    ``PENDING -> COMPILED -> RUNNING -> DONE/FAILED`` state machine
    carrying the compiled plan, per-stage timings, run statistics and
    any captured error.

:class:`Executor`
    The pipeline driver — owns plan-cache access, backend resolution,
    instrumentation/recorder hooks, and a thread-safe submit path.

The dispatch loops themselves live in the sibling modules
(:mod:`~repro.execution.dispatch`, :mod:`~repro.execution.density`,
:mod:`~repro.execution.trajectory`) — the ONLY place compiled plans
are replayed, which is what keeps spans, flight-recorder events,
metrics and seed contracts consistent across engines.

>>> from repro import QCircuit
>>> from repro.gates import Hadamard
>>> from repro.execution import ExecutionRequest, default_executor
>>> circuit = QCircuit(1)
>>> _ = circuit.push_back(Hadamard(0))
>>> job = default_executor().submit(ExecutionRequest(circuit))
>>> job.state
'DONE'
>>> len(job.result().states[0])
2
"""

from repro.execution.request import (
    DENSITY,
    REQUEST_KINDS,
    STATEVECTOR,
    SWEEP,
    TRAJECTORY,
    TRAJECTORY_BATCH,
    ExecutionRequest,
)
from repro.execution.job import (
    COMPILED,
    DONE,
    FAILED,
    JOB_STATES,
    PENDING,
    RUNNING,
    Job,
    JobTimings,
)
from repro.execution.executor import Executor, default_executor

__all__ = [
    "ExecutionRequest",
    "STATEVECTOR",
    "DENSITY",
    "TRAJECTORY",
    "TRAJECTORY_BATCH",
    "SWEEP",
    "REQUEST_KINDS",
    "Job",
    "JobTimings",
    "PENDING",
    "COMPILED",
    "RUNNING",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "Executor",
    "default_executor",
]
