"""The :class:`ExecutionRequest` — everything one run needs, as data.

A request is the frozen input half of the execution core's contract: a
circuit reference, the fully resolved
:class:`~repro.simulation.SimulationOptions`, the seed, any parameter
bindings, and the kind-specific extras (noise model, shot count, sweep
value matrix).  Because a request is plain data, it can be validated
once at construction, logged, hashed for a result cache, or shipped to
a worker — which is exactly what the service gateway
(``python -m repro.serve``) will do with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.exceptions import SimulationError
from repro.simulation.options import SimulationOptions

__all__ = [
    "STATEVECTOR",
    "DENSITY",
    "TRAJECTORY",
    "TRAJECTORY_BATCH",
    "SWEEP",
    "REQUEST_KINDS",
    "ExecutionRequest",
]

#: Request kinds — one per execution pipeline the executor can drive.
STATEVECTOR = "statevector"
DENSITY = "density"
TRAJECTORY = "trajectory"
TRAJECTORY_BATCH = "trajectory-batch"
SWEEP = "sweep"

#: Every kind the executor accepts.
REQUEST_KINDS = (STATEVECTOR, DENSITY, TRAJECTORY, TRAJECTORY_BATCH, SWEEP)


@dataclass
class ExecutionRequest:
    """One unit of work for an :class:`~repro.execution.Executor`.

    Parameters
    ----------
    circuit:
        The :class:`~repro.circuit.QCircuit` to execute.
    kind:
        Which pipeline to run — one of :data:`REQUEST_KINDS`.
    start:
        Initial state specifier (bitstring, vector, or — for density
        runs — a density matrix); ``None`` means all-zeros.
    options:
        A resolved :class:`~repro.simulation.SimulationOptions` (plain
        dicts are accepted and coerced).
    seed:
        Seed or :class:`numpy.random.Generator` for stochastic
        pipelines (trajectories) and shot-sampling defaults.  Falls
        back to ``options.seed`` when ``None``.
    param_values:
        Normalized ``{Parameter: value}`` binding for parametric
        circuits (statevector runs).
    noise:
        A :class:`~repro.noise.NoiseModel` for density/trajectory
        pipelines (``None`` = noiseless).
    channels:
        Optional precomputed ``{gate class: NoiseChannel}`` map — the
        trajectory pipelines build it from ``noise`` when absent;
        callers running many shots pass one to amortize the IR pass.
    shots:
        Shot count for ``TRAJECTORY_BATCH`` requests.
    values, parameters:
        Sweep value matrix and optional explicit column order for
        ``SWEEP`` requests.
    return_states:
        Whether a batched-trajectory result keeps the final
        ``(shots, 2**n)`` state matrix.
    """

    circuit: Any
    kind: str = STATEVECTOR
    start: Any = None
    options: SimulationOptions = field(default_factory=SimulationOptions)
    seed: Any = None
    param_values: Optional[dict] = None
    noise: Any = None
    channels: Optional[dict] = None
    shots: int = 0
    values: Any = None
    parameters: Any = None
    return_states: bool = False

    def __post_init__(self):
        if self.kind not in REQUEST_KINDS:
            raise SimulationError(
                f"unknown execution kind {self.kind!r}; expected one "
                f"of {', '.join(REQUEST_KINDS)}"
            )
        if self.options is None:
            self.options = SimulationOptions()
        elif isinstance(self.options, dict):
            self.options = SimulationOptions(**self.options)
        elif not isinstance(self.options, SimulationOptions):
            raise SimulationError(
                "options must be a SimulationOptions (or dict), got "
                f"{type(self.options).__name__}"
            )
        if self.seed is None:
            self.seed = self.options.seed
        if self.kind == TRAJECTORY_BATCH and int(self.shots) < 0:
            raise SimulationError(
                f"shots must be >= 0, got {self.shots}"
            )

    def __repr__(self) -> str:
        nq = getattr(self.circuit, "nbQubits", "?")
        return (
            f"ExecutionRequest(kind={self.kind!r}, nbQubits={nq}, "
            f"backend={self.options.backend!r})"
        )
