"""Numerically stable angle and rotation value objects.

QCLAB's emphasis on numerical stability (Section 1 of the paper) rests on
representing angles by their ``(cos, sin)`` pair instead of the raw angle
value.  Sums and differences of angles are then evaluated with trigonometric
addition identities — never through ``acos``/``asin``, whose derivatives
blow up near ``+-1`` — and rotation gates can be fused and reordered
(*turnover*, used by the derived F3C compiler) without accuracy loss.
"""

from repro.angle.qangle import QAngle
from repro.angle.qrotation import QRotation, turnover

__all__ = ["QAngle", "QRotation", "turnover"]
