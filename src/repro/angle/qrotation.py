"""The :class:`QRotation` value object and the rotation *turnover*.

A rotation gate ``R_a(theta) = exp(-i theta/2 sigma_a)`` is determined by
the **half angle** ``theta/2``.  :class:`QRotation` stores that half angle
as a :class:`~repro.angle.qangle.QAngle`, so fusing two same-axis
rotations is a stable angle addition and no ``acos`` ever appears.

The *turnover* operation — rewriting ``R_a(t1) R_b(t2) R_a(t3)`` as
``R_b(p1) R_a(p2) R_b(p3)`` — is the workhorse of QCLAB's derived
compiler F3C (paper refs [5, 6]).  It is implemented here on the
quaternion (SU(2)) representation with ``atan2``-based Euler extraction,
which is well conditioned for every input.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.angle.qangle import QAngle
from repro.exceptions import GateError

__all__ = ["QRotation", "turnover"]

#: Right-handed axis triples: permutation parity of (c, a, b) relative to
#: (x, y, z) for a turnover with outer axis ``b`` and inner axis ``a``,
#: ``c`` being the remaining axis.
_AXES = ("x", "y", "z")


class QRotation:
    """A rotation value ``R(theta) = exp(-i theta/2 sigma)``, axis-agnostic.

    Parameters
    ----------
    *args:
        ``()`` for the identity rotation, ``(theta,)`` for a rotation by
        ``theta`` radians, or ``(cos, sin)`` giving the cosine and sine of
        the **half** angle ``theta/2`` directly (the numerically preferred
        form, mirroring QCLAB's constructor).

    Notes
    -----
    Multiplying two rotations (``r1 * r2``) adds their half angles; this
    is exactly the fusion rule ``R(t1) R(t2) = R(t1 + t2)`` valid for
    same-axis rotation gates.
    """

    __slots__ = ("_half",)

    def __init__(self, *args: float) -> None:
        if len(args) == 1:
            half = QAngle(float(args[0]) / 2.0)
        else:
            # () -> identity; (cos, sin) -> half angle from the pair.
            half = QAngle(*args)
        object.__setattr__(self, "_half", half)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("QRotation is immutable")

    def __reduce__(self):
        # default slot-state unpickling would trip the immutability
        # guard; rebuild from the half-angle (cos, sin) pair instead
        return (QRotation, (self._half.cos, self._half.sin))

    @classmethod
    def from_half_angle(cls, half: QAngle) -> "QRotation":
        """Build a rotation directly from a half-angle :class:`QAngle`."""
        return cls(half.cos, half.sin)

    # -- accessors ---------------------------------------------------------

    @property
    def half(self) -> QAngle:
        """The half angle ``theta/2`` as a :class:`QAngle`."""
        return self._half

    @property
    def theta(self) -> float:
        """The rotation angle ``theta`` in radians, in ``(-2 pi, 2 pi]``."""
        return 2.0 * self._half.theta

    @property
    def cos(self) -> float:
        """``cos(theta/2)``."""
        return self._half.cos

    @property
    def sin(self) -> float:
        """``sin(theta/2)``."""
        return self._half.sin

    # -- algebra -----------------------------------------------------------

    def __mul__(self, other: "QRotation") -> "QRotation":
        """Fuse two same-axis rotations: add half angles stably."""
        if not isinstance(other, QRotation):
            return NotImplemented
        return QRotation.from_half_angle(self._half + other._half)

    def inv(self) -> "QRotation":
        """The inverse rotation ``R(-theta)``."""
        return QRotation.from_half_angle(-self._half)

    def isclose(self, other: "QRotation", atol: float = 1e-12) -> bool:
        """Closeness of the two half-angle (cos, sin) pairs."""
        return self._half.isclose(other._half, atol)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QRotation):
            return NotImplemented
        return self._half == other._half

    def __hash__(self) -> int:
        return hash(("QRotation", self._half))

    def __repr__(self) -> str:
        return f"QRotation(theta={self.theta:.17g})"


def _axis_index(axis: str) -> int:
    a = axis.lower()
    if a not in _AXES:
        raise GateError(f"unknown rotation axis {axis!r}; expected x, y or z")
    return _AXES.index(a)


def _permutation_sign(c: int, a: int, b: int) -> float:
    """Levi-Civita sign of the axis permutation ``(c, a, b)``."""
    perm = (c, a, b)
    # parity of a 3-permutation: even iff it is a cyclic shift of (0,1,2)
    return 1.0 if perm in ((0, 1, 2), (1, 2, 0), (2, 0, 1)) else -1.0


def _quat_mul(
    q1: Tuple[float, float, float, float],
    q2: Tuple[float, float, float, float],
) -> Tuple[float, float, float, float]:
    """Hamilton product of two quaternions ``(w, x, y, z)``."""
    w1, x1, y1, z1 = q1
    w2, x2, y2, z2 = q2
    return (
        w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
        w1 * y2 + y1 * w2 + z1 * x2 - x1 * z2,
        w1 * z2 + z1 * w2 + x1 * y2 - y1 * x2,
    )


def turnover(
    r1: QRotation,
    r2: QRotation,
    r3: QRotation,
    axis_outer: str,
    axis_inner: str,
) -> Tuple[QRotation, QRotation, QRotation]:
    """Turn over a V-shaped rotation pattern into a hat-shaped one.

    Rewrites the product (applied right to left, as matrices)

    ``R_b(t1) @ R_a(t2) @ R_b(t3)``  with  ``b = axis_outer``, ``a = axis_inner``

    into the equal product

    ``R_a(p1) @ R_b(p2) @ R_a(p3)``

    returning ``(p1, p2, p3)`` as :class:`QRotation` objects.  The two
    axes must be distinct members of ``{x, y, z}``.

    The computation goes through the unit-quaternion representation
    ``R_a(t) -> (cos t/2, sin t/2 * e_a)`` and extracts the generalized
    Euler angles with ``atan2``, so it is numerically stable for all
    inputs, including the near-degenerate ``t2 ~ 0`` case.
    """
    b = _axis_index(axis_outer)
    a = _axis_index(axis_inner)
    if a == b:
        raise GateError("turnover requires two distinct axes")
    c = 3 - a - b  # the remaining axis
    sign = _permutation_sign(c, b, a)

    # Quaternions of the three input rotations (w, v) with v along b, a, b.
    def _quat(rot: QRotation, axis: int) -> Tuple[float, float, float, float]:
        v = [0.0, 0.0, 0.0]
        v[axis] = rot.sin
        return (rot.cos, v[0], v[1], v[2])

    q = _quat_mul(_quat(r1, b), _quat_mul(_quat(r2, a), _quat(r3, b)))
    w = q[0]
    # Role-space components: we relabel axes so the TARGET outer axis `a`
    # plays z and the target inner axis `b` plays y.  For an odd relabeling
    # the c-component flips sign to preserve the quaternion algebra.
    rz = q[1 + a]
    ry = q[1 + b]
    rx = sign * q[1 + c]

    # Extract p1, p2, p3 from q = Rz(p1) Ry(p2) Rz(p3) in role space:
    #   w  =  cos(p2/2) cos((p1+p3)/2)
    #   x  = -sin(p2/2) sin((p1-p3)/2)
    #   y  =  sin(p2/2) cos((p1-p3)/2)
    #   z  =  cos(p2/2) sin((p1+p3)/2)
    half_sum = math.atan2(rz, w)
    half_diff = math.atan2(-rx, ry)
    cos_half_p2 = math.hypot(w, rz)
    sin_half_p2 = math.hypot(rx, ry)

    p2 = QRotation(cos_half_p2, sin_half_p2)
    # half_sum = (p1 + p3)/2 and half_diff = (p1 - p3)/2, so the full
    # angles are their sum and difference; QRotation's single-argument
    # constructor takes the full rotation angle.
    p1 = QRotation(half_sum + half_diff)
    p3 = QRotation(half_sum - half_diff)
    return p1, p2, p3
