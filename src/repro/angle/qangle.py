"""The :class:`QAngle` value object: an angle stored as ``(cos, sin)``.

Storing the cosine/sine pair is QCLAB's core numerical-stability device:

* composing angles uses the addition formulas
  ``cos(a+b) = cos a cos b - sin a sin b`` and
  ``sin(a+b) = sin a cos b + cos a sin b`` — both backward stable;
* the angle value itself, when needed, is recovered with ``atan2`` which
  is well conditioned everywhere (unlike ``acos`` near ``+-1``).

Instances are immutable value objects: arithmetic returns new angles.
"""

from __future__ import annotations

import math
from typing import Union

from repro.exceptions import GateError

__all__ = ["QAngle"]

#: Tolerance for accepting a user-supplied (cos, sin) pair as lying on the
#: unit circle.  Pairs inside the tolerance are renormalized exactly.
_UNIT_TOL = 1e-8

Number = Union[int, float]


class QAngle:
    """An angle represented by its cosine and sine.

    Parameters
    ----------
    *args:
        Either a single number ``theta`` (radians), or two numbers
        ``cos, sin`` specifying the point on the unit circle directly.
        The two-argument form must satisfy ``cos**2 + sin**2 = 1`` within
        a small tolerance; it is renormalized to machine precision.

    Examples
    --------
    >>> a = QAngle(math.pi / 3)
    >>> b = QAngle(0.5, math.sqrt(3) / 2)  # the same angle, from (cos, sin)
    >>> abs((a - b).theta) < 1e-15
    True
    """

    __slots__ = ("_cos", "_sin")

    def __init__(self, *args: Number) -> None:
        if len(args) == 0:
            c, s = 1.0, 0.0
        elif len(args) == 1:
            theta = float(args[0])
            c, s = math.cos(theta), math.sin(theta)
        elif len(args) == 2:
            c, s = float(args[0]), float(args[1])
            norm = math.hypot(c, s)
            if abs(norm - 1.0) > _UNIT_TOL:
                raise GateError(
                    f"({c}, {s}) does not lie on the unit circle "
                    f"(norm {norm})"
                )
            c, s = c / norm, s / norm
        else:
            raise GateError(
                f"QAngle takes 0, 1 or 2 arguments, got {len(args)}"
            )
        object.__setattr__(self, "_cos", c)
        object.__setattr__(self, "_sin", s)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("QAngle is immutable")

    def __reduce__(self):
        # default slot-state unpickling would trip the immutability
        # guard; rebuild through the (cos, sin) constructor instead
        return (QAngle, (self._cos, self._sin))

    # -- accessors ---------------------------------------------------------

    @property
    def cos(self) -> float:
        """Cosine of the angle."""
        return self._cos

    @property
    def sin(self) -> float:
        """Sine of the angle."""
        return self._sin

    @property
    def theta(self) -> float:
        """The angle in radians, in ``(-pi, pi]``, recovered via ``atan2``."""
        return math.atan2(self._sin, self._cos)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "QAngle") -> "QAngle":
        """Angle sum via the trigonometric addition identities."""
        if not isinstance(other, QAngle):
            return NotImplemented
        return QAngle(
            self._cos * other._cos - self._sin * other._sin,
            self._sin * other._cos + self._cos * other._sin,
        )

    def __sub__(self, other: "QAngle") -> "QAngle":
        """Angle difference via the trigonometric addition identities."""
        if not isinstance(other, QAngle):
            return NotImplemented
        return QAngle(
            self._cos * other._cos + self._sin * other._sin,
            self._sin * other._cos - self._cos * other._sin,
        )

    def __neg__(self) -> "QAngle":
        """The opposite angle (cosine unchanged, sine negated)."""
        return QAngle(self._cos, -self._sin)

    def __mul__(self, k: int) -> "QAngle":
        """Integer multiple of the angle via repeated stable addition."""
        if not isinstance(k, int) or isinstance(k, bool):
            return NotImplemented
        if k < 0:
            return (-self) * (-k)
        out = QAngle()
        base = self
        n = k
        while n:  # binary exponentiation on the unit circle
            if n & 1:
                out = out + base
            base = base + base
            n >>= 1
        return out

    __rmul__ = __mul__

    def doubled(self) -> "QAngle":
        """The angle ``2*theta`` via the double-angle identities."""
        return QAngle(
            self._cos * self._cos - self._sin * self._sin,
            2.0 * self._sin * self._cos,
        )

    # -- comparisons -------------------------------------------------------

    def isclose(self, other: "QAngle", atol: float = 1e-12) -> bool:
        """Closeness on the unit circle (compares (cos, sin) pairs)."""
        return (
            abs(self._cos - other._cos) <= atol
            and abs(self._sin - other._sin) <= atol
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QAngle):
            return NotImplemented
        return self._cos == other._cos and self._sin == other._sin

    def __hash__(self) -> int:
        return hash((self._cos, self._sin))

    def __repr__(self) -> str:
        return f"QAngle(cos={self._cos:.17g}, sin={self._sin:.17g})"
