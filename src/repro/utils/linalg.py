"""Small linear-algebra helpers shared across the package.

QCLAB emphasizes numerical stability; the checks here are used both for
argument validation (e.g. :class:`~repro.gates.matrix_gate.MatrixGate`
requires a unitary) and in the test suite as invariants.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "closeto",
    "dagger",
    "expand_diag",
    "is_unitary",
    "is_hermitian",
    "is_normalized",
    "kron_all",
]

#: Default absolute tolerance for matrix/vector comparisons. ``1e-10`` is
#: loose enough for long chains of complex128 arithmetic yet tight enough
#: to catch genuinely non-unitary inputs.
ATOL = 1e-10


def closeto(a, b, atol: float = ATOL) -> bool:
    """Elementwise closeness with a package-wide default tolerance."""
    return bool(np.allclose(np.asarray(a), np.asarray(b), atol=atol, rtol=0.0))


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Conjugate transpose of ``matrix``."""
    return np.conjugate(np.asarray(matrix)).T


def is_unitary(matrix: np.ndarray, atol: float = ATOL) -> bool:
    """``True`` when ``matrix`` is square and satisfies ``U @ U^dagger = I``."""
    m = np.asarray(matrix)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        return False
    eye = np.eye(m.shape[0], dtype=m.dtype)
    return closeto(m @ dagger(m), eye, atol) and closeto(dagger(m) @ m, eye, atol)


def is_hermitian(matrix: np.ndarray, atol: float = ATOL) -> bool:
    """``True`` when ``matrix`` equals its conjugate transpose."""
    m = np.asarray(matrix)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        return False
    return closeto(m, dagger(m), atol)


def is_normalized(vector: np.ndarray, atol: float = 1e-8) -> bool:
    """``True`` when the 2-norm of ``vector`` is 1 within ``atol``."""
    v = np.asarray(vector).ravel()
    return abs(np.linalg.norm(v) - 1.0) <= atol


def kron_all(factors: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices/vectors, left to right.

    ``kron_all([a, b, c])`` computes ``kron(kron(a, b), c)``; with qubit
    ``q0`` as the most significant bit this places the first factor on the
    lowest-numbered qubits.
    """
    factors = list(factors)
    if not factors:
        raise ValueError("kron_all requires at least one factor")
    out = np.asarray(factors[0])
    for f in factors[1:]:
        out = np.kron(out, np.asarray(f))
    return out


def expand_diag(diag, src_qubits, dst_qubits, dtype=None) -> np.ndarray:
    """Expand a diagonal over ``src_qubits`` to superset ``dst_qubits``.

    Both qubit lists are ascending with ``qubits[0]`` as the most
    significant sub-index bit (the register convention).  Shared by the
    plan compiler's diagonal coalescing and the IR
    ``coalesce_diagonals`` pass.
    """
    diag = np.asarray(diag)
    if dtype is None:
        dtype = diag.dtype
    k = len(dst_qubits)
    pos = [list(dst_qubits).index(q) for q in src_qubits]
    out = np.empty(1 << k, dtype=dtype)
    for a in range(1 << k):
        sub = 0
        for p in pos:
            sub = (sub << 1) | ((a >> (k - 1 - p)) & 1)
        out[a] = diag[sub]
    return out
