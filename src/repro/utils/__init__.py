"""Internal utilities: bit manipulation, linear algebra and validation.

These helpers implement the low-level machinery the paper alludes to in
Section 3.3 ("bitwise operations are used to efficiently determine the
indices for constituting the collapsed state") and Section 3.2 (building
``I_l (x) U (x) I_r`` operators).
"""

from repro.utils.bits import (
    bit_length_for,
    bitstring_to_index,
    gather_indices,
    index_to_bitstring,
    insert_bit,
    insert_bits,
    qubit_bit,
    qubit_mask,
    subindex_map,
)
from repro.utils.linalg import (
    closeto,
    dagger,
    is_hermitian,
    is_normalized,
    is_unitary,
    kron_all,
)
from repro.utils.validation import (
    check_control_states,
    check_dtype,
    check_qubit,
    check_qubits,
)

__all__ = [
    "bit_length_for",
    "bitstring_to_index",
    "gather_indices",
    "index_to_bitstring",
    "insert_bit",
    "insert_bits",
    "qubit_bit",
    "qubit_mask",
    "subindex_map",
    "closeto",
    "dagger",
    "is_hermitian",
    "is_normalized",
    "is_unitary",
    "kron_all",
    "check_control_states",
    "check_dtype",
    "check_qubit",
    "check_qubits",
]
