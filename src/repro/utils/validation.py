"""Argument validation helpers.

These are intentionally strict: QCLAB is pitched at prototyping, where a
clear error at construction time is worth far more than a mysterious
shape error deep inside a simulation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GateError, QubitError

__all__ = ["check_qubit", "check_qubits", "check_dtype"]

#: Supported complex dtypes, mirroring QCLAB++'s template parameter ``T``.
SUPPORTED_DTYPES = (np.complex64, np.complex128)


def check_qubit(qubit: int, nb_qubits: int | None = None) -> int:
    """Validate a single qubit index; returns it as a plain ``int``.

    When ``nb_qubits`` is given, the index must also fall inside the
    register.
    """
    if isinstance(qubit, bool) or not isinstance(qubit, (int, np.integer)):
        raise QubitError(f"qubit index must be an integer, got {qubit!r}")
    q = int(qubit)
    if q < 0:
        raise QubitError(f"qubit index must be non-negative, got {q}")
    if nb_qubits is not None and q >= nb_qubits:
        raise QubitError(f"qubit {q} out of range for {nb_qubits} qubit(s)")
    return q


def check_qubits(
    qubits: Iterable[int],
    nb_qubits: int | None = None,
    *,
    distinct: bool = True,
) -> list[int]:
    """Validate a sequence of qubit indices; returns them as ``list[int]``."""
    qs = [check_qubit(q, nb_qubits) for q in qubits]
    if distinct and len(set(qs)) != len(qs):
        raise QubitError(f"duplicate qubits in {qs!r}")
    return qs


def check_dtype(dtype) -> np.dtype:
    """Validate and normalize a complex dtype (complex64 or complex128)."""
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.complex64), np.dtype(np.complex128)):
        raise GateError(
            f"unsupported dtype {dt}; expected complex64 or complex128"
        )
    return dt


def check_control_states(states: Sequence[int], nb_controls: int) -> list[int]:
    """Validate a control-state vector (one 0/1 entry per control qubit)."""
    sts = list(states)
    if len(sts) != nb_controls:
        raise GateError(
            f"expected {nb_controls} control state(s), got {len(sts)}"
        )
    for s in sts:
        if s not in (0, 1):
            raise GateError(f"control state {s!r} is not 0 or 1")
    return [int(s) for s in sts]
