"""Bitwise index manipulation for state-vector simulation.

The paper (Section 3.3) notes that *"bitwise operations are used to
efficiently determine the indices for constituting the collapsed state"*.
This module provides those operations, vectorized over NumPy integer
arrays so that the simulation backends never loop over amplitudes in
Python.

Conventions
-----------
Qubit ``q0`` is the **most significant** bit of a basis-state index
(matching the paper, where ``kron(v, bell)`` places ``v`` on ``q0`` and
result strings such as ``'00'`` list ``q0`` first).  For an ``n``-qubit
register, the bit of qubit ``q`` inside index ``i`` therefore lives at
bit position ``n - 1 - q`` (counted from the least significant bit).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import QubitError

__all__ = [
    "bit_length_for",
    "bitstring_to_index",
    "index_to_bitstring",
    "qubit_mask",
    "qubit_bit",
    "insert_bit",
    "insert_bits",
    "gather_indices",
    "subindex_map",
]

_INT = np.int64


def bit_length_for(dim: int) -> int:
    """Number of qubits for a state-vector of length ``dim``.

    Raises :class:`QubitError` if ``dim`` is not a positive power of two.
    """
    if dim <= 0 or (dim & (dim - 1)) != 0:
        raise QubitError(f"state dimension {dim} is not a positive power of 2")
    return int(dim).bit_length() - 1


def bitstring_to_index(bits: str) -> int:
    """Convert a bitstring such as ``'011'`` (q0 first) to a basis index."""
    if not bits or any(c not in "01" for c in bits):
        raise QubitError(f"invalid bitstring {bits!r}: expected only '0'/'1'")
    return int(bits, 2)


def index_to_bitstring(index: int, nb_qubits: int) -> str:
    """Convert a basis index to its ``nb_qubits``-character bitstring."""
    if index < 0 or index >= (1 << nb_qubits):
        raise QubitError(
            f"index {index} out of range for {nb_qubits} qubit(s)"
        )
    return format(index, f"0{nb_qubits}b")


def qubit_mask(qubit: int, nb_qubits: int) -> int:
    """Single-bit mask selecting qubit ``qubit`` in an ``nb_qubits`` register."""
    if not 0 <= qubit < nb_qubits:
        raise QubitError(f"qubit {qubit} out of range for {nb_qubits} qubit(s)")
    return 1 << (nb_qubits - 1 - qubit)


def qubit_bit(indices, qubit: int, nb_qubits: int):
    """Extract the bit of ``qubit`` from basis index/indices.

    Works on Python ints and NumPy arrays alike; the return type follows
    the input type.
    """
    shift = nb_qubits - 1 - qubit
    if shift < 0 or qubit < 0:
        raise QubitError(f"qubit {qubit} out of range for {nb_qubits} qubit(s)")
    return (indices >> shift) & 1


def insert_bit(indices, position: int, bit: int):
    """Insert ``bit`` at bit-``position`` (from the LSB), shifting higher bits up.

    Given an index over ``m`` bits, returns the corresponding index over
    ``m + 1`` bits in which bit-position ``position`` holds ``bit`` and all
    previously-higher bits moved one position up.  Vectorized over arrays.
    """
    low_mask = (1 << position) - 1
    low = indices & low_mask
    high = (indices >> position) << (position + 1)
    return high | (bit << position) | low


def insert_bits(
    indices,
    positions: Sequence[int],
    bits: Sequence[int],
):
    """Insert several bits at the given (distinct) bit positions.

    ``positions`` are final bit positions (from the LSB) and may be given
    in any order; ``bits[i]`` is deposited at ``positions[i]``.  The input
    indices enumerate the remaining (non-inserted) bits packed densely.
    """
    if len(positions) != len(bits):
        raise QubitError("positions and bits must have equal length")
    if len(set(positions)) != len(positions):
        raise QubitError(f"duplicate bit positions in {positions!r}")
    order = np.argsort(np.asarray(positions, dtype=_INT))
    out = indices
    for k in order:
        out = insert_bit(out, int(positions[k]), int(bits[k]))
    return out


def _positions_for(qubits: Sequence[int], nb_qubits: int) -> list[int]:
    pos = []
    for q in qubits:
        if not 0 <= q < nb_qubits:
            raise QubitError(
                f"qubit {q} out of range for {nb_qubits} qubit(s)"
            )
        pos.append(nb_qubits - 1 - q)
    if len(set(pos)) != len(pos):
        raise QubitError(f"duplicate qubits in {list(qubits)!r}")
    return pos


def gather_indices(
    nb_qubits: int,
    qubits: Sequence[int],
    values: Sequence[int],
) -> np.ndarray:
    """All basis indices where each ``qubits[i]`` holds bit ``values[i]``.

    Returns a sorted ``int64`` array of length ``2**(nb_qubits - k)``.
    This is the collapse/gather primitive from Section 3.3 of the paper.
    """
    positions = _positions_for(qubits, nb_qubits)
    if len(values) != len(qubits):
        raise QubitError("qubits and values must have equal length")
    for v in values:
        if v not in (0, 1):
            raise QubitError(f"bit value {v!r} is not 0 or 1")
    rest = np.arange(1 << (nb_qubits - len(qubits)), dtype=_INT)
    return insert_bits(rest, positions, list(values))


def subindex_map(nb_qubits: int, qubits: Sequence[int]) -> np.ndarray:
    """Index map exposing a ``k``-qubit subspace of the register.

    Returns an ``int64`` array ``idx`` of shape ``(2**k, 2**(n-k))`` such
    that ``idx[a, r]`` is the full-register basis index in which the
    qubits in ``qubits`` spell the sub-index ``a`` (``qubits[0]`` being
    the most significant bit of ``a``) and the remaining qubits enumerate
    ``r``.  ``state[idx]`` is then a matrix on which a ``2**k x 2**k``
    gate kernel acts by plain matrix multiplication.
    """
    positions = _positions_for(qubits, nb_qubits)
    k = len(qubits)
    rest = np.arange(1 << (nb_qubits - k), dtype=_INT)
    rows = np.empty((1 << k, 1 << (nb_qubits - k)), dtype=_INT)
    for a in range(1 << k):
        bits = [(a >> (k - 1 - j)) & 1 for j in range(k)]
        rows[a] = insert_bits(rest, positions, bits)
    return rows
