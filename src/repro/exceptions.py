"""Exception hierarchy for the QCLAB reproduction package.

All errors raised by :mod:`repro` derive from :class:`QCLabError` so that
callers can catch package-level failures with a single ``except`` clause
while still discriminating the finer-grained categories below.
"""

from __future__ import annotations

__all__ = [
    "QCLabError",
    "QubitError",
    "GateError",
    "CircuitError",
    "SimulationError",
    "StateError",
    "MeasurementError",
    "QASMError",
    "DrawError",
    "UnboundParameterError",
    "JobCancelledError",
]


class QCLabError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class QubitError(QCLabError, ValueError):
    """An invalid qubit index, duplicate qubit, or out-of-range qubit."""


class GateError(QCLabError, ValueError):
    """An invalid gate construction (non-unitary matrix, bad arity, ...)."""


class CircuitError(QCLabError, ValueError):
    """An invalid circuit operation (bad insertion, size mismatch, ...)."""


class SimulationError(QCLabError, RuntimeError):
    """A failure while simulating a circuit."""


class StateError(QCLabError, ValueError):
    """An invalid quantum state (wrong length, not normalized, ...)."""


class MeasurementError(QCLabError, ValueError):
    """An invalid measurement specification (unknown basis, ...)."""


class QASMError(QCLabError, ValueError):
    """A failure while exporting or parsing OpenQASM."""


class DrawError(QCLabError, RuntimeError):
    """A failure while rendering a circuit diagram."""


class UnboundParameterError(QCLabError, TypeError):
    """A numeric value was requested from a symbolic
    :class:`~repro.parameter.Parameter` slot that has no binding.

    Raised by ``.matrix``/``.theta`` on gates constructed with a
    :class:`~repro.parameter.Parameter`, and by ``bind``/``sweep`` when
    a required parameter is missing from the supplied values.  Subclasses
    :class:`TypeError` because the historical failure mode was a
    ``TypeError`` deep inside numpy.
    """


class JobCancelledError(SimulationError):
    """An execution job was cancelled (or overran its deadline).

    Raised *inside* the executor pipeline at the next cancellation
    checkpoint after :meth:`repro.execution.Job.cancel` is called or
    the job's :attr:`~repro.execution.Job.deadline` passes, then
    captured onto the job like any other pipeline error: the job ends
    in state ``FAILED`` with this exception as
    :attr:`~repro.execution.Job.error` and the executor stays fully
    reusable.  The service gateway maps it to a ``504`` response.
    """
