"""Uniformly controlled (multiplexed) rotations via Gray codes.

The building block shared by FABLE and Möttönen state preparation: a
rotation ``R_axis(theta_j)`` applied to a target qubit where ``j`` is
the computational-basis state of the control register.  Synthesized as
the standard Gray-code sequence of plain rotations and CNOTs (Möttönen
et al., 2004), with the angle vector mapped through a scaled
Walsh–Hadamard transform.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.gates import CNOT, RotationY, RotationZ

__all__ = [
    "gray_code",
    "gray_permutation_angles",
    "append_multiplexed_rotation",
]


def gray_code(i: int) -> int:
    """The ``i``-th binary-reflected Gray code."""
    return i ^ (i >> 1)


def _sfwht(a: np.ndarray) -> np.ndarray:
    """Scaled fast Walsh–Hadamard transform (natural ordering)."""
    a = a.copy().astype(float)
    n = a.size
    h = 1
    while h < n:
        for i in range(0, n, h * 2):
            for j in range(i, i + h):
                x, y = a[j], a[j + h]
                a[j], a[j + h] = (x + y) / 2.0, (x - y) / 2.0
        h *= 2
    return a


def gray_permutation_angles(thetas: np.ndarray) -> np.ndarray:
    """Map multiplexer target angles to Gray-sequence rotation angles."""
    thetas = np.asarray(thetas, dtype=float)
    transformed = _sfwht(thetas)
    out = np.empty_like(transformed)
    for i in range(out.size):
        out[i] = transformed[gray_code(i)]
    return out


def _control_position(i: int, k: int) -> int:
    """Index (0 = MSB) of the control whose bit flips after slot ``i``."""
    if i == (1 << k) - 1:
        return 0
    changed = gray_code(i) ^ gray_code(i + 1)
    return k - int(changed).bit_length()


_ROT = {"y": RotationY, "z": RotationZ}


def append_multiplexed_rotation(
    circuit: QCircuit,
    angles: Sequence[float],
    controls: Sequence[int],
    target: int,
    axis: str = "y",
    threshold: float = 0.0,
) -> int:
    """Append ``R_axis(angles[j])``-controlled-on-``j`` to ``circuit``.

    ``controls[0]`` is the most significant bit of the multiplexer index
    ``j``; ``angles`` must have length ``2**len(controls)``.  Rotations
    whose Gray-transformed angle is ``<= threshold`` in magnitude are
    dropped and their CNOTs merged by parity (FABLE-style compression).

    Returns the number of rotation gates emitted.
    """
    if axis not in _ROT:
        raise CircuitError(f"unsupported multiplexor axis {axis!r}")
    controls = list(controls)
    k = len(controls)
    angles = np.asarray(angles, dtype=float)
    if angles.size != (1 << k):
        raise CircuitError(
            f"{angles.size} angle(s) for {k} control(s); expected {1 << k}"
        )
    rot_cls = _ROT[axis]

    if k == 0:
        if abs(angles[0]) > threshold:
            circuit.push_back(rot_cls(target, float(angles[0])))
            return 1
        return 0

    seq = gray_permutation_angles(angles)
    kept = 0
    parity_pending: set = set()
    for i in range(1 << k):
        ctrl = controls[_control_position(i, k)]
        if abs(seq[i]) > threshold:
            for q in sorted(parity_pending):
                circuit.push_back(CNOT(q, target))
            parity_pending.clear()
            circuit.push_back(rot_cls(target, float(seq[i])))
            kept += 1
        parity_pending.symmetric_difference_update({ctrl})
    for q in sorted(parity_pending):
        circuit.push_back(CNOT(q, target))
    return kept
