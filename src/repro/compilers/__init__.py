"""Quantum compilers built on the toolbox (extension).

The paper notes that QCLAB "underlies ... a range of derived software
packages and quantum compilers [5, 6, 7]".  This package reproduces the
most self-contained of those: **FABLE** (Fast Approximate BLock
Encodings, refs [6, 7]) — compiling an arbitrary real matrix into a
quantum circuit whose top-left block is ``A / 2^n``, with optional
circuit compression by rotation thresholding.
"""

from repro.compilers.fable import (
    block_encoding_block,
    fable,
    gray_code,
    gray_permutation_angles,
)
from repro.compilers.multiplexor import append_multiplexed_rotation
from repro.compilers.two_qubit import decompose_two_qubit

__all__ = [
    "fable",
    "block_encoding_block",
    "gray_code",
    "gray_permutation_angles",
    "append_multiplexed_rotation",
    "decompose_two_qubit",
]
